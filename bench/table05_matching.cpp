// Table 5: matching based on propensity scores, for the number-of-
// change-events treatment — per comparison point: case counts, matched
// pairs, distinct untreated matched, and propensity-score balance.
// Also reports the exact-matching comparison from §5.2.3 ("exact
// matching produces at most 17 pairs").
#include <iostream>

#include "common.hpp"
#include "mpa/causal.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 5", "Propensity matching for 'No. of change events'",
                "most treated cases matched (far more than exact matching "
                "achieves); distinct untreated < pairs (replacement helps); "
                "|std diff of means| of the score ~0 and variance ratio ~1");
  const CaseTable table = bench::load_case_table();
  const CausalOptions opts;

  TextTable t({"comp. point", "untreated", "treated", "pairs", "untreated matched",
               "score |sdm|", "score var ratio", "exact-match pairs"});
  for (int b = 0; b < 4; ++b) {
    const ComparisonData data = comparison_data(table, Practice::kNumChangeEvents, b, opts);
    if (data.treated.empty() || data.untreated.empty()) continue;
    const MatchResult m = propensity_match(data.treated, data.untreated, opts.match);
    t.row()
        .add(std::to_string(b + 1) + ":" + std::to_string(b + 2))
        .add(data.untreated.size())
        .add(data.treated.size())
        .add(m.pairs.size())
        .add(m.untreated_matched_distinct)
        .add(std::abs(m.propensity_balance.std_diff_of_means), 4)
        .add(m.propensity_balance.variance_ratio, 4)
        .add(exact_match_count(data.treated, data.untreated));
  }
  t.print(std::cout);
  return 0;
}
