// Ablation: learning design choices. Reproduces the paper's footnote 2
// (random forests — plain, balanced, weighted — don't beat boosting +
// oversampling on minority classes) and the SVM-vs-majority remark, and
// adds a boosting-iterations sweep.
#include <iostream>

#include "common.hpp"
#include "mpa/modeling.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Ablation", "Learning design choices (5-class, 5-fold CV)",
                "footnote 2: balanced/weighted random forests do not improve "
                "minority-class recall beyond DT+AB+OS; SVM performs worse than "
                "the majority baseline (2-class)");
  const CaseTable table = bench::load_case_table();
  const auto cfg = bench::config_from_env();

  std::cout << "\n-- 5-class: forests vs boosting+oversampling --\n";
  {
    Rng rng(cfg.seed + 11);
    TextTable t({"model", "accuracy", "mean recall (good/moderate/poor)"});
    for (ModelKind kind :
         {ModelKind::kDtBoostOversample, ModelKind::kForestPlain, ModelKind::kForestBalanced,
          ModelKind::kForestWeighted}) {
      const EvalResult r = evaluate_model_cv(table, 5, kind, rng);
      const double mid = (r.recall[1] + r.recall[2] + r.recall[3]) / 3;
      t.row().add(std::string(to_string(kind))).add(r.accuracy * 100, 1).add(mid, 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n-- 2-class: SVM vs majority --\n";
  {
    Rng rng(cfg.seed + 12);
    TextTable t({"model", "accuracy"});
    for (ModelKind kind : {ModelKind::kSvm, ModelKind::kMajority, ModelKind::kDecisionTree}) {
      const EvalResult r = evaluate_model_cv(table, 2, kind, rng);
      t.row().add(std::string(to_string(kind))).add(r.accuracy * 100, 1);
    }
    t.print(std::cout);
  }

  std::cout << "\n-- boosting iterations sweep (5-class, DT+AB+OS) --\n";
  {
    TextTable t({"iterations", "accuracy"});
    for (int iters : {1, 5, 15, 30}) {
      Rng rng(cfg.seed + 13);
      ModelingOptions opts;
      opts.boost.iterations = iters;
      const EvalResult r =
          evaluate_model_cv(table, 5, ModelKind::kDtBoostOversample, rng, opts);
      t.row().add(iters).add(r.accuracy * 100, 1);
    }
    t.print(std::cout);
  }
  return 0;
}
