// Shared plumbing for the reproduction benches: one synthetic OSP at
// paper scale (850 networks x 17 months by default), with the inferred
// case table cached as CSV so the ~20 bench binaries don't each pay the
// generation + inference cost.
//
// Environment overrides:
//   MPA_BENCH_NETWORKS  number of networks (default 850)
//   MPA_BENCH_MONTHS    number of months   (default 17)
//   MPA_BENCH_SEED      generator seed     (default 42)
//   MPA_BENCH_CACHE_DIR cache directory    (default /tmp)
#pragma once

#include <string>

#include "metrics/case_table.hpp"
#include "simulation/osp_generator.hpp"

namespace mpa::bench {

struct BenchConfig {
  int networks = 850;
  int months = 17;
  std::uint64_t seed = 42;
  std::string cache_dir = "/tmp";
};

/// Read the configuration, applying environment overrides.
BenchConfig config_from_env();

/// The inferred case table for the configured OSP; loads from the CSV
/// cache when present, otherwise generates + infers + caches.
CaseTable load_case_table(const BenchConfig& cfg = config_from_env());

/// Generate the raw dataset (no cache; only the benches that need raw
/// snapshots/tickets call this).
OspDataset generate_raw(const BenchConfig& cfg = config_from_env());

/// Print the standard bench banner: which paper artifact this
/// reproduces and what shape to expect.
void banner(const std::string& experiment, const std::string& description,
            const std::string& paper_expectation);

}  // namespace mpa::bench
