// Shared plumbing for the reproduction benches: one synthetic OSP at
// paper scale (850 networks x 17 months by default), analyzed through
// the engine's AnalysisSession. The inferred case table persists in
// the session's ArtifactStore (CSV under the cache dir) so the ~20
// bench binaries don't each pay the generation + inference cost.
//
// Environment overrides:
//   MPA_BENCH_NETWORKS  number of networks (default 850)
//   MPA_BENCH_MONTHS    number of months   (default 17)
//   MPA_BENCH_SEED      generator seed     (default 42; full uint64)
//   MPA_BENCH_CACHE_DIR cache directory    (default /tmp)
//   MPA_THREADS         engine thread count (default: hardware)
//   MPA_BENCH_METRICS_OUT  enable the obs layer and write its metrics
//                          + trace spans as JSON to this file at exit
#pragma once

#include <string>

#include "engine/session.hpp"
#include "metrics/case_table.hpp"
#include "simulation/osp_generator.hpp"

namespace mpa::bench {

struct BenchConfig {
  int networks = 850;
  int months = 17;
  std::uint64_t seed = 42;
  std::string cache_dir = "/tmp";
};

/// Read the configuration, applying environment overrides.
BenchConfig config_from_env();

/// The artifact-store key the configured case table persists under.
std::string case_table_key(const BenchConfig& cfg);

/// An engine session over the configured OSP: checks the artifact
/// store first and only generates + infers on a miss, so most benches
/// never touch the raw data. The session key matches case_table_key().
AnalysisSession make_session(const BenchConfig& cfg = config_from_env());

/// The inferred case table for the configured OSP (via make_session).
CaseTable load_case_table(const BenchConfig& cfg = config_from_env());

/// Generate the raw dataset (no cache; only the benches that need raw
/// snapshots/tickets call this).
OspDataset generate_raw(const BenchConfig& cfg = config_from_env());

/// Print the standard bench banner: which paper artifact this
/// reproduces and what shape to expect.
void banner(const std::string& experiment, const std::string& description,
            const std::string& paper_expectation);

}  // namespace mpa::bench
