// Figure 8 + §6.1 text: accuracy/precision/recall of the 5-class models
// (DT, DT+AB, DT+OS, DT+AB+OS) under 5-fold cross-validation, plus the
// 2-class block (DT vs majority vs SVM).
#include <iostream>

#include "common.hpp"
#include "mpa/modeling.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 8 / §6.1", "Skew-handling model comparison (5-fold CV)",
                "2-class DT ~91.6% vs majority 64.8%; SVM <= majority; 5-class DT "
                "~81% but poor mid-class recall; OS lifts good/moderate/poor "
                "recall; AB+OS best balanced overall");
  const CaseTable table = bench::load_case_table();
  const auto cfg = bench::config_from_env();

  std::cout << "\n-- 2-class models --\n";
  {
    Rng rng(cfg.seed + 1);
    TextTable t({"model", "accuracy", "P(healthy)", "R(healthy)", "P(unhealthy)",
                 "R(unhealthy)"});
    for (ModelKind kind : {ModelKind::kMajority, ModelKind::kSvm, ModelKind::kDecisionTree,
                           ModelKind::kDtBoostOversample}) {
      const EvalResult r = evaluate_model_cv(table, 2, kind, rng);
      t.row()
          .add(std::string(to_string(kind)))
          .add(r.accuracy * 100, 1)
          .add(r.precision[0], 2)
          .add(r.recall[0], 2)
          .add(r.precision[1], 2)
          .add(r.recall[1], 2);
    }
    t.print(std::cout);
  }

  std::cout << "\n-- 5-class models (precision/recall per class) --\n";
  {
    Rng rng(cfg.seed + 2);
    const auto classes = health_class_names(5);
    std::vector<std::string> headers{"model", "accuracy"};
    for (const auto& c : classes) headers.push_back(c + " P/R");
    TextTable t(headers);
    for (ModelKind kind : {ModelKind::kDecisionTree, ModelKind::kDtBoost,
                           ModelKind::kDtOversample, ModelKind::kDtBoostOversample}) {
      const EvalResult r = evaluate_model_cv(table, 5, kind, rng);
      t.row().add(std::string(to_string(kind))).add(r.accuracy * 100, 1);
      for (int c = 0; c < 5; ++c)
        t.add(format_double(r.precision[static_cast<std::size_t>(c)], 2) + "/" +
              format_double(r.recall[static_cast<std::size_t>(c)], 2));
    }
    t.print(std::cout);
  }
  return 0;
}
