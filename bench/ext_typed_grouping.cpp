// Extension: type-aware change-event grouping (§2.2 future work).
// Compares plain delta-window grouping against typed grouping on the
// same change stream: typed grouping separates interleaved maintenance
// activities, yielding more, smaller, purer events.
#include <iostream>
#include <map>

#include "common.hpp"
#include "metrics/change_analysis.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Extension", "Plain vs type-aware event grouping (delta = 5 min)",
                "typed grouping yields more but smaller events; single-type "
                "purity rises (interleaved activities no longer merge)");
  bench::BenchConfig cfg = bench::config_from_env();
  cfg.networks = std::min(cfg.networks, 200);
  const OspDataset data = bench::generate_raw(cfg);
  const auto changes = extract_changes(data.inventory, data.snapshots);

  std::map<std::pair<std::string, int>, std::vector<const ChangeRecord*>> buckets;
  for (const auto& c : changes) buckets[{c.network_id, month_of(c.time)}].push_back(&c);

  auto summarize = [&](bool typed) {
    std::vector<double> counts, sizes, purity;
    for (const auto& [key, recs] : buckets) {
      const auto events = typed ? group_events_typed(recs, 5) : group_events(recs, 5);
      counts.push_back(static_cast<double>(events.size()));
      for (const auto& ev : events) {
        sizes.push_back(static_cast<double>(ev.changes.size()));
        std::set<std::string> types;
        for (const auto* c : ev.changes)
          for (const auto& sc : c->stanza_changes) types.insert(sc.agnostic_type);
        purity.push_back(types.size() == 1 ? 1.0 : 0.0);
      }
    }
    struct Out {
      double median_events, median_size, single_type_frac;
    };
    return Out{median(counts), median(sizes), mean(purity)};
  };

  const auto plain = summarize(false);
  const auto typed = summarize(true);
  TextTable t({"grouping", "median events/net-month", "median changes/event",
               "single-type events"});
  t.row().add("plain delta-window").add(plain.median_events, 1).add(plain.median_size, 1)
      .add(format_double(plain.single_type_frac * 100, 1) + "%");
  t.row().add("type-aware").add(typed.median_events, 1).add(typed.median_size, 1)
      .add(format_double(typed.single_type_frac * 100, 1) + "%");
  t.print(std::cout);
  return 0;
}
