// Table 7: causal analysis results for the first and second bin for the
// top-10 statistically dependent management practices.
#include <iostream>

#include "common.hpp"
#include "mpa/mpa.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 7", "Causal p-values at the 1:2 comparison, top-10 MI practices",
                "~8 of 10 practices causal (p << 0.001) including change events, "
                "devices, change types, VLANs, ACL-change fraction; intra-device "
                "complexity NOT causal (dependence via confounders only)");
  const CaseTable table = bench::load_case_table();
  const DependenceAnalysis dep(table);

  TextTable t({"treatment practice", "pairs", "+/0/-", "p-value (1:2)", "balanced",
               "causal @0.001"});
  // The paper's two designated non-causal rows plus the ranked top 10.
  auto practices = dep.top_practices(10);
  bool has_complexity = false, has_mbox = false;
  for (const auto& pm : practices) {
    if (pm.practice == Practice::kIntraDeviceComplexity) has_complexity = true;
    if (pm.practice == Practice::kFracEventsMbox) has_mbox = true;
  }
  if (!has_complexity)
    practices.push_back(PracticeMi{Practice::kIntraDeviceComplexity, 0});
  if (!has_mbox) practices.push_back(PracticeMi{Practice::kFracEventsMbox, 0});

  for (const auto& pm : practices) {
    const CausalResult res = causal_analysis(table, pm.practice);
    const ComparisonResult* low = res.low_bins();
    t.row().add(std::string(practice_name(pm.practice)));
    if (low == nullptr || low->untreated_bin != 0) {
      t.add("-").add("-").add("no 1:2 comparison").add("-").add("-");
      continue;
    }
    t.add(low->pairs)
        .add(std::to_string(low->outcome.n_pos) + "/" + std::to_string(low->outcome.n_zero) +
             "/" + std::to_string(low->outcome.n_neg))
        .add(format_sci(low->outcome.p_value))
        .add(low->balanced ? "yes" : "NO")
        .add(low->causal ? "YES" : "no");
  }
  t.print(std::cout);
  std::cout << "(practices beyond rank 10 appended: the paper's designated\n"
               " non-causal contrast rows — intra-device complexity, mbox fraction)\n";
  return 0;
}
