// Figure 12: characterization of operational practices — change volume
// vs network size, fraction of devices changed, per-type change
// fractions, automation extent, and change-event counts.
#include <iostream>
#include <map>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 12", "Operational-practice characterization",
                "(a) changes/month correlates with size (Pearson ~0.64); (b) most "
                "months touch <50% of devices; (c) interface changes dominate; "
                "(d) automation spans ~10-70%, >=50% automated in ~40% of "
                "networks; (e) events O(10) for most networks, heavy tail");
  const CaseTable table = bench::load_case_table();

  // (a) avg changes/month vs device count, per network.
  std::map<std::string, std::pair<double, double>> per_net;  // id -> (devices, sum changes)
  std::map<std::string, int> months_of;
  for (const auto& c : table.cases()) {
    per_net[c.network_id].first = c[Practice::kNumDevices];
    per_net[c.network_id].second += c[Practice::kNumConfigChanges];
    months_of[c.network_id]++;
  }
  std::vector<double> sizes, changes_pm;
  for (const auto& [id, v] : per_net) {
    sizes.push_back(v.first);
    changes_pm.push_back(v.second / months_of[id]);
  }
  std::cout << "\n(a) Pearson(avg changes/month, #devices) = "
            << format_double(pearson(changes_pm, sizes), 3) << " (paper: 0.64)\n";

  // (b) fraction of devices changed per month (network average).
  const auto frac_changed = table.column(Practice::kFracDevicesChanged);
  std::cout << "(b) frac. devices changed per month: median "
            << format_double(median(frac_changed), 2) << ", p90 "
            << format_double(percentile(frac_changed, 90), 2) << "\n";

  // (c) per-type change-event fractions.
  std::cout << "\n(c) fraction of events touching each type (network-month quantiles):\n";
  TextTable t({"type", "p25", "median", "p75", "p95"});
  for (const auto& [label, p] :
       std::vector<std::pair<std::string, Practice>>{{"interface", Practice::kFracEventsInterface},
                                                     {"pool", Practice::kFracEventsPool},
                                                     {"acl", Practice::kFracEventsAcl},
                                                     {"router", Practice::kFracEventsRouter},
                                                     {"vlan", Practice::kFracEventsVlan}}) {
    const auto col = table.column(p);
    t.row().add(label).add(percentile(col, 25), 2).add(median(col), 2).add(percentile(col, 75), 2)
        .add(percentile(col, 95), 2);
  }
  t.print(std::cout);

  // (d) automation extent.
  const auto autom = table.column(Practice::kFracChangesAutomated);
  int over_half = 0;
  for (double v : autom)
    if (v >= 0.5) ++over_half;
  std::cout << "\n(d) frac. changes automated: p10 " << format_double(percentile(autom, 10), 2)
            << ", median " << format_double(median(autom), 2) << ", p90 "
            << format_double(percentile(autom, 90), 2) << "; months with >=50% automated: "
            << format_double(over_half * 100.0 / static_cast<double>(autom.size()), 1)
            << "% (paper: ~41% of networks)\n";

  // (e) change events per month.
  const auto events = table.column(Practice::kNumChangeEvents);
  std::cout << "(e) change events/month: p10 " << format_double(percentile(events, 10), 1)
            << ", median " << format_double(median(events), 1) << ", p90 "
            << format_double(percentile(events, 90), 1)
            << " (paper: 10th vs 90th percentile network = 3 vs 34)\n";
  return 0;
}
