// Table 8: causal analysis results for the upper bins (2:3, 3:4, 4:5)
// for the top-10 statistically dependent practices — mostly imbalanced
// matchings or insignificant p-values.
#include <iostream>

#include "common.hpp"
#include "mpa/mpa.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 8", "Causal analysis for upper bins, top-10 MI practices",
                "over a third of matchings imbalanced ('Imbal.'), most others "
                "insignificant — heavy-tailed practices leave few upper-bin cases");
  const CaseTable table = bench::load_case_table();
  const DependenceAnalysis dep(table);

  TextTable t({"treatment practice", "2:3", "3:4", "4:5"});
  int imbalanced = 0, cells = 0, significant = 0;
  for (const auto& pm : dep.top_practices(10)) {
    const CausalResult res = causal_analysis(table, pm.practice);
    t.row().add(std::string(practice_name(pm.practice)));
    for (int b = 1; b <= 3; ++b) {
      const ComparisonResult* cmp = nullptr;
      for (const auto& c : res.comparisons)
        if (c.untreated_bin == b) cmp = &c;
      if (cmp == nullptr || cmp->pairs == 0) {
        t.add("no pairs");
        continue;
      }
      ++cells;
      if (!cmp->balanced) {
        ++imbalanced;
        t.add("Imbal.");
      } else {
        if (cmp->outcome.p_value < 1e-3) ++significant;
        t.add(format_sci(cmp->outcome.p_value) + (cmp->outcome.p_value < 1e-3 ? " *" : ""));
      }
    }
  }
  t.print(std::cout);
  std::cout << "imbalanced cells: " << imbalanced << "/" << cells
            << "; significant-at-0.001 cells: " << significant << "/" << cells
            << "  (* marks significance; paper: >1/3 imbalanced, few significant)\n";
  return 0;
}
