// Figure 5: relationship between number of models and number of roles —
// the canonical example of two practices that are related to network
// health *and to each other* (confounding).
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 5", "No. of models vs no. of roles (confounding)",
                "model count rises with role count; Pearson correlation clearly "
                "positive — evaluating either practice must account for the other");
  const CaseTable table = bench::load_case_table();
  const auto roles = table.column(Practice::kNumRoles);
  const auto models = table.column(Practice::kNumModels);

  std::vector<std::vector<double>> by_roles(8);
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const auto r = static_cast<std::size_t>(roles[i]);
    if (r < by_roles.size()) by_roles[r].push_back(models[i]);
  }
  TextTable t({"# roles", "cases", "p25 models", "median", "mean", "p75"});
  for (std::size_t r = 1; r < by_roles.size(); ++r) {
    if (by_roles[r].empty()) continue;
    const BoxStats s = box_stats(by_roles[r]);
    t.row().add(r).add(by_roles[r].size()).add(s.q25, 2).add(s.q50, 2).add(s.mean, 2).add(s.q75, 2);
  }
  t.print(std::cout);
  std::cout << "Pearson(roles, models) = " << format_double(pearson(roles, models), 3) << "\n";
  return 0;
}
