// Table 3: top 10 management practices related to network health
// according to average monthly mutual information.
#include <iostream>

#include "common.hpp"
#include "mpa/dependence.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 3", "Top-10 practices by avg monthly MI with health",
                "devices / change events / change types near the top; a mix of "
                "design (D) and operational (O) practices; VLANs, models, roles, "
                "devices-per-event, interface- and ACL-change fractions present; "
                "mbox-change fraction NOT in the top 10");
  const CaseTable table = bench::load_case_table();
  const DependenceAnalysis dep(table);

  Rng ci_rng(bench::config_from_env().seed + 7);
  TextTable t({"rank", "management practice", "cat", "avg monthly MI", "95% bootstrap CI"});
  int rank = 0;
  for (const auto& pm : dep.top_practices(10)) {
    const auto [lo, hi] = dep.mi_confidence_interval(pm.practice, ci_rng, 60);
    t.row()
        .add(++rank)
        .add(std::string(practice_name(pm.practice)))
        .add(std::string(category_tag(pm.practice)))
        .add(pm.avg_monthly_mi, 3)
        .add("[" + format_double(lo, 3) + ", " + format_double(hi, 3) + "]");
  }
  t.print(std::cout);

  // The paper's contrast: where does the mbox-change fraction rank?
  int mbox_rank = 0;
  for (std::size_t i = 0; i < dep.mi_ranking().size(); ++i)
    if (dep.mi_ranking()[i].practice == Practice::kFracEventsMbox)
      mbox_rank = static_cast<int>(i) + 1;
  std::cout << "'Frac. events w/ mbox change' ranks " << mbox_rank << " of "
            << dep.mi_ranking().size() << " (paper: 23 of 28)\n";
  return 0;
}
