// Ablation: why MI rather than linear measures or PCA/ANOVA (§5.1).
//
// "ANOVA assumes linear relations, which may not always hold... the
// components output by PCA are linear combinations of a subset of
// management practices... the outcome of ICA may be hard to interpret."
//
// Demonstrated on the real case table: the non-monotonic practice
// (frac. events w/ interface change) carries near-zero linear R^2 but
// high MI; and the top PCA components smear loadings across many
// practices, so they cannot name which practice matters.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "mpa/dependence.hpp"
#include "stats/decomposition.hpp"
#include "stats/info.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Ablation", "MI vs linear R^2 / ANOVA / PCA (§5.1)",
                "the non-monotonic practice scores ~0 on linear R^2 yet high on "
                "MI/ANOVA-F; PCA components mix many practices (no attribution)");
  const CaseTable table = bench::load_case_table();
  const DependenceAnalysis dep(table);
  const auto tickets = table.tickets();

  std::cout << "\n-- per-practice dependence measures (10-bin discretization) --\n";
  TextTable t({"practice", "linear R^2", "ANOVA p", "MI", "MI (Miller-Madow)"});
  for (Practice p : {Practice::kNumChangeEvents, Practice::kNumDevices,
                     Practice::kFracEventsInterface, Practice::kNumModels,
                     Practice::kFracEventsMbox}) {
    const auto col = table.column(p);
    const auto bins = dep.binner(p).bin_all(col);
    const auto health_bins = dep.health_binner().bin_all(tickets);
    const AnovaResult anova = one_way_anova(bins, tickets);
    t.row()
        .add(std::string(practice_name(p)))
        .add(linear_r2(col, tickets), 3)
        .add(format_sci(anova.p_value))
        .add(mutual_information(bins, health_bins), 3)
        .add(mutual_information_mm(bins, health_bins), 3);
  }
  t.print(std::cout);
  std::cout << "(note the non-monotonic interface-change fraction: tiny linear "
               "R^2, substantial MI)\n";

  std::cout << "\n-- PCA over the practice matrix: top-3 component loadings --\n";
  Matrix data;
  for (const auto& c : table.cases()) {
    std::vector<double> row;
    for (Practice p : analysis_practices()) row.push_back(c[p]);
    data.push_back(std::move(row));
  }
  const PcaResult pca_res = pca(data, 3);
  const auto names = analysis_practices();
  for (int k = 0; k < 3; ++k) {
    // Count how many practices carry non-trivial loading.
    std::vector<std::pair<double, std::size_t>> loadings;
    int heavy = 0;
    for (std::size_t j = 0; j < names.size(); ++j) {
      loadings.push_back({std::abs(pca_res.components[static_cast<std::size_t>(k)][j]), j});
      if (loadings.back().first > 0.15) ++heavy;
    }
    std::sort(loadings.rbegin(), loadings.rend());
    std::cout << "PC" << k + 1 << " (explains "
              << format_double(pca_res.explained[static_cast<std::size_t>(k)] * 100, 1)
              << "% of variance): " << heavy << " practices with |loading| > 0.15; top 3: ";
    for (int j = 0; j < 3; ++j)
      std::cout << practice_name(names[loadings[static_cast<std::size_t>(j)].second]) << " ("
                << format_double(loadings[static_cast<std::size_t>(j)].first, 2) << ") ";
    std::cout << "\n";
  }
  std::cout << "A component is a blend — it cannot tell an operator *which*\n"
               "practice to change, which is MPA's whole point.\n";

  std::cout << "\n-- ICA (FastICA over PCA-whitened practices): top-2 unmixing "
               "directions --\n";
  const IcaResult ica = fast_ica(data, 2);
  for (std::size_t k = 0; k < ica.components.size(); ++k) {
    std::vector<std::pair<double, std::size_t>> loadings;
    int heavy = 0;
    for (std::size_t j = 0; j < names.size(); ++j) {
      loadings.push_back({std::abs(ica.components[k][j]), j});
      if (loadings.back().first > 0.15) ++heavy;
    }
    std::sort(loadings.rbegin(), loadings.rend());
    std::cout << "IC" << k + 1 << ": " << heavy << " practices with |loading| > 0.15; top 3: ";
    for (int j = 0; j < 3; ++j)
      std::cout << practice_name(names[loadings[static_cast<std::size_t>(j)].second]) << " ("
                << format_double(loadings[static_cast<std::size_t>(j)].first, 2) << ") ";
    std::cout << "\n";
  }
  std::cout << "ICA inherits the same objection: its outputs are linear mixes,\n"
               "and with a non-linear contrast they are \"hard to interpret\" (§5.1).\n";
  return 0;
}
