// Table 6: statistical significance of outcomes for the change-events
// treatment — per comparison point: fewer/no-effect/more-tickets counts
// and the sign-test p-value.
#include <iostream>

#include "common.hpp"
#include "mpa/causal.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 6", "Sign test for 'No. of change events'",
                "1:2 extremely significant (paper 6.8e-13) with 'more tickets' "
                "dominating; upper comparison points NOT significant at 0.001 "
                "(fewer samples / no residual effect)");
  const CaseTable table = bench::load_case_table();
  const CausalResult res = causal_analysis(table, Practice::kNumChangeEvents);

  TextTable t({"comp. point", "fewer tickets", "no effect", "more tickets", "p-value",
               "significant @0.001"});
  for (const auto& cmp : res.comparisons) {
    t.row()
        .add(cmp.label())
        .add(cmp.outcome.n_neg)
        .add(cmp.outcome.n_zero)
        .add(cmp.outcome.n_pos)
        .add(format_sci(cmp.outcome.p_value))
        .add(cmp.outcome.p_value < 1e-3 ? "YES" : "no");
  }
  t.print(std::cout);
  return 0;
}
