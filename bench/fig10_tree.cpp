// Figure 10: the learned decision trees (top levels) for the 5-class
// and 2-class models. The root should be the highest-MI practice; the
// second level shows that a practice's importance depends on others.
#include <iostream>

#include "common.hpp"
#include <algorithm>

#include "mpa/mpa.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 10", "Decision tree structure (top 3 levels)",
                "root = highest-MI practice (no. of devices / change events); "
                "second-level splits differ per branch — which practice matters "
                "depends on the values of the others");
  const CaseTable table = bench::load_case_table();

  std::vector<std::string> feature_names;
  for (Practice p : all_practices()) feature_names.emplace_back(practice_name(p));

  // §6.2: the paths from root to leaves are the operator-facing
  // artifact — print the shortest rules that land in the worst class.
  auto print_rules = [&](const DecisionTree& tree, int classes) {
    const auto class_names = health_class_names(classes);
    const int worst = classes - 1;
    const auto rules = tree.paths_to(worst);
    std::cout << "shortest paths to '" << class_names[static_cast<std::size_t>(worst)]
              << "' (" << rules.size() << " total):\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(rules.size(), 5); ++i)
      std::cout << "  " << DecisionTree::format_rule(rules[i], feature_names, class_names)
                << "\n";
  };

  for (int classes : {5, 2}) {
    std::cout << "\n-- " << classes << "-class tree --\n";
    const DecisionTree tree = fit_final_tree(table, classes);
    const auto class_names = health_class_names(classes);
    std::cout << tree.describe(feature_names, class_names, 3);
    std::cout << "(nodes: " << tree.node_count() << ", leaves: " << tree.leaf_count()
              << ", depth: " << tree.depth() << ")\n";
    std::cout << "root practice: "
              << (tree.root_feature() >= 0
                      ? feature_names[static_cast<std::size_t>(tree.root_feature())]
                      : "<leaf>")
              << "\n";
    print_rules(tree, classes);
  }
  return 0;
}
