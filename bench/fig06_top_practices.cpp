// Figure 6: tickets vs the two practices with the strongest statistical
// dependence — number of devices and number of change events.
#include <iostream>

#include "common.hpp"
#include "stats/binning.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

void print_block(const mpa::CaseTable& table, mpa::Practice p) {
  using namespace mpa;
  const auto col = table.column(p);
  const auto tickets = table.tickets();
  const Binner binner = Binner::fit(col, 8);
  std::vector<std::vector<double>> by_bin(static_cast<std::size_t>(binner.num_bins()));
  for (std::size_t i = 0; i < col.size(); ++i)
    by_bin[static_cast<std::size_t>(binner.bin(col[i]))].push_back(tickets[i]);
  std::cout << "\n-- " << practice_name(p) << " --\n";
  TextTable t({"bin lower", "cases", "median tickets", "mean tickets"});
  for (int b = 0; b < binner.num_bins(); ++b) {
    const auto& v = by_bin[static_cast<std::size_t>(b)];
    if (v.empty()) continue;
    t.row()
        .add(format_double(binner.bin_lower(b), 1))
        .add(v.size())
        .add(median(v), 2)
        .add(mean(v), 2);
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace mpa;
  bench::banner("Figure 6", "Tickets vs the top-2 MI practices",
                "strong monotone increase of tickets with both no. of devices "
                "and no. of change events");
  const CaseTable table = bench::load_case_table();
  print_block(table, Practice::kNumDevices);
  print_block(table, Practice::kNumChangeEvents);
  return 0;
}
