// Ablation: validate the quasi-experimental design against a TRUE
// randomized experiment (§5.2: "Ideally, we would eliminate confounding
// factors and establish causality using a true randomized experiment.
// ... Unfortunately, conducting such experiments takes time").
//
// The simulator lets us run the experiment the paper could not: half
// the networks are randomly assigned a 2x change-event rate
// (assignment independent of everything else), giving an unconfounded
// experimental estimate; the QED then runs on a separate observational
// dataset and must agree in direction and significance.
#include <iostream>

#include "common.hpp"
#include "metrics/inference.hpp"
#include "mpa/causal.hpp"
#include "stats/descriptive.hpp"
#include "stats/signtest.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Ablation", "QED vs randomized experiment (change events)",
                "the randomized experiment shows treated networks file more "
                "tickets; the observational QED must reach the same conclusion");
  bench::BenchConfig cfg = bench::config_from_env();
  cfg.networks = std::min(cfg.networks, 400);

  // --- 1. The randomized experiment ---------------------------------------
  OspOptions exp_opts;
  exp_opts.num_networks = cfg.networks;
  exp_opts.num_months = cfg.months;
  exp_opts.seed = cfg.seed + 1000;
  exp_opts.treated_fraction = 0.5;
  exp_opts.treatment_rate_multiplier = 2.0;
  const OspDataset exp = generate_osp(exp_opts);
  const CaseTable exp_table = infer_case_table(exp.inventory, exp.snapshots, exp.tickets);

  std::vector<double> treated_tickets, control_tickets;
  for (const auto& c : exp_table.cases()) {
    // Map network id back to its assignment.
    const std::size_t idx = std::stoul(c.network_id.substr(3));  // "netN"
    (exp.experiment_treated[idx] ? treated_tickets : control_tickets).push_back(c.tickets);
  }
  const double lift = mean(treated_tickets) - mean(control_tickets);
  std::cout << "\nrandomized experiment (" << treated_tickets.size() << " treated vs "
            << control_tickets.size() << " control network-months):\n"
            << "  mean tickets treated " << format_double(mean(treated_tickets), 2)
            << " vs control " << format_double(mean(control_tickets), 2) << " (lift "
            << format_double(lift, 2) << ")\n";

  // --- 2. The observational QED -------------------------------------------
  OspOptions obs_opts;
  obs_opts.num_networks = cfg.networks;
  obs_opts.num_months = cfg.months;
  obs_opts.seed = cfg.seed + 2000;
  const OspDataset obs = generate_osp(obs_opts);
  const CaseTable obs_table = infer_case_table(obs.inventory, obs.snapshots, obs.tickets);
  const CausalResult qed = causal_analysis(obs_table, Practice::kNumChangeEvents);

  TextTable t({"comparison", "pairs", "+/0/-", "p-value", "direction"});
  for (const auto& cmp : qed.comparisons) {
    t.row().add(cmp.label()).add(cmp.pairs)
        .add(std::to_string(cmp.outcome.n_pos) + "/" + std::to_string(cmp.outcome.n_zero) + "/" +
             std::to_string(cmp.outcome.n_neg))
        .add(format_sci(cmp.outcome.p_value))
        .add(cmp.outcome.n_pos > cmp.outcome.n_neg ? "more tickets" : "fewer tickets");
  }
  std::cout << "\nobservational QED on an independent dataset:\n";
  t.print(std::cout);

  const ComparisonResult* low = qed.low_bins();
  const bool agree = lift > 0 && low != nullptr && low->outcome.n_pos > low->outcome.n_neg;
  std::cout << "\nverdict: experiment says change events " << (lift > 0 ? "hurt" : "help")
            << " health; QED low-bin direction " << (agree ? "AGREES" : "DISAGREES") << ".\n";
  return agree ? 0 : 1;
}
