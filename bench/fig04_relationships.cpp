// Figure 4: tickets vs individual management practices — a linear, a
// monotonic, and a non-monotonic relationship (plus roles).
//   (a) No. of L2 protocols   (b) No. of models
//   (c) Frac. events w/ interface change   (d) No. of roles
#include <iostream>

#include "common.hpp"
#include "stats/binning.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

void print_relationship(const mpa::CaseTable& table, mpa::Practice p, int bins) {
  using namespace mpa;
  const auto col = table.column(p);
  const auto tickets = table.tickets();
  const Binner binner = Binner::fit(col, bins);
  std::vector<std::vector<double>> by_bin(static_cast<std::size_t>(binner.num_bins()));
  for (std::size_t i = 0; i < col.size(); ++i)
    by_bin[static_cast<std::size_t>(binner.bin(col[i]))].push_back(tickets[i]);

  std::cout << "\n-- " << practice_name(p) << " --\n";
  TextTable t({"bin (lower bound)", "cases", "p25 tickets", "median", "mean", "p75"});
  for (int b = 0; b < binner.num_bins(); ++b) {
    const auto& v = by_bin[static_cast<std::size_t>(b)];
    if (v.empty()) continue;
    const BoxStats s = box_stats(v);
    t.row()
        .add(format_double(binner.bin_lower(b), 2))
        .add(v.size())
        .add(s.q25, 2)
        .add(s.q50, 2)
        .add(s.mean, 2)
        .add(s.q75, 2);
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace mpa;
  bench::banner("Figure 4", "Tickets vs management practices (bin means)",
                "L2 protocols ~linear; No. of models monotonic; frac. interface "
                "change NON-monotonic (peak mid-range); roles increasing");
  const CaseTable table = bench::load_case_table();
  print_relationship(table, Practice::kNumL2Protocols, 6);
  print_relationship(table, Practice::kNumModels, 6);
  print_relationship(table, Practice::kFracEventsInterface, 6);
  print_relationship(table, Practice::kNumRoles, 5);
  return 0;
}
