// Figure 2: results of the operator survey — per-practice opinion
// histogram over 51 operators.
#include <iostream>

#include "common.hpp"
#include "simulation/survey.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 2", "Operator survey: perceived impact of practices",
                "clear consensus only for 'No. of change events' (high); broad "
                "low-vs-high disagreement elsewhere; ACL-change impact skews low");
  Rng rng(bench::config_from_env().seed);
  const auto results = simulate_survey(51, rng);

  TextTable t({"practice", "no impact", "low", "medium", "high", "not sure", "consensus"});
  for (const auto& r : results) {
    t.row().add(r.practice);
    for (int c : r.counts) t.add(c);
    t.add(r.has_majority_consensus()
              ? std::string("MAJORITY: ") + std::string(to_string(r.consensus()))
              : std::string("mixed"));
  }
  t.print(std::cout);
  return 0;
}
