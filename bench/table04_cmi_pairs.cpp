// Table 4: top 10 pairs of statistically dependent management practices
// according to conditional mutual information given health.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "mpa/dependence.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 4", "Top-10 practice pairs by CMI given health",
                "mostly design-design pairs (hardware/firmware entropy, model/role "
                "counts, instance counts vs complexity); several top-10-MI "
                "practices appear, confirming practices confound each other");
  const CaseTable table = bench::load_case_table();
  const DependenceAnalysis dep(table);

  // Mark practices that are in the top-10 MI ranking (the paper
  // highlights them).
  const auto top_mi = dep.top_practices(10);
  auto in_top_mi = [&](Practice p) {
    return std::any_of(top_mi.begin(), top_mi.end(),
                       [&](const PracticeMi& pm) { return pm.practice == p; });
  };

  TextTable t({"rank", "practice A", "practice B", "CMI"});
  int rank = 0;
  for (const auto& pair : dep.top_pairs(10)) {
    auto annotate = [&](Practice p) {
      std::string s(practice_name(p));
      s += " (" + std::string(category_tag(p)) + ")";
      if (in_top_mi(p)) s += " *";
      return s;
    };
    t.row().add(++rank).add(annotate(pair.a)).add(annotate(pair.b)).add(pair.avg_monthly_cmi, 3);
  }
  t.print(std::cout);
  std::cout << "(* = also in the top-10 MI ranking of Table 3)\n";

  int design_pairs = 0;
  for (const auto& pair : dep.top_pairs(10))
    if (practice_category(pair.a) == PracticeCategory::kDesign &&
        practice_category(pair.b) == PracticeCategory::kDesign)
      ++design_pairs;
  std::cout << design_pairs
            << "/10 pairs are design-design (paper: design practices dominate)\n";
  return 0;
}
