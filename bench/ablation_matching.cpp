// Ablation: matching design choices (DESIGN.md §5). Compares, for the
// change-events 1:2 comparison:
//   * exact matching (the paper's rejected baseline — near-zero pairs)
//   * plain nearest-neighbour score matching, unlimited replacement
//   * + caliper
//   * + limited replacement
//   * + covariate distance within the caliper (our default)
// reporting pairs, distinct untreated, and covariate balance.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "mpa/causal.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Ablation", "Matching design choices (change events, 1:2)",
                "exact matching yields almost no pairs; each refinement trades "
                "pair count for covariate balance; the full recipe keeps "
                "|sdm| low with a usable pair count");
  const CaseTable table = bench::load_case_table();
  const ComparisonData data = comparison_data(table, Practice::kNumChangeEvents, 0);

  struct Variant {
    const char* name;
    MatchOptions opts;
  };
  std::vector<Variant> variants;
  {
    MatchOptions plain;
    plain.caliper_sd = 0;
    plain.max_reuse = 0;
    plain.covariates_within_caliper = false;
    variants.push_back({"NN score, unlimited reuse", plain});
    MatchOptions caliper = plain;
    caliper.caliper_sd = 0.25;
    variants.push_back({"+ caliper 0.25sd", caliper});
    MatchOptions limited = caliper;
    limited.max_reuse = 6;
    variants.push_back({"+ max reuse 6", limited});
    MatchOptions covariates = limited;
    covariates.covariates_within_caliper = true;
    covariates.max_candidates = 128;
    variants.push_back({"+ covariate distance (default)", covariates});
  }

  TextTable t({"variant", "pairs", "distinct untreated", "worst |sdm|", "VR pass frac"});
  t.row()
      .add("exact matching")
      .add(exact_match_count(data.treated, data.untreated))
      .add("-")
      .add("-")
      .add("-");
  {
    // Mahalanobis distance over the raw confounders (§5.2.3's other
    // rejected alternative) on a subsample for tractability.
    Matrix ts(data.treated.begin(),
              data.treated.begin() + std::min<std::size_t>(data.treated.size(), 800));
    const MatchResult m = mahalanobis_match(ts, data.untreated, 6);
    t.row()
        .add("Mahalanobis NN (800-treated sample)")
        .add(m.pairs.size())
        .add(m.untreated_matched_distinct)
        .add(m.worst_abs_std_diff(), 3)
        .add(m.variance_ratio_pass_fraction(), 2);
  }
  for (const auto& v : variants) {
    const MatchResult m = propensity_match(data.treated, data.untreated, v.opts);
    t.row()
        .add(v.name)
        .add(m.pairs.size())
        .add(m.untreated_matched_distinct)
        .add(m.worst_abs_std_diff(), 3)
        .add(m.variance_ratio_pass_fraction(), 2);
  }
  t.print(std::cout);
  return 0;
}
