// Figure 9: health class distribution for the 2-class and 5-class
// labelings — the skew that motivates oversampling and boosting.
#include <iostream>

#include "common.hpp"
#include "learn/dataset.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 9", "Health class distribution",
                "2-class: ~65% healthy / 35% unhealthy; 5-class: ~73% excellent, "
                "small middle classes (poor ~2.3%), modest very-poor tail");
  const CaseTable table = bench::load_case_table();
  const auto tickets = table.tickets();
  const double n = static_cast<double>(tickets.size());

  std::cout << "\n-- 2 classes --\n";
  {
    std::array<int, 2> counts{};
    for (double v : tickets) counts[static_cast<std::size_t>(health_class_2(v))]++;
    TextTable t({"class", "cases", "share"});
    const auto names = health_class_names(2);
    for (int c = 0; c < 2; ++c)
      t.row().add(names[static_cast<std::size_t>(c)]).add(counts[static_cast<std::size_t>(c)])
          .add(format_double(counts[static_cast<std::size_t>(c)] / n * 100, 1) + "%");
    t.print(std::cout);
  }

  std::cout << "\n-- 5 classes --\n";
  {
    std::array<int, 5> counts{};
    for (double v : tickets) counts[static_cast<std::size_t>(health_class_5(v))]++;
    TextTable t({"class", "tickets", "cases", "share"});
    const auto names = health_class_names(5);
    const char* ranges[] = {"<=2", "3-5", "6-8", "9-11", ">=12"};
    for (int c = 0; c < 5; ++c)
      t.row()
          .add(names[static_cast<std::size_t>(c)])
          .add(ranges[c])
          .add(counts[static_cast<std::size_t>(c)])
          .add(format_double(counts[static_cast<std::size_t>(c)] / n * 100, 1) + "%");
    t.print(std::cout);
  }
  return 0;
}
