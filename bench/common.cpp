#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "metrics/inference.hpp"

namespace mpa::bench {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

}  // namespace

BenchConfig config_from_env() {
  BenchConfig cfg;
  cfg.networks = env_int("MPA_BENCH_NETWORKS", cfg.networks);
  cfg.months = env_int("MPA_BENCH_MONTHS", cfg.months);
  cfg.seed = static_cast<std::uint64_t>(env_int("MPA_BENCH_SEED", static_cast<int>(cfg.seed)));
  if (const char* dir = std::getenv("MPA_BENCH_CACHE_DIR")) cfg.cache_dir = dir;
  return cfg;
}

CaseTable load_case_table(const BenchConfig& cfg) {
  const std::string path = cfg.cache_dir + "/mpa_case_table_" + std::to_string(cfg.networks) +
                           "x" + std::to_string(cfg.months) + "_s" + std::to_string(cfg.seed) +
                           ".csv";
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        CaseTable table = CaseTable::from_csv(buf.str());
        if (!table.empty()) {
          std::cerr << "[bench] loaded cached case table: " << path << " (" << table.size()
                    << " cases)\n";
          return table;
        }
      } catch (const DataError&) {
        std::cerr << "[bench] cache corrupt, regenerating: " << path << "\n";
      }
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::cerr << "[bench] generating synthetic OSP (" << cfg.networks << " networks x "
            << cfg.months << " months, seed " << cfg.seed << ")...\n";
  const OspDataset data = generate_raw(cfg);
  InferenceOptions iopts;
  iopts.num_months = cfg.months;
  CaseTable table = infer_case_table(data.inventory, data.snapshots, data.tickets, iopts);
  const auto t1 = std::chrono::steady_clock::now();
  std::cerr << "[bench] built case table in " << std::chrono::duration<double>(t1 - t0).count()
            << "s (" << table.size() << " cases)\n";
  std::ofstream out(path);
  if (out) {
    out << table.to_csv();
    std::cerr << "[bench] cached to " << path << "\n";
  }
  return table;
}

OspDataset generate_raw(const BenchConfig& cfg) {
  OspOptions opts;
  opts.num_networks = cfg.networks;
  opts.num_months = cfg.months;
  opts.seed = cfg.seed;
  return generate_osp(opts);
}

void banner(const std::string& experiment, const std::string& description,
            const std::string& paper_expectation) {
  std::cout << "\n================================================================\n"
            << experiment << " — " << description << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n";
}

}  // namespace mpa::bench
