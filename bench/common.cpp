#include "common.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mpa::bench {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

/// When MPA_BENCH_METRICS_OUT is set, every bench records obs metrics
/// and spans and dumps them as one JSON object at exit — the hook for
/// tracking a perf trajectory across BENCH_*.json runs.
void dump_observability() {
  const char* path = std::getenv("MPA_BENCH_METRICS_OUT");
  if (path == nullptr) return;
  std::ofstream f(path);
  f << "{\"metrics\":" << obs::Registry::global().to_json()
    << ",\"trace\":" << obs::Tracer::global().to_json() << "}\n";
  std::cerr << "[bench] wrote obs metrics to " << path << "\n";
}

void maybe_enable_observability() {
  static const bool once = [] {
    if (std::getenv("MPA_BENCH_METRICS_OUT") != nullptr) {
      obs::set_enabled(true);
      // atexit handlers and static destructors interleave in reverse
      // registration order, so the registry/tracer singletons must be
      // constructed (= their destructors registered) before the dump
      // handler or they would be gone by the time it runs.
      obs::Registry::global();
      obs::Tracer::global();
      std::atexit(dump_observability);
    }
    return true;
  }();
  (void)once;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  return end == v || *end != '\0' ? fallback : static_cast<std::uint64_t>(parsed);
}

}  // namespace

BenchConfig config_from_env() {
  maybe_enable_observability();
  BenchConfig cfg;
  cfg.networks = env_int("MPA_BENCH_NETWORKS", cfg.networks);
  cfg.months = env_int("MPA_BENCH_MONTHS", cfg.months);
  cfg.seed = env_u64("MPA_BENCH_SEED", cfg.seed);
  if (const char* dir = std::getenv("MPA_BENCH_CACHE_DIR")) cfg.cache_dir = dir;
  return cfg;
}

std::string case_table_key(const BenchConfig& cfg) {
  return "mpa_case_table_" + std::to_string(cfg.networks) + "x" + std::to_string(cfg.months) +
         "_s" + std::to_string(cfg.seed);
}

AnalysisSession make_session(const BenchConfig& cfg) {
  SessionOptions opts;
  opts.seed = cfg.seed;
  opts.artifact_dir = cfg.cache_dir;
  opts.artifact_key = case_table_key(cfg);
  opts.inference.num_months = cfg.months;

  // Peek at the store before generating: the whole point of the
  // persistent artifact is skipping OSP generation on warm runs.
  const ArtifactStore store(opts.artifact_dir);
  if (store.load_case_table(opts.artifact_key).has_value()) {
    std::cerr << "[bench] artifact store has " << store.path_for(opts.artifact_key) << "\n";
    return AnalysisSession(Inventory{}, SnapshotStore{}, TicketLog{}, std::move(opts));
  }

  const std::string cache_path = store.path_for(opts.artifact_key);
  const auto t0 = std::chrono::steady_clock::now();
  std::cerr << "[bench] generating synthetic OSP (" << cfg.networks << " networks x "
            << cfg.months << " months, seed " << cfg.seed << ")...\n";
  OspDataset data = generate_raw(cfg);
  AnalysisSession session(std::move(data.inventory), std::move(data.snapshots),
                          std::move(data.tickets), std::move(opts));
  const std::size_t cases = session.case_table().size();  // infer + persist
  const auto t1 = std::chrono::steady_clock::now();
  std::cerr << "[bench] built case table in " << std::chrono::duration<double>(t1 - t0).count()
            << "s (" << cases << " cases, " << session.threads() << " threads), cached to "
            << cache_path << "\n";
  return session;
}

CaseTable load_case_table(const BenchConfig& cfg) {
  AnalysisSession session = make_session(cfg);
  return session.case_table();
}

OspDataset generate_raw(const BenchConfig& cfg) {
  OspOptions opts;
  opts.num_networks = cfg.networks;
  opts.num_months = cfg.months;
  opts.seed = cfg.seed;
  return generate_osp(opts);
}

void banner(const std::string& experiment, const std::string& description,
            const std::string& paper_expectation) {
  std::cout << "\n================================================================\n"
            << experiment << " — " << description << "\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "================================================================\n";
}

}  // namespace mpa::bench
