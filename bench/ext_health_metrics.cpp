// Extension: finer-grained health outcomes (§2.2 future work). Runs the
// change-events QED against three outcomes — the paper's ticket count,
// high-impact ticket count, and mean time-to-resolution — illustrating
// both the extra signal and the paper's caveat that resolution stamps
// are noisy.
#include <iostream>

#include "common.hpp"
#include "metrics/inference.hpp"
#include "mpa/causal.hpp"
#include "telemetry/health_metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Extension", "Alternative health outcomes for the QED",
                "alternative outcomes agree on direction but are weaker: the "
                "high-impact subset is sparse (less power) and resolution "
                "times mix fix latency with ticket hygiene (the paper's "
                "reason for preferring plain counts)");
  bench::BenchConfig cfg = bench::config_from_env();
  cfg.networks = std::min(cfg.networks, 400);
  const OspDataset data = bench::generate_raw(cfg);
  const CaseTable table = infer_case_table(data.inventory, data.snapshots, data.tickets);

  // Build the alternative outcome columns aligned with the table.
  std::vector<double> high_impact, mttr;
  high_impact.reserve(table.size());
  mttr.reserve(table.size());
  for (const auto& c : table.cases()) {
    const HealthSummary hs = summarize_health(data.tickets, c.network_id, c.month);
    high_impact.push_back(hs.high_impact);
    mttr.push_back(hs.mean_minutes_to_resolve);
  }

  TextTable t({"outcome", "pairs (1:2)", "+/0/-", "p-value"});
  auto run = [&](const std::string& name, std::span<const double> outcome) {
    const CausalResult res =
        causal_analysis_outcome(table, Practice::kNumChangeEvents, outcome);
    const ComparisonResult* low = res.low_bins();
    if (low == nullptr) return;
    t.row().add(name).add(low->pairs)
        .add(std::to_string(low->outcome.n_pos) + "/" + std::to_string(low->outcome.n_zero) +
             "/" + std::to_string(low->outcome.n_neg))
        .add(format_sci(low->outcome.p_value));
  };
  run("tickets (paper's metric)", table.tickets());
  run("high-impact tickets", high_impact);
  run("mean minutes-to-resolve", mttr);
  t.print(std::cout);

  std::cout << "\nNote: every outcome leans the same direction (more change\n"
               "events -> worse), but the sparse high-impact subset loses\n"
               "significance and resolution times carry ticket-hygiene noise --\n"
               "hence the paper's choice of plain ticket counts.\n";
  return 0;
}
