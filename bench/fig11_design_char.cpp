// Figure 11: characterization of design practices across the OSP's
// networks — CDF quantiles of heterogeneity entropy, protocol counts,
// VLAN counts, referential complexity, and routing-instance counts.
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

// Per-network values: take month 0 (design practices barely move).
std::vector<double> network_column(const mpa::CaseTable& table, mpa::Practice p) {
  return table.month(0).column(p);
}

void cdf_row(mpa::TextTable& t, const std::string& label, const std::vector<double>& v) {
  t.row().add(label);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) t.add(mpa::percentile(v, p), 2);
}

}  // namespace

int main() {
  using namespace mpa;
  bench::banner("Figure 11", "Design-practice characterization (CDF quantiles)",
                "(a) median entropy < 0.3, ~10% of networks > 0.67; (b) protocol "
                "counts spread 1..8; (c) VLANs long-tailed (some >100); (d) "
                "complexity spans 1-2 orders of magnitude; (e) BGP common with a "
                "heavy instance-count tail, OSPF rarer with 1-2 instances");
  const CaseTable table = bench::load_case_table();

  TextTable t({"metric (per network)", "p10", "p25", "median", "p75", "p90", "p99"});
  cdf_row(t, "hardware entropy", network_column(table, Practice::kHardwareEntropy));
  cdf_row(t, "firmware entropy", network_column(table, Practice::kFirmwareEntropy));
  cdf_row(t, "# L2 protocols", network_column(table, Practice::kNumL2Protocols));
  cdf_row(t, "# L3 protocols", network_column(table, Practice::kNumL3Protocols));
  cdf_row(t, "# protocols (both)", network_column(table, Practice::kNumProtocols));
  cdf_row(t, "# VLANs", network_column(table, Practice::kNumVlans));
  cdf_row(t, "intra-device complexity", network_column(table, Practice::kIntraDeviceComplexity));
  cdf_row(t, "inter-device complexity", network_column(table, Practice::kInterDeviceComplexity));
  cdf_row(t, "# BGP instances", network_column(table, Practice::kNumBgpInstances));
  cdf_row(t, "# OSPF instances", network_column(table, Practice::kNumOspfInstances));
  t.print(std::cout);

  // Headline fractions from Appendix A.1.
  const auto hw = network_column(table, Practice::kHardwareEntropy);
  int hetero = 0;
  for (double v : hw)
    if (v > 0.67) ++hetero;
  std::cout << "networks with hardware entropy > 0.67: "
            << format_double(hetero * 100.0 / static_cast<double>(hw.size()), 1)
            << "% (paper: ~10%)\n";
  const auto bgp = network_column(table, Practice::kNumBgpInstances);
  int uses_bgp = 0;
  for (double v : bgp)
    if (v >= 1) ++uses_bgp;
  std::cout << "networks using BGP: "
            << format_double(uses_bgp * 100.0 / static_cast<double>(bgp.size()), 1)
            << "% (paper: 86%)\n";
  return 0;
}
