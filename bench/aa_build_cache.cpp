// Warms the shared case-table cache so the other benches start fast.
// Named to sort first in `for b in build/bench/*; do $b; done`.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace mpa;
  bench::banner("cache", "Build the shared synthetic-OSP case table",
                "(infrastructure; no paper artifact)");
  const CaseTable table = bench::load_case_table();
  std::cout << "case table ready: " << table.size() << " cases, "
            << table.network_ids().size() << " networks\n";
  return 0;
}
