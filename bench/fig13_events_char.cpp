// Figure 13: characterization of change events — devices changed per
// event and the fraction of events touching a middlebox.
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 13", "Change-event composition",
                "(a) most events touch only 1-2 devices (median network's mean "
                "event ~1-2 devices); (b) middlebox-event fraction diverse "
                "across networks");
  const CaseTable table = bench::load_case_table();

  const auto dpe = table.column(Practice::kAvgDevicesPerEvent);
  std::vector<double> dpe_active;
  for (double v : dpe)
    if (v > 0) dpe_active.push_back(v);  // months with at least one event
  TextTable a({"metric", "p10", "p25", "median", "p75", "p90"});
  a.row().add("devices changed / event");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) a.add(percentile(dpe_active, p), 2);
  const auto mbox = table.column(Practice::kFracEventsMbox);
  a.row().add("frac. events w/ mbox change");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) a.add(percentile(mbox, p), 2);
  a.print(std::cout);

  int small_events = 0;
  for (double v : dpe_active)
    if (v <= 2.0) ++small_events;
  std::cout << "network-months whose average event touches <=2 devices: "
            << format_double(small_events * 100.0 / static_cast<double>(dpe_active.size()), 1)
            << "% (paper: ~half of networks at 1-2 devices/event)\n";
  return 0;
}
