// Figure 3: impact of the change-grouping threshold delta on the number
// of change events — box stats of per-network per-month event counts
// for delta in {NA, 1, 2, 5, 10, 15, 30} minutes.
#include <iostream>
#include <map>

#include "common.hpp"
#include "metrics/change_analysis.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Figure 3", "Change-event counts vs grouping window delta",
                "event counts drop steeply from NA (no grouping) to delta=5 min, "
                "then flatten — most related changes complete within ~5 minutes");

  // Raw snapshots are required; use a moderate slice of the OSP.
  bench::BenchConfig cfg = bench::config_from_env();
  cfg.networks = std::min(cfg.networks, 200);
  const OspDataset data = bench::generate_raw(cfg);
  const auto changes = extract_changes(data.inventory, data.snapshots);

  // Partition the change stream per (network, month).
  std::map<std::pair<std::string, int>, std::vector<const ChangeRecord*>> buckets;
  for (const auto& c : changes) buckets[{c.network_id, month_of(c.time)}].push_back(&c);

  TextTable t({"delta (min)", "p25 events", "median", "p75", "lo whisker", "hi whisker"});
  for (Timestamp delta : {Timestamp{0}, Timestamp{1}, Timestamp{2}, Timestamp{5}, Timestamp{10},
                          Timestamp{15}, Timestamp{30}}) {
    std::vector<double> counts;
    counts.reserve(buckets.size());
    for (const auto& [key, recs] : buckets)
      counts.push_back(static_cast<double>(group_events(recs, delta).size()));
    if (counts.empty()) continue;
    const BoxStats b = box_stats(counts);
    t.row().add(delta == 0 ? std::string("NA") : std::to_string(delta));
    t.add(b.q25, 1).add(b.q50, 1).add(b.q75, 1).add(b.lo_whisker, 1).add(b.hi_whisker, 1);
  }
  t.print(std::cout);
  return 0;
}
