// Figure 7: visual equivalence of confounding-practice distributions
// between matched treated and matched untreated cases, for two
// confounders (no. of devices, no. of VLANs) across all four comparison
// points of the change-events treatment. We print distribution
// quantiles instead of curves.
#include <iostream>

#include "common.hpp"
#include "mpa/causal.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

namespace {

void print_confounder(const mpa::CaseTable& table, mpa::Practice confounder) {
  using namespace mpa;
  const CausalOptions opts;
  std::cout << "\n-- matched distributions of '" << practice_name(confounder)
            << "' (log1p scale) --\n";
  TextTable t({"comp. point", "side", "p10", "p25", "median", "p75", "p90"});
  for (int b = 0; b < 4; ++b) {
    const ComparisonData data = comparison_data(table, Practice::kNumChangeEvents, b, opts);
    if (data.treated.empty() || data.untreated.empty()) continue;
    std::size_t col = 0;
    for (std::size_t j = 0; j < data.confounders.size(); ++j)
      if (data.confounders[j] == confounder) col = j;
    const MatchResult m = propensity_match(data.treated, data.untreated, opts.match);
    if (m.pairs.empty()) continue;
    std::vector<double> vt, vu;
    for (const auto& pr : m.pairs) {
      vt.push_back(data.treated[pr.treated_index][col]);
      vu.push_back(data.untreated[pr.untreated_index][col]);
    }
    for (const auto& [label, v] : {std::pair{"treated", &vt}, {"untreated", &vu}}) {
      t.row().add(std::to_string(b + 1) + ":" + std::to_string(b + 2)).add(label);
      for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) t.add(percentile(*v, p), 2);
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using namespace mpa;
  bench::banner("Figure 7", "Confounder balance after matching",
                "per comparison point, the treated and untreated quantile rows "
                "should be nearly identical — matching equalized the confounders");
  const CaseTable table = bench::load_case_table();
  print_confounder(table, Practice::kNumDevices);
  print_confounder(table, Practice::kNumVlans);
  return 0;
}
