// Microbenchmarks of the library's computational kernels
// (google-benchmark): config parse/render/diff, MI, logistic fit,
// matching, tree learning — plus serial-vs-parallel timings of the
// three engine fan-out stages (inference, causal QED, CV). The
// parallel variants run on a pool sized by MPA_THREADS (default:
// hardware concurrency); arg 0 = serial, arg 1 = pooled.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>

#include "config/dialect.hpp"
#include "config/diff.hpp"
#include "config/lint.hpp"
#include "engine/session.hpp"
#include "io/columnar.hpp"
#include "io/dataset_io.hpp"
#include "learn/decision_tree.hpp"
#include "metrics/inference.hpp"
#include "mpa/causal.hpp"
#include "mpa/dependence.hpp"
#include "mpa/modeling.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "simulation/osp_generator.hpp"
#include "stats/info.hpp"
#include "stats/matching.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace mpa;

DeviceConfig make_config(int stanzas) {
  DeviceConfig c("dev");
  for (int i = 0; i < stanzas; ++i) {
    Stanza s;
    s.type = i % 3 == 0 ? "interface" : (i % 3 == 1 ? "vlan" : "ip access-list");
    s.name = "obj-" + std::to_string(i);
    s.set("ip address", "10.0." + std::to_string(i % 250) + ".1/24");
    s.set("description", "stanza " + std::to_string(i));
    c.add(s);
  }
  return c;
}

void BM_RenderIos(benchmark::State& state) {
  const DeviceConfig c = make_config(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(render(c, Dialect::kIosLike));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderIos)->Arg(16)->Arg(128);

void BM_ParseIos(benchmark::State& state) {
  const std::string text = render(make_config(static_cast<int>(state.range(0))), Dialect::kIosLike);
  for (auto _ : state) benchmark::DoNotOptimize(parse(text, Dialect::kIosLike, "dev"));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseIos)->Arg(16)->Arg(128);

void BM_Diff(benchmark::State& state) {
  const DeviceConfig a = make_config(static_cast<int>(state.range(0)));
  DeviceConfig b = a;
  b.find("interface", "obj-0")->replace("description", "changed");
  for (auto _ : state) benchmark::DoNotOptimize(diff(a, b));
}
BENCHMARK(BM_Diff)->Arg(16)->Arg(128);

// arg 1: 0 = retained std::map reference kernel, 1 = dense contingency
// kernel (the production path for binned data).
void BM_MutualInformation(benchmark::State& state) {
  Rng rng(1);
  std::vector<int> x, y;
  for (int i = 0; i < state.range(0); ++i) {
    x.push_back(static_cast<int>(rng.uniform_int(0, 9)));
    y.push_back(static_cast<int>(rng.uniform_int(0, 9)));
  }
  const bool dense = state.range(1) != 0;
  if (dense) {
    for (auto _ : state) benchmark::DoNotOptimize(mutual_information(x, y));
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(reference::mutual_information(x, y));
  }
  state.SetLabel(dense ? "dense" : "map");
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MutualInformation)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

// All-pairs CMI over binned columns — the §5.1 Table 4 inner loop.
// arg 0: columns (pairs = k*(k-1)/2), arg 1: 0 = map kernel, 1 = dense.
void BM_CmiPairs(benchmark::State& state) {
  Rng rng(4);
  const int k = static_cast<int>(state.range(0));
  const int n = 2000;
  std::vector<std::vector<int>> cols(static_cast<std::size_t>(k));
  std::vector<int> y;
  for (auto& c : cols)
    for (int i = 0; i < n; ++i) c.push_back(static_cast<int>(rng.uniform_int(0, 9)));
  for (int i = 0; i < n; ++i) y.push_back(static_cast<int>(rng.uniform_int(0, 9)));
  const bool dense = state.range(1) != 0;
  for (auto _ : state) {
    double sum = 0;
    for (int a = 0; a < k; ++a)
      for (int b = a + 1; b < k; ++b)
        sum += dense ? conditional_mutual_information(cols[static_cast<std::size_t>(a)],
                                                      cols[static_cast<std::size_t>(b)], y)
                     : reference::conditional_mutual_information(
                           cols[static_cast<std::size_t>(a)], cols[static_cast<std::size_t>(b)], y);
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel(dense ? "dense" : "map");
  state.SetItemsProcessed(state.iterations() * (k * (k - 1) / 2));
}
BENCHMARK(BM_CmiPairs)->Args({8, 0})->Args({8, 1})->Unit(benchmark::kMillisecond);

void BM_PropensityMatch(benchmark::State& state) {
  Rng rng(2);
  Matrix treated, untreated;
  for (int i = 0; i < state.range(0); ++i) {
    const double z = rng.uniform(0, 1);
    std::vector<double> row{z, z * 2 + rng.normal(0, 0.3), rng.uniform(0, 1)};
    (rng.bernoulli(0.2 + 0.6 * z) ? treated : untreated).push_back(std::move(row));
  }
  for (auto _ : state) benchmark::DoNotOptimize(propensity_match(treated, untreated));
}
BENCHMARK(BM_PropensityMatch)->Arg(500)->Arg(4000);

void BM_DecisionTreeFit(benchmark::State& state) {
  Rng rng(3);
  Dataset d;
  d.num_classes = 2;
  d.feature_bins = 5;
  for (int j = 0; j < 30; ++j) d.feature_names.push_back("f" + std::to_string(j));
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<int> x;
    for (int j = 0; j < 30; ++j) x.push_back(static_cast<int>(rng.uniform_int(0, 4)));
    d.y.push_back(x[0] >= 3 || x[5] == 0 ? 1 : 0);
    d.x.push_back(std::move(x));
    d.w.push_back(1);
  }
  for (auto _ : state) benchmark::DoNotOptimize(DecisionTree::fit(d));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(10000);

// Tree fit on a wide feature matrix: split search streams one
// contiguous FeatureMatrix column per candidate feature, so this
// scales with cache-friendly column reads rather than strided rows.
void BM_TreeFitColumnar(benchmark::State& state) {
  Rng rng(6);
  Dataset d;
  d.num_classes = 5;
  d.feature_bins = 5;
  const int features = 35;  // the full practice vector
  for (int j = 0; j < features; ++j) d.feature_names.push_back("f" + std::to_string(j));
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<int> x;
    for (int j = 0; j < features; ++j) x.push_back(static_cast<int>(rng.uniform_int(0, 4)));
    d.y.push_back((x[0] + x[7] + x[20]) % 5);
    d.x.push_back(std::move(x));
    d.w.push_back(1);
  }
  TreeOptions opts;
  opts.max_depth = 6;
  for (auto _ : state) benchmark::DoNotOptimize(DecisionTree::fit(d, opts));
  state.SetItemsProcessed(state.iterations() * state.range(0) * features);
}
BENCHMARK(BM_TreeFitColumnar)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

// --- engine fan-out stages: serial vs parallel ------------------------

ThreadPool& perf_pool() {
  static ThreadPool pool;
  return pool;
}

const OspDataset& perf_osp() {
  static const OspDataset data = [] {
    OspOptions opts;
    opts.num_networks = 60;
    opts.num_months = 6;
    opts.seed = 5;
    return generate_osp(opts);
  }();
  return data;
}

const CaseTable& perf_table() {
  static const CaseTable table = [] {
    InferenceOptions opts;
    opts.num_months = 6;
    return infer_case_table(perf_osp().inventory, perf_osp().snapshots, perf_osp().tickets,
                            opts);
  }();
  return table;
}

void set_mode_label(benchmark::State& state, bool parallel) {
  state.SetLabel(parallel ? "pool=" + std::to_string(perf_pool().size()) + " threads"
                          : "serial");
}

void BM_InferCaseTable(benchmark::State& state) {
  const OspDataset& data = perf_osp();
  const bool parallel = state.range(0) != 0;
  InferenceOptions opts;
  opts.num_months = 6;
  if (parallel) opts.pool = &perf_pool();
  for (auto _ : state)
    benchmark::DoNotOptimize(infer_case_table(data.inventory, data.snapshots, data.tickets, opts));
  set_mode_label(state, parallel);
  state.SetItemsProcessed(state.iterations() * 60);  // networks
}
BENCHMARK(BM_InferCaseTable)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Full dependence analysis (view build + MI ranking + all CMI pairs),
// serial vs pooled fan-out of the pairs.
void BM_DependenceAnalysis(benchmark::State& state) {
  const CaseTable& table = perf_table();
  const bool parallel = state.range(0) != 0;
  DependenceOptions opts;
  if (parallel) opts.pool = &perf_pool();
  for (auto _ : state) {
    DependenceAnalysis dep(table, opts);
    benchmark::DoNotOptimize(&dep);
  }
  set_mode_label(state, parallel);
  const std::size_t k = analysis_practices().size();
  state.SetItemsProcessed(state.iterations() * static_cast<long>(k * (k - 1) / 2));
}
BENCHMARK(BM_DependenceAnalysis)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CausalAnalysis(benchmark::State& state) {
  const CaseTable& table = perf_table();
  const bool parallel = state.range(0) != 0;
  CausalOptions opts;
  if (parallel) opts.pool = &perf_pool();
  for (auto _ : state)
    benchmark::DoNotOptimize(causal_analysis(table, Practice::kNumChangeEvents, opts));
  set_mode_label(state, parallel);
}
BENCHMARK(BM_CausalAnalysis)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EvaluateModelCv(benchmark::State& state) {
  const CaseTable& table = perf_table();
  const bool parallel = state.range(0) != 0;
  ModelingOptions opts;
  if (parallel) opts.pool = &perf_pool();
  for (auto _ : state) {
    Rng rng(9);  // same stream every iteration and mode
    benchmark::DoNotOptimize(
        evaluate_model_cv(table, 2, ModelKind::kDtBoostOversample, rng, opts));
  }
  set_mode_label(state, parallel);
}
BENCHMARK(BM_EvaluateModelCv)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Latest rendered snapshot text per device, grouped by network — the
// exact inputs AnalysisSession::lint() fans out over.
const std::vector<std::vector<DeviceText>>& perf_lint_networks() {
  static const std::vector<std::vector<DeviceText>> nets = [] {
    const OspDataset& data = perf_osp();
    std::vector<std::vector<DeviceText>> out;
    for (const auto& net : data.inventory.networks()) {
      std::vector<DeviceText> texts;
      for (const auto* d : data.inventory.devices_in(net.network_id)) {
        const auto& snaps = data.snapshots.for_device(d->device_id);
        if (snaps.empty()) continue;
        texts.push_back(DeviceText{d->device_id, snaps.back().text, dialect_of(d->vendor)});
      }
      out.push_back(std::move(texts));
    }
    return out;
  }();
  return nets;
}

void BM_LintNetworks(benchmark::State& state) {
  const auto& nets = perf_lint_networks();
  const bool parallel = state.range(0) != 0;
  std::size_t configs = 0;
  for (const auto& n : nets) configs += n.size();
  std::vector<std::size_t> findings(nets.size());
  for (auto _ : state) {
    if (parallel) {
      perf_pool().parallel_for(nets.size(), [&](std::size_t i) {
        findings[i] = lint_network_text(nets[i]).size();
      });
    } else {
      for (std::size_t i = 0; i < nets.size(); ++i)
        findings[i] = lint_network_text(nets[i]).size();
    }
    benchmark::DoNotOptimize(findings.data());
  }
  set_mode_label(state, parallel);
  // items/sec == configs linted per second.
  state.SetItemsProcessed(state.iterations() * static_cast<long>(configs));
}
BENCHMARK(BM_LintNetworks)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Appending one month of telemetry to a warm session. arg = months of
// history already resident before the append; the incremental paths do
// work proportional to the delta, so timings should stay ~flat as the
// base grows (compare against BM_InferCaseTable, which pays for the
// whole history every time). Session construction and artifact warm-up
// run outside the timed region; iterations are pinned because each one
// rebuilds a session from scratch (seconds of untimed setup).
void BM_IncrementalAppend(benchmark::State& state) {
  const int base_months = static_cast<int>(state.range(0));
  const SplitDataset split = [&] {
    OspOptions opts;
    opts.num_networks = 60;
    opts.num_months = base_months + 1;
    opts.seed = 5;
    OspDataset data = generate_osp(opts);
    return split_dataset(DiskDataset{std::move(data.inventory), std::move(data.snapshots),
                                     std::move(data.tickets)},
                         base_months);
  }();
  for (auto _ : state) {
    state.PauseTiming();
    SessionOptions opts;
    opts.threads = 1;
    opts.inference.num_months = base_months;
    AnalysisSession session(split.base.inventory, split.base.snapshots, split.base.tickets,
                            std::move(opts));
    session.case_table();
    session.lint();
    session.dependence();
    state.ResumeTiming();
    const AnalysisSession::AppendResult res = session.append_month(split.deltas.front());
    benchmark::DoNotOptimize(&res);
  }
  state.SetLabel(std::to_string(base_months) + " base months + 1 appended");
  state.SetItemsProcessed(state.iterations() * 60);  // networks touched by the delta
}
BENCHMARK(BM_IncrementalAppend)
    ->Arg(2)
    ->Arg(5)
    ->Arg(11)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// --- observability overhead: spans / counters on vs off ---------------
//
// The obs contract is zero-overhead-when-disabled: a disabled Span
// costs one relaxed atomic load (arg 0). Arg 1 measures the enabled
// recording cost (clock reads + per-thread buffer push). Fixed
// iteration count keeps the enabled run's span buffer bounded.

void BM_SpanOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::set_enabled(on);
  for (auto _ : state) {
    obs::Span span("bench_overhead");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(false);
  obs::Tracer::global().clear();
  state.SetLabel(on ? "spans on" : "spans off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanOverhead)->Arg(0)->Arg(1)->Iterations(200000);

void BM_CounterOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  obs::set_enabled(on);
  obs::Counter& counter = obs::Registry::global().counter("bench_overhead_total");
  for (auto _ : state) {
    if (obs::enabled()) counter.add(1);  // the engine's gating idiom
    benchmark::DoNotOptimize(&counter);
  }
  obs::set_enabled(false);
  counter.reset();
  state.SetLabel(on ? "counters on" : "counters off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterOverhead)->Arg(0)->Arg(1)->Iterations(200000);

/// Structured event log (obs/log.hpp). Disabled (BM_LogEventDisabled)
/// pins the zero-overhead contract: constructing a LogEvent while the
/// log is off is a single relaxed atomic load — no clock, no
/// allocation. Enabled measures a three-field event committed into the
/// flight-recorder ring (bounded so the fixed iteration count cannot
/// grow memory).
void BM_LogEvent(benchmark::State& state) {
  obs::set_log_min_level(obs::LogLevel::kDebug);
  obs::set_log_enabled(true);
  obs::Logger::global().set_ring_capacity(4096);
  std::uint64_t n = 0;
  for (auto _ : state) {
    obs::LogEvent(obs::LogLevel::kInfo, "bench_event")
        .str("stage", "bench")
        .u64("n", n++)
        .boolean("ok", true);
  }
  obs::set_log_enabled(false);
  obs::Logger::global().set_ring_capacity(0);
  obs::Logger::global().clear();
  state.SetLabel("log on");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogEvent)->Iterations(200000);

void BM_LogEventDisabled(benchmark::State& state) {
  obs::set_log_enabled(false);
  std::uint64_t n = 0;
  for (auto _ : state) {
    obs::LogEvent ev(obs::LogLevel::kInfo, "bench_event");
    ev.str("stage", "bench").u64("n", n++).boolean("ok", true);
    benchmark::DoNotOptimize(&ev);
  }
  state.SetLabel("log off");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogEventDisabled)->Iterations(200000);

// --- serving layer: scheduler + render throughput ----------------------
//
// One resident session, stages pre-warmed by a first replay, then a
// synthetic client replays a fixed 32-request trace per iteration —
// measuring the serving overhead (admission, tenant queues, dispatch,
// render) rather than cold analysis cost. Arg = offered inter-arrival
// gap in ms: 0 is closed-loop (max pressure); 2 and 10 are paced
// open-loop levels. The recorded report feeds BENCH_perf_kernels.json.
void BM_ServeThroughput(benchmark::State& state) {
  static serve::AnalysisServer* server = [] {
    serve::ServerOptions opts;
    opts.scheduler.workers = 2;
    opts.session.threads = 2;
    auto* s = new serve::AnalysisServer(opts);
    OspDataset data = perf_osp();
    SessionOptions sopts;
    sopts.threads = 2;
    sopts.inference.num_months = 6;
    s->sessions().open("main", AnalysisSession(std::move(data.inventory),
                                               std::move(data.snapshots),
                                               std::move(data.tickets), std::move(sopts)));
    return s;
  }();

  serve::ClientOptions copts;
  copts.request_total_cnt = 32;
  copts.seed = 17;
  copts.tenants = {"t0", "t1"};
  copts.request_interval_ms = static_cast<double>(state.range(0));
  const std::vector<serve::Request> trace = serve::synthesize_trace(copts);
  const serve::SyntheticClient client(copts);

  // Warm every memoized stage the trace touches, once.
  static bool warmed = false;
  if (!warmed) {
    warmed = true;
    server->clear_responses();
    client.replay(*server, trace);
  }

  double p99_ms = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    server->clear_responses();
    const serve::LoadReport report = client.replay(*server, trace);
    completed += report.total;
    p99_ms = report.p99_ms;
    benchmark::DoNotOptimize(&report);
  }
  state.SetItemsProcessed(static_cast<long>(completed));
  state.counters["p99_ms"] = p99_ms;
  state.SetLabel(state.range(0) == 0 ? "closed-loop"
                                     : "interval=" + std::to_string(state.range(0)) + "ms");
}
BENCHMARK(BM_ServeThroughput)->Arg(0)->Arg(2)->Arg(10)->Unit(benchmark::kMillisecond);

// Worker hot-path cost of folding one finished request into the
// windowed registry: one series-map lookup under the registry mutex,
// then relaxed-atomic bucket updates. The loop rotates across a few
// tenants so the map holds more than one series.
void BM_WindowRecordOverhead(benchmark::State& state) {
  obs::WindowRegistry window;  // default 60 x 1s buckets, real clock
  static const char* kTenants[] = {"t0", "t1", "t2", "t3"};
  std::size_t i = 0;
  for (auto _ : state) {
    window.record(kTenants[i++ % 4], "rank", "ok", 0.2, 1.5, 1.7);
    benchmark::DoNotOptimize(&window);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowRecordOverhead)->Iterations(200000);

// Latency of an out-of-band `stats` introspection request answered
// synchronously at submit: scheduler stats snapshot + windowed
// snapshot + session list + slow log, serialized to a JSON body —
// the cost a monitoring poll imposes on a live daemon.
void BM_StatsRequest(benchmark::State& state) {
  static serve::AnalysisServer* server = [] {
    serve::ServerOptions opts;
    opts.scheduler.workers = 2;
    opts.session.threads = 2;
    auto* s = new serve::AnalysisServer(opts);
    OspDataset data = perf_osp();
    SessionOptions sopts;
    sopts.threads = 2;
    sopts.inference.num_months = 6;
    s->sessions().open("main", AnalysisSession(std::move(data.inventory),
                                               std::move(data.snapshots),
                                               std::move(data.tickets), std::move(sopts)));
    // Populate the slow log and stats with a small replay, once.
    serve::ClientOptions copts;
    copts.request_total_cnt = 16;
    copts.seed = 17;
    serve::SyntheticClient(copts).replay(*s, serve::synthesize_trace(copts));
    return s;
  }();

  std::size_t bytes = 0;
  for (auto _ : state) {
    serve::Request req;
    req.kind = serve::RequestKind::kStats;
    const serve::Response resp = server->submit_and_wait(std::move(req));
    bytes = resp.body.size();
    benchmark::DoNotOptimize(&resp);
  }
  server->clear_responses();  // introspection responses accumulate otherwise
  state.SetItemsProcessed(state.iterations());
  state.counters["body_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_StatsRequest)->Iterations(2000);

// ---- dataset I/O: CSV interchange vs mpac columnar ----

namespace fs = std::filesystem;

const DiskDataset& io_bench_dataset(int networks) {
  static std::map<int, DiskDataset>* cache = new std::map<int, DiskDataset>();
  auto it = cache->find(networks);
  if (it == cache->end()) {
    OspOptions o;
    o.num_networks = networks;
    o.num_months = 4;
    o.seed = 11;
    OspDataset gen = generate_osp(o);
    it = cache
             ->emplace(networks, DiskDataset{std::move(gen.inventory), std::move(gen.snapshots),
                                             std::move(gen.tickets)})
             .first;
  }
  return it->second;
}

/// Lazily saved on-disk copy of the bench dataset, one per
/// scale+format; reused across iterations and benchmarks.
const std::string& io_bench_dir(int networks, bool mpac) {
  static std::map<std::pair<int, bool>, std::string>* dirs =
      new std::map<std::pair<int, bool>, std::string>();
  auto it = dirs->find({networks, mpac});
  if (it == dirs->end()) {
    const std::string dir =
        (fs::temp_directory_path() /
         ("mpa_perf_ds_" + std::to_string(networks) + (mpac ? "_mpac" : "_csv")))
            .string();
    fs::remove_all(dir);
    if (mpac)
      save_columnar(io_bench_dataset(networks), dir);
    else
      save_dataset(io_bench_dataset(networks), dir);
    it = dirs->emplace(std::pair<int, bool>{networks, mpac}, dir).first;
  }
  return it->second;
}

// arg0 = networks; arg1 = 0 CSV text parse, 1 mpac map+verify (the
// zero-copy columnar load: mmap + fingerprint + shard validation),
// 2 mpac materialized to DiskDataset (the compatibility path the
// engine session open uses today).
void BM_DatasetLoad(benchmark::State& state) {
  const int networks = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  const std::string& dir = io_bench_dir(networks, mode != 0);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    if (mode == 1) {
      const ColumnarDataset ds = load_columnar(dir);
      bytes = ds.total_bytes();
      benchmark::DoNotOptimize(&ds);
    } else {
      std::uint64_t read = 0;
      const DiskDataset ds = load_dataset(dir, &read);
      bytes = read;
      benchmark::DoNotOptimize(&ds);
    }
  }
  state.SetBytesProcessed(static_cast<long>(state.iterations()) * static_cast<long>(bytes));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * networks);
  state.SetLabel(mode == 0 ? "csv" : (mode == 1 ? "mpac-map" : "mpac-materialize"));
}
BENCHMARK(BM_DatasetLoad)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Unit(benchmark::kMillisecond);

// arg0 = networks; arg1 = 0 CSV, 1 mpac.
void BM_DatasetSave(benchmark::State& state) {
  const int networks = static_cast<int>(state.range(0));
  const bool mpac = state.range(1) != 0;
  const DiskDataset& data = io_bench_dataset(networks);
  const std::string dir =
      (fs::temp_directory_path() / ("mpa_perf_save_" + std::to_string(networks))).string();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    fs::remove_all(dir);
    if (mpac) {
      save_columnar(data, dir);
    } else {
      save_dataset(data, dir);
    }
    bytes = 0;
    for (const auto& entry : fs::directory_iterator(dir)) bytes += fs::file_size(entry.path());
  }
  fs::remove_all(dir);
  state.SetBytesProcessed(static_cast<long>(state.iterations()) * static_cast<long>(bytes));
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * networks);
  state.SetLabel(mpac ? "mpac" : "csv");
}
BENCHMARK(BM_DatasetSave)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Unit(benchmark::kMillisecond);

// Streaming generation straight through the shard writer (the
// bounded-memory 100k-network path; the committed BENCH json also
// records a full /usr/bin/time-measured 100k run). networks/sec is
// items_per_second.
void BM_StreamGenerate(benchmark::State& state) {
  const int networks = static_cast<int>(state.range(0));
  const std::string dir = (fs::temp_directory_path() / "mpa_perf_stream").string();
  class Sink final : public OspSink {
   public:
    explicit Sink(ColumnarWriter& w) : w_(w) {}
    void on_network(const NetworkRecord& net) override { w_.add_network(net); }
    void on_device(const DeviceRecord& dev) override { w_.add_device(dev); }
    void on_snapshot(const ConfigSnapshot& snap) override { w_.add_snapshot(snap); }
    void on_ticket(const Ticket& t) override { w_.add_ticket(t); }

   private:
    ColumnarWriter& w_;
  };
  OspOptions opts;
  opts.num_networks = networks;
  opts.num_months = 2;
  opts.seed = 11;
  for (auto _ : state) {
    fs::remove_all(dir);
    ColumnarWriter writer(dir, {});
    Sink sink(writer);
    const OspStreamTotals totals = generate_osp_stream(opts, sink);
    writer.finish();
    benchmark::DoNotOptimize(&totals);
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * networks);
}
BENCHMARK(BM_StreamGenerate)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ParallelForOverhead(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> out(n, 0);
  for (auto _ : state) {
    perf_pool().parallel_for(n, [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(16)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
