// Microbenchmarks of the library's computational kernels
// (google-benchmark): config parse/render/diff, MI, logistic fit,
// matching, and tree learning.
#include <benchmark/benchmark.h>

#include "config/dialect.hpp"
#include "config/diff.hpp"
#include "learn/decision_tree.hpp"
#include "stats/info.hpp"
#include "stats/matching.hpp"
#include "util/rng.hpp"

namespace {

using namespace mpa;

DeviceConfig make_config(int stanzas) {
  DeviceConfig c("dev");
  for (int i = 0; i < stanzas; ++i) {
    Stanza s;
    s.type = i % 3 == 0 ? "interface" : (i % 3 == 1 ? "vlan" : "ip access-list");
    s.name = "obj-" + std::to_string(i);
    s.set("ip address", "10.0." + std::to_string(i % 250) + ".1/24");
    s.set("description", "stanza " + std::to_string(i));
    c.add(s);
  }
  return c;
}

void BM_RenderIos(benchmark::State& state) {
  const DeviceConfig c = make_config(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(render(c, Dialect::kIosLike));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderIos)->Arg(16)->Arg(128);

void BM_ParseIos(benchmark::State& state) {
  const std::string text = render(make_config(static_cast<int>(state.range(0))), Dialect::kIosLike);
  for (auto _ : state) benchmark::DoNotOptimize(parse(text, Dialect::kIosLike, "dev"));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseIos)->Arg(16)->Arg(128);

void BM_Diff(benchmark::State& state) {
  const DeviceConfig a = make_config(static_cast<int>(state.range(0)));
  DeviceConfig b = a;
  b.find("interface", "obj-0")->replace("description", "changed");
  for (auto _ : state) benchmark::DoNotOptimize(diff(a, b));
}
BENCHMARK(BM_Diff)->Arg(16)->Arg(128);

void BM_MutualInformation(benchmark::State& state) {
  Rng rng(1);
  std::vector<int> x, y;
  for (int i = 0; i < state.range(0); ++i) {
    x.push_back(static_cast<int>(rng.uniform_int(0, 9)));
    y.push_back(static_cast<int>(rng.uniform_int(0, 9)));
  }
  for (auto _ : state) benchmark::DoNotOptimize(mutual_information(x, y));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MutualInformation)->Arg(1000)->Arg(10000);

void BM_PropensityMatch(benchmark::State& state) {
  Rng rng(2);
  Matrix treated, untreated;
  for (int i = 0; i < state.range(0); ++i) {
    const double z = rng.uniform(0, 1);
    std::vector<double> row{z, z * 2 + rng.normal(0, 0.3), rng.uniform(0, 1)};
    (rng.bernoulli(0.2 + 0.6 * z) ? treated : untreated).push_back(std::move(row));
  }
  for (auto _ : state) benchmark::DoNotOptimize(propensity_match(treated, untreated));
}
BENCHMARK(BM_PropensityMatch)->Arg(500)->Arg(4000);

void BM_DecisionTreeFit(benchmark::State& state) {
  Rng rng(3);
  Dataset d;
  d.num_classes = 2;
  d.feature_bins = 5;
  for (int j = 0; j < 30; ++j) d.feature_names.push_back("f" + std::to_string(j));
  for (int i = 0; i < state.range(0); ++i) {
    std::vector<int> x;
    for (int j = 0; j < 30; ++j) x.push_back(static_cast<int>(rng.uniform_int(0, 4)));
    d.y.push_back(x[0] >= 3 || x[5] == 0 ? 1 : 0);
    d.x.push_back(std::move(x));
    d.w.push_back(1);
  }
  for (auto _ : state) benchmark::DoNotOptimize(DecisionTree::fit(d));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
