// Table 2: size of the datasets (months, networks, services, devices,
// config snapshots + bytes, tickets).
#include <iostream>
#include <set>

#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 2", "Size of datasets",
                "17 months, 850+ networks, O(100) services, O(10K) devices, "
                "O(100K) snapshots (~450GB raw at the OSP; ours are compact), "
                "O(10K) tickets");
  const bench::BenchConfig cfg = bench::config_from_env();
  const OspDataset data = bench::generate_raw(cfg);

  std::set<std::string> services;
  for (const auto& net : data.inventory.networks())
    for (const auto& wl : net.workloads) services.insert(wl.name);
  // The paper counts O(100) distinct services; our workloads are
  // per-network named, so report distinct workload kinds x networks
  // hosting them as the service count proxy.
  int maintenance = 0;
  for (const auto& t : data.tickets.all())
    if (t.origin == TicketOrigin::kMaintenance) ++maintenance;

  TextTable t({"property", "value"});
  t.row().add("Months").add(cfg.months);
  t.row().add("Networks").add(data.inventory.num_networks());
  t.row().add("Workloads hosted").add(services.size());
  t.row().add("Devices").add(data.inventory.num_devices());
  t.row().add("Config snapshots").add(data.snapshots.total_snapshots());
  t.row().add("Snapshot bytes").add(std::to_string(data.snapshots.total_bytes() >> 20) + " MB");
  t.row().add("Tickets (total)").add(data.tickets.size());
  t.row().add("  of which maintenance").add(maintenance);
  t.print(std::cout);
  return 0;
}
