// Table 9: accuracy of future (online) health predictions — train on
// months t-M..t-1, predict month t, for M in {1, 3, 6, 9}.
#include <iostream>

#include "common.hpp"
#include "mpa/modeling.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;
  bench::banner("Table 9", "Online prediction accuracy vs history length M",
                "2-class ~89% and nearly flat in M; 5-class ~73->78% improving "
                "with longer history, with diminishing returns");
  const CaseTable table = bench::load_case_table();
  const auto cfg = bench::config_from_env();

  // Predict months 9..(last), so even M=9 has a full training window
  // (paper: t from Feb to Oct 2014 within 17 months of data).
  const int first_t = 9;
  const int last_t = cfg.months - 1;

  TextTable t({"M (months)", "5 classes", "2 classes"});
  for (int m : {1, 3, 6, 9}) {
    Rng rng(cfg.seed + static_cast<std::uint64_t>(m));
    const double acc5 = online_prediction_accuracy(table, 5, m, ModelKind::kDtBoostOversample,
                                                   rng, first_t, last_t);
    const double acc2 = online_prediction_accuracy(table, 2, m, ModelKind::kDtBoostOversample,
                                                   rng, first_t, last_t);
    t.row().add(m).add(acc5, 3).add(acc2, 3);
  }
  t.print(std::cout);
  return 0;
}
