// Quickstart: the shortest path through the MPA API.
//
// 1. Obtain the three data sources. A real organization loads its own
//    inventory / snapshot archive / ticket log; here we synthesize a
//    small one so the example is self-contained.
// 2. Open an AnalysisSession over them — the engine layer that owns
//    the inferred case table, the memoized analyses, and the thread
//    pool (MPA_THREADS to override its size).
// 3. Rank practices by dependence with health.
// 4. Train a 2-class health model and report cross-validated accuracy.
#include <iostream>

#include "engine/session.hpp"
#include "simulation/osp_generator.hpp"

int main() {
  using namespace mpa;

  // --- 1. Data sources ----------------------------------------------------
  OspOptions gen_opts;
  gen_opts.num_networks = 80;
  gen_opts.num_months = 12;
  gen_opts.seed = 7;
  OspDataset data = generate_osp(gen_opts);
  std::cout << "data sources: " << data.inventory.num_networks() << " networks, "
            << data.inventory.num_devices() << " devices, "
            << data.snapshots.total_snapshots() << " config snapshots, "
            << data.tickets.size() << " tickets\n";

  // --- 2. The engine session ------------------------------------------------
  SessionOptions opts;
  opts.inference.num_months = gen_opts.num_months;
  opts.seed = 1;
  AnalysisSession session(std::move(data.inventory), std::move(data.snapshots),
                          std::move(data.tickets), opts);
  const CaseTable& table = session.case_table();  // inferred once, cached
  std::cout << "case table: " << table.size() << " (network, month) cases with "
            << kNumPractices << " practice metrics each (inferred on "
            << session.threads() << " threads)\n";

  // --- 3. Which practices relate to health? --------------------------------
  std::cout << "\ntop practices by avg monthly MI with ticket count:\n";
  for (const auto& pm : session.dependence().top_practices(5)) {
    std::cout << "  " << practice_name(pm.practice) << " (" << category_tag(pm.practice)
              << "): " << pm.avg_monthly_mi << "\n";
  }

  // --- 4. Predict health ----------------------------------------------------
  const EvalResult& dt = session.evaluate_cv(2, ModelKind::kDecisionTree);
  const EvalResult& majority = session.evaluate_cv(2, ModelKind::kMajority);
  std::cout << "\n2-class decision tree (5-fold CV):\n"
            << dt.to_string(health_class_names(2))
            << "majority baseline accuracy: " << majority.accuracy * 100 << "%\n";
  return 0;
}
