// Quickstart: the shortest path through the MPA API.
//
// 1. Obtain the three data sources. A real organization loads its own
//    inventory / snapshot archive / ticket log; here we synthesize a
//    small one so the example is self-contained.
// 2. Infer the (network, month) case table.
// 3. Rank practices by dependence with health.
// 4. Train a 2-class health model and report cross-validated accuracy.
#include <iostream>

#include "mpa/mpa.hpp"
#include "simulation/osp_generator.hpp"

int main() {
  using namespace mpa;

  // --- 1. Data sources ----------------------------------------------------
  OspOptions gen_opts;
  gen_opts.num_networks = 80;
  gen_opts.num_months = 12;
  gen_opts.seed = 7;
  const OspDataset data = generate_osp(gen_opts);
  std::cout << "data sources: " << data.inventory.num_networks() << " networks, "
            << data.inventory.num_devices() << " devices, "
            << data.snapshots.total_snapshots() << " config snapshots, "
            << data.tickets.size() << " tickets\n";

  // --- 2. Practice inference ----------------------------------------------
  InferenceOptions infer_opts;
  infer_opts.num_months = gen_opts.num_months;
  const CaseTable table =
      infer_case_table(data.inventory, data.snapshots, data.tickets, infer_opts);
  std::cout << "case table: " << table.size() << " (network, month) cases with "
            << kNumPractices << " practice metrics each\n";

  // --- 3. Which practices relate to health? --------------------------------
  const DependenceAnalysis dep(table);
  std::cout << "\ntop practices by avg monthly MI with ticket count:\n";
  for (const auto& pm : dep.top_practices(5)) {
    std::cout << "  " << practice_name(pm.practice) << " (" << category_tag(pm.practice)
              << "): " << pm.avg_monthly_mi << "\n";
  }

  // --- 4. Predict health ----------------------------------------------------
  Rng rng(1);
  const EvalResult dt = evaluate_model_cv(table, 2, ModelKind::kDecisionTree, rng);
  const EvalResult majority = evaluate_model_cv(table, 2, ModelKind::kMajority, rng);
  std::cout << "\n2-class decision tree (5-fold CV):\n"
            << dt.to_string(health_class_names(2))
            << "majority baseline accuracy: " << majority.accuracy * 100 << "%\n";
  return 0;
}
