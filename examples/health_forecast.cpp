// Health forecast: the paper's online protocol (§6.2, Table 9) used the
// way an operations team would — train on the trailing M months, then
// flag the networks predicted unhealthy next month so they can be
// watched closely.
#include <algorithm>
#include <iostream>

#include "engine/session.hpp"
#include "learn/sampling.hpp"
#include "mpa/mpa.hpp"
#include "simulation/osp_generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;

  OspOptions gen_opts;
  gen_opts.num_networks = 150;
  gen_opts.num_months = 12;
  gen_opts.seed = 23;
  OspDataset data = generate_osp(gen_opts);
  SessionOptions session_opts;
  session_opts.inference.num_months = gen_opts.num_months;
  AnalysisSession session(std::move(data.inventory), std::move(data.snapshots),
                          std::move(data.tickets), session_opts);
  const CaseTable& table = session.case_table();

  const int target_month = gen_opts.num_months - 1;  // "next month"
  const int history = 6;

  // Train on months [target-history, target-1]; the feature space (bin
  // bounds) comes from the training window only.
  const CaseTable train_cases = table.filter_months(target_month - history, target_month - 1);
  const CaseTable test_cases = table.month(target_month);
  const FeatureSpace space = FeatureSpace::fit(train_cases);
  Dataset train = make_dataset(train_cases, 2, &space);
  train = oversample(train, paper_oversampling_recipe(2));
  const AdaBoostClassifier model = AdaBoostClassifier::fit(train);

  // Score every network for the target month.
  struct Flagged {
    std::string network;
    double last_tickets;
    double actual;
  };
  std::vector<Flagged> flagged;
  int correct = 0;
  for (const auto& c : test_cases.cases()) {
    const int predicted = model.predict(space.bin_case(c));
    const int actual = health_class_2(c.tickets);
    if (predicted == actual) ++correct;
    if (predicted == 1) flagged.push_back(Flagged{c.network_id, 0, c.tickets});
  }

  std::cout << "trained on months " << target_month - history << ".." << target_month - 1
            << ", predicting month " << target_month << "\n"
            << "accuracy: " << 100.0 * correct / static_cast<double>(test_cases.size())
            << "% over " << test_cases.size() << " networks\n\n"
            << flagged.size() << " networks flagged as likely unhealthy (>1 ticket):\n";
  std::sort(flagged.begin(), flagged.end(),
            [](const Flagged& a, const Flagged& b) { return a.actual > b.actual; });
  TextTable t({"network", "actual tickets in target month"});
  std::size_t shown = 0;
  for (const auto& f : flagged) {
    if (++shown > 10) break;
    t.row().add(f.network).add(f.actual, 0);
  }
  t.print(std::cout);
  if (flagged.size() > 10) std::cout << "(top 10 of " << flagged.size() << " shown)\n";
  std::cout << "\nOperators \"can closely monitor networks that are predicted to have\n"
               "more problems and be better prepared to deal with failures\" (§4).\n";
  return 0;
}
