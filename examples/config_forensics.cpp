// Config forensics: using the configuration substrate directly, the way
// an operator would point MPA at a RANCID archive.
//
// Demonstrates: parsing vendor-flavoured configs, vendor-agnostic change
// typing across dialects, reference extraction, and routing-instance
// discovery — all on hand-written config text.
#include <iostream>

#include "config/dialect.hpp"
#include "config/diff.hpp"
#include "config/refs.hpp"
#include "config/routing.hpp"
#include "config/types.hpp"

int main() {
  using namespace mpa;

  // Two snapshots of an IOS-like edge router, as archived text.
  const std::string before_text =
      "interface Eth0\n"
      "  ip address 10.0.1.1/24\n"
      "  ip access-group edge-in\n"
      "!\n"
      "ip access-list edge-in\n"
      "  permit tcp any any eq 443\n"
      "!\n"
      "router bgp 65001\n"
      "  neighbor 10.0.1.2 remote-as 65001\n"
      "  network 10.0.1.0/24\n"
      "!\n";
  const std::string after_text =
      "interface Eth0\n"
      "  ip address 10.0.1.1/24\n"
      "  ip access-group edge-in\n"
      "!\n"
      "ip access-list edge-in\n"
      "  permit tcp any any eq 443\n"
      "  permit tcp any any eq 80\n"
      "!\n"
      "router bgp 65001\n"
      "  neighbor 10.0.1.2 remote-as 65001\n"
      "  network 10.0.1.0/24\n"
      "  network 10.0.9.0/24\n"
      "!\n";

  const DeviceConfig before = parse(before_text, Dialect::kIosLike, "edge-rt0");
  const DeviceConfig after = parse(after_text, Dialect::kIosLike, "edge-rt0");

  std::cout << "-- stanza-level diff (vendor-agnostic change types) --\n";
  for (const auto& change : diff(before, after)) {
    std::cout << "  " << to_string(change.kind) << " " << change.native_type << " '"
              << change.name << "' -> type '" << change.agnostic_type << "' ("
              << change.options_touched << " option lines)\n";
  }

  // A JunOS-like peer: the same ACL concept spelled differently.
  const std::string junos_text =
      "interfaces xe-0/0/0 {\n"
      "    ip-address 10.0.1.2/24;\n"
      "    filter edge-in;\n"
      "}\n"
      "firewall-filter edge-in {\n"
      "    permit tcp any any eq 443;\n"
      "}\n"
      "protocols-bgp 65001 {\n"
      "    neighbor 10.0.1.1 remote-as 65001;\n"
      "    network 10.0.1.0/24;\n"
      "}\n";
  const DeviceConfig peer = parse(junos_text, Dialect::kJunosLike, "edge-rt1");

  std::cout << "\n-- vendor-agnostic typing --\n"
            << "  IOS 'ip access-list'     -> " << normalize_type("ip access-list") << "\n"
            << "  JunOS 'firewall-filter'  -> " << normalize_type("firewall-filter") << "\n";

  const std::vector<DeviceConfig> network{after, peer};
  std::cout << "\n-- referential complexity --\n";
  for (const auto& dev : network) {
    const RefCounts rc = count_references(dev, network);
    std::cout << "  " << dev.device_id() << ": " << rc.intra << " intra-device, " << rc.inter
              << " inter-device references\n";
  }

  std::cout << "\n-- routing instances --\n";
  for (const auto& inst : extract_routing_instances(network)) {
    std::cout << "  " << inst.protocol << " instance with " << inst.size() << " member(s):";
    for (const auto& m : inst.member_devices) std::cout << ' ' << m;
    std::cout << "\n";
  }
  return 0;
}
