// Causal study: does a management practice *cause* tickets, or merely
// correlate? Walks the full matched-design QED for one treatment
// practice with all diagnostics an analyst would want to see (§5.2).
#include <iostream>

#include "engine/session.hpp"
#include "simulation/osp_generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;

  OspOptions gen_opts;
  gen_opts.num_networks = 300;
  gen_opts.num_months = 17;
  gen_opts.seed = 11;
  std::cout << "generating a 300-network synthetic OSP (a real deployment would\n"
               "load its inventory, snapshot archive, and ticket log instead)...\n";
  OspDataset data = generate_osp(gen_opts);
  SessionOptions session_opts;
  session_opts.seed = 11;
  AnalysisSession session(std::move(data.inventory), std::move(data.snapshots),
                          std::move(data.tickets), std::move(session_opts));

  const Practice treatment = Practice::kNumChangeTypes;
  std::cout << "\ntreatment practice: " << practice_name(treatment) << "\n"
            << "confounders: every other inferred practice (" << analysis_practices().size() - 1
            << " metrics)\n";

  // The session infers the case table on first use, runs the four
  // comparison points of the QED in parallel, and memoizes the result.
  const CausalResult& res = session.causal(treatment);

  TextTable t({"comparison", "untreated", "treated", "pairs", "worst |sdm|", "balanced",
               "+/0/-", "p-value", "verdict"});
  for (const auto& cmp : res.comparisons) {
    std::string verdict = "no causal evidence";
    if (!cmp.balanced) {
      verdict = "imbalanced (unusable)";
    } else if (cmp.causal) {
      verdict = cmp.outcome.n_pos > cmp.outcome.n_neg ? "CAUSES more tickets"
                                                      : "CAUSES fewer tickets";
    }
    t.row()
        .add(cmp.label())
        .add(cmp.untreated_cases)
        .add(cmp.treated_cases)
        .add(cmp.pairs)
        .add(cmp.worst_abs_std_diff, 3)
        .add(cmp.balanced ? "yes" : "no")
        .add(std::to_string(cmp.outcome.n_pos) + "/" + std::to_string(cmp.outcome.n_zero) + "/" +
             std::to_string(cmp.outcome.n_neg))
        .add(format_sci(cmp.outcome.p_value))
        .add(verdict);
  }
  t.print(std::cout);

  std::cout << "\nReading the table: each row compares neighbouring bins of the\n"
               "treatment practice. 'pairs' are treated cases matched to untreated\n"
               "cases with near-identical propensity scores; the sign test then asks\n"
               "whether treated cases systematically file more tickets. Causality is\n"
               "only claimed when the matching balanced all confounders AND the\n"
               "p-value clears the 0.001 threshold — and even then, quasi-experiments\n"
               "mean 'highly likely', never 'guaranteed' (§5.2.4).\n";
  return 0;
}
