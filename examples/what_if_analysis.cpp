// What-if analysis: "will combining configuration changes into fewer,
// larger changes improve network health?" (§6). Takes an unhealthy
// network's current practice vector, applies candidate practice
// adjustments, and reports the model's predicted health class for each
// scenario.
#include <cmath>
#include <iostream>

#include "engine/session.hpp"
#include "learn/sampling.hpp"
#include "mpa/mpa.hpp"
#include "simulation/osp_generator.hpp"
#include "util/table.hpp"

int main() {
  using namespace mpa;

  OspOptions gen_opts;
  gen_opts.num_networks = 200;
  gen_opts.num_months = 12;
  gen_opts.seed = 31;
  OspDataset data = generate_osp(gen_opts);
  SessionOptions session_opts;
  session_opts.inference.event_window = 5;
  session_opts.inference.num_months = gen_opts.num_months;
  AnalysisSession session(std::move(data.inventory), std::move(data.snapshots),
                          std::move(data.tickets), session_opts);
  const CaseTable& table = session.case_table();

  // Organization-wide 5-class model (AB + OS, the paper's best).
  const FeatureSpace space = FeatureSpace::fit(table);
  Dataset train = make_dataset(table, 5, &space);
  train = oversample(train, paper_oversampling_recipe(5));
  const AdaBoostClassifier model = AdaBoostClassifier::fit(train);
  const auto classes = health_class_names(5);

  // Pick a "poor"-range case (~10 tickets) to experiment on — extreme
  // outliers sit so deep in the very-poor region that no plausible
  // practice change moves them.
  const Case* subject = nullptr;
  for (const auto& c : table.cases()) {
    if (c.tickets < 9 || c[Practice::kNumChangeEvents] < 10) continue;
    if (subject == nullptr ||
        std::abs(c.tickets - 10) < std::abs(subject->tickets - 10)) {
      subject = &c;
    }
  }
  if (subject == nullptr) subject = &table.cases().front();
  std::cout << "subject: " << subject->network_id << " month " << subject->month << " ("
            << subject->tickets << " tickets, "
            << (*subject)[Practice::kNumChangeEvents] << " change events, "
            << (*subject)[Practice::kNumDevices] << " devices)\n\n";

  auto predict = [&](const Case& c) {
    return classes[static_cast<std::size_t>(model.predict(space.bin_case(c)))];
  };

  TextTable t({"scenario", "predicted health"});
  t.row().add("current practices").add(predict(*subject));

  // Scenario 1: batch changes — halve the event count, double devices
  // touched per event (same total change volume).
  Case batched = *subject;
  batched[Practice::kNumChangeEvents] /= 3;
  batched[Practice::kNumChangeTypes] = std::max(1.0, batched[Practice::kNumChangeTypes] - 2);
  batched[Practice::kAvgDevicesPerEvent] *= 2;
  t.row().add("batch changes (1/3 the events, larger each)").add(predict(batched));

  // Scenario 2: freeze non-essential change types.
  Case frozen = *subject;
  frozen[Practice::kNumChangeTypes] = std::min(frozen[Practice::kNumChangeTypes], 2.0);
  frozen[Practice::kNumChangeEvents] *= 0.6;
  frozen[Practice::kNumConfigChanges] *= 0.6;
  t.row().add("change freeze (2 change types, 40% fewer events)").add(predict(frozen));

  // Scenario 3: hardware consolidation.
  Case consolidated = *subject;
  consolidated[Practice::kNumModels] = std::min(consolidated[Practice::kNumModels], 3.0);
  consolidated[Practice::kNumFirmwareVersions] =
      std::min(consolidated[Practice::kNumFirmwareVersions], 2.0);
  consolidated[Practice::kHardwareEntropy] /= 2;
  consolidated[Practice::kFirmwareEntropy] /= 2;
  t.row().add("consolidate hardware (<=3 models, <=2 firmwares)").add(predict(consolidated));

  // Scenario 4: everything at once.
  Case all = batched;
  all[Practice::kNumChangeTypes] = std::min(all[Practice::kNumChangeTypes], 2.0);
  all[Practice::kNumModels] = std::min(all[Practice::kNumModels], 3.0);
  t.row().add("all of the above").add(predict(all));

  t.print(std::cout);
  std::cout << "\nCaveat (§6.2): the model predicts from observed practice\n"
               "combinations; scenarios far outside the training distribution fall\n"
               "back to the nearest learned region. Pair what-if output with the\n"
               "causal analysis before acting.\n";
  return 0;
}
