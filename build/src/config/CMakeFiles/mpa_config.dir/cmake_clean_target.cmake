file(REMOVE_RECURSE
  "libmpa_config.a"
)
