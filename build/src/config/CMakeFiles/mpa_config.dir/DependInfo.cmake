
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/dialect.cpp" "src/config/CMakeFiles/mpa_config.dir/dialect.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/dialect.cpp.o.d"
  "/root/repo/src/config/diff.cpp" "src/config/CMakeFiles/mpa_config.dir/diff.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/diff.cpp.o.d"
  "/root/repo/src/config/lint.cpp" "src/config/CMakeFiles/mpa_config.dir/lint.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/lint.cpp.o.d"
  "/root/repo/src/config/refs.cpp" "src/config/CMakeFiles/mpa_config.dir/refs.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/refs.cpp.o.d"
  "/root/repo/src/config/routing.cpp" "src/config/CMakeFiles/mpa_config.dir/routing.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/routing.cpp.o.d"
  "/root/repo/src/config/stanza.cpp" "src/config/CMakeFiles/mpa_config.dir/stanza.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/stanza.cpp.o.d"
  "/root/repo/src/config/types.cpp" "src/config/CMakeFiles/mpa_config.dir/types.cpp.o" "gcc" "src/config/CMakeFiles/mpa_config.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
