file(REMOVE_RECURSE
  "CMakeFiles/mpa_config.dir/dialect.cpp.o"
  "CMakeFiles/mpa_config.dir/dialect.cpp.o.d"
  "CMakeFiles/mpa_config.dir/diff.cpp.o"
  "CMakeFiles/mpa_config.dir/diff.cpp.o.d"
  "CMakeFiles/mpa_config.dir/lint.cpp.o"
  "CMakeFiles/mpa_config.dir/lint.cpp.o.d"
  "CMakeFiles/mpa_config.dir/refs.cpp.o"
  "CMakeFiles/mpa_config.dir/refs.cpp.o.d"
  "CMakeFiles/mpa_config.dir/routing.cpp.o"
  "CMakeFiles/mpa_config.dir/routing.cpp.o.d"
  "CMakeFiles/mpa_config.dir/stanza.cpp.o"
  "CMakeFiles/mpa_config.dir/stanza.cpp.o.d"
  "CMakeFiles/mpa_config.dir/types.cpp.o"
  "CMakeFiles/mpa_config.dir/types.cpp.o.d"
  "libmpa_config.a"
  "libmpa_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
