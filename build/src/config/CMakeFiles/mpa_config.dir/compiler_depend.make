# Empty compiler generated dependencies file for mpa_config.
# This may be replaced when dependencies are built.
