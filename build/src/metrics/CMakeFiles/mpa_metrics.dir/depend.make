# Empty dependencies file for mpa_metrics.
# This may be replaced when dependencies are built.
