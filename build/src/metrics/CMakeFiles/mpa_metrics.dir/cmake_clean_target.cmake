file(REMOVE_RECURSE
  "libmpa_metrics.a"
)
