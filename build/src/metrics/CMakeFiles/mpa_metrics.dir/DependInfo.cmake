
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/case_table.cpp" "src/metrics/CMakeFiles/mpa_metrics.dir/case_table.cpp.o" "gcc" "src/metrics/CMakeFiles/mpa_metrics.dir/case_table.cpp.o.d"
  "/root/repo/src/metrics/change_analysis.cpp" "src/metrics/CMakeFiles/mpa_metrics.dir/change_analysis.cpp.o" "gcc" "src/metrics/CMakeFiles/mpa_metrics.dir/change_analysis.cpp.o.d"
  "/root/repo/src/metrics/design_metrics.cpp" "src/metrics/CMakeFiles/mpa_metrics.dir/design_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/mpa_metrics.dir/design_metrics.cpp.o.d"
  "/root/repo/src/metrics/inference.cpp" "src/metrics/CMakeFiles/mpa_metrics.dir/inference.cpp.o" "gcc" "src/metrics/CMakeFiles/mpa_metrics.dir/inference.cpp.o.d"
  "/root/repo/src/metrics/practices.cpp" "src/metrics/CMakeFiles/mpa_metrics.dir/practices.cpp.o" "gcc" "src/metrics/CMakeFiles/mpa_metrics.dir/practices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mpa_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mpa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
