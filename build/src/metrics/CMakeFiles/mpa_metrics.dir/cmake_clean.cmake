file(REMOVE_RECURSE
  "CMakeFiles/mpa_metrics.dir/case_table.cpp.o"
  "CMakeFiles/mpa_metrics.dir/case_table.cpp.o.d"
  "CMakeFiles/mpa_metrics.dir/change_analysis.cpp.o"
  "CMakeFiles/mpa_metrics.dir/change_analysis.cpp.o.d"
  "CMakeFiles/mpa_metrics.dir/design_metrics.cpp.o"
  "CMakeFiles/mpa_metrics.dir/design_metrics.cpp.o.d"
  "CMakeFiles/mpa_metrics.dir/inference.cpp.o"
  "CMakeFiles/mpa_metrics.dir/inference.cpp.o.d"
  "CMakeFiles/mpa_metrics.dir/practices.cpp.o"
  "CMakeFiles/mpa_metrics.dir/practices.cpp.o.d"
  "libmpa_metrics.a"
  "libmpa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
