# Empty dependencies file for mpa_telemetry.
# This may be replaced when dependencies are built.
