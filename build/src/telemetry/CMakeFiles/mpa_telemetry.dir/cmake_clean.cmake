file(REMOVE_RECURSE
  "CMakeFiles/mpa_telemetry.dir/health_metrics.cpp.o"
  "CMakeFiles/mpa_telemetry.dir/health_metrics.cpp.o.d"
  "CMakeFiles/mpa_telemetry.dir/snapshots.cpp.o"
  "CMakeFiles/mpa_telemetry.dir/snapshots.cpp.o.d"
  "CMakeFiles/mpa_telemetry.dir/tickets.cpp.o"
  "CMakeFiles/mpa_telemetry.dir/tickets.cpp.o.d"
  "libmpa_telemetry.a"
  "libmpa_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
