file(REMOVE_RECURSE
  "libmpa_telemetry.a"
)
