
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/health_metrics.cpp" "src/telemetry/CMakeFiles/mpa_telemetry.dir/health_metrics.cpp.o" "gcc" "src/telemetry/CMakeFiles/mpa_telemetry.dir/health_metrics.cpp.o.d"
  "/root/repo/src/telemetry/snapshots.cpp" "src/telemetry/CMakeFiles/mpa_telemetry.dir/snapshots.cpp.o" "gcc" "src/telemetry/CMakeFiles/mpa_telemetry.dir/snapshots.cpp.o.d"
  "/root/repo/src/telemetry/tickets.cpp" "src/telemetry/CMakeFiles/mpa_telemetry.dir/tickets.cpp.o" "gcc" "src/telemetry/CMakeFiles/mpa_telemetry.dir/tickets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
