
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/adaboost.cpp" "src/learn/CMakeFiles/mpa_learn.dir/adaboost.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/adaboost.cpp.o.d"
  "/root/repo/src/learn/baselines.cpp" "src/learn/CMakeFiles/mpa_learn.dir/baselines.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/baselines.cpp.o.d"
  "/root/repo/src/learn/dataset.cpp" "src/learn/CMakeFiles/mpa_learn.dir/dataset.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/dataset.cpp.o.d"
  "/root/repo/src/learn/decision_tree.cpp" "src/learn/CMakeFiles/mpa_learn.dir/decision_tree.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/decision_tree.cpp.o.d"
  "/root/repo/src/learn/eval.cpp" "src/learn/CMakeFiles/mpa_learn.dir/eval.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/eval.cpp.o.d"
  "/root/repo/src/learn/forest.cpp" "src/learn/CMakeFiles/mpa_learn.dir/forest.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/forest.cpp.o.d"
  "/root/repo/src/learn/sampling.cpp" "src/learn/CMakeFiles/mpa_learn.dir/sampling.cpp.o" "gcc" "src/learn/CMakeFiles/mpa_learn.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mpa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mpa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mpa_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
