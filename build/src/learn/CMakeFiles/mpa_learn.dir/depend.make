# Empty dependencies file for mpa_learn.
# This may be replaced when dependencies are built.
