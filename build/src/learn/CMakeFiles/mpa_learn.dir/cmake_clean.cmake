file(REMOVE_RECURSE
  "CMakeFiles/mpa_learn.dir/adaboost.cpp.o"
  "CMakeFiles/mpa_learn.dir/adaboost.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/baselines.cpp.o"
  "CMakeFiles/mpa_learn.dir/baselines.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/dataset.cpp.o"
  "CMakeFiles/mpa_learn.dir/dataset.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/decision_tree.cpp.o"
  "CMakeFiles/mpa_learn.dir/decision_tree.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/eval.cpp.o"
  "CMakeFiles/mpa_learn.dir/eval.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/forest.cpp.o"
  "CMakeFiles/mpa_learn.dir/forest.cpp.o.d"
  "CMakeFiles/mpa_learn.dir/sampling.cpp.o"
  "CMakeFiles/mpa_learn.dir/sampling.cpp.o.d"
  "libmpa_learn.a"
  "libmpa_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
