file(REMOVE_RECURSE
  "libmpa_learn.a"
)
