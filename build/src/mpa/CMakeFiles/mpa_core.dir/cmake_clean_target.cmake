file(REMOVE_RECURSE
  "libmpa_core.a"
)
