file(REMOVE_RECURSE
  "CMakeFiles/mpa_core.dir/causal.cpp.o"
  "CMakeFiles/mpa_core.dir/causal.cpp.o.d"
  "CMakeFiles/mpa_core.dir/dependence.cpp.o"
  "CMakeFiles/mpa_core.dir/dependence.cpp.o.d"
  "CMakeFiles/mpa_core.dir/modeling.cpp.o"
  "CMakeFiles/mpa_core.dir/modeling.cpp.o.d"
  "libmpa_core.a"
  "libmpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
