# Empty dependencies file for mpa_core.
# This may be replaced when dependencies are built.
