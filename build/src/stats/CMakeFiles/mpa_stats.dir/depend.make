# Empty dependencies file for mpa_stats.
# This may be replaced when dependencies are built.
