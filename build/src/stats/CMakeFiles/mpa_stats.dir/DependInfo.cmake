
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/binning.cpp" "src/stats/CMakeFiles/mpa_stats.dir/binning.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/binning.cpp.o.d"
  "/root/repo/src/stats/decomposition.cpp" "src/stats/CMakeFiles/mpa_stats.dir/decomposition.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/decomposition.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/mpa_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/info.cpp" "src/stats/CMakeFiles/mpa_stats.dir/info.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/info.cpp.o.d"
  "/root/repo/src/stats/logistic.cpp" "src/stats/CMakeFiles/mpa_stats.dir/logistic.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/logistic.cpp.o.d"
  "/root/repo/src/stats/matching.cpp" "src/stats/CMakeFiles/mpa_stats.dir/matching.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/matching.cpp.o.d"
  "/root/repo/src/stats/signtest.cpp" "src/stats/CMakeFiles/mpa_stats.dir/signtest.cpp.o" "gcc" "src/stats/CMakeFiles/mpa_stats.dir/signtest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
