file(REMOVE_RECURSE
  "CMakeFiles/mpa_stats.dir/binning.cpp.o"
  "CMakeFiles/mpa_stats.dir/binning.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/decomposition.cpp.o"
  "CMakeFiles/mpa_stats.dir/decomposition.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/descriptive.cpp.o"
  "CMakeFiles/mpa_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/info.cpp.o"
  "CMakeFiles/mpa_stats.dir/info.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/logistic.cpp.o"
  "CMakeFiles/mpa_stats.dir/logistic.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/matching.cpp.o"
  "CMakeFiles/mpa_stats.dir/matching.cpp.o.d"
  "CMakeFiles/mpa_stats.dir/signtest.cpp.o"
  "CMakeFiles/mpa_stats.dir/signtest.cpp.o.d"
  "libmpa_stats.a"
  "libmpa_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
