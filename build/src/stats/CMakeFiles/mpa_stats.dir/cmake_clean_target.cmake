file(REMOVE_RECURSE
  "libmpa_stats.a"
)
