# Empty compiler generated dependencies file for mpa_io.
# This may be replaced when dependencies are built.
