file(REMOVE_RECURSE
  "libmpa_io.a"
)
