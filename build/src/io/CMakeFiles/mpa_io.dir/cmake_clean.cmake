file(REMOVE_RECURSE
  "CMakeFiles/mpa_io.dir/dataset_io.cpp.o"
  "CMakeFiles/mpa_io.dir/dataset_io.cpp.o.d"
  "libmpa_io.a"
  "libmpa_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
