file(REMOVE_RECURSE
  "libmpa_util.a"
)
