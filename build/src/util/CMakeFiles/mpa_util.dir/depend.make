# Empty dependencies file for mpa_util.
# This may be replaced when dependencies are built.
