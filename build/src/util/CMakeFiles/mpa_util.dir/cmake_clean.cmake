file(REMOVE_RECURSE
  "CMakeFiles/mpa_util.dir/rng.cpp.o"
  "CMakeFiles/mpa_util.dir/rng.cpp.o.d"
  "CMakeFiles/mpa_util.dir/strings.cpp.o"
  "CMakeFiles/mpa_util.dir/strings.cpp.o.d"
  "CMakeFiles/mpa_util.dir/table.cpp.o"
  "CMakeFiles/mpa_util.dir/table.cpp.o.d"
  "libmpa_util.a"
  "libmpa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
