# Empty dependencies file for mpa_model.
# This may be replaced when dependencies are built.
