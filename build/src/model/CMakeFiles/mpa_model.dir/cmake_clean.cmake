file(REMOVE_RECURSE
  "CMakeFiles/mpa_model.dir/inventory.cpp.o"
  "CMakeFiles/mpa_model.dir/inventory.cpp.o.d"
  "libmpa_model.a"
  "libmpa_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
