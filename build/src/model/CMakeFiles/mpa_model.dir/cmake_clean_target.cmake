file(REMOVE_RECURSE
  "libmpa_model.a"
)
