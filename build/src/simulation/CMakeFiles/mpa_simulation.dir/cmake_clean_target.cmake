file(REMOVE_RECURSE
  "libmpa_simulation.a"
)
