file(REMOVE_RECURSE
  "CMakeFiles/mpa_simulation.dir/change_process.cpp.o"
  "CMakeFiles/mpa_simulation.dir/change_process.cpp.o.d"
  "CMakeFiles/mpa_simulation.dir/config_gen.cpp.o"
  "CMakeFiles/mpa_simulation.dir/config_gen.cpp.o.d"
  "CMakeFiles/mpa_simulation.dir/health_model.cpp.o"
  "CMakeFiles/mpa_simulation.dir/health_model.cpp.o.d"
  "CMakeFiles/mpa_simulation.dir/network_design.cpp.o"
  "CMakeFiles/mpa_simulation.dir/network_design.cpp.o.d"
  "CMakeFiles/mpa_simulation.dir/osp_generator.cpp.o"
  "CMakeFiles/mpa_simulation.dir/osp_generator.cpp.o.d"
  "CMakeFiles/mpa_simulation.dir/survey.cpp.o"
  "CMakeFiles/mpa_simulation.dir/survey.cpp.o.d"
  "libmpa_simulation.a"
  "libmpa_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
