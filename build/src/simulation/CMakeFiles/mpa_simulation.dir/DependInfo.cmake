
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulation/change_process.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/change_process.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/change_process.cpp.o.d"
  "/root/repo/src/simulation/config_gen.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/config_gen.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/config_gen.cpp.o.d"
  "/root/repo/src/simulation/health_model.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/health_model.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/health_model.cpp.o.d"
  "/root/repo/src/simulation/network_design.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/network_design.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/network_design.cpp.o.d"
  "/root/repo/src/simulation/osp_generator.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/osp_generator.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/osp_generator.cpp.o.d"
  "/root/repo/src/simulation/survey.cpp" "src/simulation/CMakeFiles/mpa_simulation.dir/survey.cpp.o" "gcc" "src/simulation/CMakeFiles/mpa_simulation.dir/survey.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mpa_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mpa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mpa_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
