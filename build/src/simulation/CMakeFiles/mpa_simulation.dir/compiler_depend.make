# Empty compiler generated dependencies file for mpa_simulation.
# This may be replaced when dependencies are built.
