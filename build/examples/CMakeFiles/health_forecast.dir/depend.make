# Empty dependencies file for health_forecast.
# This may be replaced when dependencies are built.
