file(REMOVE_RECURSE
  "CMakeFiles/health_forecast.dir/health_forecast.cpp.o"
  "CMakeFiles/health_forecast.dir/health_forecast.cpp.o.d"
  "health_forecast"
  "health_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
