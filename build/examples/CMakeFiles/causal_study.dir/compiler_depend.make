# Empty compiler generated dependencies file for causal_study.
# This may be replaced when dependencies are built.
