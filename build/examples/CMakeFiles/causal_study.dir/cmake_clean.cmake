file(REMOVE_RECURSE
  "CMakeFiles/causal_study.dir/causal_study.cpp.o"
  "CMakeFiles/causal_study.dir/causal_study.cpp.o.d"
  "causal_study"
  "causal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
