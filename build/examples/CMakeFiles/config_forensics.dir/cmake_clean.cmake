file(REMOVE_RECURSE
  "CMakeFiles/config_forensics.dir/config_forensics.cpp.o"
  "CMakeFiles/config_forensics.dir/config_forensics.cpp.o.d"
  "config_forensics"
  "config_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
