# Empty dependencies file for config_forensics.
# This may be replaced when dependencies are built.
