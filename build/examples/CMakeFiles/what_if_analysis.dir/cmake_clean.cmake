file(REMOVE_RECURSE
  "CMakeFiles/what_if_analysis.dir/what_if_analysis.cpp.o"
  "CMakeFiles/what_if_analysis.dir/what_if_analysis.cpp.o.d"
  "what_if_analysis"
  "what_if_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
