# Empty compiler generated dependencies file for what_if_analysis.
# This may be replaced when dependencies are built.
