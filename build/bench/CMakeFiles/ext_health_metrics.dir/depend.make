# Empty dependencies file for ext_health_metrics.
# This may be replaced when dependencies are built.
