file(REMOVE_RECURSE
  "CMakeFiles/ext_health_metrics.dir/ext_health_metrics.cpp.o"
  "CMakeFiles/ext_health_metrics.dir/ext_health_metrics.cpp.o.d"
  "ext_health_metrics"
  "ext_health_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_health_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
