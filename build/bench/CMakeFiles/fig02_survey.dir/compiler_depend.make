# Empty compiler generated dependencies file for fig02_survey.
# This may be replaced when dependencies are built.
