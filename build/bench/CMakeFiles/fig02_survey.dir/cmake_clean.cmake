file(REMOVE_RECURSE
  "CMakeFiles/fig02_survey.dir/fig02_survey.cpp.o"
  "CMakeFiles/fig02_survey.dir/fig02_survey.cpp.o.d"
  "fig02_survey"
  "fig02_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
