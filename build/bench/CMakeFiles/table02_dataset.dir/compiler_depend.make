# Empty compiler generated dependencies file for table02_dataset.
# This may be replaced when dependencies are built.
