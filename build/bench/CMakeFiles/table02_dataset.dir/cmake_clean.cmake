file(REMOVE_RECURSE
  "CMakeFiles/table02_dataset.dir/table02_dataset.cpp.o"
  "CMakeFiles/table02_dataset.dir/table02_dataset.cpp.o.d"
  "table02_dataset"
  "table02_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
