file(REMOVE_RECURSE
  "CMakeFiles/table03_mi_top10.dir/table03_mi_top10.cpp.o"
  "CMakeFiles/table03_mi_top10.dir/table03_mi_top10.cpp.o.d"
  "table03_mi_top10"
  "table03_mi_top10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_mi_top10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
