# Empty dependencies file for table03_mi_top10.
# This may be replaced when dependencies are built.
