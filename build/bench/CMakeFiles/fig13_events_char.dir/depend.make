# Empty dependencies file for fig13_events_char.
# This may be replaced when dependencies are built.
