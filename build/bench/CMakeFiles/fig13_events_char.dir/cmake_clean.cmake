file(REMOVE_RECURSE
  "CMakeFiles/fig13_events_char.dir/fig13_events_char.cpp.o"
  "CMakeFiles/fig13_events_char.dir/fig13_events_char.cpp.o.d"
  "fig13_events_char"
  "fig13_events_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_events_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
