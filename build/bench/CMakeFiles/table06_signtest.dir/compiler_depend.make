# Empty compiler generated dependencies file for table06_signtest.
# This may be replaced when dependencies are built.
