file(REMOVE_RECURSE
  "CMakeFiles/table06_signtest.dir/table06_signtest.cpp.o"
  "CMakeFiles/table06_signtest.dir/table06_signtest.cpp.o.d"
  "table06_signtest"
  "table06_signtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_signtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
