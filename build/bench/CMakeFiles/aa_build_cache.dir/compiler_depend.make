# Empty compiler generated dependencies file for aa_build_cache.
# This may be replaced when dependencies are built.
