file(REMOVE_RECURSE
  "CMakeFiles/aa_build_cache.dir/aa_build_cache.cpp.o"
  "CMakeFiles/aa_build_cache.dir/aa_build_cache.cpp.o.d"
  "aa_build_cache"
  "aa_build_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_build_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
