
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_learning.cpp" "bench/CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o" "gcc" "bench/CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/mpa_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpa/CMakeFiles/mpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulation/CMakeFiles/mpa_simulation.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/mpa_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mpa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mpa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mpa_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
