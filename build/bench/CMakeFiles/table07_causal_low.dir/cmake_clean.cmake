file(REMOVE_RECURSE
  "CMakeFiles/table07_causal_low.dir/table07_causal_low.cpp.o"
  "CMakeFiles/table07_causal_low.dir/table07_causal_low.cpp.o.d"
  "table07_causal_low"
  "table07_causal_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_causal_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
