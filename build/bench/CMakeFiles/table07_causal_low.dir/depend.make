# Empty dependencies file for table07_causal_low.
# This may be replaced when dependencies are built.
