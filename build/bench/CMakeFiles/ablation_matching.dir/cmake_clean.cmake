file(REMOVE_RECURSE
  "CMakeFiles/ablation_matching.dir/ablation_matching.cpp.o"
  "CMakeFiles/ablation_matching.dir/ablation_matching.cpp.o.d"
  "ablation_matching"
  "ablation_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
