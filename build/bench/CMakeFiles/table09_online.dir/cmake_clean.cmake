file(REMOVE_RECURSE
  "CMakeFiles/table09_online.dir/table09_online.cpp.o"
  "CMakeFiles/table09_online.dir/table09_online.cpp.o.d"
  "table09_online"
  "table09_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
