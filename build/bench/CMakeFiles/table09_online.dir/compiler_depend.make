# Empty compiler generated dependencies file for table09_online.
# This may be replaced when dependencies are built.
