file(REMOVE_RECURSE
  "CMakeFiles/table05_matching.dir/table05_matching.cpp.o"
  "CMakeFiles/table05_matching.dir/table05_matching.cpp.o.d"
  "table05_matching"
  "table05_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
