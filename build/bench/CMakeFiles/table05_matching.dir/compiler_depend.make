# Empty compiler generated dependencies file for table05_matching.
# This may be replaced when dependencies are built.
