# Empty dependencies file for ablation_dependence.
# This may be replaced when dependencies are built.
