file(REMOVE_RECURSE
  "CMakeFiles/ablation_dependence.dir/ablation_dependence.cpp.o"
  "CMakeFiles/ablation_dependence.dir/ablation_dependence.cpp.o.d"
  "ablation_dependence"
  "ablation_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
