# Empty dependencies file for fig10_tree.
# This may be replaced when dependencies are built.
