file(REMOVE_RECURSE
  "CMakeFiles/fig10_tree.dir/fig10_tree.cpp.o"
  "CMakeFiles/fig10_tree.dir/fig10_tree.cpp.o.d"
  "fig10_tree"
  "fig10_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
