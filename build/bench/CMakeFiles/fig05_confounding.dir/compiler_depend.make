# Empty compiler generated dependencies file for fig05_confounding.
# This may be replaced when dependencies are built.
