file(REMOVE_RECURSE
  "CMakeFiles/fig05_confounding.dir/fig05_confounding.cpp.o"
  "CMakeFiles/fig05_confounding.dir/fig05_confounding.cpp.o.d"
  "fig05_confounding"
  "fig05_confounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_confounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
