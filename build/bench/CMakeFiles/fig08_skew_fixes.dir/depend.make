# Empty dependencies file for fig08_skew_fixes.
# This may be replaced when dependencies are built.
