file(REMOVE_RECURSE
  "CMakeFiles/fig08_skew_fixes.dir/fig08_skew_fixes.cpp.o"
  "CMakeFiles/fig08_skew_fixes.dir/fig08_skew_fixes.cpp.o.d"
  "fig08_skew_fixes"
  "fig08_skew_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_skew_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
