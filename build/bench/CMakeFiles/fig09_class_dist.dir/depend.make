# Empty dependencies file for fig09_class_dist.
# This may be replaced when dependencies are built.
