file(REMOVE_RECURSE
  "CMakeFiles/fig09_class_dist.dir/fig09_class_dist.cpp.o"
  "CMakeFiles/fig09_class_dist.dir/fig09_class_dist.cpp.o.d"
  "fig09_class_dist"
  "fig09_class_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_class_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
