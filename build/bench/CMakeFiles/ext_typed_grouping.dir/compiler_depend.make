# Empty compiler generated dependencies file for ext_typed_grouping.
# This may be replaced when dependencies are built.
