file(REMOVE_RECURSE
  "CMakeFiles/ext_typed_grouping.dir/ext_typed_grouping.cpp.o"
  "CMakeFiles/ext_typed_grouping.dir/ext_typed_grouping.cpp.o.d"
  "ext_typed_grouping"
  "ext_typed_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_typed_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
