file(REMOVE_RECURSE
  "CMakeFiles/fig03_delta_sweep.dir/fig03_delta_sweep.cpp.o"
  "CMakeFiles/fig03_delta_sweep.dir/fig03_delta_sweep.cpp.o.d"
  "fig03_delta_sweep"
  "fig03_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
