# Empty dependencies file for fig03_delta_sweep.
# This may be replaced when dependencies are built.
