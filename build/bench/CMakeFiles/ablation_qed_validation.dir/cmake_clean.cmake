file(REMOVE_RECURSE
  "CMakeFiles/ablation_qed_validation.dir/ablation_qed_validation.cpp.o"
  "CMakeFiles/ablation_qed_validation.dir/ablation_qed_validation.cpp.o.d"
  "ablation_qed_validation"
  "ablation_qed_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qed_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
