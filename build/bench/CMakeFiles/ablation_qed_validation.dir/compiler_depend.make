# Empty compiler generated dependencies file for ablation_qed_validation.
# This may be replaced when dependencies are built.
