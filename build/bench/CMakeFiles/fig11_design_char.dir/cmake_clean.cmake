file(REMOVE_RECURSE
  "CMakeFiles/fig11_design_char.dir/fig11_design_char.cpp.o"
  "CMakeFiles/fig11_design_char.dir/fig11_design_char.cpp.o.d"
  "fig11_design_char"
  "fig11_design_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_design_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
