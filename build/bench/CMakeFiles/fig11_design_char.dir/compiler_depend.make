# Empty compiler generated dependencies file for fig11_design_char.
# This may be replaced when dependencies are built.
