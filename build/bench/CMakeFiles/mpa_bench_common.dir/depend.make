# Empty dependencies file for mpa_bench_common.
# This may be replaced when dependencies are built.
