file(REMOVE_RECURSE
  "libmpa_bench_common.a"
)
