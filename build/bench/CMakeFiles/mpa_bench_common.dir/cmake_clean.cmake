file(REMOVE_RECURSE
  "CMakeFiles/mpa_bench_common.dir/common.cpp.o"
  "CMakeFiles/mpa_bench_common.dir/common.cpp.o.d"
  "libmpa_bench_common.a"
  "libmpa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
