file(REMOVE_RECURSE
  "CMakeFiles/table08_causal_upper.dir/table08_causal_upper.cpp.o"
  "CMakeFiles/table08_causal_upper.dir/table08_causal_upper.cpp.o.d"
  "table08_causal_upper"
  "table08_causal_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_causal_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
