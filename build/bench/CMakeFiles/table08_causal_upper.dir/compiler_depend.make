# Empty compiler generated dependencies file for table08_causal_upper.
# This may be replaced when dependencies are built.
