# Empty compiler generated dependencies file for fig07_balance.
# This may be replaced when dependencies are built.
