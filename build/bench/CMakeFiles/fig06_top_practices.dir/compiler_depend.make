# Empty compiler generated dependencies file for fig06_top_practices.
# This may be replaced when dependencies are built.
