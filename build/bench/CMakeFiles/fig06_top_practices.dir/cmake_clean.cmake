file(REMOVE_RECURSE
  "CMakeFiles/fig06_top_practices.dir/fig06_top_practices.cpp.o"
  "CMakeFiles/fig06_top_practices.dir/fig06_top_practices.cpp.o.d"
  "fig06_top_practices"
  "fig06_top_practices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_top_practices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
