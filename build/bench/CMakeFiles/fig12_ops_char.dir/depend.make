# Empty dependencies file for fig12_ops_char.
# This may be replaced when dependencies are built.
