file(REMOVE_RECURSE
  "CMakeFiles/fig12_ops_char.dir/fig12_ops_char.cpp.o"
  "CMakeFiles/fig12_ops_char.dir/fig12_ops_char.cpp.o.d"
  "fig12_ops_char"
  "fig12_ops_char.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ops_char.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
