# Empty dependencies file for fig04_relationships.
# This may be replaced when dependencies are built.
