file(REMOVE_RECURSE
  "CMakeFiles/fig04_relationships.dir/fig04_relationships.cpp.o"
  "CMakeFiles/fig04_relationships.dir/fig04_relationships.cpp.o.d"
  "fig04_relationships"
  "fig04_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
