# Empty dependencies file for table04_cmi_pairs.
# This may be replaced when dependencies are built.
