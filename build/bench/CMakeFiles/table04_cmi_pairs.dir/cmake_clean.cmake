file(REMOVE_RECURSE
  "CMakeFiles/table04_cmi_pairs.dir/table04_cmi_pairs.cpp.o"
  "CMakeFiles/table04_cmi_pairs.dir/table04_cmi_pairs.cpp.o.d"
  "table04_cmi_pairs"
  "table04_cmi_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_cmi_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
