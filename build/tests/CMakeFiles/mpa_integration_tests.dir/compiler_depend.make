# Empty compiler generated dependencies file for mpa_integration_tests.
# This may be replaced when dependencies are built.
