file(REMOVE_RECURSE
  "CMakeFiles/mpa_integration_tests.dir/test_pipeline_integration.cpp.o"
  "CMakeFiles/mpa_integration_tests.dir/test_pipeline_integration.cpp.o.d"
  "mpa_integration_tests"
  "mpa_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
