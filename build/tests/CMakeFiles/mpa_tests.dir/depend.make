# Empty dependencies file for mpa_tests.
# This may be replaced when dependencies are built.
