
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaboost.cpp" "tests/CMakeFiles/mpa_tests.dir/test_adaboost.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_adaboost.cpp.o.d"
  "/root/repo/tests/test_addr.cpp" "tests/CMakeFiles/mpa_tests.dir/test_addr.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_addr.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/mpa_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_binning.cpp" "tests/CMakeFiles/mpa_tests.dir/test_binning.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_binning.cpp.o.d"
  "/root/repo/tests/test_causal.cpp" "tests/CMakeFiles/mpa_tests.dir/test_causal.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_causal.cpp.o.d"
  "/root/repo/tests/test_change_analysis.cpp" "tests/CMakeFiles/mpa_tests.dir/test_change_analysis.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_change_analysis.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/mpa_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_dataset_io.cpp" "tests/CMakeFiles/mpa_tests.dir/test_dataset_io.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_dataset_io.cpp.o.d"
  "/root/repo/tests/test_decision_tree.cpp" "tests/CMakeFiles/mpa_tests.dir/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_decision_tree.cpp.o.d"
  "/root/repo/tests/test_decomposition.cpp" "tests/CMakeFiles/mpa_tests.dir/test_decomposition.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_decomposition.cpp.o.d"
  "/root/repo/tests/test_dependence.cpp" "tests/CMakeFiles/mpa_tests.dir/test_dependence.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_dependence.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/mpa_tests.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_design_metrics.cpp" "tests/CMakeFiles/mpa_tests.dir/test_design_metrics.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_design_metrics.cpp.o.d"
  "/root/repo/tests/test_dialect.cpp" "tests/CMakeFiles/mpa_tests.dir/test_dialect.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_dialect.cpp.o.d"
  "/root/repo/tests/test_diff.cpp" "tests/CMakeFiles/mpa_tests.dir/test_diff.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_diff.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/mpa_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/mpa_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_forest.cpp" "tests/CMakeFiles/mpa_tests.dir/test_forest.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_forest.cpp.o.d"
  "/root/repo/tests/test_inference.cpp" "tests/CMakeFiles/mpa_tests.dir/test_inference.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_inference.cpp.o.d"
  "/root/repo/tests/test_info.cpp" "tests/CMakeFiles/mpa_tests.dir/test_info.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_info.cpp.o.d"
  "/root/repo/tests/test_inventory.cpp" "tests/CMakeFiles/mpa_tests.dir/test_inventory.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_inventory.cpp.o.d"
  "/root/repo/tests/test_logistic.cpp" "tests/CMakeFiles/mpa_tests.dir/test_logistic.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_logistic.cpp.o.d"
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/mpa_tests.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_matching.cpp.o.d"
  "/root/repo/tests/test_modeling.cpp" "tests/CMakeFiles/mpa_tests.dir/test_modeling.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_modeling.cpp.o.d"
  "/root/repo/tests/test_practices.cpp" "tests/CMakeFiles/mpa_tests.dir/test_practices.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_practices.cpp.o.d"
  "/root/repo/tests/test_refs.cpp" "tests/CMakeFiles/mpa_tests.dir/test_refs.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_refs.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/mpa_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/mpa_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/mpa_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_signtest.cpp" "tests/CMakeFiles/mpa_tests.dir/test_signtest.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_signtest.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/mpa_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_stanza.cpp" "tests/CMakeFiles/mpa_tests.dir/test_stanza.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_stanza.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/mpa_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_strings.cpp.o.d"
  "/root/repo/tests/test_survey.cpp" "tests/CMakeFiles/mpa_tests.dir/test_survey.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_survey.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/mpa_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_telemetry.cpp" "tests/CMakeFiles/mpa_tests.dir/test_telemetry.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_telemetry.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/mpa_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/mpa_tests.dir/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpa/CMakeFiles/mpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mpa_io.dir/DependInfo.cmake"
  "/root/repo/build/src/simulation/CMakeFiles/mpa_simulation.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/mpa_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mpa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mpa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mpa_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/mpa_config.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpa_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
