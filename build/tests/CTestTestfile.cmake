# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mpa_tests[1]_include.cmake")
add_test(pipeline_integration "/root/repo/build/tests/mpa_integration_tests")
set_tests_properties(pipeline_integration PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;58;add_test;/root/repo/tests/CMakeLists.txt;0;")
