file(REMOVE_RECURSE
  "CMakeFiles/mpa_cli.dir/mpa_cli.cpp.o"
  "CMakeFiles/mpa_cli.dir/mpa_cli.cpp.o.d"
  "mpa_cli"
  "mpa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
