# Empty compiler generated dependencies file for mpa_cli.
# This may be replaced when dependencies are built.
