// The serving layer's request/response vocabulary (DESIGN.md §11).
//
// A Request names an analysis against a resident session: a case-table
// slice, a dependence ranking, a per-practice causal study, a lint
// report, or a prediction run — the paper's interactive workload.
// Requests arrive from the synthetic load client (serve/client.hpp) or
// as JSONL lines on the `mpa_cli serve` daemon's stdin; every admitted
// request produces exactly one Response through the scheduler's sink.
//
// Determinism: a Response's identity is (id, kind, status, body) —
// to_json(false) serializes exactly that, and is the form `mpa_cli
// replay --responses-out` writes, so a fixed single-worker trace
// replay is byte-identical across runs. Timing fields ride along only
// in the with-timing form the daemon streams.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mpa {
class JsonValue;
}

namespace mpa::serve {

/// kStats and kHealth are out-of-band introspection kinds: the
/// scheduler answers them synchronously at submit (never enqueued,
/// never occupying queue depth — the expired-at-submit path's shape),
/// so a saturated daemon still answers "what is going on".
enum class RequestKind : std::uint8_t {
  kCaseTable,
  kRank,
  kCausal,
  kLint,
  kPredict,
  kIngest,
  kStats,
  kHealth,
};

/// Stable wire name ("case_table", "rank", "causal", "lint", "predict",
/// "ingest", "stats", "health").
std::string_view to_string(RequestKind kind);
/// Parse a wire name; returns false on unknown input.
bool parse_request_kind(std::string_view name, RequestKind* out);

struct Request {
  std::uint64_t id = 0;           ///< Unique per trace; 0 = assign me one.
  std::string tenant = "default"; ///< Fairness key (round-robin across tenants).
  std::string session = "main";   ///< SessionManager key to execute against.
  RequestKind kind = RequestKind::kCaseTable;

  // Per-kind parameters (unused ones ignored).
  int month_from = -1;       ///< case_table: slice lower month (-1 = open).
  int month_to = -1;         ///< case_table: slice upper month (-1 = open).
  std::string network;       ///< case_table: restrict to one network id.
  int top_k = 10;            ///< rank: table depth.
  std::string practice;      ///< causal: treatment practice name (required).
  std::string min_severity;  ///< lint: report floor ("" = info).
  int classes = 2;           ///< predict: 2 or 5 health classes.
  int history = 3;           ///< predict: online-protocol history months.
  std::string dir;           ///< ingest: month-delta directory (required).

  /// Completion deadline relative to admission; 0 = none (the
  /// scheduler may substitute its default); negative = already expired
  /// at submit (answered deadline_exceeded synchronously, without
  /// occupying queue depth). An expired request still completes — with
  /// status kDeadlineExceeded, never silently dropped.
  double deadline_ms = 0;

  /// One JSON object (the trace line format).
  std::string to_json() const;
  /// Inverse of to_json(); unknown keys rejected, absent ones default.
  /// Throws DataError on malformed input.
  static Request from_json(const JsonValue& v);
};

enum class RequestStatus : std::uint8_t { kOk, kRejected, kDeadlineExceeded, kError };

/// Stable wire name ("ok", "rejected", "deadline_exceeded", "error").
std::string_view to_string(RequestStatus status);

struct Response {
  std::uint64_t id = 0;
  std::string tenant;
  std::string session;
  RequestKind kind = RequestKind::kCaseTable;
  RequestStatus status = RequestStatus::kOk;
  /// Rendered analysis output (kOk), or the rejection / deadline /
  /// error reason otherwise.
  std::string body;

  // Timing (milliseconds). Excluded from the deterministic form.
  double queue_ms = 0;    ///< Admission -> dequeue.
  double service_ms = 0;  ///< Execution wall time (0 when not executed).
  double total_ms = 0;    ///< Admission -> completion.

  /// One JSON object. `with_timing` false emits only the deterministic
  /// identity (id, kind, status, body) — the byte-identity contract.
  std::string to_json(bool with_timing = true) const;
};

/// Serialize a trace as JSONL, one Request per line.
std::string trace_to_jsonl(const std::vector<Request>& trace);
/// Parse a JSONL trace (blank lines skipped). Throws DataError with
/// the offending line number on malformed input.
std::vector<Request> trace_from_jsonl(std::string_view text);

}  // namespace mpa::serve
