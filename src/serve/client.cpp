#include "serve/client.hpp"

#include <chrono>
#include <map>
#include <sstream>
#include <thread>

#include "metrics/practices.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mpa::serve {

std::vector<Request> synthesize_trace(const ClientOptions& opts) {
  Rng rng(opts.seed);
  std::vector<double> weights = opts.kind_weights;
  weights.resize(8, 0.0);  // one slot per RequestKind, through kHealth
  const std::vector<Practice> treatments = analysis_practices();

  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(opts.request_total_cnt));
  for (int i = 0; i < opts.request_total_cnt; ++i) {
    Request req;
    req.id = static_cast<std::uint64_t>(i) + 1;
    if (!opts.tenants.empty())
      req.tenant = opts.tenants[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(opts.tenants.size()) - 1))];
    if (!opts.sessions.empty())
      req.session = opts.sessions[static_cast<std::size_t>(i) % opts.sessions.size()];
    req.kind = static_cast<RequestKind>(rng.weighted_index(weights));
    req.deadline_ms = opts.deadline_ms;
    switch (req.kind) {
      case RequestKind::kCaseTable:
        req.month_from = static_cast<int>(rng.uniform_int(0, 3));
        req.month_to = req.month_from + static_cast<int>(rng.uniform_int(0, 2));
        break;
      case RequestKind::kRank:
        req.top_k = static_cast<int>(rng.uniform_int(5, 15));
        break;
      case RequestKind::kCausal:
        req.practice = std::string(practice_name(treatments[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(treatments.size()) - 1))]));
        break;
      case RequestKind::kLint:
        req.min_severity = rng.bernoulli(0.5) ? "warning" : "";
        break;
      case RequestKind::kPredict:
        req.classes = rng.bernoulli(0.5) ? 2 : 5;
        req.history = static_cast<int>(rng.uniform_int(2, 4));
        break;
      case RequestKind::kIngest:
        req.dir = opts.ingest_dir;
        break;
      case RequestKind::kStats:
      case RequestKind::kHealth:
        break;  // introspection kinds take no parameters
    }
    trace.push_back(std::move(req));
  }
  return trace;
}

LoadReport SyntheticClient::replay(AnalysisServer& server,
                                   const std::vector<Request>& trace) const {
  // Private latency histogram: the same bucket layout + quantile
  // estimator the obs exports use, without coupling the report to
  // whatever else the process-wide registry has observed.
  obs::Histogram latency(obs::latency_buckets_seconds());
  const std::uint64_t t0 = obs::now_ns();

  if (opts_.request_interval_ms <= 0) {
    for (const Request& req : trace) {
      const Response resp = server.submit_and_wait(req);
      latency.observe(resp.total_ms * 1e-3);
    }
  } else {
    const auto interval = std::chrono::duration<double, std::milli>(opts_.request_interval_ms);
    std::vector<std::uint64_t> ids;
    ids.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ids.push_back(server.submit(trace[i]));
      if (i + 1 < trace.size())
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::nanoseconds>(interval));
    }
    server.drain();
    std::map<std::uint64_t, Response> by_id;
    for (const Response& resp : server.responses()) by_id[resp.id] = resp;
    for (std::uint64_t id : ids) {
      const auto it = by_id.find(id);
      if (it != by_id.end()) latency.observe(it->second.total_ms * 1e-3);
    }
  }

  LoadReport report;
  report.wall_seconds = static_cast<double>(obs::now_ns() - t0) * 1e-9;
  for (const Response& resp : server.responses()) {
    ++report.total;
    switch (resp.status) {
      case RequestStatus::kOk: ++report.ok; break;
      case RequestStatus::kRejected: ++report.rejected; break;
      case RequestStatus::kDeadlineExceeded: ++report.deadline_misses; break;
      case RequestStatus::kError: ++report.errors; break;
    }
  }
  if (report.wall_seconds > 0)
    report.throughput_rps = static_cast<double>(report.total) / report.wall_seconds;
  report.p50_ms = latency.quantile(0.50) * 1e3;
  report.p90_ms = latency.quantile(0.90) * 1e3;
  report.p99_ms = latency.quantile(0.99) * 1e3;
  return report;
}

LoadReport SyntheticClient::run(AnalysisServer& server) const {
  return replay(server, synthesize_trace(opts_));
}

SloReport compute_slo(const std::vector<Response>& responses, double slo_ms, double offered_rps,
                      double achieved_rps) {
  SloReport report;
  report.slo_ms = slo_ms;
  report.offered_rps = offered_rps;
  report.achieved_rps = achieved_rps;
  // The knee test: accepting an offered load means sustaining ~all of
  // it. Falling below 90% of the offered rate marks saturation.
  report.saturated = offered_rps > 0 && achieved_rps < 0.9 * offered_rps;

  std::map<std::string, TenantSlo> by_tenant;
  for (const Response& resp : responses) {
    TenantSlo& t = by_tenant[resp.tenant];
    t.tenant = resp.tenant;
    ++t.total;
    if (resp.status == RequestStatus::kOk && resp.total_ms <= slo_ms) ++t.within;
  }
  report.tenants.reserve(by_tenant.size());
  for (auto& [tenant, t] : by_tenant) {
    if (t.total > 0) t.attainment = static_cast<double>(t.within) / static_cast<double>(t.total);
    report.tenants.push_back(std::move(t));
  }
  return report;
}

std::string SloReport::to_text() const {
  std::ostringstream os;
  os << "SLO " << format_double(slo_ms, 1) << " ms";
  if (offered_rps > 0)
    os << ", offered " << format_double(offered_rps, 1) << " req/s, achieved "
       << format_double(achieved_rps, 1) << " req/s"
       << (saturated ? " (SATURATED)" : "");
  os << "\n";
  TextTable t({"tenant", "total", "within", "attainment"});
  for (const TenantSlo& row : tenants)
    t.row().add(row.tenant).add(static_cast<std::size_t>(row.total))
        .add(static_cast<std::size_t>(row.within)).add(format_double(row.attainment * 100, 1) +
                                                       "%");
  t.print(os);
  return os.str();
}

std::string SloReport::to_json() const {
  std::ostringstream os;
  os << "{\"slo_ms\":" << slo_ms << ",\"offered_rps\":" << offered_rps
     << ",\"achieved_rps\":" << achieved_rps << ",\"saturated\":"
     << (saturated ? "true" : "false") << ",\"tenants\":[";
  bool first = true;
  for (const TenantSlo& t : tenants) {
    if (!first) os << ',';
    first = false;
    os << "{\"tenant\":\"" << json_escape(t.tenant) << "\",\"total\":" << t.total
       << ",\"within\":" << t.within << ",\"attainment\":" << t.attainment << '}';
  }
  os << "]}";
  return os.str();
}

std::string LoadReport::to_text() const {
  std::ostringstream os;
  TextTable t({"metric", "value"});
  t.row().add("requests").add(static_cast<std::size_t>(total));
  t.row().add("  ok").add(static_cast<std::size_t>(ok));
  t.row().add("  rejected").add(static_cast<std::size_t>(rejected));
  t.row().add("  deadline_exceeded").add(static_cast<std::size_t>(deadline_misses));
  t.row().add("  error").add(static_cast<std::size_t>(errors));
  t.row().add("wall seconds").add(format_double(wall_seconds, 3));
  t.row().add("throughput req/s").add(format_double(throughput_rps, 1));
  t.row().add("p50 latency ms").add(format_double(p50_ms, 2));
  t.row().add("p90 latency ms").add(format_double(p90_ms, 2));
  t.row().add("p99 latency ms").add(format_double(p99_ms, 2));
  t.print(os);
  return os.str();
}

std::string LoadReport::to_json() const {
  std::ostringstream os;
  os << "{\"total\":" << total << ",\"ok\":" << ok << ",\"rejected\":" << rejected
     << ",\"deadline_exceeded\":" << deadline_misses << ",\"error\":" << errors
     << ",\"wall_seconds\":" << wall_seconds << ",\"throughput_rps\":" << throughput_rps
     << ",\"p50_ms\":" << p50_ms << ",\"p90_ms\":" << p90_ms << ",\"p99_ms\":" << p99_ms << "}";
  return os.str();
}

}  // namespace mpa::serve
