// Slow-request exemplar log (DESIGN.md §15): a bounded record of the K
// worst requests by total latency, each with the per-stage timing
// breakdown its RequestContext collected — the `stats` introspection
// kind returns it so "what was slow, and where did the time go" is
// answerable from a live daemon without trace files.
//
// Determinism: canonical_json() strips every timing and sorts by id, so
// a replay whose capacity covers the whole trace is byte-identical at
// any worker count (which requests are *kept* under a tight capacity
// is timing-dependent by construction — tests pin the canonical form
// with capacity >= trace size).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace mpa::serve {

class SlowLog {
 public:
  explicit SlowLog(std::size_t capacity = 16);

  struct Entry {
    std::uint64_t id = 0;
    std::string tenant;
    std::string kind;
    std::string status;
    double queue_ms = 0;
    double service_ms = 0;
    double total_ms = 0;
    /// Per-stage (span path, milliseconds) in span-close order.
    std::vector<std::pair<std::string, double>> stages;
  };

  void record(Entry entry) EXCLUDES(mu_);

  /// The retained entries, worst (highest total_ms) first; ties break
  /// toward the lower id.
  std::vector<Entry> worst() const EXCLUDES(mu_);

  /// JSON array, worst first, with timings and stage breakdown (the
  /// `stats` response form).
  std::string to_json() const;
  /// Timestamp-free identity form: [{"id","tenant","kind","status"}]
  /// sorted by id.
  std::string canonical_json() const;

  std::size_t capacity() const { return cap_; }
  void clear() EXCLUDES(mu_);

 private:
  const std::size_t cap_;
  mutable Mutex mu_;
  /// Kept sorted worst-first and truncated to cap_ on every record —
  /// K is small (default 16), so insertion cost is irrelevant next to
  /// the request it describes.
  std::vector<Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace mpa::serve
