#include "serve/slow_log.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"

namespace mpa::serve {
namespace {

std::string number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

bool worse(const SlowLog::Entry& a, const SlowLog::Entry& b) {
  if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
  return a.id < b.id;
}

}  // namespace

SlowLog::SlowLog(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {}

void SlowLog::record(Entry entry) {
  MutexLock lk(mu_);
  entries_.push_back(std::move(entry));
  std::sort(entries_.begin(), entries_.end(), worse);
  if (entries_.size() > cap_) entries_.resize(cap_);
}

std::vector<SlowLog::Entry> SlowLog::worst() const {
  MutexLock lk(mu_);
  return entries_;
}

std::string SlowLog::to_json() const {
  const std::vector<Entry> entries = worst();
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << e.id << ",\"tenant\":\"" << json_escape(e.tenant) << "\",\"kind\":\""
       << json_escape(e.kind) << "\",\"status\":\"" << json_escape(e.status)
       << "\",\"queue_ms\":" << number(e.queue_ms) << ",\"service_ms\":" << number(e.service_ms)
       << ",\"total_ms\":" << number(e.total_ms) << ",\"stages\":[";
    bool first_stage = true;
    for (const auto& [path, ms] : e.stages) {
      if (!first_stage) os << ',';
      first_stage = false;
      os << "{\"path\":\"" << json_escape(path) << "\",\"ms\":" << number(ms) << '}';
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

std::string SlowLog::canonical_json() const {
  std::vector<Entry> entries = worst();
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << e.id << ",\"tenant\":\"" << json_escape(e.tenant) << "\",\"kind\":\""
       << json_escape(e.kind) << "\",\"status\":\"" << json_escape(e.status) << "\"}";
  }
  os << ']';
  return os.str();
}

void SlowLog::clear() {
  MutexLock lk(mu_);
  entries_.clear();
}

}  // namespace mpa::serve
