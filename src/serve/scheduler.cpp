#include "serve/scheduler.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"

namespace mpa::serve {
namespace {

void count(const char* name) {
  if (obs::enabled()) obs::Registry::global().counter(name).add(1);
}

void observe_seconds(const char* name, double seconds) {
  if (obs::enabled()) obs::Registry::global().histogram(name).observe(seconds);
}

double ms_between(std::uint64_t t0_ns, std::uint64_t t1_ns) {
  return t1_ns > t0_ns ? static_cast<double>(t1_ns - t0_ns) * 1e-6 : 0.0;
}

/// Structural per-request completion event: id/tenant/kind/status only
/// — no timing, so the canonical event stream stays deterministic.
void log_done(const Response& resp) {
  obs::LogEvent(obs::LogLevel::kInfo, "request_done")
      .u64("id", resp.id)
      .str("tenant", resp.tenant)
      .str("kind", to_string(resp.kind))
      .str("status", to_string(resp.status));
}

}  // namespace

void register_serve_metrics() {
  auto& reg = obs::Registry::global();
  for (const char* name :
       {"mpa_serve_submitted_total", "mpa_serve_admitted_total", "mpa_serve_rejected_total",
        "mpa_serve_completed_total", "mpa_serve_ok_total", "mpa_serve_deadline_miss_total",
        "mpa_serve_error_total", "mpa_serve_introspected_total",
        "mpa_session_manager_opens_total", "mpa_session_manager_closes_total"}) {
    reg.counter(name);
  }
  reg.gauge("mpa_sessions_resident");
  for (const char* name : {"mpa_serve_queue_wait_seconds", "mpa_serve_service_seconds",
                           "mpa_serve_latency_seconds"}) {
    reg.histogram(name);
  }
}

Scheduler::Scheduler(SchedulerOptions opts, Executor executor, Sink sink,
                     Introspector introspector)
    : opts_(opts),
      executor_(std::move(executor)),
      sink_(std::move(sink)),
      introspector_(std::move(introspector)),
      window_(opts.window != nullptr
                  ? opts.window
                  : (obs::enabled() ? &obs::WindowRegistry::global() : nullptr)) {
  if (obs::enabled()) register_serve_metrics();
  const int workers = opts_.workers < 1 ? 1 : opts_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler() {
  drain();
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool Scheduler::submit(Request req) {
  const std::uint64_t now = obs::now_ns();
  if (introspector_ &&
      (req.kind == RequestKind::kStats || req.kind == RequestKind::kHealth)) {
    // Out-of-band introspection: answered synchronously on the
    // submitting thread, never enqueued, never occupying queue depth —
    // the expired-at-submit path's shape — so a saturated daemon still
    // answers "what is going on".
    {
      MutexLock lk(mu_);
      ++stats_.submitted;
      ++stats_.completed;
      ++stats_.introspected;
    }
    count("mpa_serve_submitted_total");
    introspect(req);
    return false;
  }
  if (req.deadline_ms < 0) {
    // Already expired at submit. Historically this was detected only
    // at dequeue, so a dead-on-arrival request occupied queue depth
    // (and could trigger queue_full rejections of live work) before
    // completing. Answer synchronously, never enqueue.
    {
      MutexLock lk(mu_);
      ++stats_.submitted;
      ++stats_.completed;
      ++stats_.deadline_misses;
    }
    count("mpa_serve_submitted_total");
    expire(req);
    return false;
  }
  const char* reject_reason = nullptr;
  {
    MutexLock lk(mu_);
    ++stats_.submitted;
    if (ready_ >= opts_.max_queue_depth) {
      ++stats_.rejected;
      reject_reason = "queue_full";  // Sink invoked outside the lock, below.
    } else if (active_ >= opts_.max_active_reqs) {
      ++stats_.rejected;
      reject_reason = "max_active_reqs";
    } else {
      Item item;
      item.enqueue_ns = now;
      const double deadline_ms =
          req.deadline_ms > 0 ? req.deadline_ms : opts_.default_deadline_ms;
      if (deadline_ms > 0)
        item.deadline_ns = now + static_cast<std::uint64_t>(deadline_ms * 1e6);
      auto [it, inserted] = queues_.try_emplace(req.tenant);
      if (inserted) rr_tenants_.push_back(req.tenant);
      obs::LogEvent(obs::LogLevel::kDebug, "request_enqueued")
          .u64("id", req.id)
          .str("tenant", req.tenant)
          .str("session", req.session)
          .str("kind", to_string(req.kind));
      item.req = std::move(req);
      it->second.push_back(std::move(item));
      ++ready_;
      ++active_;
      ++stats_.admitted;
      count("mpa_serve_submitted_total");
      count("mpa_serve_admitted_total");
      work_cv_.notify_one();
      return true;
    }
  }
  // Rejected: answer immediately and explicitly.
  count("mpa_serve_submitted_total");
  reject(req, reject_reason);
  return false;
}

void Scheduler::expire(const Request& req) {
  count("mpa_serve_deadline_miss_total");
  count("mpa_serve_completed_total");
  Response resp;
  resp.id = req.id;
  resp.tenant = req.tenant;
  resp.session = req.session;
  resp.kind = req.kind;
  resp.status = RequestStatus::kDeadlineExceeded;
  resp.body = "deadline exceeded at submit";
  record_window(resp);
  log_done(resp);
  if (sink_) sink_(resp);
}

void Scheduler::introspect(const Request& req) {
  count("mpa_serve_introspected_total");
  count("mpa_serve_completed_total");
  Response resp;
  resp.id = req.id;
  resp.tenant = req.tenant;
  resp.session = req.session;
  resp.kind = req.kind;
  try {
    Response answered = introspector_(req);
    resp.status = answered.status;
    resp.body = std::move(answered.body);
  } catch (const std::exception& e) {
    resp.status = RequestStatus::kError;
    resp.body = e.what();
  }
  // Introspection is observability about the window, not workload in
  // it — deliberately not recorded into the windowed registry.
  log_done(resp);
  if (sink_) sink_(resp);
  MutexLock lk(mu_);
  if (resp.status == RequestStatus::kOk) ++stats_.ok;
  if (resp.status == RequestStatus::kError) ++stats_.errors;
}

void Scheduler::record_window(const Response& resp) {
  if (window_ == nullptr) return;
  window_->record(resp.tenant, to_string(resp.kind), to_string(resp.status), resp.queue_ms,
                  resp.service_ms, resp.total_ms);
}

void Scheduler::reject(const Request& req, const std::string& reason) {
  count("mpa_serve_rejected_total");
  obs::LogEvent(obs::LogLevel::kInfo, "request_rejected")
      .u64("id", req.id)
      .str("tenant", req.tenant)
      .str("kind", to_string(req.kind))
      .str("reason", reason);
  Response resp;
  resp.id = req.id;
  resp.tenant = req.tenant;
  resp.session = req.session;
  resp.kind = req.kind;
  resp.status = RequestStatus::kRejected;
  resp.body = "rejected: " + reason;
  record_window(resp);
  log_done(resp);
  if (sink_) sink_(resp);
}

bool Scheduler::pop_next(Item* out) {
  if (ready_ == 0 || rr_tenants_.empty()) return false;
  for (std::size_t probe = 0; probe < rr_tenants_.size(); ++probe) {
    const std::size_t slot = (rr_cursor_ + probe) % rr_tenants_.size();
    std::deque<Item>& q = queues_[rr_tenants_[slot]];
    if (q.empty()) continue;
    *out = std::move(q.front());
    q.pop_front();
    --ready_;
    rr_cursor_ = (slot + 1) % rr_tenants_.size();
    return true;
  }
  return false;
}

void Scheduler::worker_loop() {
  MutexLock lk(mu_);
  while (true) {
    while (!(stop_ || ready_ > 0)) work_cv_.wait(mu_);
    if (stop_ && ready_ == 0) return;  // lk releases on scope exit
    Item item;
    if (!pop_next(&item)) continue;
    lk.unlock();  // never hold mu_ across executor_/sink_

    const std::uint64_t dequeue_ns = obs::now_ns();
    const double queue_ms = ms_between(item.enqueue_ns, dequeue_ns);
    observe_seconds("mpa_serve_queue_wait_seconds", queue_ms * 1e-3);

    // The request context minted at submit, adopted by this worker:
    // every span closed and event logged until the sink returns is
    // tagged with req_id/tenant, and stage timings accumulate for the
    // slow-request exemplar log (the sink reads them via
    // obs::current_request_context()).
    obs::RequestContext ctx;
    ctx.req_id = item.req.id;
    ctx.tenant = item.req.tenant;
    ctx.kind = std::string(to_string(item.req.kind));
    ctx.enqueue_ns = item.enqueue_ns;
    ctx.dequeue_ns = dequeue_ns;
    ctx.collect = true;
    obs::ScopedRequestContext scoped(&ctx);

    Response resp;
    resp.id = item.req.id;
    resp.tenant = item.req.tenant;
    resp.session = item.req.session;
    resp.kind = item.req.kind;
    resp.queue_ms = queue_ms;
    if (item.deadline_ns != 0 && dequeue_ns >= item.deadline_ns) {
      // Expired before dispatch: complete explicitly, never execute,
      // never drop.
      resp.status = RequestStatus::kDeadlineExceeded;
      resp.body = "deadline exceeded before dispatch";
      count("mpa_serve_deadline_miss_total");
    } else {
      try {
        Response executed = executor_(item.req);
        resp.status = executed.status;
        resp.body = std::move(executed.body);
      } catch (const std::exception& e) {
        resp.status = RequestStatus::kError;
        resp.body = e.what();
      }
      resp.service_ms = ms_between(dequeue_ns, obs::now_ns());
      observe_seconds("mpa_serve_service_seconds", resp.service_ms * 1e-3);
      if (resp.status == RequestStatus::kError) count("mpa_serve_error_total");
    }
    ctx.finish_ns = obs::now_ns();
    resp.total_ms = ms_between(item.enqueue_ns, ctx.finish_ns);
    observe_seconds("mpa_serve_latency_seconds", resp.total_ms * 1e-3);
    count("mpa_serve_completed_total");
    if (resp.status == RequestStatus::kOk) count("mpa_serve_ok_total");
    record_window(resp);
    log_done(resp);
    if (sink_) sink_(resp);

    lk.lock();
    ++stats_.completed;
    if (resp.status == RequestStatus::kOk) ++stats_.ok;
    if (resp.status == RequestStatus::kDeadlineExceeded) ++stats_.deadline_misses;
    if (resp.status == RequestStatus::kError) ++stats_.errors;
    --active_;
    if (active_ == 0) drain_cv_.notify_all();
  }
}

void Scheduler::drain() {
  MutexLock lk(mu_);
  while (active_ != 0) drain_cv_.wait(mu_);
}

Scheduler::Stats Scheduler::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

std::size_t Scheduler::queue_depth() const {
  MutexLock lk(mu_);
  return ready_;
}

}  // namespace mpa::serve
