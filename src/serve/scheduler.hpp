// Request scheduler for the `mpa serve` daemon (DESIGN.md §11).
//
// Modeled on the NeuPIMs scheduler/client split: a bounded admitted
// set (`max_active_reqs` caps ready+running, `max_queue_depth` caps
// ready alone) with explicit rejection — an inadmissible request is
// answered immediately with status kRejected, never silently dropped —
// per-request deadlines checked at dispatch (an expired request
// completes with kDeadlineExceeded without executing; one already
// expired at submit — negative deadline_ms — is answered synchronously
// and never occupies queue depth), and round-robin
// fairness across tenants with FIFO order within each tenant.
//
// Requests are executed by a fixed set of dedicated worker threads;
// the analysis work itself fans out on each session's existing
// ThreadPool through the memoized AnalysisSession stages, so the
// scheduler adds queueing, not computation. Every admitted or rejected
// request produces exactly one Response through the sink (invoked from
// worker threads for executed requests, from the submitting thread for
// rejections — callers synchronize their own state).
//
// Determinism contract: with one worker and a closed-loop client,
// execution order equals trace order; with any worker count, the
// multiset of (id, kind, status) outcomes and the canonical event
// stream are identical as long as the trace triggers no
// timing-dependent statuses (no deadlines, no overload rejections) —
// pinned in tests/test_serve.cpp at 1/2/8 workers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/request.hpp"
#include "util/sync.hpp"

namespace mpa::obs {
class WindowRegistry;
}

namespace mpa::serve {

struct SchedulerOptions {
  /// Dedicated request-worker threads (clamped to >= 1).
  int workers = 1;
  /// Cap on admitted-but-incomplete requests (ready + running); a
  /// submit beyond it is rejected.
  std::size_t max_active_reqs = 64;
  /// Cap on ready (queued, not yet running) requests across tenants; a
  /// submit beyond it is rejected.
  std::size_t max_queue_depth = 256;
  /// Deadline applied to requests that carry none (0 = none).
  double default_deadline_ms = 0;
  /// Windowed-aggregation registry every terminal response is recorded
  /// into (introspection answers excluded). nullptr picks the global
  /// registry when observability is enabled, else no recording. Tests
  /// inject an instance with a logical clock.
  obs::WindowRegistry* window = nullptr;
};

/// Pre-register the serving layer's metric schema (counters +
/// latency histograms) so exports always carry the same key set.
void register_serve_metrics();

class Scheduler {
 public:
  /// Executes one request (worker thread). Exceptions become kError
  /// responses with the exception text as body.
  using Executor = std::function<Response(const Request&)>;
  /// Receives every completed response exactly once.
  using Sink = std::function<void(const Response&)>;
  /// Answers an introspection request (kStats/kHealth) synchronously on
  /// the submitting thread — only status and body are consulted; the
  /// scheduler fills the response envelope. Invoked with no scheduler
  /// lock held, so it may call stats()/queue_depth().
  using Introspector = std::function<Response(const Request&)>;

  Scheduler(SchedulerOptions opts, Executor executor, Sink sink,
            Introspector introspector = nullptr);
  /// Drains admitted work, then joins the workers.
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit or reject `req`. On rejection the sink receives the
  /// kRejected response before this returns false. A request whose
  /// deadline already expired at submit (deadline_ms < 0) is answered
  /// kDeadlineExceeded through the sink before this returns false —
  /// it counts as a completed deadline miss, not a rejection, and
  /// never occupies queue depth. On admission the request is queued
  /// (FIFO within its tenant) and will produce its response through
  /// the sink from a worker thread.
  bool submit(Request req) EXCLUDES(mu_);

  /// Block until every admitted request has completed.
  void drain() EXCLUDES(mu_);

  /// Admission/completion counters (snapshot under the queue mutex).
  /// `submitted = admitted + rejected + expired-at-submit +
  /// introspected`, where expired-at-submit is visible as `completed`
  /// deadline misses that were never admitted; `completed` counts every
  /// terminal response — admitted requests' outcomes (including
  /// dispatch-time deadline misses and executor errors) plus
  /// synchronous expired-at-submit and introspection answers — nothing
  /// is dropped.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t ok = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t errors = 0;
    std::uint64_t introspected = 0;  ///< kStats/kHealth answered at submit.
  };
  Stats stats() const EXCLUDES(mu_);

  /// Ready (queued, not yet running) requests right now.
  std::size_t queue_depth() const EXCLUDES(mu_);
  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Item {
    Request req;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t deadline_ns = 0;  ///< 0 = no deadline.
  };

  void worker_loop() EXCLUDES(mu_);
  /// Pop the next item round-robin across tenants (FIFO within a
  /// tenant). Returns false when nothing is ready.
  bool pop_next(Item* out) REQUIRES(mu_);
  /// Reject `req` with `reason` (sink + metrics). Called with mu_
  /// released: the sink may run arbitrary user code (lock ordering,
  /// DESIGN.md §12 — no scheduler lock is ever held across executor_
  /// or sink_).
  void reject(const Request& req, const std::string& reason) EXCLUDES(mu_);
  /// Answer a request whose deadline expired at submit with a
  /// synchronous kDeadlineExceeded response (sink + metrics). Same
  /// lock discipline as reject().
  void expire(const Request& req) EXCLUDES(mu_);
  /// Answer an introspection request synchronously via introspector_
  /// (sink + metrics). Same lock discipline as reject().
  void introspect(const Request& req) EXCLUDES(mu_);
  /// Record a terminal response into the windowed registry (no-op when
  /// none is configured).
  void record_window(const Response& resp);

  const SchedulerOptions opts_;
  const Executor executor_;
  const Sink sink_;
  const Introspector introspector_;
  obs::WindowRegistry* const window_;  ///< Resolved at construction.

  /// Guards the admission state below and backs both condition
  /// variables. Never held across executor_/sink_ calls.
  mutable Mutex mu_;
  CondVar work_cv_;   ///< Signals ready work / stop.
  CondVar drain_cv_;  ///< Signals active_ reaching 0.
  /// Per-tenant FIFO queues; rr_tenants_ fixes the rotation order
  /// (first-appearance) and rr_cursor_ the next tenant to serve.
  std::map<std::string, std::deque<Item>> queues_ GUARDED_BY(mu_);
  std::vector<std::string> rr_tenants_ GUARDED_BY(mu_);
  std::size_t rr_cursor_ GUARDED_BY(mu_) = 0;
  std::size_t ready_ GUARDED_BY(mu_) = 0;   ///< Queued, not yet picked up.
  std::size_t active_ GUARDED_BY(mu_) = 0;  ///< Admitted and not yet completed.
  bool stop_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace mpa::serve
