#include "serve/request.hpp"

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace mpa::serve {
namespace {

/// Doubles in the wire format: millisecond values with enough digits
/// to round-trip the values the CLI accepts.
std::string number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

int int_field(const JsonValue& v, const std::string& key, int fallback) {
  const JsonValue* f = v.find(key);
  return f == nullptr ? fallback : static_cast<int>(f->as_number());
}

std::string str_field(const JsonValue& v, const std::string& key, const std::string& fallback) {
  const JsonValue* f = v.find(key);
  return f == nullptr ? fallback : f->as_string();
}

}  // namespace

std::string_view to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCaseTable: return "case_table";
    case RequestKind::kRank: return "rank";
    case RequestKind::kCausal: return "causal";
    case RequestKind::kLint: return "lint";
    case RequestKind::kPredict: return "predict";
    case RequestKind::kIngest: return "ingest";
    case RequestKind::kStats: return "stats";
    case RequestKind::kHealth: return "health";
  }
  return "unknown";
}

bool parse_request_kind(std::string_view name, RequestKind* out) {
  for (RequestKind k : {RequestKind::kCaseTable, RequestKind::kRank, RequestKind::kCausal,
                        RequestKind::kLint, RequestKind::kPredict, RequestKind::kIngest,
                        RequestKind::kStats, RequestKind::kHealth}) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::string_view to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::kError: return "error";
  }
  return "unknown";
}

std::string Request::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"tenant\":\"" << json_escape(tenant) << "\",\"session\":\""
     << json_escape(session) << "\",\"kind\":\"" << to_string(kind) << "\"";
  switch (kind) {
    case RequestKind::kCaseTable:
      if (month_from >= 0) os << ",\"month_from\":" << month_from;
      if (month_to >= 0) os << ",\"month_to\":" << month_to;
      if (!network.empty()) os << ",\"network\":\"" << json_escape(network) << "\"";
      break;
    case RequestKind::kRank:
      os << ",\"top_k\":" << top_k;
      break;
    case RequestKind::kCausal:
      os << ",\"practice\":\"" << json_escape(practice) << "\"";
      break;
    case RequestKind::kLint:
      if (!min_severity.empty())
        os << ",\"min_severity\":\"" << json_escape(min_severity) << "\"";
      break;
    case RequestKind::kPredict:
      os << ",\"classes\":" << classes << ",\"history\":" << history;
      break;
    case RequestKind::kIngest:
      os << ",\"dir\":\"" << json_escape(dir) << "\"";
      break;
    case RequestKind::kStats:
    case RequestKind::kHealth:
      break;  // introspection kinds take no parameters
  }
  // != 0, not > 0: a negative deadline (expired at submit) must
  // round-trip through traces to reproduce synchronous rejection.
  if (deadline_ms != 0) os << ",\"deadline_ms\":" << number(deadline_ms);
  os << "}";
  return os.str();
}

Request Request::from_json(const JsonValue& v) {
  if (!v.is_object()) throw DataError("request: expected a JSON object");
  static const std::set<std::string> known = {
      "id",        "tenant",       "session", "kind",    "month_from", "month_to", "network",
      "top_k",     "practice",     "min_severity", "classes", "history", "dir", "deadline_ms"};
  for (const auto& [key, value] : v.as_object())
    if (known.count(key) == 0) throw DataError("request: unknown field '" + key + "'");

  Request req;
  if (const JsonValue* f = v.find("id")) req.id = f->as_u64();
  req.tenant = str_field(v, "tenant", req.tenant);
  req.session = str_field(v, "session", req.session);
  const std::string kind = str_field(v, "kind", "");
  if (!parse_request_kind(kind, &req.kind))
    throw DataError("request: unknown kind '" + kind + "'");
  req.month_from = int_field(v, "month_from", req.month_from);
  req.month_to = int_field(v, "month_to", req.month_to);
  req.network = str_field(v, "network", req.network);
  req.top_k = int_field(v, "top_k", req.top_k);
  req.practice = str_field(v, "practice", req.practice);
  req.min_severity = str_field(v, "min_severity", req.min_severity);
  req.classes = int_field(v, "classes", req.classes);
  req.history = int_field(v, "history", req.history);
  req.dir = str_field(v, "dir", req.dir);
  if (const JsonValue* f = v.find("deadline_ms")) req.deadline_ms = f->as_number();
  return req;
}

std::string Response::to_json(bool with_timing) const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"kind\":\"" << to_string(kind) << "\",\"status\":\""
     << to_string(status) << "\",\"body\":\"" << json_escape(body) << "\"";
  if (with_timing) {
    os << ",\"tenant\":\"" << json_escape(tenant) << "\",\"session\":\"" << json_escape(session)
       << "\",\"queue_ms\":" << number(queue_ms) << ",\"service_ms\":" << number(service_ms)
       << ",\"total_ms\":" << number(total_ms);
  }
  os << "}";
  return os.str();
}

std::string trace_to_jsonl(const std::vector<Request>& trace) {
  std::string out;
  for (const Request& req : trace) {
    out += req.to_json();
    out += '\n';
  }
  return out;
}

std::vector<Request> trace_from_jsonl(std::string_view text) {
  std::vector<Request> trace;
  std::size_t line_no = 0;
  for (const std::string& line : split_lines(text)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      trace.push_back(Request::from_json(parse_json(line)));
    } catch (const DataError& e) {
      throw DataError("trace line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return trace;
}

}  // namespace mpa::serve
