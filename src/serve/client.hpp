// SyntheticClient: the load half of the NeuPIMs-style scheduler/client
// split (DESIGN.md §11). It synthesizes a deterministic request trace
// from a seed, replays it against an AnalysisServer — closed-loop
// (submit, wait, next) or open-loop at a configured request interval —
// and reports achieved throughput plus p50/p90/p99 latency from the
// obs histogram quantile machinery.
//
// Trace synthesis is a pure function of ClientOptions (ids 1..n,
// kinds/tenants drawn from a seeded Rng), so `mpa_cli replay` runs are
// reproducible and a saved trace replays byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/server.hpp"

namespace mpa::serve {

struct ClientOptions {
  /// Requests to synthesize (NeuPIMs `request_total_cnt`).
  int request_total_cnt = 32;
  /// Open-loop pacing between submits, in milliseconds (NeuPIMs
  /// `request_interval`); 0 = closed-loop (wait for each response).
  double request_interval_ms = 0;
  std::uint64_t seed = 1;
  /// Session keys to spread requests across (round-robin by id).
  std::vector<std::string> sessions = {"main"};
  /// Tenant names drawn uniformly per request.
  std::vector<std::string> tenants = {"default"};
  /// Deadline attached to every synthesized request (0 = none).
  double deadline_ms = 0;
  /// Request-kind mix weights, indexed by RequestKind. Case-table
  /// slices and rankings dominate the default interactive mix; the
  /// heavyweight kinds (causal, predict) are rare, and ingest is off
  /// by default (missing tail weights are zero) — a trace that appends
  /// the same delta twice would fail on the second try, so ingest mixes
  /// only make sense with externally staged per-request directories.
  std::vector<double> kind_weights = {4, 3, 1, 3, 1};
  /// Month-delta directory attached to synthesized ingest requests
  /// (only used when kind_weights gives kIngest mass).
  std::string ingest_dir;
};

/// Deterministic trace from the options (ids 1..request_total_cnt).
std::vector<Request> synthesize_trace(const ClientOptions& opts);

/// Per-tenant SLO attainment over one replay's responses.
struct TenantSlo {
  std::string tenant;
  std::uint64_t total = 0;   ///< Responses for this tenant (all statuses).
  std::uint64_t within = 0;  ///< kOk responses with total_ms <= slo_ms.
  double attainment = 0;     ///< within / total (0 when total == 0).
};

/// SLO attainment report for one replay (`mpa_cli replay --slo-ms`).
struct SloReport {
  double slo_ms = 0;
  double offered_rps = 0;   ///< 1000 / request_interval_ms (0 = closed-loop).
  double achieved_rps = 0;  ///< Completed responses / wall seconds.
  /// Offered load set and achieved throughput fell short of 90% of it:
  /// the server is past its saturation knee at this offered rate.
  bool saturated = false;
  std::vector<TenantSlo> tenants;  ///< Sorted by tenant name.

  std::string to_text() const;
  std::string to_json() const;
};

/// Pure accounting: fold `responses` into per-tenant SLO attainment.
/// A response is within SLO iff it completed kOk and its admission->
/// completion latency fit the budget; rejections and deadline misses
/// count against attainment (the tenant asked and was not served).
SloReport compute_slo(const std::vector<Response>& responses, double slo_ms, double offered_rps,
                      double achieved_rps);

/// One replay's outcome summary.
struct LoadReport {
  std::uint64_t total = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t errors = 0;
  double wall_seconds = 0;
  double throughput_rps = 0;  ///< Completed responses / wall_seconds.
  // Total (admission -> completion) latency quantiles, milliseconds,
  // estimated from the obs latency histogram buckets.
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;

  std::string to_text() const;
  std::string to_json() const;
};

class SyntheticClient {
 public:
  explicit SyntheticClient(ClientOptions opts = {}) : opts_(std::move(opts)) {}

  /// Replay `trace` against `server`: closed-loop when
  /// request_interval_ms == 0, open-loop (paced submits, drain at the
  /// end) otherwise. Every request's response is accounted for.
  LoadReport replay(AnalysisServer& server, const std::vector<Request>& trace) const;

  /// synthesize_trace(options()) + replay().
  LoadReport run(AnalysisServer& server) const;

  const ClientOptions& options() const { return opts_; }

 private:
  ClientOptions opts_;
};

}  // namespace mpa::serve
