#include "serve/server.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "config/lint.hpp"
#include "engine/lint_report.hpp"
#include "io/dataset_io.hpp"
#include "learn/dataset.hpp"
#include "learn/eval.hpp"
#include "metrics/practices.hpp"
#include "mpa/causal.hpp"
#include "mpa/dependence.hpp"
#include "mpa/modeling.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mpa::serve {
namespace {

Practice practice_from_name(const std::string& name) {
  for (Practice p : all_practices())
    if (practice_name(p) == name) return p;
  throw DataError("causal request: unknown practice '" + name + "'");
}

std::string render_case_table(AnalysisSession& session, const Request& req) {
  const CaseTable& full = session.case_table();
  const int first = req.month_from < 0 ? 0 : req.month_from;
  const int last = req.month_to < 0 ? std::numeric_limits<int>::max() : req.month_to;
  CaseTable sliced = full.filter_months(first, last);
  if (!req.network.empty()) {
    std::vector<Case> kept;
    for (const Case& c : sliced.cases())
      if (c.network_id == req.network) kept.push_back(c);
    sliced = CaseTable(std::move(kept));
  }
  return sliced.to_csv();
}

std::string render_rank(AnalysisSession& session, const Request& req) {
  if (req.top_k < 1) throw DataError("rank request: top_k must be >= 1");
  const DependenceAnalysis& dep = session.dependence();
  const auto k = static_cast<std::size_t>(req.top_k);
  std::ostringstream os;

  os << "-- practices by avg monthly MI with health --\n";
  TextTable mi({"rank", "practice", "cat", "MI"});
  int rank = 0;
  for (const auto& pm : dep.top_practices(k))
    mi.row().add(++rank).add(std::string(practice_name(pm.practice)))
        .add(std::string(category_tag(pm.practice))).add(pm.avg_monthly_mi, 3);
  mi.print(os);

  os << "\n-- practice pairs by CMI given health --\n";
  TextTable cmi({"rank", "practice A", "practice B", "CMI"});
  rank = 0;
  for (const auto& pair : dep.top_pairs(k))
    cmi.row().add(++rank).add(std::string(practice_name(pair.a)))
        .add(std::string(practice_name(pair.b))).add(pair.avg_monthly_cmi, 3);
  cmi.print(os);
  return os.str();
}

std::string render_causal(AnalysisSession& session, const Request& req) {
  if (req.practice.empty()) throw DataError("causal request: practice required");
  const CausalResult& res = session.causal(practice_from_name(req.practice));
  std::ostringstream os;
  TextTable t({"comparison", "pairs", "+/0/-", "p-value", "balanced", "verdict"});
  for (const auto& cmp : res.comparisons) {
    t.row().add(cmp.label()).add(cmp.pairs)
        .add(std::to_string(cmp.outcome.n_pos) + "/" + std::to_string(cmp.outcome.n_zero) + "/" +
             std::to_string(cmp.outcome.n_neg))
        .add(format_sci(cmp.outcome.p_value)).add(cmp.balanced ? "yes" : "NO")
        .add(cmp.causal
                 ? (cmp.outcome.n_pos > cmp.outcome.n_neg ? "causes MORE tickets"
                                                          : "causes FEWER tickets")
                 : "no causal evidence");
  }
  t.print(os);
  return os.str();
}

std::string render_lint(AnalysisSession& session, const Request& req) {
  LintSeverity min = LintSeverity::kInfo;
  if (!req.min_severity.empty()) {
    const auto sev = parse_severity(req.min_severity);
    if (!sev)
      throw DataError("lint request: min_severity expects info|warning|error, got '" +
                      req.min_severity + "'");
    min = *sev;
  }
  return session.lint().at_least(min).to_text();
}

std::string render_predict(AnalysisSession& session, const Request& req) {
  if (req.classes < 2) throw DataError("predict request: classes must be >= 2");
  if (req.history < 1) throw DataError("predict request: history must be >= 1");
  const int months = session.num_months();
  std::ostringstream os;
  const EvalResult& cv = session.evaluate_cv(req.classes, ModelKind::kDtBoostOversample);
  os << "-- " << req.classes << "-class model, 5-fold CV --\n"
     << cv.to_string(health_class_names(req.classes));
  const int first_t = std::min(months - 1, req.history);
  const double online = session.online_accuracy(req.classes, req.history,
                                                ModelKind::kDtBoostOversample, first_t,
                                                months - 1);
  os << "\nonline month-ahead accuracy (history " << req.history
     << " months): " << format_double(online * 100, 1) << "%\n";
  return os.str();
}

std::string render_ingest(AnalysisSession& session, const Request& req) {
  if (req.dir.empty()) throw DataError("ingest request: dir required");
  const MonthDelta delta = load_month_delta(req.dir);
  const AnalysisSession::AppendResult res = session.append_month(delta);
  std::ostringstream os;
  os << "appended month " << res.month << ": " << res.snapshots << " snapshots, " << res.tickets
     << " tickets, " << res.new_rows << " case rows"
     << "\nincremental: table=" << (res.table_incremental ? "yes" : "no")
     << " lint=" << (res.lint_incremental ? "yes" : "no")
     << " dependence=" << (res.dependence_incremental ? "yes" : "no") << "\n";
  return os.str();
}

}  // namespace

std::string render_request(AnalysisSession& session, const Request& req) {
  switch (req.kind) {
    case RequestKind::kCaseTable: return render_case_table(session, req);
    case RequestKind::kRank: return render_rank(session, req);
    case RequestKind::kCausal: return render_causal(session, req);
    case RequestKind::kLint: return render_lint(session, req);
    case RequestKind::kPredict: return render_predict(session, req);
    case RequestKind::kIngest: return render_ingest(session, req);
    case RequestKind::kStats:
    case RequestKind::kHealth:
      // Reaching a session means the scheduler had no introspector —
      // introspection kinds are answered at submit, never rendered.
      throw DataError("request: introspection kind answered at submit");
  }
  throw DataError("request: unknown kind");
}

AnalysisServer::AnalysisServer(ServerOptions opts, Scheduler::Sink tap)
    : opts_(std::move(opts)),
      tap_(std::move(tap)),
      slow_log_(opts_.slow_log_entries),
      // The same resolution the scheduler applies, so introspection
      // reports the registry terminal responses actually land in.
      window_(opts_.scheduler.window != nullptr
                  ? opts_.scheduler.window
                  : (obs::enabled() ? &obs::WindowRegistry::global() : nullptr)),
      scheduler_(
          opts_.scheduler, [this](const Request& req) { return execute(req); },
          [this](const Response& resp) { record(resp); },
          [this](const Request& req) { return introspect(req); }) {}

void AnalysisServer::open_directory(const std::string& key, const std::string& dir) {
  sessions_.open_directory(key, dir, opts_.session);
}

std::uint64_t AnalysisServer::submit(Request req) {
  {
    MutexLock lk(resp_mu_);
    if (req.id == 0)
      req.id = next_id_++;
    else
      next_id_ = std::max(next_id_, req.id + 1);
  }
  const std::uint64_t id = req.id;
  scheduler_.submit(std::move(req));
  return id;
}

Response AnalysisServer::submit_and_wait(Request req) {
  const std::uint64_t id = submit(std::move(req));
  MutexLock lk(resp_mu_);
  while (responses_.count(id) == 0) resp_cv_.wait(resp_mu_);
  return responses_.at(id);
}

void AnalysisServer::drain() { scheduler_.drain(); }

Response AnalysisServer::execute(const Request& req) {
  Response resp;
  resp.status = RequestStatus::kOk;
  resp.body = sessions_.with_session(req.session, [&](AnalysisSession& session) {
    obs::Span span = obs::Span::with_path("serve/" + std::string(to_string(req.kind)));
    return render_request(session, req);
  });
  return resp;
}

void AnalysisServer::record(const Response& resp) {
  // Worker-thread completions arrive with the request's context still
  // installed (the scheduler keeps it in scope through the sink call):
  // harvest the stage timings its spans collected into the slow log.
  // Rejections and expirations come from the submitting thread with no
  // context — the slow log holds executed requests.
  if (const obs::RequestContext* ctx = obs::current_request_context(); ctx != nullptr &&
                                                                       ctx->collect) {
    SlowLog::Entry entry;
    entry.id = resp.id;
    entry.tenant = resp.tenant;
    entry.kind = std::string(to_string(resp.kind));
    entry.status = std::string(to_string(resp.status));
    entry.queue_ms = resp.queue_ms;
    entry.service_ms = resp.service_ms;
    entry.total_ms = resp.total_ms;
    entry.stages.reserve(ctx->stage_ns.size());
    for (const auto& [path, dur_ns] : ctx->stage_ns)
      entry.stages.emplace_back(path, static_cast<double>(dur_ns) * 1e-6);
    slow_log_.record(std::move(entry));
  }
  {
    MutexLock lk(resp_mu_);
    responses_[resp.id] = resp;
  }
  resp_cv_.notify_all();
  if (tap_) tap_(resp);
}

Response AnalysisServer::introspect(const Request& req) {
  Response resp;
  resp.status = RequestStatus::kOk;
  const Scheduler::Stats s = scheduler_.stats();
  std::ostringstream os;
  if (req.kind == RequestKind::kHealth) {
    os << "{\"status\":\"ok\",\"sessions\":" << sessions_.keys().size()
       << ",\"queue_depth\":" << scheduler_.queue_depth()
       << ",\"workers\":" << scheduler_.workers() << ",\"submitted\":" << s.submitted << '}';
    resp.body = os.str();
    return resp;
  }
  os << "{\"stats\":{\"submitted\":" << s.submitted << ",\"admitted\":" << s.admitted
     << ",\"rejected\":" << s.rejected << ",\"completed\":" << s.completed << ",\"ok\":" << s.ok
     << ",\"deadline_misses\":" << s.deadline_misses << ",\"errors\":" << s.errors
     << ",\"introspected\":" << s.introspected
     << ",\"queue_depth\":" << scheduler_.queue_depth()
     << ",\"workers\":" << scheduler_.workers() << "},\"sessions\":[";
  bool first = true;
  for (const std::string& key : sessions_.keys()) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << '"';
  }
  os << "],\"window\":" << (window_ != nullptr ? window_->to_json() : std::string("null"))
     << ",\"slow\":" << slow_log_.to_json() << '}';
  resp.body = os.str();
  return resp;
}

std::vector<Response> AnalysisServer::responses() const {
  MutexLock lk(resp_mu_);
  std::vector<Response> out;
  out.reserve(responses_.size());
  for (const auto& [id, resp] : responses_) out.push_back(resp);
  return out;
}

void AnalysisServer::clear_responses() {
  MutexLock lk(resp_mu_);
  responses_.clear();
}

}  // namespace mpa::serve
