// AnalysisServer: the long-lived analysis service behind `mpa serve`
// and `mpa replay` (DESIGN.md §11). It keeps N AnalysisSessions
// resident in a SessionManager and answers Requests from a Scheduler:
// the executor resolves the request's session key, takes that
// session's exclusive lock, renders the analysis (memoized stages fan
// out on the session's own ThreadPool), and the internal sink stores
// every Response for retrieval — nothing is dropped, including
// rejections and deadline misses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/session_manager.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/slow_log.hpp"
#include "util/sync.hpp"

namespace mpa::serve {

struct ServerOptions {
  SchedulerOptions scheduler;
  /// Session options applied by open_directory().
  SessionOptions session;
  /// Bound on the slow-request exemplar log (K worst by total_ms).
  std::size_t slow_log_entries = 16;
};

/// Render one request against a session: dispatch on kind, run the
/// memoized stage, format the result as text/CSV. The body is a pure
/// function of (dataset, session options, seed, request), so replaying
/// a fixed trace yields byte-identical bodies at any worker count —
/// an ingest request advances the dataset (append_month over the named
/// delta directory), so the identity holds per dataset state, and a
/// trace mixing ingest with reads stays deterministic only single-
/// worker (the session lock serializes, but order is the contract).
/// Throws DataError on bad parameters (unknown practice, bad severity).
std::string render_request(AnalysisSession& session, const Request& req);

class AnalysisServer {
 public:
  /// `tap`, when set, receives every Response as it completes (worker
  /// threads / the submitting thread for rejections) — the daemon uses
  /// it to stream response JSONL.
  explicit AnalysisServer(ServerOptions opts = {}, Scheduler::Sink tap = nullptr);
  /// Drains in-flight requests (scheduler destructs before sessions).
  ~AnalysisServer() = default;
  AnalysisServer(const AnalysisServer&) = delete;
  AnalysisServer& operator=(const AnalysisServer&) = delete;

  SessionManager& sessions() { return sessions_; }

  /// Open a resident session over a dataset directory under `key`,
  /// with the server's session options applied.
  void open_directory(const std::string& key, const std::string& dir);

  /// Submit a request; assigns the next id when req.id == 0. Returns
  /// the id, whether admitted or rejected (the rejection response is
  /// recorded before this returns).
  std::uint64_t submit(Request req) EXCLUDES(resp_mu_);

  /// Submit and block for this request's response (closed-loop client).
  Response submit_and_wait(Request req) EXCLUDES(resp_mu_);

  /// Block until every admitted request has completed.
  void drain();

  /// All recorded responses, ordered by id.
  std::vector<Response> responses() const EXCLUDES(resp_mu_);
  /// Drop recorded responses (bench steady-state resets).
  void clear_responses() EXCLUDES(resp_mu_);

  Scheduler::Stats stats() const { return scheduler_.stats(); }
  const Scheduler& scheduler() const { return scheduler_; }
  const SlowLog& slow_log() const { return slow_log_; }
  /// The windowed registry terminal responses are recorded into, or
  /// nullptr when none is configured (observability disabled and no
  /// injected instance).
  const obs::WindowRegistry* window() const { return window_; }

 private:
  Response execute(const Request& req);
  void record(const Response& resp) EXCLUDES(resp_mu_);
  /// Answer a kStats/kHealth request (scheduler Introspector): the
  /// windowed snapshot, scheduler Stats, resident-session list, and the
  /// slow-request exemplar log, as a JSON body.
  Response introspect(const Request& req);

  const ServerOptions opts_;
  SessionManager sessions_;  ///< Declared before scheduler_: workers join first.
  Scheduler::Sink tap_;
  SlowLog slow_log_;  ///< Declared before scheduler_: workers feed it until drained.
  obs::WindowRegistry* const window_;  ///< Same resolution the scheduler applies.

  /// Guards the response store and id counter; leaf lock — nothing
  /// else is acquired while it is held (lock ordering, DESIGN.md §12).
  mutable Mutex resp_mu_;
  CondVar resp_cv_;  ///< Signals a response landing in responses_.
  std::map<std::uint64_t, Response> responses_ GUARDED_BY(resp_mu_);
  std::uint64_t next_id_ GUARDED_BY(resp_mu_) = 1;

  Scheduler scheduler_;  ///< Last member: destructs (drains + joins) first.
};

}  // namespace mpa::serve
