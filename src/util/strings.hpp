// Small string utilities used by the config parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpa {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` into lines, accepting both LF and CRLF endings: splits on
/// '\n' and strips one trailing '\r' per line, so Windows-authored
/// files parse identically to Unix ones.
std::vector<std::string> split_lines(std::string_view s);

/// Split `s` on runs of whitespace, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view s);

/// Zero-copy variants for hot parse loops: the returned views alias
/// `s`, so the backing buffer must outlive them. Semantics match the
/// copying versions exactly (split_line_views strips one trailing '\r'
/// per line, split_ws_views drops empty tokens).
std::vector<std::string_view> split_views(std::string_view s, char sep);
std::vector<std::string_view> split_line_views(std::string_view s);
std::vector<std::string_view> split_ws_views(std::string_view s);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Join `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Number of leading space characters (tabs count as one).
std::size_t indent_of(std::string_view line);

/// True if `s` starts with `prefix` (convenience for pre-C++20 call sites).
bool starts_with(std::string_view s, std::string_view prefix);

/// Format a double with `digits` significant decimal places, trimming
/// trailing zeros ("1.25", "3", "0.0001").
std::string format_double(double v, int digits = 4);

/// Scientific notation like the paper's tables: "6.80e-13".
std::string format_sci(double v, int digits = 2);

}  // namespace mpa
