#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace mpa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next()); }

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Box-Muller; one value per call keeps the state trajectory simple.
  double u1 = uniform();
  while (u1 <= 0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double sd) {
  require(sd >= 0, "Rng::normal: negative sd");
  return mean + sd * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

int Rng::poisson(double mean) {
  require(mean >= 0, "Rng::poisson: negative mean");
  if (mean == 0) return 0;
  if (mean > 60) {
    const double v = std::round(normal(mean, std::sqrt(mean)));
    return v < 0 ? 0 : static_cast<int>(v);
  }
  const double l = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > l);
  return k - 1;
}

double Rng::exponential(double rate) {
  require(rate > 0, "Rng::exponential: rate must be positive");
  double u = uniform();
  while (u <= 0) u = uniform();
  return -std::log(u) / rate;
}

int Rng::zipf(int n, double s) {
  require(n >= 1, "Rng::zipf: n must be >= 1");
  require(s >= 0, "Rng::zipf: negative exponent");
  // Inverse-CDF over explicit weights; n is small everywhere we use this.
  double total = 0;
  for (int i = 1; i <= n; ++i) total += 1.0 / std::pow(static_cast<double>(i), s);
  double u = uniform() * total;
  for (int i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= 0) return i;
  }
  return n;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::weighted_index: empty weights");
  double total = 0;
  for (double w : weights) {
    require(w >= 0, "Rng::weighted_index: negative weight");
    total += w;
  }
  require(total > 0, "Rng::weighted_index: weights sum to zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_indices: k > n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k slots are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace mpa
