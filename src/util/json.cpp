#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace mpa {
namespace {

std::string type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

void expect_type(const JsonValue& v, JsonValue::Type want) {
  if (v.type() != want)
    throw DataError("json: expected " + type_name(want) + ", got " + type_name(v.type()));
}

}  // namespace

bool JsonValue::as_bool() const {
  expect_type(*this, Type::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  expect_type(*this, Type::kNumber);
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  expect_type(*this, Type::kNumber);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text_.c_str(), &end, 10);
  if (end == text_.c_str() || *end != '\0')
    throw DataError("json: number '" + text_ + "' is not an unsigned integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  expect_type(*this, Type::kString);
  return text_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  expect_type(*this, Type::kArray);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  expect_type(*this, Type::kObject);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw DataError("json: missing key '" + key + "'");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw DataError("json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void consume(char want) {
    if (peek() != want) fail(std::string("expected '") + want + "'");
    ++pos_;
  }

  bool try_consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (try_consume("true")) {
      JsonValue v;
      v.type_ = JsonValue::Type::kBool;
      v.bool_ = true;
      return v;
    }
    if (try_consume("false")) {
      JsonValue v;
      v.type_ = JsonValue::Type::kBool;
      return v;
    }
    if (try_consume("null")) return JsonValue();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  JsonValue parse_object() {
    consume('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      consume(':');
      v.object_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume('}');
      return v;
    }
  }

  JsonValue parse_array() {
    consume('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume(']');
      return v;
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.text_ = parse_string();
    return v;
  }

  std::string parse_string() {
    consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are out of
          // scope for our exports; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.text_ = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.num_ = std::strtod(v.text_.c_str(), &end);
    if (end != v.text_.c_str() + v.text_.size()) fail("malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mpa
