#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace mpa {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> lines = split(s, '\n');
  for (auto& line : lines)
    if (!line.empty() && line.back() == '\r') line.pop_back();
  return lines;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_views(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  out.reserve(static_cast<std::size_t>(std::count(s.begin(), s.end(), sep)) + 1);
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_line_views(std::string_view s) {
  std::vector<std::string_view> lines = split_views(s, '\n');
  for (auto& line : lines)
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return lines;
}

std::vector<std::string_view> split_ws_views(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::size_t indent_of(std::string_view line) {
  std::size_t n = 0;
  while (n < line.size() && (line[n] == ' ' || line[n] == '\t')) ++n;
  return n;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string format_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return std::string(buf);
}

}  // namespace mpa
