// FNV-1a hashing shared by the provenance and storage layers.
//
// Two variants with distinct, stable contracts:
//
//   Fnv       byte-at-a-time FNV-1a with length-prefixed field helpers.
//             Used by engine/run_manifest for the dataset fingerprint —
//             its values are persisted in manifests, so the definition
//             must never change.
//
//   fnv1a_words  four-lane word-folded FNV-1a over a raw byte range:
//             each lane xor-multiplies every fourth little-endian
//             64-bit word, so the four multiply chains pipeline
//             instead of serializing on the ~5-cycle multiply latency
//             (~4x the single-chain word fold, ~30x the byte loop).
//             The lanes and the length fold into one final FNV chain.
//             This matters when fingerprinting multi-hundred-megabyte
//             mpac shards on every load. Not interchangeable with Fnv
//             over the same bytes; io/columnar.hpp defines shard
//             fingerprints in terms of this function.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace mpa {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental byte-wise FNV-1a with field framing.
class Fnv {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
  }
  /// Length-prefixed so {"ab","c"} and {"a","bc"} hash differently.
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

/// Four-lane word-folded FNV-1a over `[data, data + n)`. Lane k folds
/// words k, k+4, k+8, ... of the input; the remaining words and tail
/// bytes go to lane 0, and the lanes plus the byte length are folded
/// into a single FNV chain at the end (so inputs of different lengths
/// that pad to the same words still hash differently).
inline std::uint64_t fnv1a_words(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  // Distinct lane seeds: one multiply step of FNV over the lane index.
  std::uint64_t h0 = kFnvOffset;
  std::uint64_t h1 = (kFnvOffset ^ 1) * kFnvPrime;
  std::uint64_t h2 = (kFnvOffset ^ 2) * kFnvPrime;
  std::uint64_t h3 = (kFnvOffset ^ 3) * kFnvPrime;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p + i, 8);
    std::memcpy(&w1, p + i + 8, 8);
    std::memcpy(&w2, p + i + 16, 8);
    std::memcpy(&w3, p + i + 24, 8);
    h0 = (h0 ^ w0) * kFnvPrime;
    h1 = (h1 ^ w1) * kFnvPrime;
    h2 = (h2 ^ w2) * kFnvPrime;
    h3 = (h3 ^ w3) * kFnvPrime;
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, sizeof w);
    h0 = (h0 ^ w) * kFnvPrime;
  }
  for (; i < n; ++i) h0 = (h0 ^ p[i]) * kFnvPrime;
  std::uint64_t h = (((h0 ^ h1) * kFnvPrime ^ h2) * kFnvPrime ^ h3) * kFnvPrime;
  return (h ^ static_cast<std::uint64_t>(n)) * kFnvPrime;
}

}  // namespace mpa
