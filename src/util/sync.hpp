// Annotated synchronization primitives for the MPA engine
// (DESIGN.md §12): thin wrappers over std::mutex /
// std::condition_variable that carry clang thread-safety capability
// annotations, so the locking contracts of the concurrent surface
// (util/parallel, obs/, engine/, serve/) are checked at compile time
// under -Werror=thread-safety instead of only at runtime under TSan.
//
// libstdc++'s std::mutex is not an annotated capability, which makes
// the raw type invisible to the analysis — every guarded access would
// be a false positive. The standard remedy (LevelDB's port::Mutex,
// abseil's Mutex) is an annotated wrapper; library code uses these
// types exclusively, and tools/srclint rejects raw std::mutex members
// anywhere else under src/.
//
// Idioms:
//   Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//
//   { MutexLock lk(mu_); ++value_; }            // scoped critical section
//
//   MutexLock lk(mu_);
//   while (!ready_) cv_.wait(mu_);              // condition wait (lock held)
//
//   lk.unlock();  do_slow_work();  lk.lock();   // annotated relock window
//
// Condition predicates are written as explicit while-loops in the
// caller's body (not as lambdas passed to wait): the analysis checks
// lambda bodies with no capability context, so a predicate lambda
// touching guarded state would be a false positive.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mpa {

class CondVar;

/// Exclusive capability wrapping std::mutex. Non-reentrant.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // srclint-disable(mutex-annotation): the annotated wrapper owns the raw mutex
};

/// Scoped lock for Mutex (lock_guard + relock windows). The unlock()/
/// lock() pair opens an annotated gap in the critical section — the
/// worker-loop idiom that previously needed manual unique_lock
/// jockeying the analysis couldn't see.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Open a gap: release the mutex mid-scope (slow work, blocking calls).
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  /// Close the gap: reacquire before touching guarded state again.
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to Mutex at each wait site. wait()
/// requires the mutex held and returns with it held (the adopt/release
/// dance keeps std::condition_variable's unique_lock protocol without
/// surrendering ownership to it — LevelDB's port::CondVar).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // still locked; ownership stays with the caller
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mpa
