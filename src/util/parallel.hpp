// Deterministic fork-join parallelism for the MPA engine.
//
// A ThreadPool runs index-based jobs (`parallel_for`): workers pull
// indices from a shared atomic counter, so scheduling is dynamic but
// the work done for index i is exactly the same regardless of thread
// count. Every parallel stage in the library is structured so that
// task i writes only to slot i of a pre-sized output and any RNG
// stream it needs was forked on the calling thread in index order —
// which makes results bit-identical between 1 thread and N threads.
//
// The pool size defaults to the MPA_THREADS environment variable,
// falling back to the hardware concurrency. A pool of size 1 spawns
// no workers and runs everything inline, as does a nested
// parallel_for issued from inside a worker.
//
// Locking (checked by clang thread-safety analysis, DESIGN.md §12):
// mu_ guards the job slot and stop flag and backs both condition
// variables; job_mu_ serializes concurrent parallel_for callers and is
// the one place in the library where two locks nest — job_mu_ is
// always acquired before mu_, never the reverse. Job progress counters
// are atomics, read inside wait predicates under mu_ only to pair with
// the notify protocol.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace mpa {

class ThreadPool {
 public:
  /// MPA_THREADS if set to a positive integer, else the hardware
  /// concurrency (else 1).
  static int default_thread_count() {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once per pool, before its workers exist
    if (const char* env = std::getenv("MPA_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  explicit ThreadPool(int threads = default_thread_count())
      : threads_(threads < 1 ? 1 : threads) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int t = 0; t + 1 < threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lk(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  /// Total threads that execute job bodies (workers + caller).
  int size() const { return threads_; }

  /// Lifetime execution counters, maintained with relaxed atomics (a
  /// handful of adds per job, not per task — negligible overhead).
  /// `jobs` and `tasks` are structural and therefore identical at any
  /// thread count; `inline_jobs`, `worker_joins`, and `queue_wait_ns`
  /// depend on scheduling and are timing-class metrics. The obs layer
  /// (src/obs/) exports these; the pool itself stays dependency-free.
  struct Stats {
    std::uint64_t jobs = 0;           ///< parallel_for invocations (n > 0).
    std::uint64_t tasks = 0;          ///< Task bodies run (sum of n).
    std::uint64_t inline_jobs = 0;    ///< Jobs run without pool dispatch.
    std::uint64_t worker_joins = 0;   ///< Worker wakeups that joined a job.
    std::uint64_t queue_wait_ns = 0;  ///< Total submit-to-join latency.
  };
  Stats stats() const {
    Stats s;
    s.jobs = jobs_.load(std::memory_order_relaxed);
    s.tasks = tasks_.load(std::memory_order_relaxed);
    s.inline_jobs = inline_jobs_.load(std::memory_order_relaxed);
    s.worker_joins = worker_joins_.load(std::memory_order_relaxed);
    s.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
    return s;
  }

  /// Run fn(i) for every i in [0, n), blocking until all complete.
  /// The calling thread participates. The first exception thrown by
  /// any task is rethrown here after the job drains. Nested calls
  /// (from inside a task) run inline.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) EXCLUDES(job_mu_, mu_) {
    if (n == 0) return;
    jobs_.fetch_add(1, std::memory_order_relaxed);
    tasks_.fetch_add(n, std::memory_order_relaxed);
    if (threads_ <= 1 || n == 1 || in_region()) {
      inline_jobs_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    MutexLock job_lock(job_mu_);  // one job at a time (job_mu_ -> mu_ order)
    Job job;
    job.body = [&fn](std::size_t i) { fn(i); };
    job.limit = n;
    job.submit_ns = clock_ns();
    {
      MutexLock lk(mu_);
      job_ = &job;
    }
    wake_.notify_all();
    run_region(job);
    {
      // Wait for every body to finish AND every worker to step out of
      // the job before destroying it: a worker that ran the last task
      // still touches job.next once more on its way out of the loop.
      MutexLock lk(mu_);
      while (!(job.completed.load() == job.limit && job.participants.load() == 0)) done_.wait(mu_);
      job_ = nullptr;
    }
    std::exception_ptr error;
    {
      // The job has drained, but error is guarded: read it under its
      // mutex rather than asserting quiescence to the analysis.
      MutexLock lk(job.error_mu);
      error = job.error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  struct Job {
    std::function<void(std::size_t)> body;
    std::size_t limit = 0;
    std::uint64_t submit_ns = 0;  // for queue-wait accounting
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<int> participants{0};  // workers currently inside run_region
    Mutex error_mu;
    std::exception_ptr error GUARDED_BY(error_mu);
  };

  static std::uint64_t clock_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static bool& in_region() {
    thread_local bool flag = false;
    return flag;
  }

  void run_region(Job& job) EXCLUDES(mu_) {
    in_region() = true;
    while (true) {
      const std::size_t i = job.next.fetch_add(1);
      if (i >= job.limit) break;
      try {
        job.body(i);
      } catch (...) {
        MutexLock lk(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.completed.fetch_add(1) + 1 == job.limit) {
        { MutexLock lk(mu_); }  // pair with waiter's check
        done_.notify_all();
      }
    }
    in_region() = false;
  }

  void worker_loop() EXCLUDES(mu_) {
    MutexLock lk(mu_);
    while (true) {
      while (!(stop_ || (job_ != nullptr && job_->next.load() < job_->limit))) wake_.wait(mu_);
      if (stop_) return;  // lk releases on scope exit
      Job* job = job_;
      job->participants.fetch_add(1, std::memory_order_relaxed);
      worker_joins_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t joined = clock_ns();
      if (joined > job->submit_ns)
        queue_wait_ns_.fetch_add(joined - job->submit_ns, std::memory_order_relaxed);
      lk.unlock();
      run_region(*job);
      lk.lock();
      // Ordered against the caller's predicate check by mu_; after
      // this the worker never touches *job again.
      job->participants.fetch_sub(1, std::memory_order_relaxed);
      done_.notify_all();
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;      // guards job_ / stop_ and the cv handshakes
  Mutex job_mu_;  // serializes concurrent parallel_for callers; precedes mu_
  CondVar wake_;
  CondVar done_;
  Job* job_ GUARDED_BY(mu_) = nullptr;
  bool stop_ GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> inline_jobs_{0};
  std::atomic<std::uint64_t> worker_joins_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
};

/// Convenience wrapper: run on `pool` when provided, inline otherwise.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  } else {
    pool->parallel_for(n, static_cast<Fn&&>(fn));
  }
}

}  // namespace mpa
