// Error-handling helpers shared across the MPA library.
//
// The library reports contract violations (bad arguments, broken
// invariants) with exceptions derived from std::logic_error /
// std::runtime_error so callers can distinguish programmer errors from
// data errors.
#pragma once

#include <stdexcept>
#include <string>

namespace mpa {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when input data (configs, logs) is malformed.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

/// Check a precondition; throws PreconditionError with `msg` on failure.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw PreconditionError(msg);
}

/// Check a data-validity condition; throws DataError with `msg` on failure.
inline void require_data(bool cond, const std::string& msg) {
  if (!cond) throw DataError(msg);
}

}  // namespace mpa
