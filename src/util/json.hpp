// Minimal JSON document model and recursive-descent parser, for the
// tooling side of the observability layer: `mpa_cli report` reads run
// manifests back, `mpa_cli trace summarize` reads span/Chrome trace
// files, and the tests validate every JSON export structurally.
//
// Scope is deliberately small: parse a complete UTF-8 document into an
// immutable DOM (objects are key-ordered maps, duplicate keys keep the
// last value). Serialization stays with each producer — exports are
// hand-written streams so their field order is part of the contract.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpa {

class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors throw DataError when the value has another type.
  bool as_bool() const;
  double as_number() const;
  /// The number's source text parsed as u64 — exact for integer fields
  /// (seeds, nanosecond timestamps) that a double would round.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member that must exist (throws DataError otherwise).
  const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string text_;  ///< String payload, or a number's source text.
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse one complete JSON document; throws DataError with a byte
/// offset on malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string json_escape(std::string_view s);

}  // namespace mpa
