// Deterministic random-number generation for the MPA library.
//
// Everything in the simulator and the learners that needs randomness
// takes an explicit Rng&, so whole-pipeline runs are reproducible from a
// single seed. The engine is xoshiro256** seeded via splitmix64, which
// is fast, high quality, and has a tiny state we can fork cheaply.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace mpa {

/// xoshiro256** engine with convenience samplers. Satisfies
/// UniformRandomBitGenerator so it can also drive <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Derive an independent child stream; the parent advances once.
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Standard normal via Box-Muller.
  double normal();
  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth
  /// for small means and normal approximation beyond 60.
  int poisson(double mean);
  /// Exponential with the given rate (> 0).
  double exponential(double rate);
  /// Zipf-like rank in [1, n] with exponent s >= 0 (s=0 is uniform).
  int zipf(int n, double s);
  /// Index sampled proportionally to non-negative `weights`.
  /// Requires a non-empty vector with a positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }
  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace mpa
