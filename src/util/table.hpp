// A tiny column-aligned text table used by the benchmark harnesses to
// print rows in the same layout as the paper's tables and figure data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpa {

/// Builder for an aligned text table. Cells are strings; numeric
/// convenience overloads format through format_double.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls fill it left to right.
  TextTable& row();
  TextTable& add(std::string cell);
  TextTable& add(const char* cell);
  TextTable& add(double v, int digits = 4);
  TextTable& add(int v);
  TextTable& add(std::size_t v);

  /// Render with single-space-padded columns and a dashed header rule.
  std::string str() const;
  /// Render as CSV (no quoting; callers must avoid commas in cells).
  std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpa
