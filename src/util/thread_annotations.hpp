// Clang thread-safety capability annotations (DESIGN.md §12), as
// no-op shims on every other compiler. The macro set mirrors the
// official clang mock header (clang.llvm.org/docs/ThreadSafetyAnalysis
// .html) so the annotated surface reads like the upstream idiom:
//
//   class CAPABILITY("mutex") Mutex { ... };
//   Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   void touch() REQUIRES(mu_);
//
// Every mutex-guarded field and lock-taking method in util/parallel,
// obs/, engine/, and serve/ carries these annotations; the CI
// static-analysis job builds with clang and -Werror=thread-safety so
// a locking-contract violation is a build break, and tools/srclint
// enforces that no mutex member goes unannotated.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MPA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MPA_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a lockable capability ("mutex" by convention).
#define CAPABILITY(x) MPA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (lock_guard-style scoped locks).
#define SCOPED_CAPABILITY MPA_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define GUARDED_BY(x) MPA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose pointee is protected by the capability.
#define PT_GUARDED_BY(x) MPA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does
/// not release them).
#define REQUIRES(...) MPA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) MPA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ACQUIRE(...) MPA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) MPA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define RELEASE(...) MPA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) MPA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) MPA_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called while holding the listed capabilities
/// (deadlock guard for self-locking methods).
#define EXCLUDES(...) MPA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) MPA_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (re-entry points).
#define ASSERT_CAPABILITY(x) MPA_THREAD_ANNOTATION_(assert_capability(x))

/// Opt a function out of the analysis entirely. Use only for
/// documented single-owner transitions (e.g. move constructors) where
/// the contract is enforced by the caller, never to silence a real
/// finding — and say why at the call site.
#define NO_THREAD_SAFETY_ANALYSIS MPA_THREAD_ANNOTATION_(no_thread_safety_analysis)
