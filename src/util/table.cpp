#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mpa {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(std::string cell) {
  require(!rows_.empty(), "TextTable::add: call row() first");
  require(rows_.back().size() < headers_.size(), "TextTable::add: row overflow");
  rows_.back().push_back(std::move(cell));
  return *this;
}

TextTable& TextTable::add(const char* cell) { return add(std::string(cell)); }
TextTable& TextTable::add(double v, int digits) { return add(format_double(v, digits)); }
TextTable& TextTable::add(int v) { return add(std::to_string(v)); }
TextTable& TextTable::add(std::size_t v) { return add(std::to_string(v)); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << s << std::string(widths[c] - s.size(), ' ');
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  os << join(headers_, ",") << '\n';
  for (const auto& r : rows_) os << join(r, ",") << '\n';
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

}  // namespace mpa
