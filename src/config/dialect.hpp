// Vendor config dialects: rendering a DeviceConfig to vendor-flavoured
// text and parsing it back.
//
// The paper's pipeline extends Batfish to parse "the configuration
// languages of various device vendors (e.g., Cisco IOS)". We model two
// dialect families that cover the same inference problems:
//
//  * IOS-like   — flat stanzas, "!"-terminated, indented option lines,
//                 multi-word native types ("ip access-list", "router bgp")
//                 and a few multi-word option keys.
//  * JunOS-like — braced blocks, ";"-terminated options, hyphenated
//                 single-token types and keys.
//
// The two families deliberately typify the same logical change
// differently (e.g. VLAN membership lives under `interface` on IOS-like
// devices but under `vlans` on JunOS-like ones), reproducing the
// vendor-typification limitation discussed in §2.2.
#pragma once

#include <string>
#include <string_view>

#include "config/stanza.hpp"
#include "model/inventory.hpp"

namespace mpa {

enum class Dialect : std::uint8_t { kIosLike, kJunosLike };

/// Which dialect a vendor's devices speak.
Dialect dialect_of(Vendor v);

/// Render a config to dialect text. Round-trips through parse() for
/// configs whose option keys come from the dialect's known-key set
/// (everything the simulator generates does).
std::string render(const DeviceConfig& config, Dialect d);

/// Parse dialect text into a DeviceConfig. Unknown stanza types and
/// option keys are preserved verbatim (first token = key). Throws
/// DataError on structurally malformed text (e.g. unbalanced braces).
DeviceConfig parse(std::string_view text, Dialect d, std::string device_id);

}  // namespace mpa
