// Vendor config dialects: rendering a DeviceConfig to vendor-flavoured
// text and parsing it back.
//
// The paper's pipeline extends Batfish to parse "the configuration
// languages of various device vendors (e.g., Cisco IOS)". We model two
// dialect families that cover the same inference problems:
//
//  * IOS-like   — flat stanzas, "!"-terminated, indented option lines,
//                 multi-word native types ("ip access-list", "router bgp")
//                 and a few multi-word option keys.
//  * JunOS-like — braced blocks, ";"-terminated options, hyphenated
//                 single-token types and keys.
//
// The two families deliberately typify the same logical change
// differently (e.g. VLAN membership lives under `interface` on IOS-like
// devices but under `vlans` on JunOS-like ones), reproducing the
// vendor-typification limitation discussed in §2.2.
#pragma once

#include <string>
#include <string_view>

#include "config/stanza.hpp"
#include "model/inventory.hpp"

namespace mpa {

enum class Dialect : std::uint8_t { kIosLike, kJunosLike };

/// Which dialect a vendor's devices speak.
Dialect dialect_of(Vendor v);

/// Render a config to dialect text. Round-trips through parse() for
/// configs whose option keys come from the dialect's known-key set
/// (everything the simulator generates does).
std::string render(const DeviceConfig& config, Dialect d);

/// Parse dialect text into a DeviceConfig. Unknown stanza types and
/// option keys are preserved verbatim (first token = key). Throws
/// DataError on structurally malformed text (e.g. unbalanced braces).
DeviceConfig parse(std::string_view text, Dialect d, std::string device_id);

/// Structural source map of dialect text: where each stanza lives and
/// which comments precede it. This is what lets the lint engine point
/// diagnostics at real lines of the rendered config and honor
/// suppression pragmas, without re-teaching it either dialect's syntax.
struct SourceStanza {
  std::string type;  ///< Vendor-native stanza type (as parse() yields).
  std::string name;
  int first_line = 0;  ///< 1-based line of the stanza header.
  int last_line = 0;   ///< 1-based line of the last body/terminator line.
  /// Comment lines immediately preceding the header, stripped of the
  /// dialect's comment markers and trimmed.
  std::vector<std::string> leading_comments;
};

struct SourceMap {
  std::vector<SourceStanza> stanzas;
  /// Every comment in the file (stripped + trimmed), wherever it sits;
  /// file-scope lint pragmas are fished out of these.
  std::vector<std::string> all_comments;
};

/// Scan dialect text without building a DeviceConfig. Tolerant of the
/// same inputs parse() accepts; stanza (type, name) pairs match what
/// parse() would produce for them.
SourceMap scan_source(std::string_view text, Dialect d);

}  // namespace mpa
