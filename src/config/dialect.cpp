#include "config/dialect.hpp"

#include <array>
#include <sstream>

#include "util/strings.hpp"

namespace mpa {
namespace {

// Multi-word constructs must be listed longest-first so the parser
// greedily matches "ip access-list" before a hypothetical "ip".
constexpr std::array<std::string_view, 6> kIosMultiwordTypes = {
    "ip access-list", "ip dhcp-relay", "router bgp", "router ospf", "qos policy",
    "port-channel",  // single token but hyphenated; harmless to list
};

constexpr std::array<std::string_view, 5> kIosMultiwordKeys = {
    "switchport access vlan", "switchport mode", "ip access-group", "ip address",
    "spanning-tree vlan",
};

std::string_view match_prefix(std::string_view line,
                              std::string_view candidate) {
  // Returns candidate if `line` starts with it followed by end/space.
  if (line.size() >= candidate.size() && line.substr(0, candidate.size()) == candidate &&
      (line.size() == candidate.size() || line[candidate.size()] == ' ')) {
    return candidate;
  }
  return {};
}

// Split one option line into (key, value) for the IOS-like dialect.
Option parse_ios_option(std::string_view line) {
  for (std::string_view key : kIosMultiwordKeys) {
    if (!match_prefix(line, key).empty()) {
      std::string_view rest = line.substr(key.size());
      return Option{std::string(key), std::string(trim(rest))};
    }
  }
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) return Option{std::string(line), ""};
  return Option{std::string(line.substr(0, sp)), std::string(trim(line.substr(sp + 1)))};
}

// Split a stanza header into (type, name) for the IOS-like dialect.
Stanza parse_ios_header(std::string_view line) {
  Stanza s;
  for (std::string_view t : kIosMultiwordTypes) {
    if (!match_prefix(line, t).empty()) {
      s.type = std::string(t);
      s.name = std::string(trim(line.substr(t.size())));
      return s;
    }
  }
  const std::size_t sp = line.find(' ');
  if (sp == std::string_view::npos) {
    s.type = std::string(line);
  } else {
    s.type = std::string(line.substr(0, sp));
    s.name = std::string(trim(line.substr(sp + 1)));
  }
  return s;
}

std::string render_ios(const DeviceConfig& c) {
  std::ostringstream os;
  os << "! device " << c.device_id() << "\n";
  for (const auto& s : c.stanzas()) {
    os << s.type;
    if (!s.name.empty()) os << ' ' << s.name;
    os << '\n';
    for (const auto& o : s.options) {
      os << "  " << o.key;
      if (!o.value.empty()) os << ' ' << o.value;
      os << '\n';
    }
    os << "!\n";
  }
  return os.str();
}

DeviceConfig parse_ios(std::string_view text, std::string device_id) {
  DeviceConfig c(std::move(device_id));
  Stanza cur;
  bool in_stanza = false;
  for (const auto& raw : split(text, '\n')) {
    std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line[0] == '!') {
      if (in_stanza) {
        c.stanzas().push_back(std::move(cur));
        cur = Stanza{};
        in_stanza = false;
      }
      continue;  // comment or terminator
    }
    if (indent_of(raw) == 0) {
      if (in_stanza) c.stanzas().push_back(std::move(cur));
      cur = parse_ios_header(line);
      in_stanza = true;
    } else {
      require_data(in_stanza, "IOS parse: option line outside a stanza: " + std::string(line));
      cur.options.push_back(parse_ios_option(line));
    }
  }
  if (in_stanza) c.stanzas().push_back(std::move(cur));
  return c;
}

std::string render_junos(const DeviceConfig& c) {
  std::ostringstream os;
  os << "/* device " << c.device_id() << " */\n";
  for (const auto& s : c.stanzas()) {
    os << s.type;
    if (!s.name.empty()) os << ' ' << s.name;
    os << " {\n";
    for (const auto& o : s.options) {
      os << "    " << o.key;
      if (!o.value.empty()) os << ' ' << o.value;
      os << ";\n";
    }
    os << "}\n";
  }
  return os.str();
}

DeviceConfig parse_junos(std::string_view text, std::string device_id) {
  DeviceConfig c(std::move(device_id));
  Stanza cur;
  bool in_stanza = false;
  for (const auto& raw : split(text, '\n')) {
    std::string_view line = trim(raw);
    if (line.empty() || starts_with(line, "/*")) continue;
    if (line == "}") {
      require_data(in_stanza, "JunOS parse: unbalanced '}'");
      c.stanzas().push_back(std::move(cur));
      cur = Stanza{};
      in_stanza = false;
      continue;
    }
    if (line.back() == '{') {
      require_data(!in_stanza, "JunOS parse: nested block in " + cur.type);
      std::string_view header = trim(line.substr(0, line.size() - 1));
      const std::size_t sp = header.find(' ');
      cur = Stanza{};
      if (sp == std::string_view::npos) {
        cur.type = std::string(header);
      } else {
        cur.type = std::string(header.substr(0, sp));
        cur.name = std::string(trim(header.substr(sp + 1)));
      }
      in_stanza = true;
      continue;
    }
    require_data(in_stanza, "JunOS parse: statement outside block: " + std::string(line));
    require_data(line.back() == ';', "JunOS parse: missing ';' on: " + std::string(line));
    std::string_view stmt = trim(line.substr(0, line.size() - 1));
    const std::size_t sp = stmt.find(' ');
    if (sp == std::string_view::npos) {
      cur.options.push_back(Option{std::string(stmt), ""});
    } else {
      cur.options.push_back(
          Option{std::string(stmt.substr(0, sp)), std::string(trim(stmt.substr(sp + 1)))});
    }
  }
  require_data(!in_stanza, "JunOS parse: unterminated block " + cur.type);
  return c;
}

SourceMap scan_ios(std::string_view text) {
  SourceMap map;
  std::vector<std::string> pending_comments;
  int line_no = 0;
  int open = -1;  // index into map.stanzas of the stanza being scanned
  auto close = [&](int end_line) {
    if (open >= 0) map.stanzas[static_cast<std::size_t>(open)].last_line = end_line;
    open = -1;
  };
  for (const auto& raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (line[0] == '!') {
      close(line_no);  // "!" terminates the current stanza
      const std::string comment(trim(line.substr(1)));
      if (!comment.empty()) {
        map.all_comments.push_back(comment);
        pending_comments.push_back(comment);
      }
      continue;
    }
    if (indent_of(raw) == 0) {
      close(line_no - 1);
      Stanza header = parse_ios_header(line);
      SourceStanza src;
      src.type = std::move(header.type);
      src.name = std::move(header.name);
      src.first_line = line_no;
      src.last_line = line_no;
      src.leading_comments = std::move(pending_comments);
      pending_comments.clear();
      open = static_cast<int>(map.stanzas.size());
      map.stanzas.push_back(std::move(src));
    } else if (open >= 0) {
      map.stanzas[static_cast<std::size_t>(open)].last_line = line_no;
    }
  }
  close(line_no);
  return map;
}

SourceMap scan_junos(std::string_view text) {
  SourceMap map;
  std::vector<std::string> pending_comments;
  int line_no = 0;
  int open = -1;
  for (const auto& raw : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty()) continue;
    if (starts_with(line, "/*")) {
      std::string_view body = line.substr(2);
      if (body.size() >= 2 && body.substr(body.size() - 2) == "*/")
        body = body.substr(0, body.size() - 2);
      const std::string comment(trim(body));
      if (!comment.empty()) {
        map.all_comments.push_back(comment);
        pending_comments.push_back(comment);
      }
      continue;
    }
    if (line == "}") {
      if (open >= 0) map.stanzas[static_cast<std::size_t>(open)].last_line = line_no;
      open = -1;
      continue;
    }
    if (line.back() == '{') {
      std::string_view header = trim(line.substr(0, line.size() - 1));
      const std::size_t sp = header.find(' ');
      SourceStanza src;
      if (sp == std::string_view::npos) {
        src.type = std::string(header);
      } else {
        src.type = std::string(header.substr(0, sp));
        src.name = std::string(trim(header.substr(sp + 1)));
      }
      src.first_line = line_no;
      src.last_line = line_no;
      src.leading_comments = std::move(pending_comments);
      pending_comments.clear();
      open = static_cast<int>(map.stanzas.size());
      map.stanzas.push_back(std::move(src));
      continue;
    }
    if (open >= 0) map.stanzas[static_cast<std::size_t>(open)].last_line = line_no;
  }
  return map;
}

}  // namespace

Dialect dialect_of(Vendor v) {
  switch (v) {
    case Vendor::kJunegrass:
    case Vendor::kBrocatel:
      return Dialect::kJunosLike;
    case Vendor::kCirrus:
    case Vendor::kAristos:
    case Vendor::kEffen:
    case Vendor::kPaloverde:
      return Dialect::kIosLike;
  }
  return Dialect::kIosLike;
}

std::string render(const DeviceConfig& config, Dialect d) {
  return d == Dialect::kIosLike ? render_ios(config) : render_junos(config);
}

DeviceConfig parse(std::string_view text, Dialect d, std::string device_id) {
  return d == Dialect::kIosLike ? parse_ios(text, std::move(device_id))
                                : parse_junos(text, std::move(device_id));
}

SourceMap scan_source(std::string_view text, Dialect d) {
  return d == Dialect::kIosLike ? scan_ios(text) : scan_junos(text);
}

}  // namespace mpa
