// Routing-instance extraction (Table 1, D5), after Benson et al.
//
// "We extract routing instances from device configurations, where each
// instance is a collection of routing processes of the same type (e.g.,
// OSPF processes) on different devices that are in the transitive
// closure of the 'adjacent-to' relationship."
//
// Adjacency rules per protocol:
//  * BGP  — process A is adjacent to process B if A names one of B's
//           device interface addresses in a `neighbor` statement (or
//           vice versa);
//  * OSPF — adjacent if their `network` statements cover a common
//           subnet;
//  * MSTP — spanning-tree processes sharing a region name.
#pragma once

#include <string>
#include <vector>

#include "config/stanza.hpp"

namespace mpa {

/// One routing process: a protocol stanza on one device.
struct RoutingProcess {
  std::string device_id;
  std::string protocol;  ///< "bgp", "ospf", or "mstp".
  std::string key;       ///< AS number / process id / region name.
};

/// One routing instance: the transitive closure of adjacent processes.
struct RoutingInstance {
  std::string protocol;
  std::vector<std::string> member_devices;  ///< One entry per process.

  std::size_t size() const { return member_devices.size(); }
};

/// Extract all routing processes configured in a network.
std::vector<RoutingProcess> extract_processes(const std::vector<DeviceConfig>& network);

/// Group processes into instances via union-find over adjacency.
std::vector<RoutingInstance> extract_routing_instances(const std::vector<DeviceConfig>& network);

/// Count and mean size of a protocol's instances (D5 metrics).
struct InstanceStats {
  int count = 0;
  double mean_size = 0;
};

InstanceStats instance_stats(const std::vector<RoutingInstance>& instances,
                             std::string_view protocol);

}  // namespace mpa
