// Configuration reference extraction (Table 1, D6).
//
// Following Benson et al.'s referential-complexity metrics, we count:
//
//  * intra-device references — options in one stanza that name another
//    stanza on the same device (an interface attaching an ACL, an
//    interface's VLAN membership, a virtual server naming a pool, a
//    routing process covering an interface's subnet, ...);
//  * inter-device references — options on one device that name entities
//    defined on other devices of the same network (BGP neighbor
//    addresses, VLANs spanning devices, OSPF networks shared with peers).
//
// "These metrics capture the configuration complexity imposed in
// aggregate by all aspects of a network's design."
#pragma once

#include <vector>

#include "config/stanza.hpp"

namespace mpa {

/// Reference counts for a single device (in the context of a network).
struct RefCounts {
  int intra = 0;
  int inter = 0;
};

/// Count the intra-device references inside one device config.
int count_intra_refs(const DeviceConfig& dev);

/// Count references from `dev` to entities configured on the other
/// devices of its network (`peers` excludes `dev` itself; including it
/// is harmless — self is skipped by device id).
int count_inter_refs(const DeviceConfig& dev, const std::vector<DeviceConfig>& peers);

/// Per-device counts in network context.
RefCounts count_references(const DeviceConfig& dev, const std::vector<DeviceConfig>& network);

/// Mean intra/inter reference counts over a network's devices —
/// the D6 metrics ("we enumerate the *average* number of inter- and
/// intra-device configuration references in a network").
struct NetworkComplexity {
  double mean_intra = 0;
  double mean_inter = 0;
};

NetworkComplexity referential_complexity(const std::vector<DeviceConfig>& network);

}  // namespace mpa
