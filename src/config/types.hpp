// Vendor-agnostic stanza-type normalization (§2.2).
//
// "Type names differ between vendors: e.g., an ACL is defined in Cisco
// IOS using an ip access-list stanza, while a firewall filter stanza is
// used in Juniper JunOS. We address this by manually identifying stanza
// types on different vendors that serve the same purpose, and we
// convert these to a vendor-agnostic type identifier."
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mpa {

/// Map a vendor-native stanza type to the vendor-agnostic identifier
/// ("interface", "vlan", "acl", "router", "pool", "user", ...). Unknown
/// types map to themselves, so new constructs degrade gracefully.
std::string normalize_type(std::string_view native_type);

/// True if the agnostic type is a middlebox-specific construct
/// (load-balancer pools and virtual servers, firewall ACL terms live on
/// firewalls too but are not middlebox-exclusive).
bool is_middlebox_type(std::string_view agnostic_type);

/// Data/control-plane construct classification used for the D4/D5
/// protocol-count metrics. L2 constructs: vlan, spanning-tree,
/// link-aggregation, udld, dhcp-relay. L3 constructs: bgp, ospf.
enum class PlaneLayer : std::uint8_t { kL2, kL3, kNeither };

/// Which plane layer a *protocol construct* belongs to, keyed by the
/// construct identifier returned by constructs_in(). "bgp"/"ospf" are
/// L3; "vlan"/"spanning-tree"/"link-aggregation"/"udld"/"dhcp-relay"
/// are L2; everything else is kNeither.
PlaneLayer layer_of(std::string_view construct);

/// The protocol constructs instantiated by a stanza of the given native
/// type (e.g. "router bgp" -> {"bgp"}, "vlan" -> {"vlan"}). Constructs
/// are the unit of Figure 11(b)'s protocol counts.
std::vector<std::string> constructs_of(std::string_view native_type);

}  // namespace mpa
