#include "config/types.hpp"

#include <array>
#include <utility>

namespace mpa {
namespace {

struct TypeMapping {
  std::string_view native;
  std::string_view agnostic;
};

// Both dialects' native types, mapped to the vendor-agnostic id.
constexpr std::array<TypeMapping, 26> kTypeMap = {{
    // interfaces
    {"interface", "interface"},
    {"interfaces", "interface"},
    // VLAN definitions
    {"vlan", "vlan"},
    {"vlans", "vlan"},
    // access control
    {"ip access-list", "acl"},
    {"firewall-filter", "acl"},
    // routing processes
    {"router bgp", "router"},
    {"router ospf", "router"},
    {"protocols-bgp", "router"},
    {"protocols-ospf", "router"},
    // spanning tree
    {"spanning-tree", "spanning-tree"},
    {"protocols-mstp", "spanning-tree"},
    // link aggregation
    {"port-channel", "link-aggregation"},
    {"lag", "link-aggregation"},
    // misc L2 helpers
    {"udld", "udld"},
    {"ip dhcp-relay", "dhcp-relay"},
    {"dhcp-relay", "dhcp-relay"},
    // users
    {"username", "user"},
    {"login-user", "user"},
    // middlebox constructs
    {"pool", "pool"},
    {"virtual-server", "virtual-server"},
    // management-plane plumbing
    {"snmp-server", "snmp"},
    {"snmp", "snmp"},
    {"qos policy", "qos"},
    {"class-of-service", "qos"},
    {"sflow", "sflow"},
}};

}  // namespace

std::string normalize_type(std::string_view native_type) {
  for (const auto& m : kTypeMap)
    if (m.native == native_type) return std::string(m.agnostic);
  return std::string(native_type);
}

bool is_middlebox_type(std::string_view agnostic_type) {
  return agnostic_type == "pool" || agnostic_type == "virtual-server";
}

PlaneLayer layer_of(std::string_view construct) {
  if (construct == "vlan" || construct == "spanning-tree" || construct == "link-aggregation" ||
      construct == "udld" || construct == "dhcp-relay") {
    return PlaneLayer::kL2;
  }
  if (construct == "bgp" || construct == "ospf") return PlaneLayer::kL3;
  return PlaneLayer::kNeither;
}

std::vector<std::string> constructs_of(std::string_view native_type) {
  const std::string agnostic = normalize_type(native_type);
  if (agnostic == "router") {
    // The protocol is the routing-process flavour, recoverable from the
    // native type on both dialects.
    if (native_type.find("bgp") != std::string_view::npos) return {"bgp"};
    if (native_type.find("ospf") != std::string_view::npos) return {"ospf"};
    return {};
  }
  if (layer_of(agnostic) != PlaneLayer::kNeither) return {agnostic};
  return {};
}

}  // namespace mpa
