// Minimal IPv4 address / prefix handling for reference and adjacency
// extraction. Header-only; only the operations the analyzers need.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/strings.hpp"

namespace mpa {

/// An IPv4 prefix (address + mask length). Value type, totally ordered
/// so it can key maps.
struct Ipv4Prefix {
  std::uint32_t addr = 0;  ///< Host-order address bits.
  int len = 32;            ///< Mask length, 0-32.

  /// The network (masked) address of this prefix.
  std::uint32_t network() const {
    return len == 0 ? 0 : addr & (~std::uint32_t{0} << (32 - len));
  }
  /// True if `ip` falls inside this prefix.
  bool contains(std::uint32_t ip) const {
    return len == 0 || (ip & (~std::uint32_t{0} << (32 - len))) == network();
  }
  /// The enclosing subnet as a canonical prefix (network address + len).
  Ipv4Prefix subnet() const { return Ipv4Prefix{network(), len}; }

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;
};

/// Parse "a.b.c.d" into host-order bits; nullopt on malformed input.
inline std::optional<std::uint32_t> parse_ipv4(std::string_view s) {
  std::uint32_t out = 0;
  int octets = 0;
  for (const auto& part : split(s, '.')) {
    if (part.empty() || part.size() > 3 || octets == 4) return std::nullopt;
    int v = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      v = v * 10 + (c - '0');
    }
    if (v > 255) return std::nullopt;
    out = (out << 8) | static_cast<std::uint32_t>(v);
    ++octets;
  }
  return octets == 4 ? std::optional<std::uint32_t>(out) : std::nullopt;
}

/// Parse "a.b.c.d/len"; nullopt on malformed input.
inline std::optional<Ipv4Prefix> parse_prefix(std::string_view s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = parse_ipv4(s.substr(0, slash));
  if (!ip) return std::nullopt;
  int len = 0;
  const std::string_view ls = s.substr(slash + 1);
  if (ls.empty() || ls.size() > 2) return std::nullopt;
  for (char c : ls) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Ipv4Prefix{*ip, len};
}

/// Format host-order bits as dotted quad.
inline std::string format_ipv4(std::uint32_t ip) {
  return std::to_string((ip >> 24) & 0xff) + '.' + std::to_string((ip >> 16) & 0xff) + '.' +
         std::to_string((ip >> 8) & 0xff) + '.' + std::to_string(ip & 0xff);
}

/// Format a prefix as "a.b.c.d/len".
inline std::string format_prefix(const Ipv4Prefix& p) {
  return format_ipv4(p.addr) + '/' + std::to_string(p.len);
}

}  // namespace mpa
