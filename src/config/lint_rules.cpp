// The built-in lint rules. Each rule is a small LintRule subclass
// registered in RuleRegistry::builtin(); the engine (lint.cpp) drives
// them and handles severity overrides, suppression, and spans.
//
// Device-scope rules use the per-device name indexes in DeviceView;
// network-scope rules use the shared address/BGP indexes in
// NetworkView. Rules report against the vendor-agnostic model, so each
// fires identically on IOS-like and JunOS-like configs.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/lint.hpp"
#include "config/types.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

/// ACL names attached by an interface stanza (via "ip access-group" /
/// "filter"), in option order.
std::vector<std::string> attached_acls(const Stanza& iface) {
  std::vector<std::string> out;
  for (const auto& o : iface.options) {
    if (o.key != "ip access-group" && o.key != "filter") continue;
    const auto tokens = split_ws(o.value);
    if (!tokens.empty()) out.push_back(tokens[0]);
  }
  return out;
}

/// VLAN ids referenced (not defined) by a stanza: access membership
/// ("switchport access vlan" / "vlan-members"), and per-VLAN
/// spanning-tree tuning on interfaces.
std::vector<std::string> referenced_vlans(const Stanza& s) {
  std::vector<std::string> out;
  for (const auto& o : s.options)
    if (o.key == "switchport access vlan" || o.key == "spanning-tree vlan" ||
        o.key == "vlan-members") {
      out.push_back(o.value);
    }
  return out;
}

bool is_acl_term(const Option& o) { return o.key == "permit" || o.key == "deny"; }

/// A term value that matches all traffic, making later terms dead.
bool is_catch_all(std::string_view value) {
  return value == "any" || value == "ip any any" || value == "any any";
}

// ------------------------------------------------------------ referential

class DanglingAclRefRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"dangling-acl-ref", "Interface attaches an ACL that is not defined on the device",
            LintCategory::kReferential, LintSeverity::kError};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "interface") continue;
      for (const auto& acl : attached_acls(s))
        if (!dev.defines("acl", acl))
          sink.report(dev, &s, s.name + " -> acl '" + acl + "'");
    }
  }
};

class DanglingVlanRefRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"dangling-vlan-ref", "VLAN membership or member interface without a definition",
            LintCategory::kReferential, LintSeverity::kError};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      const std::string agnostic = normalize_type(s.type);
      if (agnostic == "interface") {
        for (const auto& vlan : referenced_vlans(s))
          if (!dev.defines("vlan", vlan))
            sink.report(dev, &s, s.name + " -> vlan '" + vlan + "'");
      } else if (agnostic == "vlan") {
        for (const auto& name : s.get_all("interface"))
          if (!dev.defines("interface", name))
            sink.report(dev, &s, "vlan " + s.name + " -> interface '" + name + "'");
      }
    }
  }
};

class DanglingPoolRefRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"dangling-pool-ref", "Virtual server names a pool that does not exist",
            LintCategory::kReferential, LintSeverity::kError};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "virtual-server") continue;
      for (const auto& name : s.get_all("pool"))
        if (!dev.defines("pool", name))
          sink.report(dev, &s, s.name + " -> pool '" + name + "'");
    }
  }
};

class DanglingLagMemberRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"dangling-lag-member", "Port-channel member interface is missing",
            LintCategory::kReferential, LintSeverity::kError};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "link-aggregation") continue;
      for (const auto& name : s.get_all("member"))
        if (!dev.defines("interface", name))
          sink.report(dev, &s, s.name + " -> interface '" + name + "'");
    }
  }
};

// ----------------------------------------------------------------- filter

class EmptyAclRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"empty-acl", "ACL defined with no permit/deny terms", LintCategory::kFilter,
            LintSeverity::kWarning};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "acl") continue;
      bool has_term = false;
      for (const auto& o : s.options)
        if (is_acl_term(o)) has_term = true;
      if (!has_term) sink.report(dev, &s, "acl '" + s.name + "' has no terms");
    }
  }
};

class ShadowedAclTermRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"acl-shadowed-term", "ACL term duplicates an earlier term and never matches",
            LintCategory::kFilter, LintSeverity::kWarning};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "acl") continue;
      std::set<std::pair<std::string, std::string>> seen;
      bool catch_all = false;
      for (const auto& o : s.options) {
        if (!is_acl_term(o)) continue;
        // Terms after a catch-all belong to acl-unreachable-term.
        if (!catch_all && !seen.insert({o.key, o.value}).second) {
          sink.report(dev, &s,
                      "acl '" + s.name + "': duplicate term '" + o.key + " " + o.value + "'");
        }
        if (is_catch_all(o.value)) catch_all = true;
      }
    }
  }
};

class UnreachableAclTermRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"acl-unreachable-term", "ACL term follows a catch-all term and is dead",
            LintCategory::kFilter, LintSeverity::kWarning};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "acl") continue;
      bool catch_all = false;
      for (const auto& o : s.options) {
        if (!is_acl_term(o)) continue;
        if (catch_all) {
          sink.report(dev, &s,
                      "acl '" + s.name + "': term '" + o.key + " " + o.value +
                          "' is unreachable after a catch-all");
        }
        if (is_catch_all(o.value)) catch_all = true;
      }
    }
  }
};

// ---------------------------------------------------------------- hygiene

class UnreferencedAclRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"unreferenced-acl", "ACL defined but attached to no interface",
            LintCategory::kHygiene, LintSeverity::kInfo};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    std::set<std::string> used;
    for (const auto& s : dev.config().stanzas())
      if (normalize_type(s.type) == "interface")
        for (auto& acl : attached_acls(s)) used.insert(std::move(acl));
    for (const auto& s : dev.config().stanzas())
      if (normalize_type(s.type) == "acl" && used.count(s.name) == 0)
        sink.report(dev, &s, "acl '" + s.name + "' is never attached");
  }
};

class UnreferencedPoolRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"unreferenced-pool", "Pool defined but used by no virtual server",
            LintCategory::kHygiene, LintSeverity::kInfo};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    std::set<std::string> used;
    for (const auto& s : dev.config().stanzas())
      if (normalize_type(s.type) == "virtual-server")
        for (auto& p : s.get_all("pool")) used.insert(std::move(p));
    for (const auto& s : dev.config().stanzas())
      if (normalize_type(s.type) == "pool" && used.count(s.name) == 0)
        sink.report(dev, &s, "pool '" + s.name + "' is never used");
  }
};

class UnreferencedVlanRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"unreferenced-vlan", "VLAN defined with no member interface anywhere on the device",
            LintCategory::kHygiene, LintSeverity::kInfo};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    std::set<std::string> used;
    for (const auto& s : dev.config().stanzas())
      if (normalize_type(s.type) == "interface")
        for (auto& v : referenced_vlans(s)) used.insert(std::move(v));
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "vlan") continue;
      if (used.count(s.name) > 0) continue;
      if (!s.get_all("interface").empty()) continue;  // members listed inline
      sink.report(dev, &s, "vlan " + s.name + " has no members");
    }
  }
};

class UnusedInterfaceUpRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"unused-interface-up", "Interface carries no config but is not shut down",
            LintCategory::kHygiene, LintSeverity::kInfo};
  }
  void check_device(const DeviceView& dev, LintSink& sink) const override {
    // Interfaces referenced by VLAN member lists or LAGs are in use.
    std::set<std::string> referenced;
    for (const auto& s : dev.config().stanzas()) {
      const std::string agnostic = normalize_type(s.type);
      if (agnostic == "vlan")
        for (auto& n : s.get_all("interface")) referenced.insert(std::move(n));
      if (agnostic == "link-aggregation")
        for (auto& n : s.get_all("member")) referenced.insert(std::move(n));
    }
    for (const auto& s : dev.config().stanzas()) {
      if (normalize_type(s.type) != "interface") continue;
      if (referenced.count(s.name) > 0) continue;
      bool in_use = false;
      bool shut = false;
      for (const auto& o : s.options) {
        if (o.key == "ip address" || o.key == "ip-address" || o.key == "ip access-group" ||
            o.key == "filter" || o.key == "switchport access vlan" || o.key == "vlan-members") {
          in_use = true;
        }
        if (o.key == "shutdown" || o.key == "disable") shut = true;
      }
      if (!in_use && !shut)
        sink.report(dev, &s, s.name + " carries no config; add 'shutdown'");
    }
  }
};

// ------------------------------------------------------------- addressing

class DuplicateAddressRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"duplicate-address", "Same IP address configured on two interfaces",
            LintCategory::kAddressing, LintSeverity::kError};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    std::map<std::uint32_t, std::string> owners;  // ip -> "device/iface"
    for (const auto& ia : net.iface_addrs()) {
      const DeviceView& dev = net.devices()[ia.device];
      const std::string here = dev.device_id() + "/" + ia.stanza->name;
      const auto [it, inserted] = owners.emplace(ia.prefix.addr, here);
      if (!inserted)
        sink.report(dev, ia.stanza, format_ipv4(ia.prefix.addr) + " also on " + it->second);
    }
  }
};

class SubnetOverlapRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"subnet-overlap", "Interface subnets overlap without being identical",
            LintCategory::kAddressing, LintSeverity::kWarning};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    // Distinct subnets, keeping the first interface seen on each.
    std::map<Ipv4Prefix, const NetworkView::IfaceAddr*> subnets;
    for (const auto& ia : net.iface_addrs()) subnets.emplace(ia.prefix.subnet(), &ia);
    for (auto a = subnets.begin(); a != subnets.end(); ++a) {
      for (auto b = std::next(a); b != subnets.end(); ++b) {
        const Ipv4Prefix& pa = a->first;
        const Ipv4Prefix& pb = b->first;
        if (pa.len == pb.len) continue;  // identical handled above; equal-len disjoint or same
        const Ipv4Prefix& wide = pa.len < pb.len ? pa : pb;
        const Ipv4Prefix& narrow = pa.len < pb.len ? pb : pa;
        if (!wide.contains(narrow.network())) continue;
        const auto* ia = narrow == pa ? a->second : b->second;
        const DeviceView& dev = net.devices()[ia->device];
        sink.report(dev, ia->stanza,
                    format_prefix(narrow) + " overlaps " + format_prefix(wide));
      }
    }
  }
};

// --------------------------------------------------------------- protocol

class OneSidedBgpRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"one-sided-bgp-session", "BGP neighbor whose owner runs no BGP process",
            LintCategory::kProtocol, LintSeverity::kWarning};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    for (const auto& proc : net.bgp_procs()) {
      const DeviceView& dev = net.devices()[proc.device];
      for (const auto& v : proc.stanza->get_all("neighbor")) {
        const auto tokens = split_ws(v);
        if (tokens.empty()) continue;
        const auto ip = parse_ipv4(tokens[0]);
        if (!ip) continue;
        const std::size_t owner = net.owner_of(*ip);
        if (owner == NetworkView::npos || net.runs_bgp(owner)) continue;
        sink.report(dev, proc.stanza,
                    "neighbor " + tokens[0] + " (" + net.devices()[owner].device_id() +
                        " runs no BGP process)");
      }
    }
  }
};

class BgpAsMismatchRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"bgp-as-mismatch", "BGP neighbor's configured remote-as disagrees with the peer",
            LintCategory::kProtocol, LintSeverity::kError};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    // AS number of each BGP-speaking device: the process stanza's name.
    std::map<std::size_t, std::string> as_of;
    for (const auto& proc : net.bgp_procs()) as_of.emplace(proc.device, proc.stanza->name);
    for (const auto& proc : net.bgp_procs()) {
      const DeviceView& dev = net.devices()[proc.device];
      for (const auto& v : proc.stanza->get_all("neighbor")) {
        const auto tokens = split_ws(v);
        // "neighbor <ip> remote-as <asn>"
        if (tokens.size() < 3 || tokens[1] != "remote-as") continue;
        const auto ip = parse_ipv4(tokens[0]);
        if (!ip) continue;
        const std::size_t owner = net.owner_of(*ip);
        if (owner == NetworkView::npos) continue;
        const auto peer_as = as_of.find(owner);
        if (peer_as == as_of.end() || peer_as->second == tokens[2]) continue;
        sink.report(dev, proc.stanza,
                    "neighbor " + tokens[0] + " remote-as " + tokens[2] + " but " +
                        net.devices()[owner].device_id() + " runs AS " + peer_as->second);
      }
    }
  }
};

class OspfAreaMismatchRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"ospf-area-mismatch", "Devices disagree on the OSPF area of a shared subnet",
            LintCategory::kProtocol, LintSeverity::kError};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    struct Claim {
      std::size_t device;
      const Stanza* stanza;
      std::string area;
    };
    std::map<std::string, std::vector<Claim>> by_prefix;
    for (std::size_t d = 0; d < net.devices().size(); ++d) {
      for (const auto& s : net.devices()[d].config().stanzas()) {
        if (constructs_of(s.type) != std::vector<std::string>{"ospf"}) continue;
        for (const auto& v : s.get_all("network")) {
          // "network <prefix> area <id>"
          const auto tokens = split_ws(v);
          if (tokens.size() < 3 || tokens[1] != "area") continue;
          by_prefix[tokens[0]].push_back(Claim{d, &s, tokens[2]});
        }
      }
    }
    for (const auto& [prefix, claims] : by_prefix) {
      std::set<std::string> areas;
      for (const auto& c : claims) areas.insert(c.area);
      if (areas.size() <= 1) continue;
      for (const auto& c : claims) {
        sink.report(net.devices()[c.device], c.stanza,
                    prefix + " claimed in area " + c.area + " (network also uses " +
                        join(std::vector<std::string>(areas.begin(), areas.end()), ", ") + ")");
      }
    }
  }
};

class MtuMismatchRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"mtu-mismatch", "Interfaces on an inferred link disagree on MTU",
            LintCategory::kProtocol, LintSeverity::kWarning};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    // Interfaces sharing a subnet form an inferred link; explicit MTU
    // values on them must agree (absent = platform default, unknown).
    struct End {
      std::size_t device;
      const Stanza* stanza;
      std::string mtu;
    };
    std::map<Ipv4Prefix, std::vector<End>> links;
    for (const auto& ia : net.iface_addrs()) {
      const auto mtu = ia.stanza->get("mtu");
      if (!mtu) continue;
      links[ia.prefix.subnet()].push_back(End{ia.device, ia.stanza, *mtu});
    }
    for (const auto& [subnet, ends] : links) {
      const std::string& first = ends.front().mtu;
      bool mismatch = false;
      for (const auto& e : ends)
        if (e.mtu != first) mismatch = true;
      if (!mismatch) continue;
      for (const auto& e : ends) {
        sink.report(net.devices()[e.device], e.stanza,
                    e.stanza->name + " mtu " + e.mtu + " on link " + format_prefix(subnet) +
                        " (peers disagree)");
      }
    }
  }
};

class VlanSpanGapRule final : public LintRule {
 public:
  RuleInfo info() const override {
    return {"vlan-span-undefined", "VLAN used here but defined only on other devices",
            LintCategory::kProtocol, LintSeverity::kWarning};
  }
  void check_network(const NetworkView& net, LintSink& sink) const override {
    // Where each VLAN id is defined, network-wide.
    std::map<std::string, std::vector<std::size_t>> defined_on;
    for (std::size_t d = 0; d < net.devices().size(); ++d)
      for (const auto& name : net.devices()[d].names_of("vlan"))
        defined_on[name].push_back(d);
    for (std::size_t d = 0; d < net.devices().size(); ++d) {
      const DeviceView& dev = net.devices()[d];
      for (const auto& s : dev.config().stanzas()) {
        if (normalize_type(s.type) != "interface") continue;
        for (const auto& vlan : referenced_vlans(s)) {
          if (dev.defines("vlan", vlan)) continue;
          const auto it = defined_on.find(vlan);
          if (it == defined_on.end() || it->second.empty()) continue;  // dangling-vlan-ref's case
          sink.report(dev, &s,
                      s.name + " uses vlan " + vlan + " defined on " +
                          net.devices()[it->second.front()].device_id() + " but not here");
        }
      }
    }
  }
};

}  // namespace

const RuleRegistry& RuleRegistry::builtin() {
  static const RuleRegistry registry = [] {
    RuleRegistry r;
    r.add(std::make_unique<DanglingAclRefRule>());
    r.add(std::make_unique<DanglingVlanRefRule>());
    r.add(std::make_unique<DanglingPoolRefRule>());
    r.add(std::make_unique<DanglingLagMemberRule>());
    r.add(std::make_unique<EmptyAclRule>());
    r.add(std::make_unique<ShadowedAclTermRule>());
    r.add(std::make_unique<UnreachableAclTermRule>());
    r.add(std::make_unique<UnreferencedAclRule>());
    r.add(std::make_unique<UnreferencedPoolRule>());
    r.add(std::make_unique<UnreferencedVlanRule>());
    r.add(std::make_unique<UnusedInterfaceUpRule>());
    r.add(std::make_unique<DuplicateAddressRule>());
    r.add(std::make_unique<SubnetOverlapRule>());
    r.add(std::make_unique<OneSidedBgpRule>());
    r.add(std::make_unique<BgpAsMismatchRule>());
    r.add(std::make_unique<OspfAreaMismatchRule>());
    r.add(std::make_unique<MtuMismatchRule>());
    r.add(std::make_unique<VlanSpanGapRule>());
    return r;
  }();
  return registry;
}

}  // namespace mpa
