// Config static analysis: a rule-engine lint over vendor-dialect
// configuration snapshots.
//
// The paper's motivation is that error-prone manual management
// introduces config inconsistencies that degrade network health. This
// module detects those inconsistencies with a registry of LintRule
// objects — referential integrity (dangling ACL/VLAN/pool/LAG
// references), addressing (duplicate addresses, overlapping subnets),
// filter hygiene (empty ACLs, shadowed and unreachable terms),
// protocol coherence (one-sided or AS-mismatched BGP sessions, OSPF
// area disagreement, MTU mismatch on inferred links, VLAN span gaps),
// and housekeeping (unreferenced definitions, unused interfaces left
// enabled).
//
// Diagnostics carry source spans resolved against the rendered dialect
// text (both IOS-like and JunOS-like flavours), and rules can be
// suppressed per stanza or per device with comment pragmas:
//
//   IOS-like    ! lint-disable <rule-id> [<rule-id>...]     (next stanza)
//               ! lint-disable-file <rule-id> [...]         (whole device)
//   JunOS-like  /* lint-disable <rule-id> [...] */          (next block)
//               /* lint-disable-file <rule-id> [...] */     (whole device)
//
// The rule id "all" suppresses every rule. Pragmas live in comments,
// so they survive parse()/render() round trips untouched.
//
// Downstream, findings become per-(network, month) hygiene metrics in
// the case table (metrics/lint_metrics.hpp), a memoized session
// artifact (engine/session.hpp), and `mpa_cli lint` output in text,
// JSON, and SARIF form.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "config/addr.hpp"
#include "config/dialect.hpp"
#include "config/stanza.hpp"

namespace mpa {

// ---------------------------------------------------------------- taxonomy

enum class LintSeverity : std::uint8_t { kInfo, kWarning, kError };
inline constexpr int kNumLintSeverities = 3;

enum class LintCategory : std::uint8_t {
  kReferential,  ///< A reference that does not resolve.
  kAddressing,   ///< IP addressing inconsistencies.
  kFilter,       ///< ACL / firewall-filter structure problems.
  kProtocol,     ///< Cross-device protocol disagreements.
  kHygiene,      ///< Dead or sloppy configuration.
};
inline constexpr int kNumLintCategories = 5;

std::string_view to_string(LintSeverity s);
std::string_view to_string(LintCategory c);
std::optional<LintSeverity> parse_severity(std::string_view s);

// ------------------------------------------------------------- diagnostics

/// 1-based line range in the rendered dialect text; {0, 0} when the
/// finding was produced without source text.
struct SourceSpan {
  int first_line = 0;
  int last_line = 0;
  bool resolved() const { return first_line > 0; }

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

struct Diagnostic {
  std::string rule_id;
  LintSeverity severity{};
  LintCategory category{};
  std::string device_id;
  std::string object;   ///< "type name" of the anchoring stanza ("" = device).
  std::string message;  ///< Human-readable specifics.
  SourceSpan span;
  bool suppressed = false;  ///< Pragma-suppressed (kept only on request).
};

// ------------------------------------------------------- source resolution

/// Per-device source info extracted from dialect text: stanza spans and
/// suppression pragmas. Cheap line scan; build once per snapshot and
/// reuse across lint runs.
class LintSource {
 public:
  LintSource() = default;
  static LintSource scan(std::string_view text, Dialect d);

  /// Span of the stanza with this native (type, name), if the text
  /// contains it.
  SourceSpan span_of(std::string_view type, std::string_view name) const;

  /// True if `rule_id` is suppressed for this stanza (stanza pragma or
  /// device-wide pragma). An empty type/name asks about device scope.
  bool suppresses(std::string_view rule_id, std::string_view type, std::string_view name) const;

 private:
  struct Entry {
    SourceSpan span;
    std::set<std::string, std::less<>> disabled;
  };
  std::map<std::pair<std::string, std::string>, Entry, std::less<>> stanzas_;
  std::set<std::string, std::less<>> device_disabled_;
};

// ------------------------------------------------------------------ rules

struct RuleInfo {
  std::string_view id;       ///< Stable kebab-case identifier.
  std::string_view summary;  ///< One-line description (SARIF rule help).
  LintCategory category{};
  LintSeverity severity{};  ///< Default severity; overridable per run.
};

class DeviceView;
class NetworkView;
class LintSink;

/// One check. Implementations override the scope(s) they need;
/// device-scope rules see one device at a time, network-scope rules
/// see the whole network with shared cross-device indexes.
class LintRule {
 public:
  virtual ~LintRule() = default;
  virtual RuleInfo info() const = 0;
  virtual void check_device(const DeviceView& dev, LintSink& sink) const;
  virtual void check_network(const NetworkView& net, LintSink& sink) const;
};

/// Ordered, id-unique collection of rules. The built-in registry holds
/// every rule in this module; custom registries can mix in their own.
class RuleRegistry {
 public:
  RuleRegistry() = default;
  RuleRegistry(RuleRegistry&&) = default;
  RuleRegistry& operator=(RuleRegistry&&) = default;

  /// Add a rule; its id must not collide with a registered one.
  void add(std::unique_ptr<LintRule> rule);

  const std::vector<std::unique_ptr<LintRule>>& rules() const { return rules_; }
  /// Look up by id; nullptr when absent.
  const LintRule* find(std::string_view id) const;

  /// The built-in rules, constructed once.
  static const RuleRegistry& builtin();

 private:
  std::vector<std::unique_ptr<LintRule>> rules_;
};

// ------------------------------------------------------------ analysis API

struct LintOptions {
  /// Per-rule enablement; rules absent from the map run. {"all", false}
  /// disables everything not explicitly re-enabled.
  std::map<std::string, bool> enable;
  /// Per-rule severity overrides.
  std::map<std::string, LintSeverity> severity;
  /// Keep pragma-suppressed findings, marked suppressed=true, instead
  /// of dropping them.
  bool keep_suppressed = false;
  /// Rule set to run (null = RuleRegistry::builtin()).
  const RuleRegistry* registry = nullptr;
};

/// One device of a network under analysis: the parsed config plus its
/// optional source info (spans + pragmas).
struct LintInput {
  const DeviceConfig* config = nullptr;
  const LintSource* source = nullptr;  ///< May be null (no text available).
};

/// Run all applicable rules over one network. Diagnostics come out
/// grouped by rule (registry order), then device, then stanza order —
/// deterministic for identical inputs.
std::vector<Diagnostic> run_lint(const std::vector<LintInput>& network,
                                 const LintOptions& opts = {});

/// Convenience: intra-device checks on one parsed config (no spans).
std::vector<Diagnostic> lint_device(const DeviceConfig& config, const LintOptions& opts = {});

/// Convenience: all checks over parsed configs (no spans).
std::vector<Diagnostic> lint_network(const std::vector<DeviceConfig>& network,
                                     const LintOptions& opts = {});

/// Raw dialect text of one device, for span-resolving runs.
struct DeviceText {
  std::string device_id;
  std::string text;
  Dialect dialect = Dialect::kIosLike;
};

/// Parse + scan each device's text, then run all checks with spans
/// resolved and pragmas honored. Throws DataError on malformed text.
std::vector<Diagnostic> lint_network_text(const std::vector<DeviceText>& network,
                                          const LintOptions& opts = {});

// ------------------------------------------------ rule execution contexts

/// Device under analysis with the indexes device-scope rules share.
class DeviceView {
 public:
  DeviceView(const DeviceConfig& config, const LintSource* source);

  const DeviceConfig& config() const { return *config_; }
  const LintSource* source() const { return source_; }
  const std::string& device_id() const { return config_->device_id(); }

  /// Names of stanzas whose agnostic type matches.
  const std::set<std::string>& names_of(std::string_view agnostic) const;
  bool defines(std::string_view agnostic, std::string_view name) const;

 private:
  const DeviceConfig* config_;
  const LintSource* source_;
  mutable std::map<std::string, std::set<std::string>, std::less<>> names_;
};

/// Whole network with cross-device indexes shared by network rules.
class NetworkView {
 public:
  explicit NetworkView(const std::vector<LintInput>& inputs);

  const std::vector<DeviceView>& devices() const { return devices_; }

  struct IfaceAddr {
    std::size_t device = 0;  ///< Index into devices().
    const Stanza* stanza = nullptr;
    Ipv4Prefix prefix;
  };
  /// Every interface address in the network, in device/stanza order.
  const std::vector<IfaceAddr>& iface_addrs() const { return iface_addrs_; }

  /// Device index owning `ip` on an interface, or npos.
  std::size_t owner_of(std::uint32_t ip) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Devices running a BGP process, with the process stanza.
  struct BgpProc {
    std::size_t device = 0;
    const Stanza* stanza = nullptr;
  };
  const std::vector<BgpProc>& bgp_procs() const { return bgp_procs_; }
  bool runs_bgp(std::size_t device) const;

 private:
  std::vector<DeviceView> devices_;
  std::vector<IfaceAddr> iface_addrs_;
  std::map<std::uint32_t, std::size_t> addr_owner_;
  std::vector<BgpProc> bgp_procs_;
  std::set<std::size_t> bgp_devices_;
};

/// Where rules deposit findings. Handles severity overrides, pragma
/// suppression, and span resolution so rules only say what is wrong
/// and where.
class LintSink {
 public:
  LintSink(const LintOptions& opts, std::vector<Diagnostic>& out);

  /// Anchor a finding to a stanza of `dev` (null = whole device).
  void report(const DeviceView& dev, const Stanza* anchor, std::string message);

  /// The rule currently executing (set by the engine).
  void set_active(const LintRule* rule);

 private:
  const LintOptions* opts_;
  std::vector<Diagnostic>* out_;
  const LintRule* active_ = nullptr;
  RuleInfo active_info_{};
};

}  // namespace mpa
