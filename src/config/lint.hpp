// Configuration consistency lint.
//
// The reference extractor (refs.hpp) counts references that *resolve*;
// this module reports the ones that don't — dangling ACL attachments,
// VLAN memberships without definitions, virtual servers naming missing
// pools — plus cross-device problems (duplicate addresses, one-sided
// BGP sessions). These are exactly the inconsistencies the paper's
// motivation calls error-prone manual management likely to introduce,
// and the kind of signal an organization would want next to MPA's
// practice metrics.
#pragma once

#include <string>
#include <vector>

#include "config/stanza.hpp"

namespace mpa {

enum class LintKind : std::uint8_t {
  kDanglingAclRef,       ///< Interface attaches an ACL that is not defined.
  kDanglingVlanRef,      ///< VLAN membership without a vlan definition.
  kDanglingPoolRef,      ///< Virtual server names a missing pool.
  kDanglingLagMember,    ///< Port-channel member interface missing.
  kEmptyAcl,             ///< ACL defined with no permit/deny terms.
  kDuplicateAddress,     ///< Same IP configured on two interfaces.
  kOneSidedBgpSession,   ///< Neighbor statement with no reciprocating peer.
};

std::string_view to_string(LintKind k);

struct LintIssue {
  LintKind kind{};
  std::string device_id;
  std::string detail;  ///< Human-readable specifics.
};

/// Intra-device checks on one configuration.
std::vector<LintIssue> lint_device(const DeviceConfig& config);

/// All intra-device checks plus cross-device checks over one network.
std::vector<LintIssue> lint_network(const std::vector<DeviceConfig>& network);

}  // namespace mpa
