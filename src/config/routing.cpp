#include "config/routing.hpp"

#include <map>
#include <numeric>
#include <set>

#include "config/addr.hpp"
#include "config/types.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

/// Plain union-find over process indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Facts about one process that adjacency rules consult.
struct ProcFacts {
  RoutingProcess proc;
  std::set<std::uint32_t> neighbor_ips;  // BGP neighbor targets
  std::set<Ipv4Prefix> subnets;          // canonical subnets of network stmts
  std::set<std::uint32_t> local_addrs;   // device interface addresses
  std::string region;                    // MSTP region
};

std::vector<ProcFacts> gather_facts(const std::vector<DeviceConfig>& network) {
  std::vector<ProcFacts> out;
  for (const auto& dev : network) {
    // Device interface addresses, shared by every process on the device.
    std::set<std::uint32_t> addrs;
    for (const auto& s : dev.stanzas()) {
      if (normalize_type(s.type) != "interface") continue;
      for (const auto& o : s.options) {
        if (o.key == "ip address" || o.key == "ip-address") {
          if (const auto p = parse_prefix(o.value)) addrs.insert(p->addr);
        }
      }
    }
    for (const auto& s : dev.stanzas()) {
      const std::string agnostic = normalize_type(s.type);
      if (agnostic == "router") {
        const auto constructs = constructs_of(s.type);
        if (constructs.empty()) continue;
        ProcFacts f;
        f.proc = RoutingProcess{dev.device_id(), constructs[0], s.name};
        f.local_addrs = addrs;
        for (const auto& v : s.get_all("neighbor")) {
          const auto tokens = split_ws(v);
          if (tokens.empty()) continue;
          if (const auto ip = parse_ipv4(tokens[0])) f.neighbor_ips.insert(*ip);
        }
        for (const auto& v : s.get_all("network")) {
          const auto tokens = split_ws(v);
          if (tokens.empty()) continue;
          if (const auto p = parse_prefix(tokens[0])) f.subnets.insert(p->subnet());
        }
        out.push_back(std::move(f));
      } else if (agnostic == "spanning-tree") {
        ProcFacts f;
        f.proc = RoutingProcess{dev.device_id(), "mstp", s.name};
        f.local_addrs = addrs;
        f.region = s.get("region").value_or(s.name);
        out.push_back(std::move(f));
      }
    }
  }
  return out;
}

bool adjacent(const ProcFacts& a, const ProcFacts& b) {
  if (a.proc.protocol != b.proc.protocol) return false;
  if (a.proc.device_id == b.proc.device_id) return false;
  if (a.proc.protocol == "bgp") {
    for (std::uint32_t ip : a.neighbor_ips)
      if (b.local_addrs.count(ip)) return true;
    for (std::uint32_t ip : b.neighbor_ips)
      if (a.local_addrs.count(ip)) return true;
    return false;
  }
  if (a.proc.protocol == "ospf") {
    for (const auto& s : a.subnets)
      if (b.subnets.count(s)) return true;
    return false;
  }
  if (a.proc.protocol == "mstp") return a.region == b.region && !a.region.empty();
  return false;
}

}  // namespace

std::vector<RoutingProcess> extract_processes(const std::vector<DeviceConfig>& network) {
  std::vector<RoutingProcess> out;
  for (auto& f : gather_facts(network)) out.push_back(std::move(f.proc));
  return out;
}

std::vector<RoutingInstance> extract_routing_instances(const std::vector<DeviceConfig>& network) {
  const auto facts = gather_facts(network);
  UnionFind uf(facts.size());
  for (std::size_t i = 0; i < facts.size(); ++i)
    for (std::size_t j = i + 1; j < facts.size(); ++j)
      if (adjacent(facts[i], facts[j])) uf.unite(i, j);

  std::map<std::size_t, RoutingInstance> groups;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto& inst = groups[root];
    inst.protocol = facts[i].proc.protocol;
    inst.member_devices.push_back(facts[i].proc.device_id);
  }
  std::vector<RoutingInstance> out;
  out.reserve(groups.size());
  for (auto& [root, inst] : groups) out.push_back(std::move(inst));
  return out;
}

InstanceStats instance_stats(const std::vector<RoutingInstance>& instances,
                             std::string_view protocol) {
  InstanceStats st;
  double total = 0;
  for (const auto& inst : instances) {
    if (inst.protocol != protocol) continue;
    ++st.count;
    total += static_cast<double>(inst.size());
  }
  if (st.count > 0) st.mean_size = total / st.count;
  return st;
}

}  // namespace mpa
