#include "config/lint.hpp"

#include <map>
#include <set>

#include "config/addr.hpp"
#include "config/types.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

std::set<std::string> names_of(const DeviceConfig& dev, std::string_view agnostic) {
  std::set<std::string> out;
  for (const auto& s : dev.stanzas())
    if (normalize_type(s.type) == agnostic) out.insert(s.name);
  return out;
}

}  // namespace

std::string_view to_string(LintKind k) {
  switch (k) {
    case LintKind::kDanglingAclRef: return "dangling-acl-ref";
    case LintKind::kDanglingVlanRef: return "dangling-vlan-ref";
    case LintKind::kDanglingPoolRef: return "dangling-pool-ref";
    case LintKind::kDanglingLagMember: return "dangling-lag-member";
    case LintKind::kEmptyAcl: return "empty-acl";
    case LintKind::kDuplicateAddress: return "duplicate-address";
    case LintKind::kOneSidedBgpSession: return "one-sided-bgp-session";
  }
  return "unknown";
}

std::vector<LintIssue> lint_device(const DeviceConfig& config) {
  std::vector<LintIssue> issues;
  const auto acls = names_of(config, "acl");
  const auto vlans = names_of(config, "vlan");
  const auto ifaces = names_of(config, "interface");
  const auto pools = names_of(config, "pool");

  auto report = [&](LintKind kind, std::string detail) {
    issues.push_back(LintIssue{kind, config.device_id(), std::move(detail)});
  };

  for (const auto& s : config.stanzas()) {
    const std::string agnostic = normalize_type(s.type);
    if (agnostic == "interface") {
      for (const auto& o : s.options) {
        if (o.key == "ip access-group" || o.key == "filter") {
          const auto tokens = split_ws(o.value);
          if (!tokens.empty() && !acls.count(tokens[0]))
            report(LintKind::kDanglingAclRef, s.name + " -> acl '" + tokens[0] + "'");
        }
        if (o.key == "switchport access vlan" && !vlans.count(o.value))
          report(LintKind::kDanglingVlanRef, s.name + " -> vlan '" + o.value + "'");
      }
    } else if (agnostic == "vlan") {
      for (const auto& name : s.get_all("interface"))
        if (!ifaces.count(name))
          report(LintKind::kDanglingVlanRef, "vlan " + s.name + " -> interface '" + name + "'");
    } else if (agnostic == "virtual-server") {
      for (const auto& name : s.get_all("pool"))
        if (!pools.count(name))
          report(LintKind::kDanglingPoolRef, s.name + " -> pool '" + name + "'");
    } else if (agnostic == "link-aggregation") {
      for (const auto& name : s.get_all("member"))
        if (!ifaces.count(name))
          report(LintKind::kDanglingLagMember, s.name + " -> interface '" + name + "'");
    } else if (agnostic == "acl") {
      bool has_term = false;
      for (const auto& o : s.options)
        if (o.key == "permit" || o.key == "deny") has_term = true;
      if (!has_term) report(LintKind::kEmptyAcl, "acl '" + s.name + "' has no terms");
    }
  }
  return issues;
}

std::vector<LintIssue> lint_network(const std::vector<DeviceConfig>& network) {
  std::vector<LintIssue> issues;
  for (const auto& dev : network) {
    auto local = lint_device(dev);
    issues.insert(issues.end(), local.begin(), local.end());
  }

  // Duplicate addresses across the network.
  std::map<std::uint32_t, std::string> owners;  // ip -> "device/iface"
  std::set<std::uint32_t> all_addrs;
  for (const auto& dev : network) {
    for (const auto& s : dev.stanzas()) {
      if (normalize_type(s.type) != "interface") continue;
      for (const auto& o : s.options) {
        if (o.key != "ip address" && o.key != "ip-address") continue;
        const auto p = parse_prefix(o.value);
        if (!p) continue;
        all_addrs.insert(p->addr);
        const std::string here = dev.device_id() + "/" + s.name;
        const auto [it, inserted] = owners.emplace(p->addr, here);
        if (!inserted) {
          issues.push_back(LintIssue{LintKind::kDuplicateAddress, dev.device_id(),
                                     format_ipv4(p->addr) + " also on " + it->second});
        }
      }
    }
  }

  // One-sided BGP sessions: a neighbor statement pointing at an address
  // that exists in the network but whose owner has no BGP process.
  std::set<std::string> bgp_devices;
  for (const auto& dev : network)
    for (const auto& s : dev.stanzas())
      if (constructs_of(s.type) == std::vector<std::string>{"bgp"}) bgp_devices.insert(dev.device_id());
  std::map<std::uint32_t, std::string> addr_device;
  for (const auto& dev : network)
    for (const auto& s : dev.stanzas()) {
      if (normalize_type(s.type) != "interface") continue;
      for (const auto& o : s.options)
        if (o.key == "ip address" || o.key == "ip-address")
          if (const auto p = parse_prefix(o.value)) addr_device[p->addr] = dev.device_id();
    }
  for (const auto& dev : network) {
    for (const auto& s : dev.stanzas()) {
      if (constructs_of(s.type) != std::vector<std::string>{"bgp"}) continue;
      for (const auto& v : s.get_all("neighbor")) {
        const auto tokens = split_ws(v);
        if (tokens.empty()) continue;
        const auto ip = parse_ipv4(tokens[0]);
        if (!ip) continue;
        const auto it = addr_device.find(*ip);
        if (it != addr_device.end() && !bgp_devices.count(it->second)) {
          issues.push_back(LintIssue{LintKind::kOneSidedBgpSession, dev.device_id(),
                                     "neighbor " + tokens[0] + " (" + it->second +
                                         " runs no BGP process)"});
        }
      }
    }
  }
  return issues;
}

}  // namespace mpa
