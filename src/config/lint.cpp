// Lint engine core: rule registry plumbing, source resolution, and the
// run driver. The rules themselves live in lint_rules.cpp.
#include "config/lint.hpp"

#include <algorithm>

#include "config/types.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

/// Rule ids named by a pragma comment ("lint-disable a b" -> {a, b}),
/// or nothing when the comment is not a pragma of the given kind.
std::vector<std::string> pragma_ids(std::string_view comment, std::string_view keyword) {
  const auto tokens = split_ws(comment);
  if (tokens.empty() || tokens[0] != keyword) return {};
  return {tokens.begin() + 1, tokens.end()};
}

bool disabled_in(const std::set<std::string, std::less<>>& set, std::string_view rule_id) {
  return set.count(rule_id) > 0 || set.count("all") > 0;
}

}  // namespace

// ---------------------------------------------------------------- taxonomy

std::string_view to_string(LintSeverity s) {
  switch (s) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

std::string_view to_string(LintCategory c) {
  switch (c) {
    case LintCategory::kReferential: return "referential";
    case LintCategory::kAddressing: return "addressing";
    case LintCategory::kFilter: return "filter";
    case LintCategory::kProtocol: return "protocol";
    case LintCategory::kHygiene: return "hygiene";
  }
  return "unknown";
}

std::optional<LintSeverity> parse_severity(std::string_view s) {
  if (s == "info") return LintSeverity::kInfo;
  if (s == "warning") return LintSeverity::kWarning;
  if (s == "error") return LintSeverity::kError;
  return std::nullopt;
}

// ------------------------------------------------------- source resolution

LintSource LintSource::scan(std::string_view text, Dialect d) {
  LintSource out;
  const SourceMap map = scan_source(text, d);
  for (const auto& comment : map.all_comments)
    for (auto& id : pragma_ids(comment, "lint-disable-file"))
      out.device_disabled_.insert(std::move(id));
  for (const auto& s : map.stanzas) {
    Entry e;
    e.span = SourceSpan{s.first_line, s.last_line};
    for (const auto& comment : s.leading_comments)
      for (auto& id : pragma_ids(comment, "lint-disable")) e.disabled.insert(std::move(id));
    out.stanzas_.emplace(std::make_pair(s.type, s.name), std::move(e));
  }
  return out;
}

SourceSpan LintSource::span_of(std::string_view type, std::string_view name) const {
  const auto it = stanzas_.find(std::make_pair(std::string(type), std::string(name)));
  return it == stanzas_.end() ? SourceSpan{} : it->second.span;
}

bool LintSource::suppresses(std::string_view rule_id, std::string_view type,
                            std::string_view name) const {
  if (disabled_in(device_disabled_, rule_id)) return true;
  if (type.empty()) return false;
  const auto it = stanzas_.find(std::make_pair(std::string(type), std::string(name)));
  return it != stanzas_.end() && disabled_in(it->second.disabled, rule_id);
}

// ------------------------------------------------------------------ rules

void LintRule::check_device(const DeviceView& /*dev*/, LintSink& /*sink*/) const {}
void LintRule::check_network(const NetworkView& /*net*/, LintSink& /*sink*/) const {}

void RuleRegistry::add(std::unique_ptr<LintRule> rule) {
  require(rule != nullptr, "RuleRegistry::add: null rule");
  const std::string_view id = rule->info().id;
  require(!id.empty(), "RuleRegistry::add: rule with empty id");
  require(find(id) == nullptr, "RuleRegistry::add: duplicate rule id '" + std::string(id) + "'");
  rules_.push_back(std::move(rule));
}

const LintRule* RuleRegistry::find(std::string_view id) const {
  for (const auto& r : rules_)
    if (r->info().id == id) return r.get();
  return nullptr;
}

// ----------------------------------------------------------------- views

DeviceView::DeviceView(const DeviceConfig& config, const LintSource* source)
    : config_(&config), source_(source) {}

const std::set<std::string>& DeviceView::names_of(std::string_view agnostic) const {
  const auto it = names_.find(agnostic);
  if (it != names_.end()) return it->second;
  std::set<std::string> names;
  for (const auto& s : config_->stanzas())
    if (normalize_type(s.type) == agnostic) names.insert(s.name);
  return names_.emplace(std::string(agnostic), std::move(names)).first->second;
}

bool DeviceView::defines(std::string_view agnostic, std::string_view name) const {
  const auto& names = names_of(agnostic);
  return names.find(std::string(name)) != names.end();
}

NetworkView::NetworkView(const std::vector<LintInput>& inputs) {
  devices_.reserve(inputs.size());
  for (const auto& in : inputs) {
    require(in.config != nullptr, "NetworkView: null config");
    devices_.emplace_back(*in.config, in.source);
  }
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    for (const auto& s : devices_[d].config().stanzas()) {
      if (normalize_type(s.type) == "interface") {
        for (const auto& o : s.options) {
          if (o.key != "ip address" && o.key != "ip-address") continue;
          const auto p = parse_prefix(o.value);
          if (!p) continue;
          iface_addrs_.push_back(IfaceAddr{d, &s, *p});
          addr_owner_.emplace(p->addr, d);  // first owner wins
        }
      }
      if (constructs_of(s.type) == std::vector<std::string>{"bgp"}) {
        bgp_procs_.push_back(BgpProc{d, &s});
        bgp_devices_.insert(d);
      }
    }
  }
}

std::size_t NetworkView::owner_of(std::uint32_t ip) const {
  const auto it = addr_owner_.find(ip);
  return it == addr_owner_.end() ? npos : it->second;
}

bool NetworkView::runs_bgp(std::size_t device) const { return bgp_devices_.count(device) > 0; }

// ------------------------------------------------------------------ sink

LintSink::LintSink(const LintOptions& opts, std::vector<Diagnostic>& out)
    : opts_(&opts), out_(&out) {}

void LintSink::set_active(const LintRule* rule) {
  active_ = rule;
  active_info_ = rule != nullptr ? rule->info() : RuleInfo{};
}

void LintSink::report(const DeviceView& dev, const Stanza* anchor, std::string message) {
  require(active_ != nullptr, "LintSink::report outside a rule");
  Diagnostic d;
  d.rule_id = std::string(active_info_.id);
  d.category = active_info_.category;
  d.severity = active_info_.severity;
  const auto sev = opts_->severity.find(d.rule_id);
  if (sev != opts_->severity.end()) d.severity = sev->second;
  d.device_id = dev.device_id();
  if (anchor != nullptr) {
    d.object = anchor->type + (anchor->name.empty() ? "" : " " + anchor->name);
  }
  d.message = std::move(message);
  if (dev.source() != nullptr) {
    if (anchor != nullptr) d.span = dev.source()->span_of(anchor->type, anchor->name);
    d.suppressed = dev.source()->suppresses(d.rule_id, anchor != nullptr ? anchor->type : "",
                                            anchor != nullptr ? anchor->name : "");
  }
  if (d.suppressed && !opts_->keep_suppressed) return;
  out_->push_back(std::move(d));
}

// ----------------------------------------------------------------- driver

namespace {

bool rule_enabled(const LintOptions& opts, std::string_view id) {
  const auto it = opts.enable.find(std::string(id));
  if (it != opts.enable.end()) return it->second;
  const auto all = opts.enable.find("all");
  if (all != opts.enable.end()) return all->second;
  return true;
}

}  // namespace

std::vector<Diagnostic> run_lint(const std::vector<LintInput>& network, const LintOptions& opts) {
  const RuleRegistry& registry = opts.registry != nullptr ? *opts.registry
                                                          : RuleRegistry::builtin();
  const NetworkView net(network);
  std::vector<Diagnostic> out;
  LintSink sink(opts, out);
  for (const auto& rule : registry.rules()) {
    if (!rule_enabled(opts, rule->info().id)) continue;
    sink.set_active(rule.get());
    for (const auto& dev : net.devices()) rule->check_device(dev, sink);
    rule->check_network(net, sink);
  }
  sink.set_active(nullptr);
  return out;
}

std::vector<Diagnostic> lint_device(const DeviceConfig& config, const LintOptions& opts) {
  return run_lint({LintInput{&config, nullptr}}, opts);
}

std::vector<Diagnostic> lint_network(const std::vector<DeviceConfig>& network,
                                     const LintOptions& opts) {
  std::vector<LintInput> inputs;
  inputs.reserve(network.size());
  for (const auto& c : network) inputs.push_back(LintInput{&c, nullptr});
  return run_lint(inputs, opts);
}

std::vector<Diagnostic> lint_network_text(const std::vector<DeviceText>& network,
                                          const LintOptions& opts) {
  std::vector<DeviceConfig> configs;
  std::vector<LintSource> sources;
  configs.reserve(network.size());
  sources.reserve(network.size());
  for (const auto& dev : network) {
    configs.push_back(parse(dev.text, dev.dialect, dev.device_id));
    sources.push_back(LintSource::scan(dev.text, dev.dialect));
  }
  std::vector<LintInput> inputs;
  inputs.reserve(network.size());
  for (std::size_t i = 0; i < network.size(); ++i)
    inputs.push_back(LintInput{&configs[i], &sources[i]});
  return run_lint(inputs, opts);
}

}  // namespace mpa
