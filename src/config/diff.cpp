#include "config/diff.hpp"

#include <algorithm>
#include <map>

#include "config/types.hpp"

namespace mpa {
namespace {

// Count how many option lines differ between two stanzas, treating
// options as multisets of (key, value) pairs. A modified value counts
// once (not as one removal plus one addition).
int options_delta(const Stanza& a, const Stanza& b) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const auto& o : a.options) counts[{o.key, o.value}]++;
  for (const auto& o : b.options) counts[{o.key, o.value}]--;
  int only_a = 0, only_b = 0;
  for (const auto& [kv, n] : counts) {
    if (n > 0) only_a += n;
    if (n < 0) only_b -= n;
  }
  return std::max(only_a, only_b);
}

}  // namespace

std::string_view to_string(ChangeKind k) {
  switch (k) {
    case ChangeKind::kAdded: return "added";
    case ChangeKind::kRemoved: return "removed";
    case ChangeKind::kUpdated: return "updated";
  }
  return "unknown";
}

std::vector<StanzaChange> diff(const DeviceConfig& before, const DeviceConfig& after) {
  std::vector<StanzaChange> out;
  // Removed or updated stanzas.
  for (const auto& s : before.stanzas()) {
    const Stanza* other = after.find(s.type, s.name);
    if (other == nullptr) {
      out.push_back(StanzaChange{s.type, normalize_type(s.type), s.name, ChangeKind::kRemoved,
                                 static_cast<int>(s.options.size())});
    } else if (!(s == *other)) {
      out.push_back(StanzaChange{s.type, normalize_type(s.type), s.name, ChangeKind::kUpdated,
                                 options_delta(s, *other)});
    }
  }
  // Added stanzas.
  for (const auto& s : after.stanzas()) {
    if (before.find(s.type, s.name) == nullptr) {
      out.push_back(StanzaChange{s.type, normalize_type(s.type), s.name, ChangeKind::kAdded,
                                 static_cast<int>(s.options.size())});
    }
  }
  return out;
}

bool is_change(const DeviceConfig& before, const DeviceConfig& after) {
  return !diff(before, after).empty();
}

}  // namespace mpa
