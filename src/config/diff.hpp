// Stanza-level configuration diffing (§2.2, operational practices).
//
// "We infer operational practices by comparing two successive
// configuration snapshots from the same device. If at least one stanza
// differs, we count this as a configuration change. ... When part (or
// all) of a stanza is added, removed, or updated, we say a change of
// type T occurred, where T is the stanza type."
#pragma once

#include <string>
#include <vector>

#include "config/stanza.hpp"

namespace mpa {

enum class ChangeKind : std::uint8_t { kAdded, kRemoved, kUpdated };

std::string_view to_string(ChangeKind k);

/// One stanza-level difference between two snapshots of a device.
struct StanzaChange {
  std::string native_type;    ///< Vendor-native stanza type.
  std::string agnostic_type;  ///< normalize_type(native_type).
  std::string name;           ///< Stanza name.
  ChangeKind kind = ChangeKind::kUpdated;
  /// Number of option lines added+removed+modified (0 for pure
  /// adds/removes of empty stanzas; >=1 otherwise).
  int options_touched = 0;
};

/// Compute the stanza-level diff between `before` and `after`.
/// Matching is by (native type, name); option-level comparison treats
/// options as an ordered multiset keyed by `key`.
std::vector<StanzaChange> diff(const DeviceConfig& before, const DeviceConfig& after);

/// True if the two configs differ in at least one stanza — i.e. this
/// snapshot pair counts as "a configuration change" (O1).
bool is_change(const DeviceConfig& before, const DeviceConfig& after);

}  // namespace mpa
