#include "config/stanza.hpp"

#include <algorithm>

namespace mpa {

std::optional<std::string> Stanza::get(std::string_view key) const {
  for (const auto& o : options)
    if (o.key == key) return o.value;
  return std::nullopt;
}

std::vector<std::string> Stanza::get_all(std::string_view key) const {
  std::vector<std::string> out;
  for (const auto& o : options)
    if (o.key == key) out.push_back(o.value);
  return out;
}

void Stanza::set(std::string key, std::string value) {
  options.push_back(Option{std::move(key), std::move(value)});
}

void Stanza::replace(std::string_view key, std::string value) {
  for (auto& o : options) {
    if (o.key == key) {
      o.value = std::move(value);
      return;
    }
  }
  set(std::string(key), std::move(value));
}

std::size_t Stanza::erase(std::string_view key) {
  const auto it = std::remove_if(options.begin(), options.end(),
                                 [&](const Option& o) { return o.key == key; });
  const auto n = static_cast<std::size_t>(options.end() - it);
  options.erase(it, options.end());
  return n;
}

const Stanza* DeviceConfig::find(std::string_view type, std::string_view name) const {
  for (const auto& s : stanzas_)
    if (s.type == type && s.name == name) return &s;
  return nullptr;
}

Stanza* DeviceConfig::find(std::string_view type, std::string_view name) {
  return const_cast<Stanza*>(static_cast<const DeviceConfig*>(this)->find(type, name));
}

std::vector<const Stanza*> DeviceConfig::all_of_type(std::string_view type) const {
  std::vector<const Stanza*> out;
  for (const auto& s : stanzas_)
    if (s.type == type) out.push_back(&s);
  return out;
}

void DeviceConfig::add(Stanza s) {
  require(find(s.type, s.name) == nullptr,
          "DeviceConfig::add: duplicate stanza " + s.type + " " + s.name);
  stanzas_.push_back(std::move(s));
}

bool DeviceConfig::remove(std::string_view type, std::string_view name) {
  for (auto it = stanzas_.begin(); it != stanzas_.end(); ++it) {
    if (it->type == type && it->name == name) {
      stanzas_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace mpa
