#include "config/refs.hpp"

#include <set>

#include "config/addr.hpp"
#include "config/types.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

// All interface addresses configured on a device (both dialects).
std::vector<Ipv4Prefix> interface_addresses(const DeviceConfig& dev) {
  std::vector<Ipv4Prefix> out;
  for (const auto& s : dev.stanzas()) {
    if (normalize_type(s.type) != "interface") continue;
    for (const auto& o : s.options) {
      if (o.key == "ip address" || o.key == "ip-address") {
        if (const auto p = parse_prefix(o.value)) out.push_back(*p);
      }
    }
  }
  return out;
}

// Names of a device's stanzas of one agnostic type.
std::set<std::string> names_of(const DeviceConfig& dev, std::string_view agnostic) {
  std::set<std::string> out;
  for (const auto& s : dev.stanzas())
    if (normalize_type(s.type) == agnostic) out.insert(s.name);
  return out;
}

// The "network <prefix> [area N]" statements of a routing stanza.
std::vector<Ipv4Prefix> network_statements(const Stanza& s) {
  std::vector<Ipv4Prefix> out;
  for (const auto& o : s.options) {
    if (o.key != "network") continue;
    const auto tokens = split_ws(o.value);
    if (!tokens.empty()) {
      if (const auto p = parse_prefix(tokens[0])) out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int count_intra_refs(const DeviceConfig& dev) {
  const auto acls = names_of(dev, "acl");
  const auto vlans = names_of(dev, "vlan");
  const auto ifaces = names_of(dev, "interface");
  const auto pools = names_of(dev, "pool");
  const auto addrs = interface_addresses(dev);

  int refs = 0;
  for (const auto& s : dev.stanzas()) {
    const std::string agnostic = normalize_type(s.type);
    if (agnostic == "interface") {
      for (const auto& o : s.options) {
        // ACL attachment: IOS "ip access-group NAME", JunOS "filter NAME".
        if (o.key == "ip access-group" || o.key == "filter") {
          const auto tokens = split_ws(o.value);
          if (!tokens.empty() && acls.count(tokens[0])) ++refs;
        }
        // VLAN membership on IOS-like devices.
        if (o.key == "switchport access vlan" && vlans.count(o.value)) ++refs;
      }
    } else if (agnostic == "vlan") {
      // VLAN membership on JunOS-like devices: "interface IFNAME".
      for (const auto& name : s.get_all("interface"))
        if (ifaces.count(name)) ++refs;
    } else if (agnostic == "virtual-server") {
      for (const auto& name : s.get_all("pool"))
        if (pools.count(name)) ++refs;
    } else if (agnostic == "link-aggregation") {
      for (const auto& name : s.get_all("member"))
        if (ifaces.count(name)) ++refs;
    } else if (agnostic == "router") {
      // A "network" statement covering a local interface subnet is an
      // intra-device reference from the control plane to that interface.
      for (const auto& p : network_statements(s))
        for (const auto& a : addrs)
          if (p.contains(a.addr)) ++refs;
    }
  }
  return refs;
}

int count_inter_refs(const DeviceConfig& dev, const std::vector<DeviceConfig>& peers) {
  // Gather peer-side facts once.
  std::set<std::uint32_t> peer_addrs;
  std::set<std::string> peer_vlans;
  std::set<Ipv4Prefix> peer_subnets;
  for (const auto& p : peers) {
    if (p.device_id() == dev.device_id()) continue;
    for (const auto& a : interface_addresses(p)) {
      peer_addrs.insert(a.addr);
      peer_subnets.insert(a.subnet());
    }
    for (const auto& v : names_of(p, "vlan")) peer_vlans.insert(v);
  }

  int refs = 0;
  for (const auto& s : dev.stanzas()) {
    const std::string agnostic = normalize_type(s.type);
    if (agnostic == "router") {
      // BGP neighbor statements naming a peer device's address.
      for (const auto& v : s.get_all("neighbor")) {
        const auto tokens = split_ws(v);
        if (tokens.empty()) continue;
        if (const auto ip = parse_ipv4(tokens[0]); ip && peer_addrs.count(*ip)) ++refs;
      }
      // OSPF/BGP network statements covering a subnet shared with a peer.
      for (const auto& p : network_statements(s))
        if (peer_subnets.count(p.subnet())) ++refs;
    } else if (agnostic == "vlan") {
      // A VLAN spanning devices: defined here and on at least one peer.
      if (peer_vlans.count(s.name)) ++refs;
    }
  }
  return refs;
}

RefCounts count_references(const DeviceConfig& dev, const std::vector<DeviceConfig>& network) {
  return RefCounts{count_intra_refs(dev), count_inter_refs(dev, network)};
}

NetworkComplexity referential_complexity(const std::vector<DeviceConfig>& network) {
  if (network.empty()) return {};
  double intra = 0, inter = 0;
  for (const auto& dev : network) {
    const RefCounts rc = count_references(dev, network);
    intra += rc.intra;
    inter += rc.inter;
  }
  const double n = static_cast<double>(network.size());
  return NetworkComplexity{intra / n, inter / n};
}

}  // namespace mpa
