// The stanza-structured configuration model (§2.2).
//
// "Configuration information is arranged as stanzas, each containing a
// set of options and values pertaining to a particular construct — e.g.
// a specific interface, VLAN, routing instance, or ACL. A stanza is
// identified by a type and a name."
//
// DeviceConfig is the in-memory form; the dialect layer (dialect.hpp)
// renders it to / parses it from vendor-flavoured text.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mpa {

/// One key/value option line inside a stanza. `value` may be empty for
/// flag-style options (e.g. "shutdown").
struct Option {
  std::string key;
  std::string value;

  friend bool operator==(const Option&, const Option&) = default;
};

/// A configuration stanza: a typed, named block of options.
/// `type` is the vendor-native type string (e.g. "ip access-list" on an
/// IOS-like device, "firewall-filter" on a JunOS-like one); use
/// normalize_type() (types.hpp) for the vendor-agnostic identifier.
struct Stanza {
  std::string type;
  std::string name;
  std::vector<Option> options;

  /// First value for `key`, if present.
  std::optional<std::string> get(std::string_view key) const;
  /// All values for `key` (options may repeat, e.g. "neighbor").
  std::vector<std::string> get_all(std::string_view key) const;
  /// Append an option.
  void set(std::string key, std::string value);
  /// Replace the first option with `key` (appends if absent).
  void replace(std::string_view key, std::string value);
  /// Remove all options with `key`; returns how many were removed.
  std::size_t erase(std::string_view key);

  friend bool operator==(const Stanza&, const Stanza&) = default;
};

/// A full device configuration: an ordered list of stanzas.
class DeviceConfig {
 public:
  DeviceConfig() = default;
  explicit DeviceConfig(std::string device_id) : device_id_(std::move(device_id)) {}

  const std::string& device_id() const { return device_id_; }
  void set_device_id(std::string id) { device_id_ = std::move(id); }

  const std::vector<Stanza>& stanzas() const { return stanzas_; }
  std::vector<Stanza>& stanzas() { return stanzas_; }

  /// Find the stanza with this native type and name, or nullptr.
  const Stanza* find(std::string_view type, std::string_view name) const;
  Stanza* find(std::string_view type, std::string_view name);

  /// All stanzas with this native type.
  std::vector<const Stanza*> all_of_type(std::string_view type) const;

  /// Append a stanza; (type, name) must not already exist.
  void add(Stanza s);
  /// Remove a stanza; returns false if it was not present.
  bool remove(std::string_view type, std::string_view name);

  friend bool operator==(const DeviceConfig&, const DeviceConfig&) = default;

 private:
  std::string device_id_;
  std::vector<Stanza> stanzas_;
};

}  // namespace mpa
