#include "simulation/osp_generator.hpp"

#include <set>

#include "config/types.hpp"
#include "simulation/change_process.hpp"
#include "simulation/config_gen.hpp"

namespace mpa {
namespace {

int live_vlan_count(const GeneratedNetwork& net) {
  std::set<std::string> vlans;
  for (const auto& [dev_id, cfg] : net.configs)
    for (const auto& s : cfg.stanzas())
      if (normalize_type(s.type) == "vlan") vlans.insert(s.name);
  return static_cast<int>(vlans.size());
}

}  // namespace

OspDataset generate_osp(const OspOptions& opts) {
  Rng master(opts.seed);
  OspDataset data;
  data.num_months = opts.num_months;
  const HealthModel health(opts.health);
  int ticket_counter = 0;

  for (int n = 0; n < opts.num_networks; ++n) {
    Rng net_rng = master.fork();
    NetworkDesign design = sample_network_design(n, net_rng, opts.design);
    bool treated = false;
    if (opts.treated_fraction > 0) {
      treated = net_rng.bernoulli(opts.treated_fraction);
      if (treated) design.change_events_per_month *= opts.treatment_rate_multiplier;
    }
    data.experiment_treated.push_back(treated);

    data.inventory.add_network(design.net);
    for (const auto& dev : design.devices) data.inventory.add_device(dev);

    GeneratedNetwork gen = generate_configs(std::move(design), net_rng);
    ChangeProcess process(&gen, net_rng.fork());
    process.emit_initial_snapshots(data.snapshots);

    std::vector<MonthlyOps> months;
    months.reserve(static_cast<std::size_t>(opts.num_months));
    Rng health_rng = net_rng.fork();
    for (int m = 0; m < opts.num_months; ++m) {
      MonthlyOps ops = process.simulate_month(m, data.snapshots);
      health.generate_tickets(gen.design, ops, live_vlan_count(gen), m, health_rng,
                              data.tickets, ticket_counter);
      months.push_back(std::move(ops));
    }
    data.true_ops.push_back(std::move(months));
    data.designs.push_back(std::move(gen.design));
  }
  return data;
}

OspStreamTotals generate_osp_stream(const OspOptions& opts, OspSink& sink) {
  Rng master(opts.seed);
  const HealthModel health(opts.health);
  int ticket_counter = 0;
  OspStreamTotals totals;

  // Mirrors generate_osp exactly — same fork sequence, same per-network
  // draws, same shared ticket counter — but every per-network container
  // is local and dropped after forwarding, so memory is bounded by the
  // largest single network regardless of num_networks.
  for (int n = 0; n < opts.num_networks; ++n) {
    Rng net_rng = master.fork();
    NetworkDesign design = sample_network_design(n, net_rng, opts.design);
    if (opts.treated_fraction > 0) {
      const bool treated = net_rng.bernoulli(opts.treated_fraction);
      if (treated) design.change_events_per_month *= opts.treatment_rate_multiplier;
    }

    sink.on_network(design.net);
    ++totals.networks;
    for (const auto& dev : design.devices) {
      sink.on_device(dev);
      ++totals.devices;
    }

    SnapshotStore snapshots;
    TicketLog tickets;
    GeneratedNetwork gen = generate_configs(std::move(design), net_rng);
    ChangeProcess process(&gen, net_rng.fork());
    process.emit_initial_snapshots(snapshots);
    Rng health_rng = net_rng.fork();
    for (int m = 0; m < opts.num_months; ++m) {
      const MonthlyOps ops = process.simulate_month(m, snapshots);
      health.generate_tickets(gen.design, ops, live_vlan_count(gen), m, health_rng, tickets,
                              ticket_counter);
    }
    // The per-device canonical order of SnapshotStore makes the forward
    // order identical to what the batch path's shared store would hold
    // for these devices.
    for (const auto& device_id : snapshots.devices())
      for (const auto& snap : snapshots.for_device(device_id)) {
        sink.on_snapshot(snap);
        ++totals.snapshots;
      }
    for (const auto& t : tickets.all()) {
      sink.on_ticket(t);
      ++totals.tickets;
    }
  }
  return totals;
}

}  // namespace mpa
