// Initial configuration synthesis for a sampled network design.
//
// Builds a consistent set of per-device configurations: link subnets
// between devices, VLANs spanning switches, ACLs attached to
// interfaces, BGP/OSPF processes wired so the extraction layer
// recovers exactly the designed instances, middlebox pools, and the
// management-plane plumbing (users, snmp, ntp, syslog, sflow, qos).
//
// Everything is emitted in the *device's own dialect* — the analytics
// pipeline has to cope with vendor-specific stanza types and keys, as
// it would on real archives.
#pragma once

#include <map>
#include <string>

#include "config/dialect.hpp"
#include "config/stanza.hpp"
#include "simulation/network_design.hpp"
#include "util/rng.hpp"

namespace mpa {

/// Dialect-sensitive stanza-type / option-key vocabulary, so the
/// generator and the change process speak each vendor's language.
struct DialectVocab {
  Dialect dialect = Dialect::kIosLike;

  std::string interface_type() const;
  std::string vlan_type() const;
  std::string acl_type() const;
  std::string bgp_type() const;
  std::string ospf_type() const;
  std::string mstp_type() const;
  std::string lag_type() const;
  std::string user_type() const;
  std::string snmp_type() const;
  std::string qos_type() const;

  std::string ip_address_key() const;   ///< "ip address" vs "ip-address"
  std::string acl_attach_key() const;   ///< "ip access-group" vs "filter"
  std::string iface_name(int k) const;  ///< "Eth3" vs "xe-0/0/3"
};

DialectVocab vocab_for(Vendor v);

/// A generated network: the design plus the live per-device configs the
/// change process will mutate over time.
struct GeneratedNetwork {
  NetworkDesign design;
  std::map<std::string, DeviceConfig> configs;  ///< device id -> config.
  std::map<std::string, Vendor> vendor_of;      ///< device id -> vendor.

  const DeviceConfig& config(const std::string& device_id) const;
  DeviceConfig& config(const std::string& device_id);
};

/// Build initial configs for every device of `design`.
GeneratedNetwork generate_configs(NetworkDesign design, Rng& rng);

}  // namespace mpa
