// Sampling of per-network designs for the synthetic OSP.
//
// This is the substitution for the proprietary OSP traces (DESIGN.md §2).
// The samplers are calibrated to the characterization in Appendix A:
// 81% of networks host one workload, 86% have multiple roles, 71%
// contain a middlebox, >81% multi-vendor, hardware-entropy median < 0.3
// with a ~10% highly heterogeneous tail, protocol counts spread over
// 1..8, VLAN counts long-tailed, change-event counts with 10th/90th
// percentiles near 3/34, automation fraction ranging ~10-70%.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/inventory.hpp"
#include "util/rng.hpp"

namespace mpa {

/// Latent, generator-side description of one network. The analytics
/// pipeline never sees this struct — it must re-infer everything from
/// the emitted inventory/snapshots/tickets.
struct NetworkDesign {
  NetworkRecord net;
  std::vector<DeviceRecord> devices;

  // Data/control plane design decisions.
  int num_vlans = 0;
  bool use_bgp = false;
  bool use_ospf = false;
  bool use_mstp = false;
  bool use_lag = false;
  bool use_udld = false;
  bool use_dhcp_relay = false;
  int bgp_instances = 0;   ///< Disjoint BGP peer groups among routers.
  int ospf_instances = 0;
  int acls_per_firewall = 2;

  // Operational temperament (drives the change process).
  double change_events_per_month = 8;  ///< Mean of the monthly Poisson.
  double event_size_mean = 1.6;        ///< Mean devices touched per event.
  double automation_propensity = 0.4;  ///< Base P(change is automated).
  /// Relative frequency of each agnostic change type for this network.
  std::map<std::string, double> change_type_mix;

  /// Index used to derive this network's address block.
  int network_index = 0;

  /// Device ids by role, for the change process to target.
  std::vector<std::string> devices_with_role(Role r) const;
  std::vector<std::string> middlebox_devices() const;
};

struct DesignOptions {
  int min_devices = 4;
  int max_devices = 120;  ///< Long tail up to O(100) devices.
};

/// Sample one network design. `index` must be unique per network (it
/// seeds the address block and the ids).
NetworkDesign sample_network_design(int index, Rng& rng, const DesignOptions& opts = {});

}  // namespace mpa
