// Top-level synthetic-OSP generation: produce the three raw data
// sources (inventory, snapshot archive, ticket log) for a whole
// organization, plus the generator-side ground truth used only by
// validation tests and calibration benches.
#pragma once

#include <vector>

#include "model/inventory.hpp"
#include "simulation/health_model.hpp"
#include "simulation/network_design.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/tickets.hpp"

namespace mpa {

struct OspOptions {
  int num_networks = 300;   ///< Paper: 850+. Benches default lower for speed.
  int num_months = 17;      ///< Aug 2013 - Dec 2014.
  std::uint64_t seed = 42;
  DesignOptions design = {};
  HealthModelOptions health = {};

  /// True-randomized-experiment mode (§5.2: "Ideally, we would ...
  /// conduct a true randomized experiment"): each network is assigned
  /// to treatment with probability `treated_fraction`, and treated
  /// networks get their change-event rate multiplied by
  /// `treatment_rate_multiplier`. Assignment is independent of every
  /// other design decision, so the treated-vs-control ticket contrast
  /// is an unconfounded causal estimate to validate the QED against.
  double treated_fraction = 0.0;
  double treatment_rate_multiplier = 1.0;
};

/// Everything the generator emits. The analytics pipeline may only
/// look at inventory / snapshots / tickets; `designs` and `true_ops`
/// exist to validate that the pipeline re-infers them correctly.
struct OspDataset {
  Inventory inventory;
  SnapshotStore snapshots;
  TicketLog tickets;
  int num_months = 0;

  // --- ground truth (generator side only) ---
  std::vector<NetworkDesign> designs;
  /// Randomized-experiment assignment (empty unless treated_fraction>0).
  std::vector<bool> experiment_treated;
  /// true_ops[n][m]: what the change process actually did to network n
  /// in month m.
  std::vector<std::vector<MonthlyOps>> true_ops;
};

/// Generate a full synthetic OSP. Deterministic given opts.seed.
OspDataset generate_osp(const OspOptions& opts = {});

/// Receiver for the streaming generator. Implementations must not
/// assume global ordering beyond the generator's contract: networks
/// arrive in index order, each network's devices right after it, and
/// each device's snapshots in non-decreasing time order. The callback
/// arguments are only valid for the duration of the call.
///
/// This is an interface (not an io dependency) so simulation stays
/// below io in the layer DAG — the mpac ColumnarWriter adapter lives
/// with the CLI.
class OspSink {
 public:
  virtual ~OspSink() = default;
  virtual void on_network(const NetworkRecord& net) = 0;
  virtual void on_device(const DeviceRecord& dev) = 0;
  virtual void on_snapshot(const ConfigSnapshot& snap) = 0;
  virtual void on_ticket(const Ticket& t) = 0;
};

struct OspStreamTotals {
  std::uint64_t networks = 0;
  std::uint64_t devices = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t tickets = 0;
};

/// Streaming variant of generate_osp: identical RNG stream and record
/// content (same seed => the records a sink receives reassemble into
/// exactly the dataset generate_osp returns), but only one network is
/// resident at a time, so 100k-network multi-year histories generate
/// under a fixed memory ceiling. Ground truth (designs, true_ops) is
/// not collected.
OspStreamTotals generate_osp_stream(const OspOptions& opts, OspSink& sink);

}  // namespace mpa
