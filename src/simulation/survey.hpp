// Operator-survey simulation (Figure 2).
//
// The paper surveyed 51 operators (45 NANOG, 4 campus, 2 OSP) on how
// much each of ten practices matters to network health, finding "clear
// consensus in just one case — number of change events" and broad
// disagreement elsewhere. The real responses are not published; this
// simulator draws from per-practice opinion distributions shaped to the
// published histogram so the Table-7-vs-Figure-2 comparison (causal
// findings vs operator beliefs) can be reproduced.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mpa {

enum class Opinion : std::uint8_t { kNoImpact, kLow, kMedium, kHigh, kNotSure };

inline constexpr int kNumOpinions = 5;

std::string_view to_string(Opinion o);

/// Aggregated responses for one surveyed practice.
struct SurveyResult {
  std::string practice;
  std::array<int, kNumOpinions> counts{};  ///< Indexed by Opinion.

  int total() const;
  /// The modal opinion.
  Opinion consensus() const;
  /// True when one opinion holds a strict majority of responses —
  /// the paper's bar for "clear consensus".
  bool has_majority_consensus() const;
};

/// The eleven practices shown in Figure 2, in figure order.
std::vector<std::string> surveyed_practices();

/// Draw `num_operators` responses per practice (paper: 51).
std::vector<SurveyResult> simulate_survey(int num_operators, Rng& rng);

}  // namespace mpa
