#include "simulation/survey.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mpa {
namespace {

struct QuestionProfile {
  const char* practice;
  // Relative weights for {No, Low, Medium, High, NotSure}, shaped to
  // Figure 2's bars.
  std::array<double, kNumOpinions> weights;
};

// Only "No. of change events" has a majority-High profile; the others
// split Low vs High roughly evenly (the paper's "diversity of
// opinion"), and several carry a visible Not-Sure remainder.
constexpr QuestionProfile kProfiles[] = {
    {"No. of devices", {4, 16, 14, 12, 5}},
    {"No. of models", {3, 15, 13, 15, 5}},
    {"No. of firmware versions", {3, 13, 15, 16, 4}},
    {"No. of protocols", {2, 12, 16, 17, 4}},
    {"Inter-device complexity", {2, 14, 12, 16, 7}},
    {"No. of change events", {1, 4, 12, 30, 4}},
    {"Avg. devices changed/event", {3, 13, 15, 14, 6}},
    {"Frac. events w/ mbox change", {2, 10, 14, 20, 5}},
    {"Frac. events automated", {4, 12, 14, 16, 5}},
    {"Frac. events w/ router change", {2, 11, 16, 17, 5}},
    {"Frac. events w/ ACL change", {5, 18, 12, 11, 5}},
};

}  // namespace

std::string_view to_string(Opinion o) {
  switch (o) {
    case Opinion::kNoImpact: return "no impact";
    case Opinion::kLow: return "low";
    case Opinion::kMedium: return "medium";
    case Opinion::kHigh: return "high";
    case Opinion::kNotSure: return "not sure";
  }
  return "unknown";
}

int SurveyResult::total() const {
  int t = 0;
  for (int c : counts) t += c;
  return t;
}

Opinion SurveyResult::consensus() const {
  return static_cast<Opinion>(std::max_element(counts.begin(), counts.end()) - counts.begin());
}

bool SurveyResult::has_majority_consensus() const {
  const int t = total();
  for (int c : counts)
    if (2 * c > t) return true;
  return false;
}

std::vector<std::string> surveyed_practices() {
  std::vector<std::string> out;
  for (const auto& q : kProfiles) out.emplace_back(q.practice);
  return out;
}

std::vector<SurveyResult> simulate_survey(int num_operators, Rng& rng) {
  require(num_operators >= 1, "simulate_survey: need at least one operator");
  std::vector<SurveyResult> out;
  for (const auto& q : kProfiles) {
    SurveyResult r;
    r.practice = q.practice;
    const std::vector<double> w(q.weights.begin(), q.weights.end());
    for (int i = 0; i < num_operators; ++i) r.counts[rng.weighted_index(w)]++;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace mpa
