#include "simulation/health_model.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace mpa {
namespace {

// Coefficients of the latent rate. The rate is a *product* of
// (1 + coeff * practice) factors, so effects compound: quiet small
// networks sit far below one ticket/month while large, churn-heavy
// networks compound into the tens — the bimodal shape that makes the
// paper's 2-class problem highly learnable (91.6% DT accuracy) despite
// Poisson noise. Shared with ground_truth_effects() so tests and
// documentation stay honest about what is wired in.
constexpr double kDevices = 0.030;
constexpr double kEvents = 0.150;
constexpr double kTypes = 0.070;
constexpr double kVlans = 0.009;
constexpr double kModels = 0.060;
constexpr double kRoles = 0.120;
constexpr double kDevPerEvent = 0.100;
constexpr double kAclFrac = 1.500;
constexpr double kIfaceFracPeak = 0.200;  // inverted-U, peak at 0.5
constexpr double kMboxFrac = 0.010;       // deliberately negligible
constexpr double kL2Protocols = 0.060;    // Figure 4(a)'s linear relationship

const char* kSymptoms[] = {"packet-loss", "link-down", "high-latency", "bgp-flap",
                           "vip-unreachable", "device-unreachable"};

}  // namespace

double HealthModel::ticket_rate(const NetworkDesign& design, const MonthlyOps& ops,
                                int current_vlans) const {
  std::set<std::string> models, roles;
  for (const auto& d : design.devices) {
    models.insert(d.model);
    roles.insert(std::string(to_string(d.role)));
  }
  const double f_iface = ops.frac_events(ops.events_with_interface);
  double rate = opts_.base_rate;
  rate *= 1.0 + kDevices * static_cast<double>(design.devices.size());
  rate *= 1.0 + kEvents * ops.events;
  rate *= 1.0 + kTypes * static_cast<double>(ops.change_types.size());
  rate *= 1.0 + kVlans * current_vlans;
  rate *= 1.0 + kModels * (static_cast<double>(models.size()) - 1.0);
  rate *= 1.0 + kRoles * (static_cast<double>(roles.size()) - 1.0);
  rate *= 1.0 + kDevPerEvent * std::max(0.0, ops.avg_devices_per_event() - 1.0);
  rate *= 1.0 + kAclFrac * ops.frac_events(ops.events_with_acl);
  // Inverted-U in the interface-change fraction (Figure 4(c)). The
  // sin^2 hump has zero slope at both extremes, so the paper's finding
  // that the low-bin (1:2) contrast is NOT causal can emerge even
  // though the practice carries strong overall dependence.
  rate *= 1.0 + kIfaceFracPeak * std::pow(std::sin(M_PI * f_iface), 2.0);
  rate *= 1.0 + kMboxFrac * ops.frac_events(ops.events_with_mbox);
  rate *= 1.0 + kL2Protocols * std::max(0, ops.l2_protocols - 1);
  return opts_.scale * rate;
}

void HealthModel::generate_tickets(const NetworkDesign& design, const MonthlyOps& ops,
                                   int current_vlans, int month, Rng& rng, TicketLog& log,
                                   int& ticket_counter) const {
  const double lambda =
      ticket_rate(design, ops, current_vlans) * rng.lognormal(0, opts_.noise_sigma);
  // Deterministic accrual + Poisson remainder (see poisson_fraction).
  const double det_part = lambda * (1.0 - opts_.poisson_fraction);
  int n = static_cast<int>(det_part);
  if (rng.bernoulli(det_part - static_cast<double>(n))) ++n;
  n += rng.poisson(lambda * opts_.poisson_fraction);
  const Timestamp m_start = month_start(month);

  auto emit = [&](TicketOrigin origin) {
    Ticket t;
    t.ticket_id = "tkt-" + std::to_string(++ticket_counter);
    t.network_id = design.net.network_id;
    t.created = m_start + static_cast<Timestamp>(rng.uniform() * kMinutesPerMonth);
    // Resolution lags; occasionally tickets stay open long after the fix
    // (the paper's reason for not trusting time-to-resolve metrics).
    const double resolve_minutes =
        rng.exponential(1.0 / 240.0) + (rng.bernoulli(0.1) ? rng.uniform(0, 7 * kMinutesPerDay) : 0);
    t.resolved = t.created + static_cast<Timestamp>(resolve_minutes);
    const int n_dev = static_cast<int>(rng.uniform_int(1, 2));
    for (int k = 0; k < n_dev && !design.devices.empty(); ++k) {
      t.devices.push_back(
          design.devices[static_cast<std::size_t>(rng.uniform_int(
                             0, static_cast<std::int64_t>(design.devices.size()) - 1))]
              .device_id);
    }
    t.origin = origin;
    t.symptom = origin == TicketOrigin::kMaintenance
                    ? "planned-maintenance"
                    : kSymptoms[rng.uniform_int(0, 5)];
    log.add(std::move(t));
  };

  for (int i = 0; i < n; ++i)
    emit(rng.bernoulli(0.75) ? TicketOrigin::kMonitoringAlarm : TicketOrigin::kUserReport);
  const int n_maint = rng.poisson(opts_.maintenance_rate);
  for (int i = 0; i < n_maint; ++i) emit(TicketOrigin::kMaintenance);
}

std::map<Practice, double> HealthModel::ground_truth_effects() {
  std::map<Practice, double> fx;
  for (Practice p : all_practices()) fx[p] = 0.0;
  fx[Practice::kNumDevices] = kDevices;
  fx[Practice::kNumChangeEvents] = kEvents;
  fx[Practice::kNumChangeTypes] = kTypes;
  fx[Practice::kNumVlans] = kVlans;
  fx[Practice::kNumModels] = kModels;
  fx[Practice::kNumRoles] = kRoles;
  fx[Practice::kAvgDevicesPerEvent] = kDevPerEvent;
  fx[Practice::kFracEventsAcl] = kAclFrac;
  fx[Practice::kFracEventsInterface] = kIfaceFracPeak;  // non-monotonic
  fx[Practice::kFracEventsMbox] = kMboxFrac;            // negligible
  fx[Practice::kNumL2Protocols] = kL2Protocols;
  return fx;
}

}  // namespace mpa
