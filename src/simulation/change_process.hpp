// The operational change process: simulates month-by-month change
// events against a generated network, mutating its live configurations
// and archiving a snapshot after every device change (as a syslog-fed
// NMS would).
//
// Event structure follows §2.2: an event touches 1..k devices within a
// short window (operators "complete most related changes within" ~5
// minutes, with occasional stragglers), has a dominant change type
// drawn from the network's type mix, and is automated with a
// per-network, per-type propensity.
#pragma once

#include <set>
#include <string>

#include "simulation/config_gen.hpp"
#include "telemetry/snapshots.hpp"

namespace mpa {

/// Ground-truth record of one month of operations on one network —
/// what the generator *actually did*, used by the health model and by
/// validation tests (the pipeline must re-infer these from snapshots).
struct MonthlyOps {
  int events = 0;
  int changes = 0;                 ///< Device-level changes.
  int automated_changes = 0;
  std::set<std::string> devices_changed;
  std::set<std::string> change_types;  ///< Agnostic types touched.
  int events_with_interface = 0;
  int events_with_acl = 0;
  int events_with_router = 0;
  int events_with_vlan = 0;
  int events_with_pool = 0;
  int events_with_mbox = 0;        ///< Events touching a middlebox device.
  int l2_protocols = 0;            ///< L2 constructs configured (design-side).
  double devices_per_event_sum = 0;

  double frac_events(int n) const { return events == 0 ? 0 : static_cast<double>(n) / events; }
  double avg_devices_per_event() const {
    return events == 0 ? 0 : devices_per_event_sum / events;
  }
};

struct ChangeProcessOptions {
  /// Probability that a change's snapshot never reaches the archive
  /// ("some snapshots may be missing due to incomplete or inconsistent
  /// logging", §1). The *change* still happens — the next surviving
  /// snapshot absorbs it.
  double snapshot_loss = 0.12;
  /// Month-to-month lognormal jitter (sigma) on the network's event
  /// rate, event size, and type mix — operations drift over time.
  double monthly_jitter = 0.35;
};

/// Drives one network's configuration churn over time.
class ChangeProcess {
 public:
  /// `net` must outlive the process; its configs are mutated in place.
  ChangeProcess(GeneratedNetwork* net, Rng rng, ChangeProcessOptions opts = {});

  /// Archive every device's initial configuration at t=0 (the archive
  /// bootstrap a RANCID deployment performs).
  void emit_initial_snapshots(SnapshotStore& store);

  /// Simulate month `m`: generate events, apply them to the configs,
  /// archive snapshots. Returns the ground-truth summary.
  MonthlyOps simulate_month(int m, SnapshotStore& store);

 private:
  struct PendingChange {
    Timestamp time;
    std::string device_id;
    std::string type;  ///< Agnostic change type.
    bool automated;
    int event_index;
  };

  /// Mutate `device_id`'s config with a change of agnostic `type`.
  /// Returns false if the type is inapplicable (e.g. pool change on a
  /// network with no pools left to touch).
  bool apply_change(const std::string& device_id, const std::string& type);

  /// Candidate devices for a change of `type`.
  std::vector<std::string> candidates_for(const std::string& type) const;

  void snapshot(const std::string& device_id, Timestamp t, const std::string& login,
                SnapshotStore& store);

  GeneratedNetwork* net_;
  Rng rng_;
  ChangeProcessOptions opts_;
  int change_counter_ = 0;  ///< Uniquifier for generated names/values.
  std::map<std::string, Timestamp> last_snapshot_;  ///< Per-device monotonic clock.
};

}  // namespace mpa
