#include "simulation/network_design.hpp"

#include <algorithm>
#include <map>
#include <cmath>

namespace mpa {
namespace {

// Vendors plausible for each role (drives multi-vendor networks).
std::vector<Vendor> vendor_pool(Role r) {
  switch (r) {
    case Role::kRouter: return {Vendor::kCirrus, Vendor::kJunegrass, Vendor::kAristos};
    case Role::kSwitch: return {Vendor::kCirrus, Vendor::kAristos, Vendor::kBrocatel};
    case Role::kFirewall: return {Vendor::kPaloverde, Vendor::kJunegrass};
    case Role::kLoadBalancer: return {Vendor::kEffen};
    case Role::kAdc: return {Vendor::kEffen, Vendor::kCirrus};
  }
  return {Vendor::kCirrus};
}

std::string role_short(Role r) {
  switch (r) {
    case Role::kRouter: return "rt";
    case Role::kSwitch: return "sw";
    case Role::kFirewall: return "fw";
    case Role::kLoadBalancer: return "lb";
    case Role::kAdc: return "adc";
  }
  return "dev";
}

}  // namespace

std::vector<std::string> NetworkDesign::devices_with_role(Role r) const {
  std::vector<std::string> out;
  for (const auto& d : devices)
    if (d.role == r) out.push_back(d.device_id);
  return out;
}

std::vector<std::string> NetworkDesign::middlebox_devices() const {
  std::vector<std::string> out;
  for (const auto& d : devices)
    if (is_middlebox(d.role)) out.push_back(d.device_id);
  return out;
}

NetworkDesign sample_network_design(int index, Rng& rng, const DesignOptions& opts) {
  NetworkDesign d;
  d.network_index = index;
  d.net.network_id = "net" + std::to_string(index);

  // Purpose (D1): 81% single workload; a handful are pure interconnects.
  const double wl_roll = rng.uniform();
  int num_workloads;
  if (wl_roll < 0.05) {
    num_workloads = 0;  // interconnect network
  } else if (wl_roll < 0.86) {
    num_workloads = 1;
  } else {
    num_workloads = static_cast<int>(rng.uniform_int(2, 4));
  }
  static const char* kWorkloadNames[] = {"web", "files", "app", "users"};
  for (int w = 0; w < num_workloads; ++w) {
    Workload wl;
    wl.kind = static_cast<WorkloadKind>(rng.uniform_int(0, 3));
    wl.name = std::string(kWorkloadNames[static_cast<int>(wl.kind)]) + "-" +
              std::to_string(index) + "-" + std::to_string(w);
    d.net.workloads.push_back(std::move(wl));
  }

  // Size (D2): long-tailed, median ~9 devices, tail to max_devices.
  int n_devices = static_cast<int>(std::lround(rng.lognormal(2.2, 0.9)));
  n_devices = std::clamp(n_devices, opts.min_devices, opts.max_devices);

  // Role composition: routers ~15% (>=1 when the network routes),
  // middleboxes in 71% of networks, rest switches.
  const bool has_middlebox = rng.bernoulli(0.71);
  d.use_bgp = rng.bernoulli(0.86);
  d.use_ospf = rng.bernoulli(0.31);
  const bool routes = d.use_bgp || d.use_ospf;
  const double router_frac = rng.uniform(0.08, 0.30);
  int n_routers =
      routes ? std::max(1, static_cast<int>(std::lround(n_devices * router_frac))) : 0;
  int n_mbox = has_middlebox ? static_cast<int>(rng.uniform_int(1, std::max<std::int64_t>(1, n_devices / 6))) : 0;
  n_mbox = std::min(n_mbox, std::max(0, n_devices - n_routers - 1));
  const int n_switches = std::max(1, n_devices - n_routers - n_mbox);
  n_devices = n_routers + n_mbox + n_switches;

  // Heterogeneity temperament. Each network fixes a small procurement
  // *catalog* per role up front — (vendor, model, firmware) tuples —
  // and devices draw from it. Catalog size is drawn independently of
  // network size, so model/firmware counts do not mechanically track
  // device counts (procurement policy, not scale, drives them). ~10% of
  // networks carry large catalogs and draw near-uniformly (the highly
  // heterogeneous tail of Figure 11(a)).
  const double diversity = rng.uniform();
  const double zipf_s = diversity > 0.9 ? 0.1 : rng.uniform(1.8, 3.2);
  const int catalog_size =
      diversity > 0.9 ? static_cast<int>(rng.uniform_int(4, 7))
                      : (rng.bernoulli(0.45) ? 1 : static_cast<int>(rng.uniform_int(2, 3)));

  struct CatalogEntry {
    Vendor vendor;
    std::string model;
    std::string firmware;
  };
  std::map<Role, std::vector<CatalogEntry>> catalog;
  auto catalog_for = [&](Role role) -> std::vector<CatalogEntry>& {
    auto& entries = catalog[role];
    if (entries.empty()) {
      const auto pool = vendor_pool(role);
      for (int v = 0; v < catalog_size; ++v) {
        CatalogEntry e;
        e.vendor = pool[static_cast<std::size_t>(
            rng.zipf(static_cast<int>(pool.size()), 1.2)) - 1];
        const int variant = static_cast<int>(rng.uniform_int(1, 5));
        e.model = std::string(to_string(e.vendor)) + "-" + role_short(role) + "-m" +
                  std::to_string(variant);
        e.firmware = "fw" + std::to_string(3 + variant) + "." +
                     std::to_string(rng.uniform_int(0, 2));
        entries.push_back(std::move(e));
      }
    }
    return entries;
  };

  auto add_device = [&](Role role, int k) {
    DeviceRecord dev;
    dev.device_id = d.net.network_id + "-" + role_short(role) + "-" + std::to_string(k);
    dev.network_id = d.net.network_id;
    auto& entries = catalog_for(role);
    const auto& e = entries[static_cast<std::size_t>(
        rng.zipf(static_cast<int>(entries.size()), zipf_s)) - 1];
    dev.vendor = e.vendor;
    dev.model = e.model;
    dev.firmware = e.firmware;
    dev.role = role;
    d.devices.push_back(std::move(dev));
  };
  int serial = 0;
  for (int i = 0; i < n_routers; ++i) add_device(Role::kRouter, serial++);
  for (int i = 0; i < n_switches; ++i) add_device(Role::kSwitch, serial++);
  static const Role kMboxRoles[] = {Role::kFirewall, Role::kLoadBalancer, Role::kAdc};
  for (int i = 0; i < n_mbox; ++i)
    add_device(kMboxRoles[rng.uniform_int(0, 2)], serial++);
  for (const auto& dev : d.devices) d.net.device_ids.push_back(dev.device_id);

  // Data/control plane composition (D4/D5). Everyone uses VLANs; other
  // L2 constructs spread the protocol count over 1..8ish.
  d.use_mstp = rng.bernoulli(0.6);
  d.use_lag = rng.bernoulli(0.55);
  d.use_udld = rng.bernoulli(0.45);
  d.use_dhcp_relay = rng.bernoulli(0.4);
  d.num_vlans = std::clamp(static_cast<int>(std::lround(rng.lognormal(2.8, 1.2))), 1, 300);

  if (d.use_bgp) {
    // 39% single instance, heavy tail beyond 20.
    d.bgp_instances = std::clamp(static_cast<int>(std::lround(rng.lognormal(0.7, 1.2))), 1, 40);
  }
  if (d.use_ospf) d.ospf_instances = static_cast<int>(rng.uniform_int(1, 2));
  d.acls_per_firewall = static_cast<int>(rng.uniform_int(1, 4));

  // Operational temperament (Appendix A.2 calibration). Change volume
  // correlates with network size (Figure 12(a): Pearson ~0.64) — the
  // log-mean tracks log(size).
  d.change_events_per_month = std::clamp(
      rng.lognormal(0.55 + 0.75 * std::log(static_cast<double>(n_devices)), 0.9), 0.3, 400.0);
  d.event_size_mean = std::clamp(rng.lognormal(0.4, 0.5), 1.0, 9.0);
  d.automation_propensity = rng.uniform(0.05, 0.75);

  // Change-type mix: interface-heavy overall; pool changes only where
  // there are load balancers; ~5% of networks are router-change-heavy.
  std::map<std::string, double> mix = {
      {"interface", 0.35}, {"acl", 0.15}, {"user", 0.10}, {"vlan", 0.08},
      {"sflow", 0.03},     {"qos", 0.03}, {"snmp", 0.02}, {"logging", 0.02},
  };
  if (!d.middlebox_devices().empty()) mix["pool"] = 0.22;
  if (n_routers > 0) mix["router"] = rng.bernoulli(0.05) ? 1.2 : 0.06;
  for (auto& [type, w] : mix) w *= rng.lognormal(0, 0.5);
  d.change_type_mix = std::move(mix);

  return d;
}

}  // namespace mpa
