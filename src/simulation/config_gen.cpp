#include "simulation/config_gen.hpp"

#include <algorithm>

#include "config/addr.hpp"
#include "util/error.hpp"

namespace mpa {

std::string DialectVocab::interface_type() const {
  return dialect == Dialect::kIosLike ? "interface" : "interfaces";
}
std::string DialectVocab::vlan_type() const {
  return dialect == Dialect::kIosLike ? "vlan" : "vlans";
}
std::string DialectVocab::acl_type() const {
  return dialect == Dialect::kIosLike ? "ip access-list" : "firewall-filter";
}
std::string DialectVocab::bgp_type() const {
  return dialect == Dialect::kIosLike ? "router bgp" : "protocols-bgp";
}
std::string DialectVocab::ospf_type() const {
  return dialect == Dialect::kIosLike ? "router ospf" : "protocols-ospf";
}
std::string DialectVocab::mstp_type() const {
  return dialect == Dialect::kIosLike ? "spanning-tree" : "protocols-mstp";
}
std::string DialectVocab::lag_type() const {
  return dialect == Dialect::kIosLike ? "port-channel" : "lag";
}
std::string DialectVocab::user_type() const {
  return dialect == Dialect::kIosLike ? "username" : "login-user";
}
std::string DialectVocab::snmp_type() const {
  return dialect == Dialect::kIosLike ? "snmp-server" : "snmp";
}
std::string DialectVocab::qos_type() const {
  return dialect == Dialect::kIosLike ? "qos policy" : "class-of-service";
}
std::string DialectVocab::ip_address_key() const {
  return dialect == Dialect::kIosLike ? "ip address" : "ip-address";
}
std::string DialectVocab::acl_attach_key() const {
  return dialect == Dialect::kIosLike ? "ip access-group" : "filter";
}
std::string DialectVocab::iface_name(int k) const {
  return dialect == Dialect::kIosLike ? "Eth" + std::to_string(k)
                                      : "xe-0/0/" + std::to_string(k);
}

DialectVocab vocab_for(Vendor v) { return DialectVocab{dialect_of(v)}; }

const DeviceConfig& GeneratedNetwork::config(const std::string& device_id) const {
  const auto it = configs.find(device_id);
  require(it != configs.end(), "GeneratedNetwork::config: unknown device " + device_id);
  return it->second;
}

DeviceConfig& GeneratedNetwork::config(const std::string& device_id) {
  const auto it = configs.find(device_id);
  require(it != configs.end(), "GeneratedNetwork::config: unknown device " + device_id);
  return it->second;
}

namespace {

/// Per-network subnet allocator: 10.0.k.0/24, k from a local counter.
/// Address overlap across networks is fine — all reference and
/// adjacency analysis is per network.
class SubnetAllocator {
 public:
  Ipv4Prefix next() {
    const std::uint32_t base = (10u << 24) | (counter_ << 8);
    ++counter_;
    return Ipv4Prefix{base, 24};
  }

 private:
  std::uint32_t counter_ = 0;
};

struct DeviceState {
  const DeviceRecord* record = nullptr;
  DialectVocab vocab;
  int next_iface = 0;
};

// Add an interface on `subnet` with host part `host`; returns its name.
std::string add_link_interface(DeviceConfig& cfg, DeviceState& st, const Ipv4Prefix& subnet,
                               std::uint32_t host) {
  Stanza s;
  s.type = st.vocab.interface_type();
  s.name = st.vocab.iface_name(st.next_iface++);
  s.set(st.vocab.ip_address_key(), format_ipv4(subnet.network() + host) + "/24");
  s.set("description", "link");
  cfg.add(std::move(s));
  return cfg.stanzas().back().name;
}

}  // namespace

GeneratedNetwork generate_configs(NetworkDesign design, Rng& rng) {
  GeneratedNetwork gen;
  SubnetAllocator subnets;

  std::map<std::string, DeviceState> states;
  for (const auto& dev : design.devices) {
    gen.configs.emplace(dev.device_id, DeviceConfig(dev.device_id));
    gen.vendor_of.emplace(dev.device_id, dev.vendor);
    states.emplace(dev.device_id, DeviceState{&dev, vocab_for(dev.vendor), 0});
  }

  const auto routers = design.devices_with_role(Role::kRouter);
  const auto switches = design.devices_with_role(Role::kSwitch);

  // --- Physical links ----------------------------------------------------
  // Routers form a chain; every other device uplinks to a router (or to
  // the first switch when the network has no routers).
  struct LinkAddr {
    std::string iface;
    Ipv4Prefix subnet;
  };
  std::map<std::string, std::vector<LinkAddr>> link_addrs;

  auto connect = [&](const std::string& a, const std::string& b) {
    const Ipv4Prefix sn = subnets.next();
    auto& sa = states.at(a);
    auto& sb = states.at(b);
    const std::string ia = add_link_interface(gen.config(a), sa, sn, 1);
    const std::string ib = add_link_interface(gen.config(b), sb, sn, 2);
    link_addrs[a].push_back(LinkAddr{ia, Ipv4Prefix{sn.network() + 1, 24}});
    link_addrs[b].push_back(LinkAddr{ib, Ipv4Prefix{sn.network() + 2, 24}});
  };

  for (std::size_t i = 1; i < routers.size(); ++i) connect(routers[i - 1], routers[i]);
  for (const auto& dev : design.devices) {
    if (dev.role == Role::kRouter) continue;
    if (!routers.empty()) {
      connect(dev.device_id,
              routers[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(routers.size()) - 1))]);
    } else if (dev.device_id != design.devices.front().device_id) {
      connect(dev.device_id, design.devices.front().device_id);
    }
  }

  // --- Host-facing access ports ------------------------------------------
  // Real switches carry dozens of access ports unrelated to the
  // inter-device topology; port counts vary by hardware, not network
  // size, which keeps interface-derived metrics from mechanically
  // tracking device count.
  for (const auto& dev : design.devices) {
    const int ports = static_cast<int>(rng.uniform_int(2, dev.role == Role::kSwitch ? 12 : 4));
    auto& st = states.at(dev.device_id);
    auto& cfg = gen.config(dev.device_id);
    for (int p = 0; p < ports; ++p) {
      Stanza s;
      s.type = st.vocab.interface_type();
      s.name = st.vocab.iface_name(st.next_iface++);
      s.set("description", "host-port");
      cfg.add(std::move(s));
    }
  }

  // --- VLANs ---------------------------------------------------------------
  // Each VLAN is defined on 1..6 switches (definitions on 2+ devices are
  // inter-device references); on IOS-like switches one interface also
  // takes membership (intra-device reference); on JunOS-like switches
  // the vlans stanza lists the member interface. This asymmetry is the
  // paper's vendor-typification caveat, on purpose.
  const auto& vlan_hosts = switches.empty() ? design.net.device_ids : switches;
  for (int v = 0; v < design.num_vlans; ++v) {
    const std::string vlan_id = std::to_string(100 + v);
    const int spread = static_cast<int>(
        rng.uniform_int(1, std::min<std::int64_t>(6, static_cast<std::int64_t>(vlan_hosts.size()))));
    const auto chosen = rng.sample_indices(vlan_hosts.size(), static_cast<std::size_t>(spread));
    for (std::size_t idx : chosen) {
      const std::string& dev_id = vlan_hosts[idx];
      auto& st = states.at(dev_id);
      auto& cfg = gen.config(dev_id);
      if (cfg.find(st.vocab.vlan_type(), vlan_id) != nullptr) continue;
      Stanza s;
      s.type = st.vocab.vlan_type();
      s.name = vlan_id;
      s.set("l2", "enabled");
      const auto& links = link_addrs[dev_id];
      if (st.vocab.dialect == Dialect::kJunosLike && !links.empty()) {
        s.set("interface", links[0].iface);  // membership lives in the vlan
      }
      cfg.add(std::move(s));
      if (st.vocab.dialect == Dialect::kIosLike && !links.empty()) {
        if (auto* iface = gen.config(dev_id).find(st.vocab.interface_type(), links[0].iface))
          iface->replace("switchport access vlan", vlan_id);
      }
    }
  }

  // --- ACLs on routers and firewalls --------------------------------------
  for (const auto& dev : design.devices) {
    if (dev.role != Role::kRouter && dev.role != Role::kFirewall) continue;
    auto& st = states.at(dev.device_id);
    auto& cfg = gen.config(dev.device_id);
    for (int k = 0; k < design.acls_per_firewall; ++k) {
      Stanza acl;
      acl.type = st.vocab.acl_type();
      acl.name = "acl-" + std::to_string(k);
      const int terms = static_cast<int>(rng.uniform_int(2, 5));
      for (int t = 0; t < terms; ++t) {
        acl.set(rng.bernoulli(0.8) ? "permit" : "deny",
                "tcp any any eq " + std::to_string(rng.uniform_int(20, 9000)));
      }
      cfg.add(std::move(acl));
    }
    // Attach the first ACL to the first interface (intra-device ref).
    const auto& links = link_addrs[dev.device_id];
    if (!links.empty() && design.acls_per_firewall > 0) {
      if (auto* iface = cfg.find(st.vocab.interface_type(), links[0].iface))
        iface->replace(st.vocab.acl_attach_key(), "acl-0");
    }
  }

  // --- BGP instances -------------------------------------------------------
  // Partition routers round-robin over the designed instance count.
  // Within a group, consecutive members peer (neighbor -> peer's real
  // interface address, so extraction recovers exactly one instance per
  // group); singleton groups peer with an external address.
  if (design.use_bgp && !routers.empty()) {
    const int groups = std::min<int>(design.bgp_instances, static_cast<int>(routers.size()));
    std::vector<std::vector<std::string>> members(static_cast<std::size_t>(groups));
    for (std::size_t i = 0; i < routers.size(); ++i)
      members[i % static_cast<std::size_t>(groups)].push_back(routers[i]);
    for (std::size_t g = 0; g < members.size(); ++g) {
      const int asn = 65000 + static_cast<int>(g);
      for (std::size_t m = 0; m < members[g].size(); ++m) {
        const std::string& dev_id = members[g][m];
        auto& st = states.at(dev_id);
        Stanza bgp;
        bgp.type = st.vocab.bgp_type();
        bgp.name = std::to_string(asn);
        if (members[g].size() == 1) {
          bgp.set("neighbor", "192.0.2." + std::to_string(10 + g) + " remote-as " +
                                  std::to_string(64000 + static_cast<int>(g)));
        } else {
          const std::string& peer = members[g][(m + 1) % members[g].size()];
          const auto& peer_links = link_addrs[peer];
          if (!peer_links.empty()) {
            bgp.set("neighbor",
                    format_ipv4(peer_links[0].subnet.addr) + " remote-as " + std::to_string(asn));
          }
        }
        for (const auto& la : link_addrs[dev_id])
          bgp.set("network", format_prefix(la.subnet.subnet()));
        gen.config(dev_id).add(std::move(bgp));
      }
    }
  }

  // --- OSPF instances ------------------------------------------------------
  // Each instance gets its own "area subnet"; every member holds an
  // interface on it and advertises it, so shared-subnet adjacency
  // recovers exactly one instance per group.
  if (design.use_ospf && !routers.empty()) {
    const int groups = std::min<int>(design.ospf_instances, static_cast<int>(routers.size()));
    std::vector<std::vector<std::string>> members(static_cast<std::size_t>(groups));
    for (std::size_t i = 0; i < routers.size(); ++i)
      members[i % static_cast<std::size_t>(groups)].push_back(routers[i]);
    for (std::size_t g = 0; g < members.size(); ++g) {
      const Ipv4Prefix area_subnet = subnets.next();
      std::uint32_t host = 1;
      for (const auto& dev_id : members[g]) {
        auto& st = states.at(dev_id);
        add_link_interface(gen.config(dev_id), st, area_subnet, host++);
        Stanza ospf;
        ospf.type = st.vocab.ospf_type();
        ospf.name = std::to_string(g + 1);
        ospf.set("network", format_prefix(area_subnet) + " area " + std::to_string(g));
        gen.config(dev_id).add(std::move(ospf));
      }
    }
  }

  // --- MSTP, LAG, UDLD, DHCP relay ------------------------------------------
  if (design.use_mstp) {
    const std::string region = "region-" + design.net.network_id;
    for (const auto& dev_id : (switches.empty() ? design.net.device_ids : switches)) {
      auto& st = states.at(dev_id);
      Stanza stp;
      stp.type = st.vocab.mstp_type();
      stp.name = "mst0";
      stp.set("region", region);
      gen.config(dev_id).add(std::move(stp));
    }
  }
  if (design.use_lag) {
    for (const auto& dev_id : switches) {
      if (!rng.bernoulli(0.5)) continue;
      auto& st = states.at(dev_id);
      const auto& links = link_addrs[dev_id];
      if (links.empty()) continue;
      Stanza lag;
      lag.type = st.vocab.lag_type();
      lag.name = "ae0";
      lag.set("member", links[0].iface);
      gen.config(dev_id).add(std::move(lag));
    }
  }
  if (design.use_udld) {
    for (const auto& dev_id : switches) {
      if (!rng.bernoulli(0.6)) continue;
      Stanza udld;
      udld.type = "udld";
      udld.name = "global";
      udld.set("enable", "");
      gen.config(dev_id).add(std::move(udld));
    }
  }
  if (design.use_dhcp_relay) {
    for (const auto& dev_id : (routers.empty() ? switches : routers)) {
      auto& st = states.at(dev_id);
      Stanza relay;
      relay.type = st.vocab.dialect == Dialect::kIosLike ? "ip dhcp-relay" : "dhcp-relay";
      relay.name = "global";
      relay.set("server", "10.250.0.5");
      gen.config(dev_id).add(std::move(relay));
    }
  }

  // --- Middlebox pools -------------------------------------------------------
  for (const auto& dev : design.devices) {
    if (dev.role != Role::kLoadBalancer && dev.role != Role::kAdc) continue;
    auto& cfg = gen.config(dev.device_id);
    const int pools = static_cast<int>(rng.uniform_int(1, 3));
    for (int k = 0; k < pools; ++k) {
      Stanza pool;
      pool.type = "pool";
      pool.name = "pool-" + std::to_string(k);
      const int members = static_cast<int>(rng.uniform_int(2, 6));
      for (int mbr = 0; mbr < members; ++mbr)
        pool.set("member", "10.200." + std::to_string(k) + "." + std::to_string(10 + mbr) + ":80");
      cfg.add(std::move(pool));
      Stanza vs;
      vs.type = "virtual-server";
      vs.name = "vs-" + std::to_string(k);
      vs.set("pool", "pool-" + std::to_string(k));
      vs.set("listen", "0.0.0.0:443");
      cfg.add(std::move(vs));
    }
  }

  // --- Management-plane plumbing ---------------------------------------------
  for (const auto& dev : design.devices) {
    auto& st = states.at(dev.device_id);
    auto& cfg = gen.config(dev.device_id);
    const int users = static_cast<int>(rng.uniform_int(2, 5));
    for (int u = 0; u < users; ++u) {
      Stanza user;
      user.type = st.vocab.user_type();
      user.name = "ops" + std::to_string(u);
      user.set("role", u == 0 ? "admin" : "operator");
      cfg.add(std::move(user));
    }
    Stanza snmp;
    snmp.type = st.vocab.snmp_type();
    snmp.name = "main";
    snmp.set("community", "monitoring");
    cfg.add(std::move(snmp));
    Stanza ntp;
    ntp.type = st.vocab.dialect == Dialect::kIosLike ? "ntp" : "system-ntp";
    ntp.name = "global";
    ntp.set("server", "10.250.0.1");
    cfg.add(std::move(ntp));
    Stanza logging;
    logging.type = st.vocab.dialect == Dialect::kIosLike ? "logging" : "system-syslog";
    logging.name = "global";
    logging.set("host", "10.250.0.2");
    cfg.add(std::move(logging));
    if (rng.bernoulli(0.5)) {
      Stanza sflow;
      sflow.type = "sflow";
      sflow.name = "global";
      sflow.set("collector", "10.250.0.3");
      sflow.set("rate", "4096");
      cfg.add(std::move(sflow));
    }
    if (rng.bernoulli(0.4)) {
      Stanza qos;
      qos.type = st.vocab.qos_type();
      qos.name = "default";
      qos.set("class", "best-effort");
      cfg.add(std::move(qos));
    }
  }

  gen.design = std::move(design);
  return gen;
}

}  // namespace mpa
