// The latent ground-truth health model.
//
// Tickets are Poisson with a rate built from exactly the practices the
// paper found impactful (Table 7): number of devices, change events,
// change types, VLANs, models, roles, devices-changed-per-event, and
// the fraction of events with an ACL change. The fraction of events
// with an interface change enters *non-monotonically* (Figure 4(c)),
// and the middlebox-change fraction has a negligible coefficient (the
// paper's surprising negative finding). Intra-device complexity and
// the heterogeneity entropies have NO direct term — they correlate
// with health only through their confounders, which is what lets the
// causal analysis distinguish dependence from causation (Table 7's two
// non-causal rows).
#pragma once

#include <map>

#include "metrics/practices.hpp"
#include "simulation/change_process.hpp"
#include "simulation/network_design.hpp"
#include "telemetry/tickets.hpp"
#include "util/rng.hpp"

namespace mpa {

struct HealthModelOptions {
  double base_rate = 0.065;     ///< Rate before any practice factor.
  double scale = 1.0;          ///< Global multiplier on the final rate.
  double noise_sigma = 0.18;   ///< Lognormal month-to-month noise.
  /// Fraction of the rate drawn as Poisson noise; the rest accrues
  /// deterministically. Monthly ticket counts in production networks
  /// are far less dispersed than a Poisson process (recurring monitors,
  /// chronic issues): a pure-Poisson draw would cap 2-class prediction
  /// accuracy near 75%, far below the paper's observed 91.6%.
  double poisson_fraction = 0.35;
  double maintenance_rate = 0.5;  ///< Maintenance tickets/month (excluded by MPA).
};

class HealthModel {
 public:
  explicit HealthModel(HealthModelOptions opts = {}) : opts_(opts) {}

  /// Expected ticket count for one network-month, before noise.
  /// `current_vlans` is the live VLAN count (it grows as the change
  /// process adds VLANs).
  double ticket_rate(const NetworkDesign& design, const MonthlyOps& ops,
                     int current_vlans) const;

  /// Draw the month's tickets (health + maintenance) into `log`.
  /// `ticket_counter` uniquifies ids across networks.
  void generate_tickets(const NetworkDesign& design, const MonthlyOps& ops, int current_vlans,
                        int month, Rng& rng, TicketLog& log, int& ticket_counter) const;

  /// The generator's causal truth: strictly positive entries are wired
  /// into ticket_rate; zero entries are not (validation tests assert
  /// the pipeline recovers this split).
  static std::map<Practice, double> ground_truth_effects();

 private:
  HealthModelOptions opts_;
};

}  // namespace mpa
