#include "simulation/change_process.hpp"

#include <algorithm>

#include "config/types.hpp"

namespace mpa {
namespace {

// Human operator logins; automation accounts carry the "svc-" prefix
// the default classifier recognizes.
const char* kHumanLogins[] = {"alice", "bob", "carol", "dinesh", "erin", "felix"};
const char* kAutomationLogins[] = {"svc-deploy", "svc-netops", "svc-lbsync"};

}  // namespace

ChangeProcess::ChangeProcess(GeneratedNetwork* net, Rng rng, ChangeProcessOptions opts)
    : net_(net), rng_(rng), opts_(opts) {}

void ChangeProcess::emit_initial_snapshots(SnapshotStore& store) {
  for (const auto& dev : net_->design.devices)
    snapshot(dev.device_id, 0, "svc-provision", store);
}

void ChangeProcess::snapshot(const std::string& device_id, Timestamp t,
                             const std::string& login, SnapshotStore& store) {
  auto& last = last_snapshot_[device_id];
  if (t <= last) t = last + 1;  // keep the per-device archive monotone
  last = t;
  // Lossy archiving (never for the t=0 bootstrap snapshot): the change
  // is applied to the live config but not archived, so the next
  // surviving snapshot shows a merged diff.
  if (t > 0 && rng_.bernoulli(opts_.snapshot_loss)) return;
  ConfigSnapshot snap;
  snap.device_id = device_id;
  snap.time = t;
  snap.login = login;
  snap.text = render(net_->config(device_id), dialect_of(net_->vendor_of.at(device_id)));
  store.add(std::move(snap));
}

std::vector<std::string> ChangeProcess::candidates_for(const std::string& type) const {
  const auto& design = net_->design;
  if (type == "router" || type == "acl") {
    auto routers = design.devices_with_role(Role::kRouter);
    if (type == "acl") {
      for (auto& fw : design.devices_with_role(Role::kFirewall)) routers.push_back(fw);
    }
    return routers;
  }
  if (type == "pool") {
    std::vector<std::string> out;
    for (const auto& d : design.devices)
      if (d.role == Role::kLoadBalancer || d.role == Role::kAdc) out.push_back(d.device_id);
    return out;
  }
  if (type == "vlan") {
    auto sw = design.devices_with_role(Role::kSwitch);
    return sw.empty() ? design.net.device_ids : sw;
  }
  return design.net.device_ids;  // interface, user, snmp, sflow, qos, logging
}

bool ChangeProcess::apply_change(const std::string& device_id, const std::string& type) {
  DeviceConfig& cfg = net_->config(device_id);
  const DialectVocab vocab = vocab_for(net_->vendor_of.at(device_id));
  const int uid = ++change_counter_;

  if (type == "interface") {
    auto ifaces = cfg.all_of_type(vocab.interface_type());
    if (ifaces.empty()) return false;
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(ifaces.size()) - 1));
    auto* s = cfg.find(vocab.interface_type(), ifaces[pick]->name);
    s->replace("description", "upd-" + std::to_string(uid));
    return true;
  }
  if (type == "acl") {
    auto acls = cfg.all_of_type(vocab.acl_type());
    if (acls.empty()) {
      Stanza acl;
      acl.type = vocab.acl_type();
      acl.name = "acl-gen-" + std::to_string(uid);
      acl.set("permit", "tcp any any eq 443");
      cfg.add(std::move(acl));
      return true;
    }
    auto* s = cfg.find(vocab.acl_type(), acls[0]->name);
    if (rng_.bernoulli(0.7) || s->options.size() <= 1) {
      s->set("permit", "tcp any any eq " + std::to_string(rng_.uniform_int(20, 9000)));
    } else {
      s->options.pop_back();
    }
    return true;
  }
  if (type == "vlan") {
    if (rng_.bernoulli(0.4)) {
      Stanza vlan;
      vlan.type = vocab.vlan_type();
      vlan.name = std::to_string(1000 + uid);
      vlan.set("l2", "enabled");
      cfg.add(std::move(vlan));
      return true;
    }
    auto vlans = cfg.all_of_type(vocab.vlan_type());
    if (vlans.empty()) return false;
    auto* s = cfg.find(vocab.vlan_type(), vlans[0]->name);
    s->replace("note", "upd-" + std::to_string(uid));
    return true;
  }
  if (type == "router") {
    for (const auto& rt : {vocab.bgp_type(), vocab.ospf_type()}) {
      auto procs = cfg.all_of_type(rt);
      if (procs.empty()) continue;
      auto* s = cfg.find(rt, procs[0]->name);
      s->set("network", "192.168." + std::to_string(uid % 250) + ".0/24");
      return true;
    }
    return false;
  }
  if (type == "pool") {
    auto pools = cfg.all_of_type("pool");
    if (pools.empty()) return false;
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(pools.size()) - 1));
    auto* s = cfg.find("pool", pools[pick]->name);
    if (rng_.bernoulli(0.6) || s->options.size() <= 1) {
      s->set("member", "10.200.9." + std::to_string(uid % 250) + ":80");
    } else {
      s->options.pop_back();
    }
    return true;
  }
  if (type == "user") {
    auto users = cfg.all_of_type(vocab.user_type());
    if (rng_.bernoulli(0.5) || users.size() <= 1) {
      Stanza user;
      user.type = vocab.user_type();
      user.name = "ops-gen-" + std::to_string(uid);
      user.set("role", "operator");
      cfg.add(std::move(user));
    } else {
      cfg.remove(vocab.user_type(), users.back()->name);
    }
    return true;
  }
  if (type == "sflow" || type == "snmp" || type == "logging" || type == "qos") {
    std::string native = type;
    if (type == "snmp") native = vocab.snmp_type();
    if (type == "qos") native = vocab.qos_type();
    if (type == "logging")
      native = vocab.dialect == Dialect::kIosLike ? "logging" : "system-syslog";
    auto matches = cfg.all_of_type(native);
    if (matches.empty()) {
      Stanza s;
      s.type = native;
      s.name = "global";
      s.set("setting", "v" + std::to_string(uid));
      cfg.add(std::move(s));
      return true;
    }
    auto* s = cfg.find(native, matches[0]->name);
    s->replace("setting", "v" + std::to_string(uid));
    return true;
  }
  return false;
}

MonthlyOps ChangeProcess::simulate_month(int m, SnapshotStore& store) {
  MonthlyOps ops;
  const auto& design = net_->design;
  ops.l2_protocols = 1 + (design.use_mstp ? 1 : 0) + (design.use_lag ? 1 : 0) +
                     (design.use_udld ? 1 : 0) + (design.use_dhcp_relay ? 1 : 0);
  const Timestamp m_start = month_start(m);

  // Month-level drift: the event rate, event sizes, and type mix all
  // wobble around the network's temperament.
  const double jitter = opts_.monthly_jitter;
  const double month_rate = design.change_events_per_month * rng_.lognormal(0, jitter);
  const double month_size_mean =
      std::max(1.0, design.event_size_mean * rng_.lognormal(0, jitter));
  const int n_events = rng_.poisson(month_rate);
  if (n_events == 0) return ops;

  // Draw the month's events up front, then replay in time order so the
  // snapshot archive stays chronologically consistent.
  std::vector<PendingChange> pending;
  std::vector<double> type_weights;
  std::vector<std::string> type_names;
  for (const auto& [type, w] : design.change_type_mix) {
    type_names.push_back(type);
    type_weights.push_back(w * rng_.lognormal(0, jitter));
  }

  struct EventMeta {
    std::set<std::string> types;
    std::set<std::string> devices;
    bool touches_mbox = false;
  };
  std::vector<EventMeta> events;

  std::map<std::string, Role> role_of;
  for (const auto& d : design.devices) role_of[d.device_id] = d.role;

  for (int e = 0; e < n_events; ++e) {
    const Timestamp t0 =
        m_start + static_cast<Timestamp>(rng_.uniform() * (kMinutesPerMonth - 60));
    const std::string type = type_names[rng_.weighted_index(type_weights)];
    auto candidates = candidates_for(type);
    if (candidates.empty()) continue;
    // Event sizes are heavy-tailed: most events touch one or two
    // devices, but an occasional event sweeps a large slice of the
    // network (fleet-wide ACL pushes, VLAN rollouts). The heavy tail
    // decouples monthly change volume from event count, which is what
    // real archives show (and what lets matched designs separate the
    // two practices).
    int size = 1 + rng_.poisson(month_size_mean - 1.0);
    if (rng_.bernoulli(0.08)) size *= static_cast<int>(rng_.uniform_int(3, 10));
    size = std::min<int>(size, static_cast<int>(candidates.size()));
    // Devices are not hit uniformly: every network has a "hot set" that
    // absorbs most changes (Figure 12(b): in most networks fewer than
    // half the devices change in a month, yet change volume is high).
    std::vector<std::size_t> chosen;
    {
      std::set<std::size_t> picked;
      int attempts = 0;
      while (static_cast<int>(picked.size()) < size &&
             attempts < 20 * size + 50) {
        ++attempts;
        const auto idx = static_cast<std::size_t>(
            rng_.zipf(static_cast<int>(candidates.size()), 1.4) - 1);
        picked.insert(idx);
      }
      chosen.assign(picked.begin(), picked.end());
    }
    const bool automated = rng_.bernoulli(std::min(
        0.95, design.automation_propensity * (type == "pool" || type == "sflow" || type == "qos"
                                                  ? 1.8
                                                  : 1.0)));
    const int event_index = static_cast<int>(events.size());
    events.emplace_back();

    // Occasionally add a secondary change type to the same event.
    std::vector<std::string> event_types{type};
    if (rng_.bernoulli(0.25)) event_types.push_back(type_names[rng_.weighted_index(type_weights)]);

    Timestamp t = t0;
    for (std::size_t ci = 0; ci < chosen.size(); ++ci) {
      // Most intra-event gaps are short (median well under the 5-minute
      // grouping window); ~5% of steps straggle 6-20 minutes.
      if (ci > 0) {
        t += rng_.bernoulli(0.05) ? rng_.uniform_int(6, 20)
                                  : static_cast<Timestamp>(rng_.uniform_int(0, 2));
      }
      for (const auto& et : event_types)
        pending.push_back(PendingChange{t, candidates[chosen[ci]], et, automated, event_index});
    }
  }

  std::sort(pending.begin(), pending.end(), [](const PendingChange& a, const PendingChange& b) {
    return a.time != b.time ? a.time < b.time : a.device_id < b.device_id;
  });

  for (const auto& pc : pending) {
    if (!apply_change(pc.device_id, pc.type)) continue;
    const std::string login =
        pc.automated
            ? kAutomationLogins[rng_.uniform_int(0, 2)]
            : kHumanLogins[rng_.uniform_int(0, 5)];
    snapshot(pc.device_id, pc.time, login, store);

    ++ops.changes;
    if (pc.automated) ++ops.automated_changes;
    ops.devices_changed.insert(pc.device_id);
    ops.change_types.insert(pc.type);
    auto& ev = events[static_cast<std::size_t>(pc.event_index)];
    ev.types.insert(pc.type);
    ev.devices.insert(pc.device_id);
    if (is_middlebox(role_of[pc.device_id])) ev.touches_mbox = true;
  }

  for (const auto& ev : events) {
    if (ev.devices.empty()) continue;  // event produced no applicable change
    ++ops.events;
    ops.devices_per_event_sum += static_cast<double>(ev.devices.size());
    if (ev.types.count("interface")) ++ops.events_with_interface;
    if (ev.types.count("acl")) ++ops.events_with_acl;
    if (ev.types.count("router")) ++ops.events_with_router;
    if (ev.types.count("vlan")) ++ops.events_with_vlan;
    if (ev.types.count("pool")) ++ops.events_with_pool;
    if (ev.touches_mbox) ++ops.events_with_mbox;
  }
  return ops;
}

}  // namespace mpa
