// AnalysisSession: the engine layer that owns the paper's pipeline.
//
// A session wraps the three raw data sources (inventory, snapshot
// archive, ticket log) and serves every derived artifact behind a
// memoizing cache with explicit invalidation:
//
//   case_table()    the inferred (network, month) case table (§2),
//                   optionally persisted through an ArtifactStore
//   lint()          rule-engine lint findings over each network's
//                   latest snapshots (config/lint.hpp)
//   dependence()    MI / CMI rankings (§5.1, Tables 3-4)
//   causal(p)       matched-design QED per practice (§5.2, Tables 5-8)
//   evaluate_cv()   cross-validated model evaluation (§6.1, Figure 8)
//   online_accuracy() the online month-ahead protocol (§6.2, Table 9)
//
// All stages execute on one shared ThreadPool (MPA_THREADS override;
// fan-out per network / comparison point / fold / month), and every
// randomized artifact draws a private RNG stream derived from the
// session seed and the artifact's identity — so results are
// bit-identical at any thread count and independent of the order in
// which artifacts are requested.
//
// A session is single-owner for *stage* calls: one thread of control
// requests artifacts at a time (SessionManager enforces this for the
// serving layer); the parallelism lives inside the stages, not across
// them. The observation surface is wider: stats() and manifest() are
// safe to call from other threads concurrently with a running stage —
// both snapshot under an internal mutex (DESIGN.md §11).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/artifact_store.hpp"
#include "engine/run_manifest.hpp"
#include "io/dataset_io.hpp"
#include "metrics/inference.hpp"
#include "mpa/causal.hpp"
#include "mpa/dependence.hpp"
#include "mpa/modeling.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace mpa {

struct SessionOptions {
  InferenceOptions inference = {};
  DependenceOptions dependence = {};
  CausalOptions causal = {};
  ModelingOptions modeling = {};
  /// Root of every model RNG stream: each derived artifact is a pure
  /// function of (data, options, seed).
  std::uint64_t seed = 42;
  /// Worker threads for every stage; 0 = MPA_THREADS env override,
  /// falling back to the hardware concurrency.
  int threads = 0;
  /// Directory for persistent artifacts (empty = in-memory only).
  std::string artifact_dir;
  /// Key the case table persists under (empty = don't persist). The
  /// caller is responsible for keying by dataset identity (the
  /// benches key by shape + seed).
  std::string artifact_key;
};

class AnalysisSession {
 public:
  AnalysisSession(Inventory inventory, SnapshotStore snapshots, TicketLog tickets,
                  SessionOptions opts = {});
  /// Moving is only valid while no other thread is touching `other`
  /// (the stats mutex itself is not moved — the new session gets a
  /// fresh one). The moved-from shell destructs as a no-op. Exempt
  /// from the thread-safety analysis: the single-owner transfer
  /// contract is the caller's, and other.stats_mu_ is deliberately
  /// not taken (nobody else may hold it here by definition).
  AnalysisSession(AnalysisSession&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;

  /// Publishes the pool's execution counters to the obs registry
  /// (when obs::enabled()) before tearing the pool down; keyed
  /// sessions also persist their run manifest beside the artifact
  /// store entries, and instrumented sessions publish it through
  /// last_run_manifest() for the CLI.
  ~AnalysisSession();

  /// Open a session over a dataset directory (io/dataset_io.hpp
  /// format). The observation-window length is implied by the data —
  /// the last month touched by any ticket or snapshot — overriding
  /// opts.inference.num_months.
  static AnalysisSession from_directory(const std::string& dir, SessionOptions opts = {});

  const Inventory& inventory() const { return inventory_; }
  const SnapshotStore& snapshots() const { return snapshots_; }
  const TicketLog& tickets() const { return tickets_; }
  const SessionOptions& options() const { return opts_; }
  int num_months() const { return opts_.inference.num_months; }

  /// The shared pool every stage runs on (size >= 1).
  ThreadPool& pool() { return *pool_; }
  int threads() const { return pool_->size(); }

  /// The inferred case table. Memoized; when the session is keyed,
  /// loads from / saves to the artifact store.
  const CaseTable& case_table();

  /// Lint findings over each network's latest config snapshots, with
  /// source spans and pragmas honored. Fanned out per network on the
  /// session pool; memoized, and persisted like the case table when
  /// the session is keyed. Rule selection comes from
  /// options().inference.lint.
  const LintReport& lint();

  /// MI / CMI dependence rankings over the case table. Memoized.
  const DependenceAnalysis& dependence();

  /// Matched-design QED for one treatment practice. Memoized per
  /// practice.
  const CausalResult& causal(Practice treatment);

  /// Cross-validated evaluation of one model kind. Memoized per
  /// (kind, num_classes); the RNG stream is derived from the session
  /// seed and the key, so the result does not depend on what else the
  /// session computed before.
  const EvalResult& evaluate_cv(int num_classes, ModelKind kind);

  /// Online month-ahead accuracy (not memoized — cheap relative to
  /// its parameter space, but still deterministic per parameter set).
  double online_accuracy(int num_classes, int history_m, ModelKind kind, int first_t,
                         int last_t);

  /// What one append_month call did — how much data was ingested and
  /// which derived artifacts were maintained in place rather than
  /// dropped for lazy recomputation.
  struct AppendResult {
    int month = 0;            ///< The month that was appended.
    std::size_t snapshots = 0;  ///< Snapshot records ingested.
    std::size_t tickets = 0;    ///< Ticket records ingested.
    std::size_t new_rows = 0;   ///< Case rows added to the live table.
    /// The memoized case table was extended with the new month's rows
    /// (false when no table was resident — nothing to extend).
    bool table_incremental = false;
    /// The lint report was patched for the networks the delta touched.
    bool lint_incremental = false;
    /// The dependence rankings absorbed the month additively (false
    /// when the new month moved a fitted bin bound, which forces a
    /// lazy full rebuild, or when no analysis was resident).
    bool dependence_incremental = false;
  };

  /// Append one month of telemetry to the live dataset and maintain
  /// the derived state incrementally — O(delta), not O(history):
  ///
  ///   - the case table gains the new month's rows only, computed from
  ///     each device's snapshot suffix (infer_case_table_tail);
  ///   - the lint report is re-linted only for networks whose devices
  ///     produced new snapshots (latest-snapshot semantics);
  ///   - the dependence rankings fold in the new month block additively
  ///     and fall back to a lazy full rebuild only when the month moves
  ///     a fitted bin bound (DependenceAnalysis::append_month);
  ///   - causal and CV artifacts are month-sensitive with no sound
  ///     additive form, so they are dropped for lazy recomputation.
  ///
  /// Every maintained artifact is bit-identical to what a from-scratch
  /// session over the merged data would compute. Throws DataError when
  /// `delta.month != num_months()` (out-of-order months are rejected by
  /// name), when a record's timestamp falls outside the month, when a
  /// snapshot names an unknown device or a ticket an unknown network,
  /// when a ticket resolves before it was created, or when a snapshot
  /// header token is empty or contains whitespace (the dataset-io
  /// validation, applied to in-memory deltas too). On throw the session
  /// is unchanged. Stage calls are single-owner like every other stage
  /// (the serving layer routes ingest through SessionManager).
  AppendResult append_month(const MonthDelta& delta) EXCLUDES(stats_mu_);

  /// Drop every derived artifact, including the persisted case table,
  /// lint report, and manifest sidecars when the session is keyed. The
  /// next request recomputes.
  void invalidate();

  /// Swap in new data sources; implies invalidate(). A replacement
  /// whose dataset fingerprint matches the current data is a no-op:
  /// every artifact is a pure function of (data, options, seed), so
  /// identical data keeps the cache warm and counts no invalidation.
  void replace_data(Inventory inventory, SnapshotStore snapshots, TicketLog tickets);

  /// Cache observability (tests + tooling). These per-session counts
  /// are mirrored into the process-wide obs registry (src/obs/) as
  /// mpa_session_* counters whenever obs::enabled(); the registry adds
  /// stage wall-time histograms and trace spans on top (DESIGN.md §8).
  struct CacheStats {
    std::size_t hits = 0;          ///< Requests served from memory.
    std::size_t table_builds = 0;  ///< infer_case_table executions.
    std::size_t table_loads = 0;   ///< Case tables read from the store.
    std::size_t lint_runs = 0;     ///< Lint fan-outs executed.
    std::size_t lint_loads = 0;    ///< Lint reports read from the store.
    std::size_t causal_runs = 0;
    std::size_t cv_runs = 0;
    std::size_t online_runs = 0;   ///< online_accuracy evaluations.
    std::size_t appends = 0;       ///< append_month ingestions.
  };
  /// Snapshot taken under the stats mutex — safe to call from any
  /// thread, including concurrently with a stage executing on another
  /// (the serving layer polls a session mid-request).
  CacheStats stats() const EXCLUDES(stats_mu_);

  /// The run's provenance manifest so far: dataset fingerprint (FNV-1a
  /// over all three data sources, computed once per data generation),
  /// seed, thread count, every stage request with wall time and cache
  /// disposition, cache stats, and — when obs::enabled() — the current
  /// obs counter snapshot. Keyed sessions persist this JSON beside
  /// their artifacts on destruction (engine/run_manifest.hpp).
  RunManifest manifest() const EXCLUDES(stats_mu_);

 private:
  /// Private RNG stream for one artifact identity.
  Rng stream_for(std::uint64_t tag) const;

  /// Apply `fn` to the stats record under the stats mutex. `fn` sees
  /// the record through its parameter, so the capability analysis
  /// stays on this function, not the lambda bodies.
  template <typename Fn>
  void bump_stats(Fn&& fn) EXCLUDES(stats_mu_) {
    MutexLock lk(stats_mu_);
    fn(stats_);
  }

  /// Append one stage execution to the manifest record and emit the
  /// matching "stage" log event (structural fields only — timing stays
  /// out of the event stream to keep it deterministic).
  void record_stage(const char* stage, const char* source, double seconds)
      EXCLUDES(stats_mu_);

  /// The cached dataset fingerprint, computed on first use.
  std::uint64_t fingerprint() const EXCLUDES(stats_mu_);

  Inventory inventory_;
  SnapshotStore snapshots_;
  TicketLog tickets_;
  SessionOptions opts_;
  ArtifactStore store_;
  std::unique_ptr<ThreadPool> pool_;

  std::optional<CaseTable> table_;
  std::optional<LintReport> lint_;
  std::optional<DependenceAnalysis> dependence_;
  std::map<Practice, CausalResult> causal_;
  std::map<std::pair<int, int>, EvalResult> cv_;  ///< (kind, classes).
  /// Guards stats_, stage_runs_, and fingerprint_ so stats() /
  /// manifest() are safe under concurrent readers while a stage runs.
  /// Taken a handful of times per stage request — never on a kernel
  /// hot path.
  mutable Mutex stats_mu_;
  CacheStats stats_ GUARDED_BY(stats_mu_);
  /// Manifest stage record, request order.
  std::vector<StageRun> stage_runs_ GUARDED_BY(stats_mu_);
  /// Lazy; reset with the data.
  mutable std::optional<std::uint64_t> fingerprint_ GUARDED_BY(stats_mu_);
};

}  // namespace mpa
