// RunManifest: per-session provenance. The paper's pipeline is only
// auditable if every run can say exactly what data, seeds, and code
// path produced its numbers — so each AnalysisSession accumulates a
// manifest: a fingerprint of the three data sources, the seed and
// thread count, every stage execution with its wall time and cache
// disposition (computed / memo / store), the artifact key, and a final
// metric snapshot. Keyed sessions persist it next to their
// ArtifactStore entries (<key>.manifest.json); `mpa_cli report`
// renders one back as text or JSON.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/inventory.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/tickets.hpp"

namespace mpa {

/// One stage execution, in request order. `source` records how the
/// artifact was served: "computed" (work ran), "store" (loaded from
/// the artifact store), or "memo" (in-memory cache hit, seconds ~ 0).
struct StageRun {
  std::string stage;
  std::string source;
  double seconds = 0;
};

struct RunManifest {
  std::string dataset_fingerprint;  ///< 16-hex-digit FNV-1a of the data sources.
  std::uint64_t seed = 0;
  int threads = 0;
  int months = 0;
  std::uint64_t networks = 0;
  std::uint64_t devices = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t tickets = 0;
  std::string artifact_dir;  ///< Empty when the store is disabled.
  std::string artifact_key;  ///< Empty when the session is unkeyed.
  std::vector<StageRun> stages;
  /// Session cache statistics (AnalysisSession::CacheStats by name).
  std::map<std::string, std::uint64_t> cache;
  /// Final obs counter snapshot (empty unless obs::enabled()).
  std::map<std::string, std::uint64_t> counters;

  std::string to_json() const;
  std::string to_text() const;
  /// Inverse of to_json(); throws DataError on malformed input.
  static RunManifest from_json(const std::string& json);
};

/// Order-insensitive-free FNV-1a over the full identity of the three
/// data sources (every inventory field, snapshot metadata + text,
/// ticket fields, in their stored orders). Two sessions over equal
/// data fingerprint identically; any edit moves the hash.
std::uint64_t dataset_fingerprint(const Inventory& inventory, const SnapshotStore& snapshots,
                                  const TicketLog& tickets);

/// 16-hex-digit rendering of a fingerprint.
std::string fingerprint_hex(std::uint64_t h);

/// The manifest of the most recently destroyed session that ran with
/// observability on — how the CLI serves --manifest-out and `report`
/// after the command's sessions have been torn down.
std::optional<RunManifest> last_run_manifest();
void set_last_run_manifest(RunManifest manifest);

}  // namespace mpa
