#include "engine/session_manager.hpp"

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mpa {
namespace {

void count(const char* name) {
  if (obs::enabled()) obs::Registry::global().counter(name).add(1);
}

void set_resident(std::size_t n) {
  if (obs::enabled())
    obs::Registry::global().gauge("mpa_sessions_resident").set(static_cast<double>(n));
}

}  // namespace

void SessionManager::open(const std::string& key, AnalysisSession session) {
  if (key.empty()) throw DataError("SessionManager::open: empty session key");
  std::size_t resident = 0;
  {
    MutexLock lk(mu_);
    if (sessions_.count(key) != 0)
      throw DataError("SessionManager::open: session '" + key + "' already open");
    sessions_.emplace(key, std::make_shared<Entry>(std::move(session)));
    ++stats_.opened;
    resident = sessions_.size();
  }
  count("mpa_session_manager_opens_total");
  set_resident(resident);
  obs::LogEvent(obs::LogLevel::kInfo, "session_register").str("key", key);
}

void SessionManager::open_directory(const std::string& key, const std::string& dir,
                                    SessionOptions opts) {
  open(key, AnalysisSession::from_directory(dir, std::move(opts)));
}

bool SessionManager::close(const std::string& key) {
  std::shared_ptr<Entry> entry;  // destroyed outside the registry lock
  std::size_t resident = 0;
  {
    MutexLock lk(mu_);
    const auto it = sessions_.find(key);
    if (it == sessions_.end()) return false;
    entry = std::move(it->second);
    sessions_.erase(it);
    ++stats_.closed;
    resident = sessions_.size();
  }
  count("mpa_session_manager_closes_total");
  set_resident(resident);
  obs::LogEvent(obs::LogLevel::kInfo, "session_unregister").str("key", key);
  // If a request is mid-flight, its with_session() shared_ptr keeps the
  // entry alive; dropping ours here destroys the session either now or
  // when that request finishes — never mid-stage.
  return true;
}

bool SessionManager::contains(const std::string& key) const {
  MutexLock lk(mu_);
  return sessions_.count(key) != 0;
}

std::size_t SessionManager::size() const {
  MutexLock lk(mu_);
  return sessions_.size();
}

std::vector<std::string> SessionManager::keys() const {
  MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [key, entry] : sessions_) out.push_back(key);
  return out;
}

SessionManager::Stats SessionManager::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

std::shared_ptr<SessionManager::Entry> SessionManager::entry_for(const std::string& key) const {
  MutexLock lk(mu_);
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) throw DataError("unknown session '" + key + "'");
  return it->second;
}

}  // namespace mpa
