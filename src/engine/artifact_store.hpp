// Persistent artifact store for the engine: named derived artifacts
// (inferred case tables and lint reports, as CSV) written under a
// cache directory so they survive process restarts. This is the store
// the benches use to share one expensive 850x17 case table across ~25
// binaries, and the AnalysisSession uses to skip re-inference when a
// keyed session is reconstructed over the same data.
//
// Thread safety (DESIGN.md §12): the store holds no mutable state —
// dir_ is fixed at construction and every method is const, so a store
// is safe to share across threads without locks. Concurrent writers
// to the SAME key are serialized by the filesystem, not by us; the
// engine's session-per-key ownership (SessionManager) makes that case
// a non-event, and a torn read is treated as a cache miss by design.
#pragma once

#include <optional>
#include <string>

#include "engine/lint_report.hpp"
#include "metrics/case_table.hpp"

namespace mpa {

class ArtifactStore {
 public:
  /// A disabled store: every load misses, every save is a no-op.
  ArtifactStore() = default;

  /// Store rooted at `dir` (must already exist; /tmp-style caches).
  explicit ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Where the artifact for `key` lives (key + ".csv" under dir).
  std::string path_for(const std::string& key) const;

  /// Load a previously saved case table; nullopt when the store is
  /// disabled, the artifact is absent, or its content is corrupt
  /// (corrupt artifacts are treated as misses, never as errors).
  std::optional<CaseTable> load_case_table(const std::string& key) const;

  /// Persist a case table under `key`. Returns false when the store
  /// is disabled or the write fails.
  bool save_case_table(const std::string& key, const CaseTable& table) const;

  /// Load a saved lint report (stored under key + ".lint.csv");
  /// nullopt on disabled store, absence, or corruption.
  std::optional<LintReport> load_lint_report(const std::string& key) const;

  /// Persist a lint report under `key`. Returns false when the store
  /// is disabled or the write fails.
  bool save_lint_report(const std::string& key, const LintReport& report) const;

  /// Load the raw run-manifest JSON saved beside the artifacts for
  /// `key` (<key>.manifest.json); nullopt on disabled store or
  /// absence. Parsing stays with RunManifest::from_json.
  std::optional<std::string> load_manifest_json(const std::string& key) const;

  /// Persist a session's run manifest beside its artifacts. Returns
  /// false when the store is disabled or the write fails.
  bool save_manifest_json(const std::string& key, const std::string& json) const;

  /// Delete the artifacts for `key` (used by explicit invalidation),
  /// including its manifest.
  void remove(const std::string& key) const;

 private:
  std::string dir_;
};

}  // namespace mpa
