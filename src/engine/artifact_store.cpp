#include "engine/artifact_store.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mpa {
namespace {

/// Hit/miss/save accounting for the obs registry. Disabled stores are
/// not counted — a no-op lookup is not a miss.
void note(const char* counter) {
  if (obs::enabled()) obs::Registry::global().counter(counter).add(1);
}

/// Debug event alongside the counter bump: which artifact, which key,
/// what happened. The LogEvent gate makes this free when the log is
/// off or above debug.
void log_op(const char* artifact, const std::string& key, const char* op) {
  obs::LogEvent(obs::LogLevel::kDebug, "artifact_store")
      .str("artifact", artifact)
      .str("key", key)
      .str("op", op);
}

}  // namespace

std::string ArtifactStore::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".csv";
}

std::optional<CaseTable> ArtifactStore::load_case_table(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) {
    note("mpa_artifact_store_misses_total");
    log_op("case_table", key, "miss");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    CaseTable table = CaseTable::from_csv(buf.str());
    if (table.empty()) {
      note("mpa_artifact_store_misses_total");
      log_op("case_table", key, "miss");
      return std::nullopt;
    }
    note("mpa_artifact_store_hits_total");
    log_op("case_table", key, "hit");
    return table;
  } catch (const DataError&) {
    note("mpa_artifact_store_misses_total");
    log_op("case_table", key, "miss");
    return std::nullopt;
  }
}

bool ArtifactStore::save_case_table(const std::string& key, const CaseTable& table) const {
  if (!enabled()) return false;
  std::ofstream out(path_for(key));
  if (!out) return false;
  out << table.to_csv();
  note("mpa_artifact_store_saves_total");
  log_op("case_table", key, "save");
  return static_cast<bool>(out);
}

std::optional<LintReport> ArtifactStore::load_lint_report(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key + ".lint"));
  if (!in) {
    note("mpa_artifact_store_misses_total");
    log_op("lint_report", key, "miss");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    LintReport report = LintReport::from_csv(buf.str());
    // A real report has one entry per network even when nothing fired;
    // an empty one is indistinguishable from truncation, so treat it
    // as a miss like the case-table loader does.
    if (report.networks.empty()) {
      note("mpa_artifact_store_misses_total");
      log_op("lint_report", key, "miss");
      return std::nullopt;
    }
    note("mpa_artifact_store_hits_total");
    log_op("lint_report", key, "hit");
    return report;
  } catch (const DataError&) {
    note("mpa_artifact_store_misses_total");
    log_op("lint_report", key, "miss");
    return std::nullopt;
  }
}

bool ArtifactStore::save_lint_report(const std::string& key, const LintReport& report) const {
  if (!enabled()) return false;
  std::ofstream out(path_for(key + ".lint"));
  if (!out) return false;
  out << report.to_csv();
  note("mpa_artifact_store_saves_total");
  log_op("lint_report", key, "save");
  return static_cast<bool>(out);
}

std::optional<std::string> ArtifactStore::load_manifest_json(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(dir_ + "/" + key + ".manifest.json");
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ArtifactStore::save_manifest_json(const std::string& key, const std::string& json) const {
  if (!enabled()) return false;
  std::ofstream out(dir_ + "/" + key + ".manifest.json");
  if (!out) return false;
  out << json;
  log_op("manifest", key, "save");
  return static_cast<bool>(out);
}

void ArtifactStore::remove(const std::string& key) const {
  if (!enabled()) return;
  std::remove(path_for(key).c_str());
  std::remove(path_for(key + ".lint").c_str());
  std::remove((dir_ + "/" + key + ".manifest.json").c_str());
}

}  // namespace mpa
