#include "engine/artifact_store.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace mpa {

std::string ArtifactStore::path_for(const std::string& key) const {
  return dir_ + "/" + key + ".csv";
}

std::optional<CaseTable> ArtifactStore::load_case_table(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    CaseTable table = CaseTable::from_csv(buf.str());
    if (table.empty()) return std::nullopt;
    return table;
  } catch (const DataError&) {
    return std::nullopt;
  }
}

bool ArtifactStore::save_case_table(const std::string& key, const CaseTable& table) const {
  if (!enabled()) return false;
  std::ofstream out(path_for(key));
  if (!out) return false;
  out << table.to_csv();
  return static_cast<bool>(out);
}

std::optional<LintReport> ArtifactStore::load_lint_report(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key + ".lint"));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    LintReport report = LintReport::from_csv(buf.str());
    // A real report has one entry per network even when nothing fired;
    // an empty one is indistinguishable from truncation, so treat it
    // as a miss like the case-table loader does.
    if (report.networks.empty()) return std::nullopt;
    return report;
  } catch (const DataError&) {
    return std::nullopt;
  }
}

bool ArtifactStore::save_lint_report(const std::string& key, const LintReport& report) const {
  if (!enabled()) return false;
  std::ofstream out(path_for(key + ".lint"));
  if (!out) return false;
  out << report.to_csv();
  return static_cast<bool>(out);
}

void ArtifactStore::remove(const std::string& key) const {
  if (!enabled()) return;
  std::remove(path_for(key).c_str());
  std::remove(path_for(key + ".lint").c_str());
}

}  // namespace mpa
