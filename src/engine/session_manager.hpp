// SessionManager: the engine's registry of resident AnalysisSessions,
// keyed by name, so a long-lived serving process (src/serve/) can keep
// N sessions open over loaded datasets and answer requests against
// them without re-reading anything.
//
// Concurrency contract: AnalysisSession stage calls are single-owner,
// so the manager wraps every session in a per-entry mutex and exposes
// it only through with_session() — at most one request executes
// against a session at a time, while different sessions proceed in
// parallel. Mutating stage calls ride the same lock: the serving
// layer's ingest requests run AnalysisSession::append_month inside
// with_session(), so an append is atomic with respect to concurrent
// reads of the same session. close() unregisters a key immediately; if a request is
// mid-flight on that session, the entry (shared_ptr) stays alive until
// the request finishes, then destructs on that thread — a session is
// never destroyed under a running stage.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/session.hpp"
#include "util/sync.hpp"

namespace mpa {

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Adopt an already-constructed session under `key`. Throws
  /// DataError when the key is already registered.
  void open(const std::string& key, AnalysisSession session);

  /// Open a session over a dataset directory (io/dataset_io.hpp
  /// format); the observation window is implied by the data. Throws
  /// DataError on a duplicate key or unreadable dataset.
  void open_directory(const std::string& key, const std::string& dir, SessionOptions opts = {});

  /// Unregister `key`; returns false when unknown. The session object
  /// is destroyed once the last in-flight request on it completes.
  bool close(const std::string& key);

  bool contains(const std::string& key) const EXCLUDES(mu_);
  std::size_t size() const EXCLUDES(mu_);
  /// Registered keys in lexicographic order.
  std::vector<std::string> keys() const EXCLUDES(mu_);

  /// Run `fn(AnalysisSession&)` with exclusive access to the session
  /// registered under `key`; throws DataError when the key is unknown.
  /// Blocks while another thread holds the same session.
  template <typename Fn>
  auto with_session(const std::string& key, Fn&& fn) EXCLUDES(mu_) {
    const std::shared_ptr<Entry> entry = entry_for(key);
    MutexLock lk(entry->mu);
    return fn(entry->session);
  }

  /// Lifetime registry counters (snapshot under the registry mutex).
  struct Stats {
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    explicit Entry(AnalysisSession s) : session(std::move(s)) {}
    Mutex mu;  ///< One request at a time per session.
    AnalysisSession session GUARDED_BY(mu);
  };

  /// Look up the live entry for `key`; throws DataError when unknown.
  /// Lock order: the registry mutex is released before the caller
  /// acquires the entry mutex — the two are never held together.
  std::shared_ptr<Entry> entry_for(const std::string& key) const EXCLUDES(mu_);

  mutable Mutex mu_;  ///< Guards sessions_ and stats_.
  std::map<std::string, std::shared_ptr<Entry>> sessions_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace mpa
