#include "engine/session.hpp"

#include <algorithm>

#include "config/dialect.hpp"
#include "io/dataset_io.hpp"
#include "telemetry/time.hpp"

namespace mpa {
namespace {

/// splitmix64 finalizer — decorrelates artifact tags into seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

AnalysisSession::AnalysisSession(Inventory inventory, SnapshotStore snapshots, TicketLog tickets,
                                 SessionOptions opts)
    : inventory_(std::move(inventory)),
      snapshots_(std::move(snapshots)),
      tickets_(std::move(tickets)),
      opts_(std::move(opts)),
      store_(opts_.artifact_dir),
      pool_(std::make_unique<ThreadPool>(opts_.threads > 0 ? opts_.threads
                                                           : ThreadPool::default_thread_count())) {
}

AnalysisSession AnalysisSession::from_directory(const std::string& dir, SessionOptions opts) {
  DiskDataset data = load_dataset(dir);
  // Observation window implied by the data: the last month touched by
  // any ticket or snapshot.
  int months = 1;
  for (const auto& t : data.tickets.all()) months = std::max(months, month_of(t.created) + 1);
  for (const auto& dev : data.snapshots.devices())
    for (const auto& s : data.snapshots.for_device(dev))
      months = std::max(months, month_of(s.time) + 1);
  opts.inference.num_months = months;
  return AnalysisSession(std::move(data.inventory), std::move(data.snapshots),
                         std::move(data.tickets), std::move(opts));
}

Rng AnalysisSession::stream_for(std::uint64_t tag) const {
  return Rng(mix(opts_.seed ^ mix(tag)));
}

const CaseTable& AnalysisSession::case_table() {
  if (table_.has_value()) {
    ++stats_.hits;
    return *table_;
  }
  if (!opts_.artifact_key.empty()) {
    if (auto cached = store_.load_case_table(opts_.artifact_key)) {
      ++stats_.table_loads;
      table_ = std::move(*cached);
      return *table_;
    }
  }
  InferenceOptions iopts = opts_.inference;
  iopts.pool = pool_.get();
  table_ = infer_case_table(inventory_, snapshots_, tickets_, iopts);
  ++stats_.table_builds;
  if (!opts_.artifact_key.empty()) store_.save_case_table(opts_.artifact_key, *table_);
  return *table_;
}

const LintReport& AnalysisSession::lint() {
  if (lint_.has_value()) {
    ++stats_.hits;
    return *lint_;
  }
  if (!opts_.artifact_key.empty()) {
    if (auto cached = store_.load_lint_report(opts_.artifact_key)) {
      ++stats_.lint_loads;
      lint_ = std::move(*cached);
      return *lint_;
    }
  }
  const auto& networks = inventory_.networks();
  LintReport report;
  report.networks.resize(networks.size());
  parallel_for(pool_.get(), networks.size(), [&](std::size_t n) {
    NetworkLint& out = report.networks[n];
    out.network_id = networks[n].network_id;
    std::vector<DeviceText> texts;
    for (const auto* d : inventory_.devices_in(networks[n].network_id)) {
      const auto& snaps = snapshots_.for_device(d->device_id);
      if (snaps.empty()) continue;
      texts.push_back(DeviceText{d->device_id, snaps.back().text, dialect_of(d->vendor)});
    }
    out.num_devices = texts.size();
    out.diagnostics = lint_network_text(texts, opts_.inference.lint);
  });
  ++stats_.lint_runs;
  lint_ = std::move(report);
  if (!opts_.artifact_key.empty()) store_.save_lint_report(opts_.artifact_key, *lint_);
  return *lint_;
}

const DependenceAnalysis& AnalysisSession::dependence() {
  if (dependence_.has_value()) {
    ++stats_.hits;
    return *dependence_;
  }
  dependence_.emplace(case_table(), opts_.dependence);
  return *dependence_;
}

const CausalResult& AnalysisSession::causal(Practice treatment) {
  const auto it = causal_.find(treatment);
  if (it != causal_.end()) {
    ++stats_.hits;
    return it->second;
  }
  CausalOptions copts = opts_.causal;
  copts.pool = pool_.get();
  ++stats_.causal_runs;
  return causal_.emplace(treatment, causal_analysis(case_table(), treatment, copts))
      .first->second;
}

const EvalResult& AnalysisSession::evaluate_cv(int num_classes, ModelKind kind) {
  const auto key = std::make_pair(static_cast<int>(kind), num_classes);
  const auto it = cv_.find(key);
  if (it != cv_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x5cf00ULL + static_cast<std::uint64_t>(kind) * 64 +
                       static_cast<std::uint64_t>(num_classes));
  ++stats_.cv_runs;
  return cv_.emplace(key, evaluate_model_cv(case_table(), num_classes, kind, rng, mopts))
      .first->second;
}

double AnalysisSession::online_accuracy(int num_classes, int history_m, ModelKind kind,
                                        int first_t, int last_t) {
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x0911eULL + static_cast<std::uint64_t>(kind) * 4096 +
                       static_cast<std::uint64_t>(num_classes) * 128 +
                       static_cast<std::uint64_t>(history_m));
  return online_prediction_accuracy(case_table(), num_classes, history_m, kind, rng, first_t,
                                    last_t, mopts);
}

void AnalysisSession::invalidate() {
  table_.reset();
  lint_.reset();
  dependence_.reset();
  causal_.clear();
  cv_.clear();
  if (!opts_.artifact_key.empty()) store_.remove(opts_.artifact_key);
}

void AnalysisSession::replace_data(Inventory inventory, SnapshotStore snapshots,
                                   TicketLog tickets) {
  inventory_ = std::move(inventory);
  snapshots_ = std::move(snapshots);
  tickets_ = std::move(tickets);
  invalidate();
}

}  // namespace mpa
