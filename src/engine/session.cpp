#include "engine/session.hpp"

#include <algorithm>
#include <set>

#include "config/dialect.hpp"
#include "io/dataset_io.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/time.hpp"

namespace mpa {
namespace {

/// splitmix64 finalizer — decorrelates artifact tags into seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mirror a per-session CacheStats increment into the obs registry.
void bump(const char* counter) {
  if (obs::enabled()) obs::Registry::global().counter(counter).add(1);
}

/// The wall-time histogram for one pipeline stage, or null when obs is
/// disabled (which makes the ScopedTimer inert — no clock reads).
obs::Histogram* stage_seconds(const char* stage) {
  if (!obs::enabled()) return nullptr;
  return &obs::Registry::global().histogram(std::string("mpa_stage_seconds_") + stage);
}

/// Manifest stage timing. Two steady-clock reads per stage request —
/// negligible against stage cost, and independent of obs::enabled()
/// because provenance is recorded whether or not metrics are on.
double elapsed_seconds(std::uint64_t t0_ns) {
  return static_cast<double>(obs::now_ns() - t0_ns) * 1e-9;
}

/// Pre-register the engine's full metric schema so every export
/// contains the same names, including zero-valued ones — consumers
/// (the CI schema check, dashboards) never see a shifting key set.
void register_engine_metrics() {
  auto& reg = obs::Registry::global();
  for (const char* name :
       {"mpa_session_memo_hits_total", "mpa_session_table_builds_total",
        "mpa_session_table_loads_total", "mpa_session_lint_runs_total",
        "mpa_session_lint_loads_total", "mpa_session_causal_runs_total",
        "mpa_session_cv_runs_total", "mpa_session_online_runs_total",
        "mpa_session_invalidations_total", "mpa_session_appends_total",
        "mpa_session_cmi_pairs_total", "mpa_artifact_store_hits_total",
        "mpa_artifact_store_misses_total", "mpa_artifact_store_saves_total",
        "mpa_pool_jobs_total", "mpa_pool_tasks_total", "mpa_pool_inline_jobs_total",
        "mpa_pool_worker_joins_total", "mpa_pool_queue_wait_ns_total"}) {
    reg.counter(name);
  }
  for (const char* stage : {"case_table", "lint", "dependence", "causal", "cv", "online"}) {
    reg.histogram(std::string("mpa_stage_seconds_") + stage);
  }
  reg.histogram("mpa_dependence_pair_seconds");
  reg.histogram("mpa_ingest_seconds");
  reg.counter("mpa_dataset_load_bytes_total");
  reg.histogram("mpa_dataset_load_seconds");
}

}  // namespace

AnalysisSession::AnalysisSession(Inventory inventory, SnapshotStore snapshots, TicketLog tickets,
                                 SessionOptions opts)
    : inventory_(std::move(inventory)),
      snapshots_(std::move(snapshots)),
      tickets_(std::move(tickets)),
      opts_(std::move(opts)),
      store_(opts_.artifact_dir),
      pool_(std::make_unique<ThreadPool>(opts_.threads > 0 ? opts_.threads
                                                           : ThreadPool::default_thread_count())) {
  if (obs::enabled()) register_engine_metrics();
  // The open event carries the session's data shape and seed, but not
  // the thread count: event content must be identical at any thread
  // count (the manifest records threads instead).
  obs::LogEvent(obs::LogLevel::kInfo, "session_open")
      .u64("networks", inventory_.num_networks())
      .u64("devices", inventory_.num_devices())
      .i64("months", opts_.inference.num_months)
      .u64("seed", opts_.seed);
}

AnalysisSession::AnalysisSession(AnalysisSession&& other) noexcept
    : inventory_(std::move(other.inventory_)),
      snapshots_(std::move(other.snapshots_)),
      tickets_(std::move(other.tickets_)),
      opts_(std::move(other.opts_)),
      store_(std::move(other.store_)),
      pool_(std::move(other.pool_)),
      table_(std::move(other.table_)),
      lint_(std::move(other.lint_)),
      dependence_(std::move(other.dependence_)),
      causal_(std::move(other.causal_)),
      cv_(std::move(other.cv_)),
      stats_(other.stats_),
      stage_runs_(std::move(other.stage_runs_)),
      fingerprint_(other.fingerprint_) {}

AnalysisSession::~AnalysisSession() {
  // pool_ is null only in the moved-from shell, which must not publish
  // the stats (or the manifest) a second time.
  if (pool_ == nullptr) return;
  if (obs::enabled()) {
    const ThreadPool::Stats s = pool_->stats();
    auto& reg = obs::Registry::global();
    reg.counter("mpa_pool_jobs_total").add(s.jobs);
    reg.counter("mpa_pool_tasks_total").add(s.tasks);
    reg.counter("mpa_pool_inline_jobs_total").add(s.inline_jobs);
    reg.counter("mpa_pool_worker_joins_total").add(s.worker_joins);
    reg.counter("mpa_pool_queue_wait_ns_total").add(s.queue_wait_ns);
  }
  if (obs::log_enabled()) {
    // Structural pool counts only (thread-count-invariant); the
    // scheduling-dependent ones live in the metrics export.
    const ThreadPool::Stats s = pool_->stats();
    std::size_t stages = 0;
    {
      MutexLock lk(stats_mu_);
      stages = stage_runs_.size();
    }
    obs::LogEvent(obs::LogLevel::kInfo, "session_close")
        .u64("pool_jobs", s.jobs)
        .u64("pool_tasks", s.tasks)
        .u64("stages", stages);
  }
  // Keyed sessions leave their provenance beside the artifacts they
  // wrote; instrumented sessions additionally publish it for the CLI's
  // --manifest-out / report path. Unkeyed, uninstrumented sessions
  // skip both (the fingerprint hash is not free).
  const bool keyed = !opts_.artifact_key.empty() && store_.enabled();
  if (keyed || obs::enabled() || obs::log_enabled()) {
    RunManifest m = manifest();
    if (keyed) store_.save_manifest_json(opts_.artifact_key, m.to_json());
    if (obs::enabled() || obs::log_enabled()) set_last_run_manifest(std::move(m));
  }
}

AnalysisSession AnalysisSession::from_directory(const std::string& dir, SessionOptions opts) {
  const std::uint64_t t0 = obs::now_ns();
  std::uint64_t bytes_read = 0;
  DiskDataset data = load_dataset(dir, &bytes_read);
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("mpa_dataset_load_bytes_total").add(bytes_read);
    reg.histogram("mpa_dataset_load_seconds").observe(elapsed_seconds(t0));
  }
  // Observation window implied by the data: the last month touched by
  // any ticket or snapshot.
  int months = 1;
  for (const auto& t : data.tickets.all()) months = std::max(months, month_of(t.created) + 1);
  for (const auto& dev : data.snapshots.devices())
    for (const auto& s : data.snapshots.for_device(dev))
      months = std::max(months, month_of(s.time) + 1);
  opts.inference.num_months = months;
  return AnalysisSession(std::move(data.inventory), std::move(data.snapshots),
                         std::move(data.tickets), std::move(opts));
}

Rng AnalysisSession::stream_for(std::uint64_t tag) const {
  return Rng(mix(opts_.seed ^ mix(tag)));
}

const CaseTable& AnalysisSession::case_table() {
  if (table_.has_value()) {
    bump_stats([](CacheStats& s) { ++s.hits; });
    bump("mpa_session_memo_hits_total");
    record_stage("case_table", "memo", 0);
    return *table_;
  }
  if (!opts_.artifact_key.empty()) {
    const std::uint64_t t0 = obs::now_ns();
    if (auto cached = store_.load_case_table(opts_.artifact_key)) {
      bump_stats([](CacheStats& s) { ++s.table_loads; });
      bump("mpa_session_table_loads_total");
      table_ = std::move(*cached);
      record_stage("case_table", "store", elapsed_seconds(t0));
      return *table_;
    }
  }
  obs::Span span("case_table");
  obs::ScopedTimer timer(stage_seconds("case_table"));
  const std::uint64_t t0 = obs::now_ns();
  InferenceOptions iopts = opts_.inference;
  iopts.pool = pool_.get();
  table_ = infer_case_table(inventory_, snapshots_, tickets_, iopts);
  bump_stats([](CacheStats& s) { ++s.table_builds; });
  bump("mpa_session_table_builds_total");
  record_stage("case_table", "computed", elapsed_seconds(t0));
  if (!opts_.artifact_key.empty()) store_.save_case_table(opts_.artifact_key, *table_);
  return *table_;
}

const LintReport& AnalysisSession::lint() {
  if (lint_.has_value()) {
    bump_stats([](CacheStats& s) { ++s.hits; });
    bump("mpa_session_memo_hits_total");
    record_stage("lint", "memo", 0);
    return *lint_;
  }
  if (!opts_.artifact_key.empty()) {
    const std::uint64_t t0 = obs::now_ns();
    if (auto cached = store_.load_lint_report(opts_.artifact_key)) {
      bump_stats([](CacheStats& s) { ++s.lint_loads; });
      bump("mpa_session_lint_loads_total");
      lint_ = std::move(*cached);
      record_stage("lint", "store", elapsed_seconds(t0));
      return *lint_;
    }
  }
  obs::Span span("lint");
  obs::ScopedTimer timer(stage_seconds("lint"));
  const std::uint64_t t0 = obs::now_ns();
  // Per-task spans run on pool workers, whose thread-local span stack
  // is empty; adopt this stage's path explicitly so the fan-out nests
  // under it with deterministic names and counts at any thread count.
  const std::string task_path =
      obs::enabled() ? obs::Tracer::current_path() + "/network" : std::string();
  // Pool workers have no installed request context either; adopt a
  // tag-only copy so per-task spans and events still carry
  // req_id/tenant (collection stays with the owning worker thread).
  const obs::RequestContext* req_ctx = obs::current_request_context();
  obs::RequestContext task_ctx = req_ctx != nullptr ? req_ctx->tag_only() : obs::RequestContext{};
  const auto& networks = inventory_.networks();
  LintReport report;
  report.networks.resize(networks.size());
  parallel_for(pool_.get(), networks.size(), [&](std::size_t n) {
    obs::ScopedRequestContext adopt(req_ctx != nullptr ? &task_ctx : nullptr);
    obs::Span task = obs::Span::with_path(task_path);
    NetworkLint& out = report.networks[n];
    out.network_id = networks[n].network_id;
    std::vector<DeviceText> texts;
    for (const auto* d : inventory_.devices_in(networks[n].network_id)) {
      const auto& snaps = snapshots_.for_device(d->device_id);
      if (snaps.empty()) continue;
      texts.push_back(DeviceText{d->device_id, snaps.back().text, dialect_of(d->vendor)});
    }
    out.num_devices = texts.size();
    out.diagnostics = lint_network_text(texts, opts_.inference.lint);
    obs::LogEvent(obs::LogLevel::kDebug, "lint_network")
        .str("network", out.network_id)
        .u64("findings", out.diagnostics.size());
  });
  bump_stats([](CacheStats& s) { ++s.lint_runs; });
  bump("mpa_session_lint_runs_total");
  record_stage("lint", "computed", elapsed_seconds(t0));
  lint_ = std::move(report);
  if (!opts_.artifact_key.empty()) store_.save_lint_report(opts_.artifact_key, *lint_);
  return *lint_;
}

const DependenceAnalysis& AnalysisSession::dependence() {
  if (dependence_.has_value()) {
    bump_stats([](CacheStats& s) { ++s.hits; });
    bump("mpa_session_memo_hits_total");
    record_stage("dependence", "memo", 0);
    return *dependence_;
  }
  // The case table is a prerequisite, not part of this stage's cost:
  // materialize it before the span opens so a cold dependence() call
  // reports dependence time, with any table build as a sibling span.
  const CaseTable& table = case_table();
  obs::Span span("dependence");
  obs::ScopedTimer timer(stage_seconds("dependence"));
  const std::uint64_t t0 = obs::now_ns();
  DependenceOptions dopts = opts_.dependence;
  dopts.pool = pool_.get();
  dopts.record_pair_times = obs::enabled();
  dependence_.emplace(table, dopts);
  record_stage("dependence", "computed", elapsed_seconds(t0));
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("mpa_session_cmi_pairs_total")
        .add(static_cast<std::uint64_t>(dependence_->cmi_ranking().size()));
    auto& pair_hist = reg.histogram("mpa_dependence_pair_seconds");
    for (double s : dependence_->pair_compute_seconds()) pair_hist.observe(s);
  }
  return *dependence_;
}

const CausalResult& AnalysisSession::causal(Practice treatment) {
  const auto it = causal_.find(treatment);
  if (it != causal_.end()) {
    bump_stats([](CacheStats& s) { ++s.hits; });
    bump("mpa_session_memo_hits_total");
    record_stage("causal", "memo", 0);
    return it->second;
  }
  const CaseTable& table = case_table();
  obs::Span span("causal");
  obs::ScopedTimer timer(stage_seconds("causal"));
  const std::uint64_t t0 = obs::now_ns();
  CausalOptions copts = opts_.causal;
  copts.pool = pool_.get();
  bump_stats([](CacheStats& s) { ++s.causal_runs; });
  bump("mpa_session_causal_runs_total");
  const CausalResult& res =
      causal_.emplace(treatment, causal_analysis(table, treatment, copts)).first->second;
  record_stage("causal", "computed", elapsed_seconds(t0));
  return res;
}

const EvalResult& AnalysisSession::evaluate_cv(int num_classes, ModelKind kind) {
  const auto key = std::make_pair(static_cast<int>(kind), num_classes);
  const auto it = cv_.find(key);
  if (it != cv_.end()) {
    bump_stats([](CacheStats& s) { ++s.hits; });
    bump("mpa_session_memo_hits_total");
    record_stage("cv", "memo", 0);
    return it->second;
  }
  const CaseTable& table = case_table();
  obs::Span span("cv");
  obs::ScopedTimer timer(stage_seconds("cv"));
  const std::uint64_t t0 = obs::now_ns();
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x5cf00ULL + static_cast<std::uint64_t>(kind) * 64 +
                       static_cast<std::uint64_t>(num_classes));
  bump_stats([](CacheStats& s) { ++s.cv_runs; });
  bump("mpa_session_cv_runs_total");
  const EvalResult& res =
      cv_.emplace(key, evaluate_model_cv(table, num_classes, kind, rng, mopts)).first->second;
  record_stage("cv", "computed", elapsed_seconds(t0));
  return res;
}

double AnalysisSession::online_accuracy(int num_classes, int history_m, ModelKind kind,
                                        int first_t, int last_t) {
  const CaseTable& table = case_table();
  obs::Span span("online");
  obs::ScopedTimer timer(stage_seconds("online"));
  const std::uint64_t t0 = obs::now_ns();
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x0911eULL + static_cast<std::uint64_t>(kind) * 4096 +
                       static_cast<std::uint64_t>(num_classes) * 128 +
                       static_cast<std::uint64_t>(history_m));
  bump_stats([](CacheStats& s) { ++s.online_runs; });
  bump("mpa_session_online_runs_total");
  const double acc = online_prediction_accuracy(table, num_classes, history_m, kind, rng, first_t,
                                                last_t, mopts);
  record_stage("online", "computed", elapsed_seconds(t0));
  return acc;
}

AnalysisSession::AppendResult AnalysisSession::append_month(const MonthDelta& delta) {
  // ---- Validate everything before mutating anything: on throw the
  // session (data, artifacts, stats) is exactly as it was. ----
  const int m = delta.month;
  require_data(m == opts_.inference.num_months,
               "append_month: out-of-order month " + std::to_string(m) + " (expected month " +
                   std::to_string(opts_.inference.num_months) + ")");
  const Timestamp m_start = month_start(m);
  const Timestamp m_end = month_start(m + 1);
  for (const auto& s : delta.snapshots) {
    check_header_token(s.device_id, "snapshot device_id");
    check_header_token(s.login, "snapshot login");
    require_data(inventory_.find_device(s.device_id) != nullptr,
                 "append_month: snapshot for unknown device: " + s.device_id);
    require_data(s.time >= m_start && s.time < m_end,
                 "append_month: snapshot time " + std::to_string(s.time) +
                     " is outside month " + std::to_string(m) + " for device " + s.device_id);
  }
  for (const auto& t : delta.tickets) {
    require_data(inventory_.find_network(t.network_id) != nullptr,
                 "append_month: ticket for unknown network: " + t.network_id);
    require_data(t.resolved >= t.created,
                 "append_month: resolved time " + std::to_string(t.resolved) +
                     " precedes created time " + std::to_string(t.created) + " for ticket " +
                     t.ticket_id);
    require_data(t.created >= m_start && t.created < m_end,
                 "append_month: ticket created time " + std::to_string(t.created) +
                     " is outside month " + std::to_string(m) + " for ticket " + t.ticket_id);
  }

  obs::Span span("append");
  obs::ScopedTimer timer(
      obs::enabled() ? &obs::Registry::global().histogram("mpa_ingest_seconds") : nullptr);
  const std::uint64_t t0 = obs::now_ns();

  // ---- Ingest the raw records and advance the observation window. ----
  for (const auto& s : delta.snapshots) snapshots_.add(s);
  for (const auto& t : delta.tickets) tickets_.add(t);
  const int old_months = opts_.inference.num_months;
  opts_.inference.num_months = m + 1;
  {
    MutexLock lk(stats_mu_);
    fingerprint_.reset();  // The data identity changed.
  }

  AppendResult result;
  result.month = m;
  result.snapshots = delta.snapshots.size();
  result.tickets = delta.tickets.size();

  // Stale-state sweep: when an artifact is not resident we cannot
  // refresh it in place, so its persisted sidecars (case table, lint
  // report, manifest) must go — a later load pairing pre-append
  // artifacts with post-append data would be silently wrong. Resident
  // artifacts are refreshed and re-persisted below instead.
  const bool keyed = !opts_.artifact_key.empty() && store_.enabled();
  if (keyed && (!table_.has_value() || !lint_.has_value())) store_.remove(opts_.artifact_key);

  // ---- Case table: extend with the new month's rows only. ----
  if (table_.has_value()) {
    InferenceOptions iopts = opts_.inference;
    iopts.pool = pool_.get();
    const CaseTable tail = infer_case_table_tail(inventory_, snapshots_, tickets_, iopts, m);
    // Rows are network-major: every network owns one contiguous block
    // of old_months rows (inference emits a row for every month), and
    // the tail holds exactly one new row per network in the same
    // network order. Interleave positionally.
    const auto& networks = inventory_.networks();
    require(table_->size() == networks.size() * static_cast<std::size_t>(old_months) &&
                tail.size() == networks.size(),
            "append_month: case table is not network-major over the session's months");
    std::vector<Case> merged;
    merged.reserve(table_->size() + tail.size());
    for (std::size_t n = 0; n < networks.size(); ++n) {
      const std::size_t block = n * static_cast<std::size_t>(old_months);
      for (std::size_t r = 0; r < static_cast<std::size_t>(old_months); ++r)
        merged.push_back((*table_)[block + r]);
      merged.push_back(tail[n]);
    }
    table_ = CaseTable(std::move(merged));
    result.new_rows = tail.size();
    result.table_incremental = true;
    if (keyed) store_.save_case_table(opts_.artifact_key, *table_);
  }

  // ---- Lint: re-lint only networks the delta's snapshots touched
  // (latest-snapshot semantics — other networks' inputs are unchanged,
  // and each network's lint is a pure function of its own texts). ----
  if (lint_.has_value()) {
    std::vector<std::size_t> affected;
    {
      std::set<std::string> touched_networks;
      for (const auto& s : delta.snapshots)
        touched_networks.insert(inventory_.find_device(s.device_id)->network_id);
      const auto& networks = inventory_.networks();
      for (std::size_t n = 0; n < networks.size(); ++n)
        if (touched_networks.count(networks[n].network_id) != 0) affected.push_back(n);
    }
    const std::string task_path =
        obs::enabled() ? obs::Tracer::current_path() + "/network" : std::string();
    const obs::RequestContext* req_ctx = obs::current_request_context();
    obs::RequestContext task_ctx =
        req_ctx != nullptr ? req_ctx->tag_only() : obs::RequestContext{};
    parallel_for(pool_.get(), affected.size(), [&](std::size_t i) {
      obs::ScopedRequestContext adopt(req_ctx != nullptr ? &task_ctx : nullptr);
      obs::Span task = obs::Span::with_path(task_path);
      const std::size_t n = affected[i];
      const NetworkRecord& net = inventory_.networks()[n];
      NetworkLint& out = lint_->networks[n];
      out.network_id = net.network_id;
      std::vector<DeviceText> texts;
      for (const auto* d : inventory_.devices_in(net.network_id)) {
        const auto& snaps = snapshots_.for_device(d->device_id);
        if (snaps.empty()) continue;
        texts.push_back(DeviceText{d->device_id, snaps.back().text, dialect_of(d->vendor)});
      }
      out.num_devices = texts.size();
      out.diagnostics = lint_network_text(texts, opts_.inference.lint);
      obs::LogEvent(obs::LogLevel::kDebug, "lint_network")
          .str("network", out.network_id)
          .u64("findings", out.diagnostics.size());
    });
    result.lint_incremental = true;
    if (keyed) store_.save_lint_report(opts_.artifact_key, *lint_);
  }

  // ---- Dependence: fold the new month block into the running MI/CMI
  // totals; a moved bin bound re-bins history, so fall back to a lazy
  // full rebuild (which is bit-identical anyway — the analysis is a
  // pure function of the merged table). ----
  if (dependence_.has_value()) {
    if (table_.has_value() && dependence_->append_month(*table_, m)) {
      result.dependence_incremental = true;
    } else {
      dependence_.reset();
    }
  }

  // Month-sensitive artifacts with no sound additive form.
  causal_.clear();
  cv_.clear();

  bump_stats([](CacheStats& s) { ++s.appends; });
  bump("mpa_session_appends_total");
  record_stage("append", "computed", elapsed_seconds(t0));
  obs::LogEvent(obs::LogLevel::kInfo, "session_append")
      .i64("month", m)
      .u64("snapshots", result.snapshots)
      .u64("tickets", result.tickets)
      .u64("new_rows", result.new_rows)
      .boolean("table_incremental", result.table_incremental)
      .boolean("lint_incremental", result.lint_incremental)
      .boolean("dependence_incremental", result.dependence_incremental);
  return result;
}

AnalysisSession::CacheStats AnalysisSession::stats() const {
  MutexLock lk(stats_mu_);
  return stats_;
}

RunManifest AnalysisSession::manifest() const {
  RunManifest m;
  // fingerprint() takes stats_mu_ itself; resolve it before the stats
  // snapshot below so the (non-recursive) mutex is never re-entered.
  m.dataset_fingerprint = fingerprint_hex(fingerprint());
  m.seed = opts_.seed;
  m.threads = pool_ != nullptr ? pool_->size() : 0;
  m.months = opts_.inference.num_months;
  m.networks = inventory_.num_networks();
  m.devices = inventory_.num_devices();
  m.snapshots = snapshots_.total_snapshots();
  m.tickets = tickets_.size();
  m.artifact_dir = opts_.artifact_dir;
  m.artifact_key = opts_.artifact_key;
  {
    MutexLock lk(stats_mu_);
    m.stages = stage_runs_;
    m.cache = {{"hits", stats_.hits},
               {"table_builds", stats_.table_builds},
               {"table_loads", stats_.table_loads},
               {"lint_runs", stats_.lint_runs},
               {"lint_loads", stats_.lint_loads},
               {"causal_runs", stats_.causal_runs},
               {"cv_runs", stats_.cv_runs},
               {"online_runs", stats_.online_runs},
               {"appends", stats_.appends}};
  }
  if (obs::enabled()) m.counters = obs::Registry::global().counters_snapshot();
  return m;
}

std::uint64_t AnalysisSession::fingerprint() const {
  // Computed under the stats mutex: concurrent manifest() callers must
  // not race on the lazy optional. The hash itself is data-dependent
  // only, so holding the lock during it is merely conservative.
  MutexLock lk(stats_mu_);
  if (!fingerprint_) fingerprint_ = dataset_fingerprint(inventory_, snapshots_, tickets_);
  return *fingerprint_;
}

void AnalysisSession::record_stage(const char* stage, const char* source, double seconds) {
  {
    MutexLock lk(stats_mu_);
    stage_runs_.push_back(StageRun{stage, source, seconds});
  }
  // Structural fields only: the event stream stays bit-identical across
  // thread counts and machines, so seconds live in the manifest alone.
  obs::LogEvent(obs::LogLevel::kInfo, "stage").str("stage", stage).str("source", source);
}

void AnalysisSession::invalidate() {
  table_.reset();
  lint_.reset();
  dependence_.reset();
  causal_.clear();
  cv_.clear();
  bump("mpa_session_invalidations_total");
  obs::LogEvent(obs::LogLevel::kInfo, "session_invalidate")
      .str("artifact_key", opts_.artifact_key);
  if (!opts_.artifact_key.empty()) store_.remove(opts_.artifact_key);
}

void AnalysisSession::replace_data(Inventory inventory, SnapshotStore snapshots,
                                   TicketLog tickets) {
  // A byte-identical replacement is a no-op: every artifact is a pure
  // function of (data, options, seed), so matching fingerprints mean
  // the warm cache is still exactly right — don't invalidate it.
  if (dataset_fingerprint(inventory, snapshots, tickets) == fingerprint()) {
    obs::LogEvent(obs::LogLevel::kDebug, "session_replace_noop")
        .str("artifact_key", opts_.artifact_key);
    return;
  }
  inventory_ = std::move(inventory);
  snapshots_ = std::move(snapshots);
  tickets_ = std::move(tickets);
  {
    MutexLock lk(stats_mu_);
    fingerprint_.reset();
  }
  invalidate();
}

}  // namespace mpa
