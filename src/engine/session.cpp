#include "engine/session.hpp"

#include <algorithm>

#include "config/dialect.hpp"
#include "io/dataset_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/time.hpp"

namespace mpa {
namespace {

/// splitmix64 finalizer — decorrelates artifact tags into seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mirror a per-session CacheStats increment into the obs registry.
void bump(const char* counter) {
  if (obs::enabled()) obs::Registry::global().counter(counter).add(1);
}

/// The wall-time histogram for one pipeline stage, or null when obs is
/// disabled (which makes the ScopedTimer inert — no clock reads).
obs::Histogram* stage_seconds(const char* stage) {
  if (!obs::enabled()) return nullptr;
  return &obs::Registry::global().histogram(std::string("mpa_stage_seconds_") + stage);
}

/// Pre-register the engine's full metric schema so every export
/// contains the same names, including zero-valued ones — consumers
/// (the CI schema check, dashboards) never see a shifting key set.
void register_engine_metrics() {
  auto& reg = obs::Registry::global();
  for (const char* name :
       {"mpa_session_memo_hits_total", "mpa_session_table_builds_total",
        "mpa_session_table_loads_total", "mpa_session_lint_runs_total",
        "mpa_session_lint_loads_total", "mpa_session_causal_runs_total",
        "mpa_session_cv_runs_total", "mpa_session_online_runs_total",
        "mpa_session_invalidations_total", "mpa_session_cmi_pairs_total",
        "mpa_artifact_store_hits_total",
        "mpa_artifact_store_misses_total", "mpa_artifact_store_saves_total",
        "mpa_pool_jobs_total", "mpa_pool_tasks_total", "mpa_pool_inline_jobs_total",
        "mpa_pool_worker_joins_total", "mpa_pool_queue_wait_ns_total"}) {
    reg.counter(name);
  }
  for (const char* stage : {"case_table", "lint", "dependence", "causal", "cv", "online"}) {
    reg.histogram(std::string("mpa_stage_seconds_") + stage);
  }
  reg.histogram("mpa_dependence_pair_seconds");
}

}  // namespace

AnalysisSession::AnalysisSession(Inventory inventory, SnapshotStore snapshots, TicketLog tickets,
                                 SessionOptions opts)
    : inventory_(std::move(inventory)),
      snapshots_(std::move(snapshots)),
      tickets_(std::move(tickets)),
      opts_(std::move(opts)),
      store_(opts_.artifact_dir),
      pool_(std::make_unique<ThreadPool>(opts_.threads > 0 ? opts_.threads
                                                           : ThreadPool::default_thread_count())) {
  if (obs::enabled()) register_engine_metrics();
}

AnalysisSession::~AnalysisSession() {
  // pool_ is null only in the moved-from shell, which must not publish
  // the stats a second time.
  if (pool_ == nullptr || !obs::enabled()) return;
  const ThreadPool::Stats s = pool_->stats();
  auto& reg = obs::Registry::global();
  reg.counter("mpa_pool_jobs_total").add(s.jobs);
  reg.counter("mpa_pool_tasks_total").add(s.tasks);
  reg.counter("mpa_pool_inline_jobs_total").add(s.inline_jobs);
  reg.counter("mpa_pool_worker_joins_total").add(s.worker_joins);
  reg.counter("mpa_pool_queue_wait_ns_total").add(s.queue_wait_ns);
}

AnalysisSession AnalysisSession::from_directory(const std::string& dir, SessionOptions opts) {
  DiskDataset data = load_dataset(dir);
  // Observation window implied by the data: the last month touched by
  // any ticket or snapshot.
  int months = 1;
  for (const auto& t : data.tickets.all()) months = std::max(months, month_of(t.created) + 1);
  for (const auto& dev : data.snapshots.devices())
    for (const auto& s : data.snapshots.for_device(dev))
      months = std::max(months, month_of(s.time) + 1);
  opts.inference.num_months = months;
  return AnalysisSession(std::move(data.inventory), std::move(data.snapshots),
                         std::move(data.tickets), std::move(opts));
}

Rng AnalysisSession::stream_for(std::uint64_t tag) const {
  return Rng(mix(opts_.seed ^ mix(tag)));
}

const CaseTable& AnalysisSession::case_table() {
  if (table_.has_value()) {
    ++stats_.hits;
    bump("mpa_session_memo_hits_total");
    return *table_;
  }
  if (!opts_.artifact_key.empty()) {
    if (auto cached = store_.load_case_table(opts_.artifact_key)) {
      ++stats_.table_loads;
      bump("mpa_session_table_loads_total");
      table_ = std::move(*cached);
      return *table_;
    }
  }
  obs::Span span("case_table");
  obs::ScopedTimer timer(stage_seconds("case_table"));
  InferenceOptions iopts = opts_.inference;
  iopts.pool = pool_.get();
  table_ = infer_case_table(inventory_, snapshots_, tickets_, iopts);
  ++stats_.table_builds;
  bump("mpa_session_table_builds_total");
  if (!opts_.artifact_key.empty()) store_.save_case_table(opts_.artifact_key, *table_);
  return *table_;
}

const LintReport& AnalysisSession::lint() {
  if (lint_.has_value()) {
    ++stats_.hits;
    bump("mpa_session_memo_hits_total");
    return *lint_;
  }
  if (!opts_.artifact_key.empty()) {
    if (auto cached = store_.load_lint_report(opts_.artifact_key)) {
      ++stats_.lint_loads;
      bump("mpa_session_lint_loads_total");
      lint_ = std::move(*cached);
      return *lint_;
    }
  }
  obs::Span span("lint");
  obs::ScopedTimer timer(stage_seconds("lint"));
  // Per-task spans run on pool workers, whose thread-local span stack
  // is empty; adopt this stage's path explicitly so the fan-out nests
  // under it with deterministic names and counts at any thread count.
  const std::string task_path =
      obs::enabled() ? obs::Tracer::current_path() + "/network" : std::string();
  const auto& networks = inventory_.networks();
  LintReport report;
  report.networks.resize(networks.size());
  parallel_for(pool_.get(), networks.size(), [&](std::size_t n) {
    obs::Span task = obs::Span::with_path(task_path);
    NetworkLint& out = report.networks[n];
    out.network_id = networks[n].network_id;
    std::vector<DeviceText> texts;
    for (const auto* d : inventory_.devices_in(networks[n].network_id)) {
      const auto& snaps = snapshots_.for_device(d->device_id);
      if (snaps.empty()) continue;
      texts.push_back(DeviceText{d->device_id, snaps.back().text, dialect_of(d->vendor)});
    }
    out.num_devices = texts.size();
    out.diagnostics = lint_network_text(texts, opts_.inference.lint);
  });
  ++stats_.lint_runs;
  bump("mpa_session_lint_runs_total");
  lint_ = std::move(report);
  if (!opts_.artifact_key.empty()) store_.save_lint_report(opts_.artifact_key, *lint_);
  return *lint_;
}

const DependenceAnalysis& AnalysisSession::dependence() {
  if (dependence_.has_value()) {
    ++stats_.hits;
    bump("mpa_session_memo_hits_total");
    return *dependence_;
  }
  // The case table is a prerequisite, not part of this stage's cost:
  // materialize it before the span opens so a cold dependence() call
  // reports dependence time, with any table build as a sibling span.
  const CaseTable& table = case_table();
  obs::Span span("dependence");
  obs::ScopedTimer timer(stage_seconds("dependence"));
  DependenceOptions dopts = opts_.dependence;
  dopts.pool = pool_.get();
  dopts.record_pair_times = obs::enabled();
  dependence_.emplace(table, dopts);
  if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("mpa_session_cmi_pairs_total")
        .add(static_cast<std::uint64_t>(dependence_->cmi_ranking().size()));
    auto& pair_hist = reg.histogram("mpa_dependence_pair_seconds");
    for (double s : dependence_->pair_compute_seconds()) pair_hist.observe(s);
  }
  return *dependence_;
}

const CausalResult& AnalysisSession::causal(Practice treatment) {
  const auto it = causal_.find(treatment);
  if (it != causal_.end()) {
    ++stats_.hits;
    bump("mpa_session_memo_hits_total");
    return it->second;
  }
  const CaseTable& table = case_table();
  obs::Span span("causal");
  obs::ScopedTimer timer(stage_seconds("causal"));
  CausalOptions copts = opts_.causal;
  copts.pool = pool_.get();
  ++stats_.causal_runs;
  bump("mpa_session_causal_runs_total");
  return causal_.emplace(treatment, causal_analysis(table, treatment, copts)).first->second;
}

const EvalResult& AnalysisSession::evaluate_cv(int num_classes, ModelKind kind) {
  const auto key = std::make_pair(static_cast<int>(kind), num_classes);
  const auto it = cv_.find(key);
  if (it != cv_.end()) {
    ++stats_.hits;
    bump("mpa_session_memo_hits_total");
    return it->second;
  }
  const CaseTable& table = case_table();
  obs::Span span("cv");
  obs::ScopedTimer timer(stage_seconds("cv"));
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x5cf00ULL + static_cast<std::uint64_t>(kind) * 64 +
                       static_cast<std::uint64_t>(num_classes));
  ++stats_.cv_runs;
  bump("mpa_session_cv_runs_total");
  return cv_.emplace(key, evaluate_model_cv(table, num_classes, kind, rng, mopts))
      .first->second;
}

double AnalysisSession::online_accuracy(int num_classes, int history_m, ModelKind kind,
                                        int first_t, int last_t) {
  const CaseTable& table = case_table();
  obs::Span span("online");
  obs::ScopedTimer timer(stage_seconds("online"));
  ModelingOptions mopts = opts_.modeling;
  mopts.pool = pool_.get();
  Rng rng = stream_for(0x0911eULL + static_cast<std::uint64_t>(kind) * 4096 +
                       static_cast<std::uint64_t>(num_classes) * 128 +
                       static_cast<std::uint64_t>(history_m));
  ++stats_.online_runs;
  bump("mpa_session_online_runs_total");
  return online_prediction_accuracy(table, num_classes, history_m, kind, rng, first_t, last_t,
                                    mopts);
}

void AnalysisSession::invalidate() {
  table_.reset();
  lint_.reset();
  dependence_.reset();
  causal_.clear();
  cv_.clear();
  bump("mpa_session_invalidations_total");
  if (!opts_.artifact_key.empty()) store_.remove(opts_.artifact_key);
}

void AnalysisSession::replace_data(Inventory inventory, SnapshotStore snapshots,
                                   TicketLog tickets) {
  inventory_ = std::move(inventory);
  snapshots_ = std::move(snapshots);
  tickets_ = std::move(tickets);
  invalidate();
}

}  // namespace mpa
