#include "engine/lint_report.hpp"

#include <array>
#include <map>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

std::optional<LintCategory> parse_category(std::string_view s) {
  for (int i = 0; i < kNumLintCategories; ++i) {
    const auto c = static_cast<LintCategory>(i);
    if (to_string(c) == s) return c;
  }
  return std::nullopt;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// SARIF result level for a severity.
std::string_view sarif_level(LintSeverity s) {
  switch (s) {
    case LintSeverity::kInfo: return "note";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "none";
}

struct Counts {
  int total = 0;
  std::array<int, kNumLintSeverities> by_severity{};
  std::set<std::string_view> rules;

  void count(const Diagnostic& d) {
    if (d.suppressed) return;
    ++total;
    ++by_severity[static_cast<std::size_t>(d.severity)];
    rules.insert(d.rule_id);
  }
};

int parse_int_cell(std::string_view cell, std::string_view what) {
  int v = 0;
  bool any = false;
  for (char c : cell) {
    require_data(c >= '0' && c <= '9', "lint report: bad " + std::string(what));
    v = v * 10 + (c - '0');
    any = true;
  }
  require_data(any, "lint report: empty " + std::string(what));
  return v;
}

}  // namespace

std::size_t LintReport::total_findings() const {
  std::size_t n = 0;
  for (const auto& net : networks) n += net.diagnostics.size();
  return n;
}

LintReport LintReport::at_least(LintSeverity min) const {
  LintReport out;
  out.networks.reserve(networks.size());
  for (const auto& net : networks) {
    NetworkLint kept;
    kept.network_id = net.network_id;
    kept.num_devices = net.num_devices;
    for (const auto& d : net.diagnostics)
      if (d.severity >= min) kept.diagnostics.push_back(d);
    out.networks.push_back(std::move(kept));
  }
  return out;
}

std::string LintReport::to_csv() const {
  std::ostringstream os;
  os << "record,network_id,device_id,rule_id,severity,category,first_line,last_line,"
        "suppressed,object,message\n";
  for (const auto& net : networks) {
    os << "net," << net.network_id << "," << net.num_devices << "\n";
    for (const auto& d : net.diagnostics) {
      os << "diag," << d.device_id << "," << d.rule_id << "," << to_string(d.severity) << ","
         << to_string(d.category) << "," << d.span.first_line << "," << d.span.last_line << ","
         << (d.suppressed ? 1 : 0) << "," << d.object << "," << d.message << "\n";
    }
  }
  return os.str();
}

LintReport LintReport::from_csv(std::string_view csv) {
  LintReport out;
  bool header = true;
  for (const auto& line : split(csv, '\n')) {
    if (trim(line).empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto cells = split(line, ',');
    if (cells[0] == "net") {
      require_data(cells.size() == 3, "lint report: bad network row");
      NetworkLint net;
      net.network_id = cells[1];
      net.num_devices = static_cast<std::size_t>(parse_int_cell(cells[2], "device count"));
      out.networks.push_back(std::move(net));
      continue;
    }
    require_data(cells[0] == "diag" && cells.size() >= 10, "lint report: bad finding row");
    require_data(!out.networks.empty(), "lint report: finding before any network");
    Diagnostic d;
    d.device_id = cells[1];
    d.rule_id = cells[2];
    const auto sev = parse_severity(cells[3]);
    require_data(sev.has_value(), "lint report: bad severity " + cells[3]);
    d.severity = *sev;
    const auto cat = parse_category(cells[4]);
    require_data(cat.has_value(), "lint report: bad category " + cells[4]);
    d.category = *cat;
    d.span.first_line = parse_int_cell(cells[5], "first_line");
    d.span.last_line = parse_int_cell(cells[6], "last_line");
    d.suppressed = parse_int_cell(cells[7], "suppressed flag") != 0;
    d.object = cells[8];
    // The message is everything after the object column, commas intact.
    d.message = join(std::vector<std::string>(cells.begin() + 9, cells.end()), ",");
    out.networks.back().diagnostics.push_back(std::move(d));
  }
  return out;
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  Counts overall;
  for (const auto& net : networks) {
    Counts local;
    for (const auto& d : net.diagnostics) {
      local.count(d);
      overall.count(d);
    }
    if (net.diagnostics.empty()) continue;
    os << net.network_id << " (" << net.num_devices << " devices): " << local.total
       << " findings\n";
    for (const auto& d : net.diagnostics) {
      os << "  " << d.device_id;
      if (d.span.resolved()) {
        os << ":" << d.span.first_line;
        if (d.span.last_line > d.span.first_line) os << "-" << d.span.last_line;
      }
      os << " " << to_string(d.severity) << " " << d.rule_id;
      if (d.suppressed) os << " (suppressed)";
      os << ": " << d.message << "\n";
    }
  }
  os << "total: " << overall.total << " findings ("
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kError)] << " errors, "
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kWarning)] << " warnings, "
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kInfo)] << " info) across "
     << networks.size() << " networks; " << overall.rules.size() << " rules hit\n";
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  Counts overall;
  os << "{\n  \"networks\": [";
  bool first_net = true;
  for (const auto& net : networks) {
    os << (first_net ? "\n" : ",\n");
    first_net = false;
    os << "    {\"network\": \"" << json_escape(net.network_id) << "\", \"devices\": "
       << net.num_devices << ", \"findings\": [";
    bool first_diag = true;
    for (const auto& d : net.diagnostics) {
      overall.count(d);
      os << (first_diag ? "\n" : ",\n");
      first_diag = false;
      os << "      {\"rule\": \"" << json_escape(d.rule_id) << "\", \"severity\": \""
         << to_string(d.severity) << "\", \"category\": \"" << to_string(d.category)
         << "\", \"device\": \"" << json_escape(d.device_id) << "\", \"object\": \""
         << json_escape(d.object) << "\", \"line\": " << d.span.first_line
         << ", \"endLine\": " << d.span.last_line
         << ", \"suppressed\": " << (d.suppressed ? "true" : "false") << ", \"message\": \""
         << json_escape(d.message) << "\"}";
    }
    os << (first_diag ? "]}" : "\n    ]}");
  }
  os << (first_net ? "],\n" : "\n  ],\n");
  os << "  \"summary\": {\"total\": " << overall.total << ", \"errors\": "
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kError)] << ", \"warnings\": "
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kWarning)] << ", \"info\": "
     << overall.by_severity[static_cast<std::size_t>(LintSeverity::kInfo)]
     << ", \"rulesHit\": " << overall.rules.size() << "}\n}\n";
  return os.str();
}

std::string LintReport::to_sarif(const RuleRegistry* registry) const {
  const RuleRegistry& reg = registry != nullptr ? *registry : RuleRegistry::builtin();
  // Rule index in the driver.rules array, for result.ruleIndex.
  std::map<std::string_view, std::size_t> rule_index;
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"mpa-lint\",\n"
     << "          \"informationUri\": \"https://example.invalid/mpa\",\n"
     << "          \"rules\": [";
  bool first = true;
  for (const auto& rule : reg.rules()) {
    const RuleInfo info = rule->info();
    rule_index.emplace(info.id, rule_index.size());
    os << (first ? "\n" : ",\n");
    first = false;
    os << "            {\"id\": \"" << json_escape(info.id) << "\", \"shortDescription\": "
       << "{\"text\": \"" << json_escape(info.summary) << "\"}, \"defaultConfiguration\": "
       << "{\"level\": \"" << sarif_level(info.severity) << "\"}, \"properties\": "
       << "{\"category\": \"" << to_string(info.category) << "\"}}";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  first = true;
  for (const auto& net : networks) {
    for (const auto& d : net.diagnostics) {
      os << (first ? "\n" : ",\n");
      first = false;
      os << "        {\"ruleId\": \"" << json_escape(d.rule_id) << "\"";
      const auto idx = rule_index.find(d.rule_id);
      if (idx != rule_index.end()) os << ", \"ruleIndex\": " << idx->second;
      os << ", \"level\": \"" << sarif_level(d.severity) << "\", \"message\": {\"text\": \""
         << json_escape(d.message) << "\"}, \"locations\": [{\"physicalLocation\": "
         << "{\"artifactLocation\": {\"uri\": \"" << json_escape(net.network_id) << "/"
         << json_escape(d.device_id) << ".cfg\"}";
      if (d.span.resolved()) {
        os << ", \"region\": {\"startLine\": " << d.span.first_line
           << ", \"endLine\": " << d.span.last_line << "}";
      }
      os << "}, \"logicalLocations\": [{\"name\": \"" << json_escape(d.object)
         << "\", \"kind\": \"object\"}]}]";
      if (d.suppressed)
        os << ", \"suppressions\": [{\"kind\": \"inSource\", \"justification\": "
           << "\"lint-disable pragma\"}]";
      os << "}";
    }
  }
  os << "\n      ]\n    }\n  ]\n}\n";
  return os.str();
}

}  // namespace mpa
