// The lint report artifact: every diagnostic from linting each
// network's latest config snapshots, grouped by network.
//
// This is the engine-facing face of the rule-engine analyzer
// (config/lint.hpp). AnalysisSession::lint() computes it with a
// per-network parallel fan-out, memoizes it, and persists it through
// the ArtifactStore next to the case table; `mpa_cli lint` renders it
// as human-readable text, JSON, or SARIF 2.1.0 for code-review
// tooling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/lint.hpp"

namespace mpa {

/// One network's findings.
struct NetworkLint {
  std::string network_id;
  std::size_t num_devices = 0;  ///< Devices with a lintable snapshot.
  std::vector<Diagnostic> diagnostics;
};

struct LintReport {
  std::vector<NetworkLint> networks;

  std::size_t total_findings() const;

  /// Copy keeping only findings at or above `min` severity.
  LintReport at_least(LintSeverity min) const;

  /// CSV round-trip for ArtifactStore persistence. The message is the
  /// last column and is re-joined on load, so it may contain commas.
  std::string to_csv() const;
  /// Throws DataError on malformed input.
  static LintReport from_csv(std::string_view csv);

  /// Human-readable listing: one line per finding plus per-network and
  /// overall summaries.
  std::string to_text() const;

  /// JSON object with per-network findings and an overall summary.
  std::string to_json() const;

  /// SARIF 2.1.0 log. The tool.driver.rules array always lists the
  /// whole registry (default: built-in), findings or not.
  std::string to_sarif(const RuleRegistry* registry = nullptr) const;
};

}  // namespace mpa
