#include "engine/run_manifest.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"

namespace mpa {
namespace {

/// Shortest round-trippable double, always a valid JSON token.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  if (std::strchr(buf, 'i') != nullptr || std::strchr(buf, 'n') != nullptr) return "0";
  return buf;
}

void append_map(std::ostringstream& os, const std::map<std::string, std::uint64_t>& m) {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : m) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":" << value;
  }
  os << '}';
}

std::map<std::string, std::uint64_t> parse_map(const JsonValue& v) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, value] : v.as_object()) out[key] = value.as_u64();
  return out;
}

Mutex g_last_mu;
std::optional<RunManifest> g_last GUARDED_BY(g_last_mu);  // NOLINT(cert-err58-cpp)

}  // namespace

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"dataset_fingerprint\":\"" << json_escape(dataset_fingerprint) << "\",\n"
     << "  \"seed\":" << seed << ",\n"
     << "  \"threads\":" << threads << ",\n"
     << "  \"months\":" << months << ",\n"
     << "  \"networks\":" << networks << ",\n"
     << "  \"devices\":" << devices << ",\n"
     << "  \"snapshots\":" << snapshots << ",\n"
     << "  \"tickets\":" << tickets << ",\n"
     << "  \"artifact_dir\":\"" << json_escape(artifact_dir) << "\",\n"
     << "  \"artifact_key\":\"" << json_escape(artifact_key) << "\",\n"
     << "  \"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) os << ',';
    os << "\n    {\"stage\":\"" << json_escape(stages[i].stage) << "\",\"source\":\""
       << json_escape(stages[i].source) << "\",\"seconds\":" << format_number(stages[i].seconds)
       << '}';
  }
  os << (stages.empty() ? "],\n" : "\n  ],\n") << "  \"cache\":";
  append_map(os, cache);
  os << ",\n  \"counters\":";
  append_map(os, counters);
  os << "\n}\n";
  return os.str();
}

std::string RunManifest::to_text() const {
  std::ostringstream os;
  os << "run manifest\n"
     << "  dataset fingerprint  " << dataset_fingerprint << "\n"
     << "  seed                 " << seed << "\n"
     << "  threads              " << threads << "\n"
     << "  months               " << months << "\n"
     << "  networks             " << networks << "\n"
     << "  devices              " << devices << "\n"
     << "  snapshots            " << snapshots << "\n"
     << "  tickets              " << tickets << "\n";
  if (!artifact_dir.empty()) os << "  artifact dir         " << artifact_dir << "\n";
  if (!artifact_key.empty()) os << "  artifact key         " << artifact_key << "\n";
  os << "stages (request order)\n";
  if (stages.empty()) os << "  (none requested)\n";
  for (const auto& s : stages) {
    char secs[32];
    std::snprintf(secs, sizeof secs, "%.6f", s.seconds);
    os << "  " << s.stage;
    for (std::size_t pad = s.stage.size(); pad < 12; ++pad) os << ' ';
    os << ' ' << s.source;
    for (std::size_t pad = s.source.size(); pad < 9; ++pad) os << ' ';
    os << secs << "s\n";
  }
  os << "cache\n";
  for (const auto& [key, value] : cache) os << "  " << key << " = " << value << "\n";
  if (!counters.empty()) {
    os << "counters\n";
    for (const auto& [key, value] : counters) os << "  " << key << " = " << value << "\n";
  }
  return os.str();
}

RunManifest RunManifest::from_json(const std::string& json) {
  const JsonValue doc = parse_json(json);
  RunManifest m;
  m.dataset_fingerprint = doc.at("dataset_fingerprint").as_string();
  m.seed = doc.at("seed").as_u64();
  m.threads = static_cast<int>(doc.at("threads").as_u64());
  m.months = static_cast<int>(doc.at("months").as_u64());
  m.networks = doc.at("networks").as_u64();
  m.devices = doc.at("devices").as_u64();
  m.snapshots = doc.at("snapshots").as_u64();
  m.tickets = doc.at("tickets").as_u64();
  m.artifact_dir = doc.at("artifact_dir").as_string();
  m.artifact_key = doc.at("artifact_key").as_string();
  for (const JsonValue& s : doc.at("stages").as_array()) {
    StageRun run;
    run.stage = s.at("stage").as_string();
    run.source = s.at("source").as_string();
    run.seconds = s.at("seconds").as_number();
    m.stages.push_back(std::move(run));
  }
  m.cache = parse_map(doc.at("cache"));
  m.counters = parse_map(doc.at("counters"));
  return m;
}

std::uint64_t dataset_fingerprint(const Inventory& inventory, const SnapshotStore& snapshots,
                                  const TicketLog& tickets) {
  Fnv h;
  h.u64(inventory.num_networks());
  for (const auto& net : inventory.networks()) {
    h.str(net.network_id);
    h.u64(net.workloads.size());
    for (const auto& w : net.workloads) {
      h.str(w.name);
      h.u64(static_cast<std::uint64_t>(w.kind));
    }
    h.u64(net.device_ids.size());
    for (const auto& id : net.device_ids) h.str(id);
  }
  h.u64(inventory.num_devices());
  for (const auto& dev : inventory.devices()) {
    h.str(dev.device_id);
    h.str(dev.network_id);
    h.u64(static_cast<std::uint64_t>(dev.vendor));
    h.str(dev.model);
    h.u64(static_cast<std::uint64_t>(dev.role));
    h.str(dev.firmware);
  }
  h.u64(snapshots.total_snapshots());
  for (const auto& dev : snapshots.devices()) {
    h.str(dev);
    for (const auto& snap : snapshots.for_device(dev)) {
      h.u64(static_cast<std::uint64_t>(snap.time));
      h.str(snap.login);
      h.str(snap.text);
    }
  }
  h.u64(tickets.size());
  for (const auto& t : tickets.all()) {
    h.str(t.ticket_id);
    h.str(t.network_id);
    h.u64(static_cast<std::uint64_t>(t.created));
    h.u64(static_cast<std::uint64_t>(t.resolved));
    h.u64(t.devices.size());
    for (const auto& d : t.devices) h.str(d);
    h.u64(static_cast<std::uint64_t>(t.origin));
    h.str(t.symptom);
  }
  return h.value();
}

std::string fingerprint_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::optional<RunManifest> last_run_manifest() {
  MutexLock lk(g_last_mu);
  return g_last;
}

void set_last_run_manifest(RunManifest manifest) {
  MutexLock lk(g_last_mu);
  g_last = std::move(manifest);
}

}  // namespace mpa
