// Matched-design quasi-experiments via propensity scores (§5.2.3-5.2.4).
//
// "Each treated case is paired with an untreated case that results in
// the smallest absolute difference in their propensity scores. To
// obtain the best possible pairings, we match with replacement. We also
// follow the common practice of discarding treated (untreated) cases
// whose propensity score falls outside the range of propensity scores
// for untreated (treated) cases."
//
// Balance verification follows Stuart: for each confounder the absolute
// standardized difference of means should be < 0.25 and the variance
// ratio within [0.5, 2].
#pragma once

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "stats/logistic.hpp"

namespace mpa {

/// One matched (treated, untreated) pair, indices into the original
/// treated / untreated matrices.
struct MatchedPair {
  std::size_t treated_index = 0;
  std::size_t untreated_index = 0;
  double score_diff = 0;  ///< |propensity(T) - propensity(U)|.
};

/// Balance diagnostics for one variable over the matched samples.
struct BalanceStat {
  double std_diff_of_means = 0;  ///< (meanT - meanU) / sdT.
  double variance_ratio = 1;     ///< varT / varU.

  bool ok(double mean_thresh = 0.25, double var_lo = 0.5, double var_hi = 2.0) const {
    return std::abs(std_diff_of_means) < mean_thresh && variance_ratio > var_lo &&
           variance_ratio < var_hi;
  }
};

struct MatchOptions {
  bool with_replacement = true;
  bool trim_common_support = true;
  // Defaults below implement covariate matching within a wide
  // propensity caliper with limited replacement — the combination that
  // gave the best covariate balance on heavily-confounded practice
  // data (see DESIGN.md).
  /// Caliper: maximum allowed |score difference| for a pair, in units
  /// of the pooled propensity-score standard deviation (a standard
  /// matching refinement; Stuart 2010 recommends ~0.25 sd). Treated
  /// cases whose nearest neighbour is farther than the caliper are
  /// dropped. <= 0 disables.
  double caliper_sd = 0.25;
  /// Matching with *limited* replacement: each untreated case may be
  /// reused at most this many times (0 = unlimited). Reuse of a few
  /// oddball untreated cases is the main way with-replacement matching
  /// destroys covariate balance.
  int max_reuse = 6;
  /// Covariate matching within the propensity caliper (Rubin & Thomas):
  /// among untreated candidates whose score lies within the caliper,
  /// pick the one minimizing standardized-Euclidean distance over the
  /// confounders instead of raw score distance. Markedly improves
  /// per-covariate balance when many cases share similar scores.
  bool covariates_within_caliper = true;
  /// Cap on candidates scanned per treated case in covariate mode.
  int max_candidates = 128;
  LogitOptions logit = {};
};

/// Full result of one matched design.
struct MatchResult {
  std::vector<MatchedPair> pairs;
  std::vector<double> treated_scores;    ///< Propensity per treated case.
  std::vector<double> untreated_scores;  ///< Propensity per untreated case.
  std::size_t treated_total = 0;         ///< Before common-support trimming.
  std::size_t untreated_total = 0;
  std::size_t untreated_matched_distinct = 0;  ///< Distinct untreated used.
  BalanceStat propensity_balance;        ///< Over matched scores.
  std::vector<BalanceStat> confounder_balance;  ///< Per confounder column.

  /// True if the propensity scores and every confounder pass Stuart's
  /// thresholds — i.e. the matching is usable for causal conclusions.
  bool balanced(double mean_thresh = 0.25, double var_lo = 0.5, double var_hi = 2.0) const;

  /// Largest |standardized difference of means| across confounders
  /// (infinity when any is degenerate-imbalanced; 0 when no pairs).
  double worst_abs_std_diff() const;
  /// Fraction of confounders whose variance ratio lies in [var_lo,
  /// var_hi] (1 when there are no confounders).
  double variance_ratio_pass_fraction(double var_lo = 0.5, double var_hi = 2.0) const;
};

/// Run the full pipeline: fit propensity model on treated-vs-untreated,
/// trim to common support, k=1 nearest-neighbour match, and compute
/// balance diagnostics. Requires at least one case on each side and
/// rows of equal width (>= 1 confounder).
MatchResult propensity_match(const Matrix& treated, const Matrix& untreated,
                             const MatchOptions& opts = {});

/// Balance of one variable given matched samples (exposed for tests
/// and for figure benches that inspect individual confounders).
BalanceStat balance_stat(std::span<const double> treated_values,
                         std::span<const double> untreated_values);

/// Number of treated cases with at least one exactly-equal untreated
/// row (the paper's "exact matching produces at most 17 pairs" probe).
std::size_t exact_match_count(const Matrix& treated, const Matrix& untreated);

/// k=1 nearest-neighbour matching on *Mahalanobis distance* over the
/// raw confounders — the other classical alternative the paper
/// mentions alongside exact matching (§5.2.3). Pooled covariance is
/// Cholesky-factored and points are whitened once, so matching is
/// O(T*U*d). `max_reuse` caps untreated reuse (0 = unlimited).
/// The returned MatchResult carries balance diagnostics but no
/// propensity scores (none exist for this method).
MatchResult mahalanobis_match(const Matrix& treated, const Matrix& untreated, int max_reuse = 1);

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular L with L*L^T = a, or false if `a` is not
/// positive definite to working precision. Exposed for tests.
bool cholesky(const Matrix& a, Matrix& l);

}  // namespace mpa
