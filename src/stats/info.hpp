// Information-theoretic dependence measures (§5.1).
//
// "The MI between variables X and Y is defined as the difference
// between the entropy of Y and the conditional entropy of Y given X."
// "The CMI for two variables X1 and X2 relative to variable Y is
// defined as H(X1|Y) - H(X1|X2, Y)."
//
// All quantities operate on discretized (binned) samples and are
// measured in bits.
#pragma once

#include <span>
#include <vector>

namespace mpa {

/// Shannon entropy H(X) of a discrete sample, in bits.
double entropy(std::span<const int> x);

/// Conditional entropy H(Y | X).
double conditional_entropy(std::span<const int> y, std::span<const int> x);

/// Mutual information I(X; Y) = H(Y) - H(Y | X). Symmetric, >= 0
/// (up to floating-point noise). Requires equal non-zero lengths.
double mutual_information(std::span<const int> x, std::span<const int> y);

/// Conditional mutual information I(X1; X2 | Y)
/// = H(X1 | Y) - H(X1 | X2, Y). Symmetric in X1, X2.
double conditional_mutual_information(std::span<const int> x1, std::span<const int> x2,
                                      std::span<const int> y);

/// Miller-Madow bias-corrected mutual information: the plug-in MI
/// estimator is biased upward by roughly (|X|-1)(|Y|-1) / (2 N ln 2)
/// bits; this subtracts that first-order term (floored at 0). Useful
/// when comparing practices with different bin occupancies on small
/// monthly samples.
double mutual_information_mm(std::span<const int> x, std::span<const int> y);

/// Entropy in bits of the empirical distribution given non-negative
/// category counts (zero categories are ignored). Returns 0 if the
/// total count is zero.
double entropy_of_counts(std::span<const double> counts);

}  // namespace mpa
