// Information-theoretic dependence measures (§5.1).
//
// "The MI between variables X and Y is defined as the difference
// between the entropy of Y and the conditional entropy of Y given X."
// "The CMI for two variables X1 and X2 relative to variable Y is
// defined as H(X1|Y) - H(X1|X2, Y)."
//
// All quantities operate on discretized (binned) samples and are
// measured in bits. Small-cardinality non-negative inputs (binned data
// always qualifies) are computed on the dense, allocation-free
// contingency kernels in stats/contingency.hpp; other inputs fall back
// to the std::map-based reference implementations in mpa::reference,
// which the dense kernels match bit for bit.
#pragma once

#include <span>
#include <vector>

namespace mpa {

/// Shannon entropy H(X) of a discrete sample, in bits.
double entropy(std::span<const int> x);

/// Conditional entropy H(Y | X).
double conditional_entropy(std::span<const int> y, std::span<const int> x);

/// Mutual information I(X; Y) = H(Y) - H(Y | X). Symmetric, >= 0
/// (up to floating-point noise). Requires equal non-zero lengths.
double mutual_information(std::span<const int> x, std::span<const int> y);

/// Conditional mutual information I(X1; X2 | Y)
/// = H(X1 | Y) - H(X1 | X2, Y). Symmetric in X1, X2.
double conditional_mutual_information(std::span<const int> x1, std::span<const int> x2,
                                      std::span<const int> y);

/// Miller-Madow bias-corrected mutual information: the plug-in MI
/// estimator is biased upward by roughly (|X|-1)(|Y|-1) / (2 N ln 2)
/// bits; this subtracts that first-order term (floored at 0). Useful
/// when comparing practices with different bin occupancies on small
/// monthly samples.
double mutual_information_mm(std::span<const int> x, std::span<const int> y);

/// Entropy in bits of the empirical distribution given non-negative
/// category counts (zero categories are ignored). Returns 0 if the
/// total count is zero.
double entropy_of_counts(std::span<const double> counts);

/// The original std::map-based kernels, retained verbatim as the
/// oracle for the dense contingency kernels: equivalence tests assert
/// the two paths agree exactly, and the dense-vs-map benchmarks
/// measure the speedup against them. Also the fallback for inputs the
/// dense path cannot hold (negative values or huge alphabets).
namespace reference {
double entropy(std::span<const int> x);
double conditional_entropy(std::span<const int> y, std::span<const int> x);
double mutual_information(std::span<const int> x, std::span<const int> y);
double conditional_mutual_information(std::span<const int> x1, std::span<const int> x2,
                                      std::span<const int> y);
double mutual_information_mm(std::span<const int> x, std::span<const int> y);
}  // namespace reference

}  // namespace mpa
