#include "stats/binning.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace mpa {

Binner Binner::fit(std::span<const double> values, int num_bins, double lo_pct, double hi_pct) {
  require(num_bins >= 1, "Binner::fit: need at least one bin");
  require(lo_pct <= hi_pct, "Binner::fit: lo_pct > hi_pct");
  if (values.empty()) return Binner(0, 0, 1);
  const double lo = percentile(values, lo_pct);
  const double hi = percentile(values, hi_pct);
  if (!(hi > lo)) return Binner(lo, lo, 1);  // degenerate: single bin
  return Binner(lo, hi, num_bins);
}

Binner::Binner(double lo, double hi, int num_bins) : lo_(lo), hi_(hi), num_bins_(num_bins) {
  require(num_bins >= 1, "Binner: need at least one bin");
  require(hi >= lo, "Binner: hi < lo");
  if (hi == lo) num_bins_ = 1;
}

int Binner::bin(double value) const {
  if (num_bins_ == 1 || value <= lo_) return 0;
  if (value >= hi_) return num_bins_ - 1;
  const double width = (hi_ - lo_) / num_bins_;
  int b = static_cast<int>((value - lo_) / width);
  if (b >= num_bins_) b = num_bins_ - 1;  // guard FP edge at hi_
  return b;
}

std::vector<int> Binner::bin_all(std::span<const double> values) const {
  std::vector<int> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(bin(v));
  return out;
}

double Binner::bin_lower(int b) const {
  require(b >= 0 && b < num_bins_, "Binner::bin_lower: bin out of range");
  if (num_bins_ == 1) return lo_;
  return lo_ + (hi_ - lo_) / num_bins_ * b;
}

}  // namespace mpa
