// The paper's binning strategy (§5.1.1).
//
// "We bin the data for each metric using 10-equal width bins, with the
// 5th percentile value as the lower bound for the first bin, and the
// 95th percentile value as the upper bound for the last bin. Networks
// whose metric value is below the 5th (above the 95th) percentile are
// put in the first (last) bin."
#pragma once

#include <span>
#include <vector>

namespace mpa {

/// Equal-width binner between clamped percentile bounds.
class Binner {
 public:
  /// Fit bounds from data. `num_bins` >= 1; `lo_pct`/`hi_pct` default to
  /// the paper's 5th/95th percentiles. Degenerate data (all values
  /// equal, or empty) yields a single-bin binner.
  static Binner fit(std::span<const double> values, int num_bins, double lo_pct = 5.0,
                    double hi_pct = 95.0);

  /// Construct directly from bounds (for tests).
  Binner(double lo, double hi, int num_bins);

  /// Bin index in [0, num_bins); values below lo clamp to 0, above hi
  /// clamp to num_bins-1.
  int bin(double value) const;

  /// Apply bin() elementwise.
  std::vector<int> bin_all(std::span<const double> values) const;

  int num_bins() const { return num_bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Inclusive-lower value bound of bin `b` (upper bound = lower of b+1;
  /// the last bin's upper bound is hi()).
  double bin_lower(int b) const;

 private:
  double lo_ = 0;
  double hi_ = 0;
  int num_bins_ = 1;
};

}  // namespace mpa
