#include "stats/decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace mpa {
namespace {

// Continued fraction for the incomplete beta (Lentz's algorithm).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  require(a > 0 && b > 0, "regularized_incomplete_beta: a, b must be positive");
  require(x >= 0 && x <= 1, "regularized_incomplete_beta: x out of [0,1]");
  if (x == 0) return 0;
  if (x == 1) return 1;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly for x < (a+1)/(a+b+2), else the
  // symmetry transformation.
  if (x < (a + 1.0) / (a + b + 2.0)) return front * betacf(a, b, x) / a;
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double f_distribution_sf(double f, int d1, int d2) {
  require(d1 >= 1 && d2 >= 1, "f_distribution_sf: degrees of freedom must be >= 1");
  if (f <= 0) return 1.0;
  // P(F >= f) = I_{d2/(d2 + d1 f)}(d2/2, d1/2).
  const double x = d2 / (d2 + d1 * f);
  return regularized_incomplete_beta(d2 / 2.0, d1 / 2.0, x);
}

double linear_r2(std::span<const double> x, std::span<const double> y) {
  const double r = pearson(x, y);
  return r * r;
}

AnovaResult one_way_anova(std::span<const int> group, std::span<const double> y) {
  require(group.size() == y.size(), "one_way_anova: length mismatch");
  require(!y.empty(), "one_way_anova: empty input");
  std::map<int, std::pair<double, int>> sums;  // group -> (sum, count)
  double grand = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    auto& [sum, count] = sums[group[i]];
    sum += y[i];
    ++count;
    grand += y[i];
  }
  const auto n = static_cast<double>(y.size());
  const double grand_mean = grand / n;
  const auto k = sums.size();

  AnovaResult res;
  if (k < 2 || y.size() <= k) return res;  // degenerate: F undefined

  double ss_between = 0;
  for (const auto& [g, sc] : sums) {
    const double mean_g = sc.first / sc.second;
    ss_between += sc.second * (mean_g - grand_mean) * (mean_g - grand_mean);
  }
  double ss_within = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const auto& sc = sums[group[i]];
    const double mean_g = sc.first / sc.second;
    ss_within += (y[i] - mean_g) * (y[i] - mean_g);
  }
  res.df_between = static_cast<int>(k) - 1;
  res.df_within = static_cast<int>(y.size() - k);
  if (ss_within <= 0) {
    res.f_statistic = ss_between > 0 ? 1e12 : 0;
    res.p_value = ss_between > 0 ? 0 : 1;
    return res;
  }
  res.f_statistic =
      (ss_between / res.df_between) / (ss_within / res.df_within);
  res.p_value = f_distribution_sf(res.f_statistic, res.df_between, res.df_within);
  return res;
}

PcaResult pca(const Matrix& data, int num_components) {
  require(!data.empty(), "pca: empty data");
  const std::size_t n = data.size();
  const std::size_t d = data[0].size();
  require(d >= 1, "pca: need at least one feature");
  require(num_components >= 1 && static_cast<std::size_t>(num_components) <= d,
          "pca: component count out of range");

  // Standardize columns; work on the correlation matrix so features
  // with large scales (VLAN counts) don't dominate.
  std::vector<double> mean_v(d, 0), sd_v(d, 0);
  for (const auto& row : data) {
    require(row.size() == d, "pca: ragged matrix");
    for (std::size_t j = 0; j < d; ++j) mean_v[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) mean_v[j] /= static_cast<double>(n);
  for (const auto& row : data)
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_v[j];
      sd_v[j] += delta * delta;
    }
  for (std::size_t j = 0; j < d; ++j) {
    sd_v[j] = std::sqrt(sd_v[j] / static_cast<double>(n));
    if (sd_v[j] < 1e-12) sd_v[j] = 1;
  }

  // Correlation matrix.
  Matrix corr(d, std::vector<double>(d, 0.0));
  for (const auto& row : data) {
    for (std::size_t j = 0; j < d; ++j) {
      const double zj = (row[j] - mean_v[j]) / sd_v[j];
      for (std::size_t k2 = j; k2 < d; ++k2) {
        corr[j][k2] += zj * (row[k2] - mean_v[k2]) / sd_v[k2];
      }
    }
  }
  for (std::size_t j = 0; j < d; ++j)
    for (std::size_t k2 = 0; k2 <= j; ++k2) {
      corr[k2][j] /= static_cast<double>(n);
      corr[j][k2] = corr[k2][j];
    }

  const double total_variance = static_cast<double>(d);  // trace of corr

  PcaResult res;
  Matrix m = corr;  // deflated in place
  for (int comp = 0; comp < num_components; ++comp) {
    // Power iteration. The start vector must not be orthogonal to the
    // dominant remaining eigenvector, so probe the basis vectors and
    // keep the one the deflated matrix amplifies most.
    std::vector<double> v(d, 0.0);
    {
      double best_norm = -1;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < d; ++j) {
        double norm = 0;
        for (std::size_t k2 = 0; k2 < d; ++k2) norm += m[k2][j] * m[k2][j];
        if (norm > best_norm) {
          best_norm = norm;
          best_j = j;
        }
      }
      v[best_j] = 1.0;
    }
    double eigen = 0;
    for (int iter = 0; iter < 500; ++iter) {
      std::vector<double> next(d, 0.0);
      for (std::size_t j = 0; j < d; ++j)
        for (std::size_t k2 = 0; k2 < d; ++k2) next[j] += m[j][k2] * v[k2];
      double norm = 0;
      for (double x : next) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-15) break;  // matrix exhausted
      for (auto& x : next) x /= norm;
      double delta = 0;
      for (std::size_t j = 0; j < d; ++j) delta = std::max(delta, std::abs(next[j] - v[j]));
      v = std::move(next);
      eigen = norm;
      if (delta < 1e-12) break;
    }
    res.components.push_back(v);
    res.eigenvalues.push_back(eigen);
    res.explained.push_back(eigen / total_variance);
    // Deflate: m -= eigen * v v^T.
    for (std::size_t j = 0; j < d; ++j)
      for (std::size_t k2 = 0; k2 < d; ++k2) m[j][k2] -= eigen * v[j] * v[k2];
  }
  return res;
}

IcaResult fast_ica(const Matrix& data, int num_components, int max_iters) {
  require(!data.empty(), "fast_ica: empty data");
  const std::size_t n = data.size();
  const std::size_t d = data[0].size();
  require(num_components >= 1 && static_cast<std::size_t>(num_components) <= d,
          "fast_ica: component count out of range");

  // Whiten via PCA: z = D^{-1/2} E^T (x - mean), using the top-d
  // correlation-matrix eigenvectors from pca(). Components with
  // near-zero eigenvalues are dropped from the whitened space.
  const PcaResult basis = pca(data, static_cast<int>(d));
  std::vector<double> mean_v(d, 0);
  for (const auto& row : data)
    for (std::size_t j = 0; j < d; ++j) mean_v[j] += row[j];
  for (auto& v : mean_v) v /= static_cast<double>(n);
  std::vector<std::size_t> keep;
  for (std::size_t k = 0; k < basis.eigenvalues.size(); ++k)
    if (basis.eigenvalues[k] > 1e-8) keep.push_back(k);
  require(keep.size() >= static_cast<std::size_t>(num_components),
          "fast_ica: not enough non-degenerate directions");

  const std::size_t m = keep.size();
  Matrix z(n, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < m; ++k) {
      double proj = 0;
      for (std::size_t j = 0; j < d; ++j)
        proj += basis.components[keep[k]][j] * (data[i][j] - mean_v[j]);
      z[i][k] = proj / std::sqrt(basis.eigenvalues[keep[k]]);
    }

  // Deflationary FastICA with g = tanh.
  IcaResult res;
  Matrix w_rows;  // in whitened space
  // (Deterministic seeding: no RNG needed.)
  for (int comp = 0; comp < num_components; ++comp) {
    std::vector<double> w(m, 0.0);
    w[static_cast<std::size_t>(comp) % m] = 1.0;  // deterministic start
    bool converged = false;
    for (int iter = 0; iter < max_iters; ++iter) {
      // w+ = E[z g(w^T z)] - E[g'(w^T z)] w.
      std::vector<double> next(m, 0.0);
      double gprime_sum = 0;
      for (std::size_t i = 0; i < n; ++i) {
        double proj = 0;
        for (std::size_t k = 0; k < m; ++k) proj += w[k] * z[i][k];
        const double g = std::tanh(proj);
        gprime_sum += 1.0 - g * g;
        for (std::size_t k = 0; k < m; ++k) next[k] += z[i][k] * g;
      }
      for (std::size_t k = 0; k < m; ++k)
        next[k] = next[k] / static_cast<double>(n) -
                  gprime_sum / static_cast<double>(n) * w[k];
      // Gram-Schmidt against previous components.
      for (const auto& prev : w_rows) {
        double dot = 0;
        for (std::size_t k = 0; k < m; ++k) dot += next[k] * prev[k];
        for (std::size_t k = 0; k < m; ++k) next[k] -= dot * prev[k];
      }
      double norm = 0;
      for (double v : next) norm += v * v;
      norm = std::sqrt(norm);
      if (norm < 1e-12) break;
      for (auto& v : next) v /= norm;
      double dot = 0;
      for (std::size_t k = 0; k < m; ++k) dot += next[k] * w[k];
      w = std::move(next);
      if (std::abs(std::abs(dot) - 1.0) < 1e-9) {
        converged = true;
        break;
      }
    }
    if (!converged) res.converged = false;
    w_rows.push_back(w);

    // Map back to the original feature space:
    // direction_j = sum_k w_k / sqrt(lambda_k) * E_{kj}.
    std::vector<double> dir(d, 0.0);
    for (std::size_t k = 0; k < m; ++k)
      for (std::size_t j = 0; j < d; ++j)
        dir[j] += w[k] / std::sqrt(basis.eigenvalues[keep[k]]) * basis.components[keep[k]][j];
    double norm = 0;
    for (double v : dir) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12)
      for (auto& v : dir) v /= norm;
    res.components.push_back(std::move(dir));
  }
  return res;
}

}  // namespace mpa
