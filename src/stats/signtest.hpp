// The sign test used to assess matched-pair outcomes (§5.2.5).
//
// "We use the outcome calculations from all pairs to produce a binomial
// distribution of outcomes: more tickets (+1) or fewer tickets (-1)...
// to establish a causal relationship, we must reject the null
// hypothesis H0 that the median outcome is zero."
//
// Ties (zero differences) are dropped, per the standard test. The
// p-value is two-sided: 2 * P(Bin(n, 1/2) >= max(n+, n-)), clamped at 1;
// computed exactly in log space, with a continuity-corrected normal
// approximation beyond n = 5000.
#pragma once

#include <span>

namespace mpa {

struct SignTestResult {
  int n_pos = 0;   ///< Pairs where treated outcome > untreated ("more tickets").
  int n_neg = 0;   ///< Pairs where treated outcome < untreated ("fewer tickets").
  int n_zero = 0;  ///< Ties ("no effect").
  double p_value = 1.0;
};

/// Two-sided sign-test p-value from the positive/negative counts.
double sign_test_p(int n_pos, int n_neg);

/// Run the sign test over per-pair outcome differences (treated minus
/// untreated).
SignTestResult sign_test(std::span<const double> diffs);

}  // namespace mpa
