#include "stats/contingency.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {

bool small_cardinality(std::span<const int> v, int limit, int* cardinality) {
  int hi = -1;
  for (int x : v) {
    if (x < 0) return false;
    hi = std::max(hi, x);
  }
  if (hi >= limit) return false;
  *cardinality = hi + 1;
  return true;
}

double PlogpCache::plogp(std::uint32_t c) {
  if (static_cast<std::size_t>(c) >= val_.size()) {
    val_.resize(c + 1, 0.0);
    stamp_.resize(c + 1, 0);
  }
  if (stamp_[c] != epoch_) {
    const double p = c / static_cast<double>(n_);
    val_[c] = p * std::log2(p);
    stamp_[c] = epoch_;
  }
  return val_[c];
}

void ContingencyTable::reset(int cx, int cy) {
  require(cx >= 1 && cy >= 1, "ContingencyTable::reset: cardinalities must be >= 1");
  require(static_cast<std::size_t>(cx) * static_cast<std::size_t>(cy) <= kMaxDenseCells,
          "ContingencyTable::reset: table too large");
  cx_ = cx;
  cy_ = cy;
  n_ = 0;
  cells_.assign(static_cast<std::size_t>(cx) * static_cast<std::size_t>(cy), 0);
  mx_.assign(static_cast<std::size_t>(cx), 0);
  my_.assign(static_cast<std::size_t>(cy), 0);
}

void ContingencyTable::count(std::span<const int> x, std::span<const int> y) {
  require(x.size() == y.size(), "ContingencyTable::count: length mismatch");
  const std::size_t cy = static_cast<std::size_t>(cy_);
  std::uint32_t* cells = cells_.data();
  std::uint32_t* mx = mx_.data();
  std::uint32_t* my = my_.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto xi = static_cast<std::size_t>(x[i]);
    const auto yi = static_cast<std::size_t>(y[i]);
    ++cells[xi * cy + yi];
    ++mx[xi];
    ++my[yi];
  }
  n_ += x.size();
}

void ContingencyTable::count_values(std::span<const int> x) {
  std::uint32_t* mx = mx_.data();
  for (int xi : x) ++mx[static_cast<std::size_t>(xi)];
  n_ += x.size();
}

double ContingencyTable::marginal_entropy(const std::vector<std::uint32_t>& marginal) {
  if (n_ == 0) return 0;
  plogp_.begin(n_);
  double h = 0;
  for (const std::uint32_t c : marginal)
    if (c != 0) h -= plogp_.plogp(c);
  return h;
}

double ContingencyTable::entropy_x() { return marginal_entropy(mx_); }

double ContingencyTable::entropy_y() { return marginal_entropy(my_); }

double ContingencyTable::joint_entropy() { return marginal_entropy(cells_); }

double ContingencyTable::mutual_information_mm() {
  const double mi = mutual_information();
  const double bias = (static_cast<double>(occupied_x()) - 1.0) *
                      (static_cast<double>(occupied_y()) - 1.0) /
                      (2.0 * static_cast<double>(n_) * std::log(2.0));
  return std::max(0.0, mi - bias);
}

int ContingencyTable::occupied_x() const {
  return static_cast<int>(mx_.size() - static_cast<std::size_t>(std::count(
                                           mx_.begin(), mx_.end(), std::uint32_t{0})));
}

int ContingencyTable::occupied_y() const {
  return static_cast<int>(my_.size() - static_cast<std::size_t>(std::count(
                                           my_.begin(), my_.end(), std::uint32_t{0})));
}

void CmiAccumulator::reset(int c1, int c2, int cy) {
  require(c1 >= 1 && c2 >= 1 && cy >= 1, "CmiAccumulator::reset: cardinalities must be >= 1");
  const std::size_t pair_cells = static_cast<std::size_t>(c2) * static_cast<std::size_t>(cy);
  require(pair_cells <= kMaxDenseCells &&
              pair_cells * static_cast<std::size_t>(c1) <= kMaxDenseCells,
          "CmiAccumulator::reset: table too large");
  c1_ = c1;
  c2_ = c2;
  cy_ = cy;
  num_ids_ = 0;
  n_ = 0;
  cells_y_.assign(static_cast<std::size_t>(cy) * static_cast<std::size_t>(c1), 0);
  marg_y_.assign(static_cast<std::size_t>(cy), 0);
  id_of_.assign(pair_cells, -1);
  cells_id_.assign(pair_cells * static_cast<std::size_t>(c1), 0);
  marg_id_.assign(pair_cells, 0);
}

void CmiAccumulator::add(int x1, int x2, int y) {
  const auto c1 = static_cast<std::size_t>(c1_);
  const std::size_t yi = static_cast<std::size_t>(y);
  const std::size_t x1i = static_cast<std::size_t>(x1);
  ++cells_y_[yi * c1 + x1i];
  ++marg_y_[yi];
  // (x2, y) pairs get dense ids in first-appearance order, matching the
  // reference encoding (and so its entropy summation order).
  const std::size_t key = static_cast<std::size_t>(x2) * static_cast<std::size_t>(cy_) + yi;
  std::int32_t id = id_of_[key];
  if (id < 0) {
    id = num_ids_++;
    id_of_[key] = id;
  }
  ++cells_id_[static_cast<std::size_t>(id) * c1 + x1i];
  ++marg_id_[static_cast<std::size_t>(id)];
  ++n_;
}

void CmiAccumulator::count(std::span<const int> x1, std::span<const int> x2,
                           std::span<const int> y) {
  require(x1.size() == x2.size() && x1.size() == y.size(),
          "CmiAccumulator::count: length mismatch");
  for (std::size_t i = 0; i < x1.size(); ++i) add(x1[i], x2[i], y[i]);
}

double CmiAccumulator::value() {
  if (n_ == 0) return 0;
  plogp_.begin(n_);
  // H(X1|Y) = H(Y,X1) - H(Y).
  double h_joint_y = 0;
  for (const std::uint32_t c : cells_y_)
    if (c != 0) h_joint_y -= plogp_.plogp(c);
  double h_y = 0;
  for (const std::uint32_t c : marg_y_)
    if (c != 0) h_y -= plogp_.plogp(c);
  // H(X1|X2,Y) = H((X2,Y),X1) - H(X2,Y), id-major like the reference.
  const auto used = static_cast<std::size_t>(num_ids_) * static_cast<std::size_t>(c1_);
  double h_joint_id = 0;
  for (std::size_t k = 0; k < used; ++k) {
    const std::uint32_t c = cells_id_[k];
    if (c != 0) h_joint_id -= plogp_.plogp(c);
  }
  double h_id = 0;
  for (std::size_t k = 0; k < static_cast<std::size_t>(num_ids_); ++k) {
    const std::uint32_t c = marg_id_[k];
    if (c != 0) h_id -= plogp_.plogp(c);
  }
  return (h_joint_y - h_y) - (h_joint_id - h_id);
}

}  // namespace mpa
