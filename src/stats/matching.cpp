#include "stats/matching.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace mpa {

BalanceStat balance_stat(std::span<const double> treated_values,
                         std::span<const double> untreated_values) {
  BalanceStat b;
  const double mt = mean(treated_values);
  const double mu = mean(untreated_values);
  const double vt = variance(treated_values);
  const double vu = variance(untreated_values);
  const double sdt = std::sqrt(vt);
  if (sdt < 1e-12) {
    b.std_diff_of_means = std::abs(mt - mu) < 1e-12 ? 0 : std::numeric_limits<double>::infinity();
  } else {
    b.std_diff_of_means = (mt - mu) / sdt;
  }
  if (vu < 1e-18) {
    b.variance_ratio = vt < 1e-18 ? 1 : std::numeric_limits<double>::infinity();
  } else {
    b.variance_ratio = vt / vu;
  }
  return b;
}

bool MatchResult::balanced(double mean_thresh, double var_lo, double var_hi) const {
  if (pairs.empty()) return false;
  if (!propensity_balance.ok(mean_thresh, var_lo, var_hi)) return false;
  for (const auto& b : confounder_balance)
    if (!b.ok(mean_thresh, var_lo, var_hi)) return false;
  return true;
}

double MatchResult::worst_abs_std_diff() const {
  double worst = 0;
  for (const auto& b : confounder_balance)
    worst = std::max(worst, std::abs(b.std_diff_of_means));
  return worst;
}

double MatchResult::variance_ratio_pass_fraction(double var_lo, double var_hi) const {
  if (confounder_balance.empty()) return 1.0;
  std::size_t ok = 0;
  for (const auto& b : confounder_balance)
    if (b.variance_ratio > var_lo && b.variance_ratio < var_hi) ++ok;
  return static_cast<double>(ok) / static_cast<double>(confounder_balance.size());
}

MatchResult propensity_match(const Matrix& treated, const Matrix& untreated,
                             const MatchOptions& opts) {
  require(!treated.empty() && !untreated.empty(),
          "propensity_match: need cases on both sides");
  const std::size_t d = treated[0].size();
  require(d >= 1, "propensity_match: need at least one confounder");

  MatchResult res;
  res.treated_total = treated.size();
  res.untreated_total = untreated.size();

  // 1. Fit the propensity model: treatment ~ confounders.
  Matrix all;
  all.reserve(treated.size() + untreated.size());
  std::vector<int> labels;
  labels.reserve(all.capacity());
  for (const auto& row : treated) {
    require(row.size() == d, "propensity_match: ragged treated matrix");
    all.push_back(row);
    labels.push_back(1);
  }
  for (const auto& row : untreated) {
    require(row.size() == d, "propensity_match: ragged untreated matrix");
    all.push_back(row);
    labels.push_back(0);
  }
  const auto model = LogisticRegression::fit(all, labels, opts.logit);
  res.treated_scores = model.predict_all(treated);
  res.untreated_scores = model.predict_all(untreated);

  // 2. Common-support trimming.
  double t_lo = 0, t_hi = 1, u_lo = 0, u_hi = 1;
  if (opts.trim_common_support) {
    const auto [umin, umax] =
        std::minmax_element(res.untreated_scores.begin(), res.untreated_scores.end());
    const auto [tmin, tmax] =
        std::minmax_element(res.treated_scores.begin(), res.treated_scores.end());
    t_lo = *umin;  // treated must lie within untreated range
    t_hi = *umax;
    u_lo = *tmin;  // untreated must lie within treated range
    u_hi = *tmax;
  }

  // 3. k=1 nearest-neighbour matching on score, with replacement, via a
  // sorted index over eligible untreated scores.
  std::vector<std::pair<double, std::size_t>> pool;  // (score, untreated idx)
  for (std::size_t i = 0; i < untreated.size(); ++i) {
    const double s = res.untreated_scores[i];
    if (s >= u_lo && s <= u_hi) pool.emplace_back(s, i);
  }
  std::sort(pool.begin(), pool.end());
  if (pool.empty()) return res;  // nothing matchable

  std::set<std::size_t> used_untreated;
  std::vector<int> uses(pool.size(), 0);
  const int max_uses = opts.with_replacement
                           ? (opts.max_reuse > 0 ? opts.max_reuse
                                                 : std::numeric_limits<int>::max())
                           : 1;

  // Caliper in raw score units, from the pooled score sd.
  double caliper = std::numeric_limits<double>::infinity();
  if (opts.caliper_sd > 0) {
    std::vector<double> all_scores = res.treated_scores;
    all_scores.insert(all_scores.end(), res.untreated_scores.begin(),
                      res.untreated_scores.end());
    caliper = opts.caliper_sd * stddev(all_scores);
  }

  // Pooled per-confounder standard deviations for the standardized
  // covariate distance.
  std::vector<double> conf_sd(d, 1.0);
  if (opts.covariates_within_caliper) {
    std::vector<double> col;
    col.reserve(treated.size() + untreated.size());
    for (std::size_t j = 0; j < d; ++j) {
      col.clear();
      for (const auto& row : treated) col.push_back(row[j]);
      for (const auto& row : untreated) col.push_back(row[j]);
      const double sd = stddev(col);
      conf_sd[j] = sd > 1e-12 ? sd : 1.0;
    }
  }
  auto covariate_dist = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double dist = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = (a[j] - b[j]) / conf_sd[j];
      dist += delta * delta;
    }
    return dist;
  };

  for (std::size_t ti = 0; ti < treated.size(); ++ti) {
    const double s = res.treated_scores[ti];
    if (s < t_lo || s > t_hi) continue;
    const auto it = std::lower_bound(pool.begin(), pool.end(), std::make_pair(s, std::size_t{0}));
    const std::ptrdiff_t at = it - pool.begin();
    std::ptrdiff_t best = -1;
    double best_score_diff = std::numeric_limits<double>::infinity();

    if (opts.covariates_within_caliper) {
      // Collect eligible candidates within the caliper (bounded scan),
      // then pick the nearest in standardized covariate space.
      double best_cov = std::numeric_limits<double>::infinity();
      int scanned = 0;
      auto consider_cov = [&](std::ptrdiff_t k) {
        if (k < 0 || k >= static_cast<std::ptrdiff_t>(pool.size())) return false;
        const double diff = std::abs(pool[static_cast<std::size_t>(k)].first - s);
        if (diff > caliper) return false;  // outside caliper: stop this side
        if (uses[static_cast<std::size_t>(k)] < max_uses) {
          const double cd =
              covariate_dist(treated[ti], untreated[pool[static_cast<std::size_t>(k)].second]);
          if (cd < best_cov) {
            best_cov = cd;
            best = k;
            best_score_diff = diff;
          }
        }
        ++scanned;
        return scanned < opts.max_candidates;
      };
      for (std::ptrdiff_t k = at; consider_cov(k); ++k) {
      }
      for (std::ptrdiff_t k = at - 1; consider_cov(k); --k) {
      }
    } else {
      auto consider = [&](std::ptrdiff_t k) {
        if (k < 0 || k >= static_cast<std::ptrdiff_t>(pool.size())) return;
        if (uses[static_cast<std::size_t>(k)] >= max_uses) return;
        const double diff = std::abs(pool[static_cast<std::size_t>(k)].first - s);
        if (diff < best_score_diff) {
          best_score_diff = diff;
          best = k;
        }
      };
      // Scan outward from the insertion point until a candidate is
      // found; the scan is monotone in score distance, so the first hit
      // in each direction bounds the search.
      for (std::ptrdiff_t off = 0; off < static_cast<std::ptrdiff_t>(pool.size()); ++off) {
        consider(at + off);
        consider(at - 1 - off);
        if (best >= 0) break;
      }
    }
    if (best < 0 || best_score_diff > caliper) continue;
    const std::size_t ui = pool[static_cast<std::size_t>(best)].second;
    uses[static_cast<std::size_t>(best)]++;
    used_untreated.insert(ui);
    res.pairs.push_back(MatchedPair{ti, ui, best_score_diff});
  }
  res.untreated_matched_distinct = used_untreated.size();

  // 4. Balance diagnostics over the matched samples (untreated values
  // appear once per pair, reflecting matching with replacement).
  std::vector<double> st, su;
  st.reserve(res.pairs.size());
  su.reserve(res.pairs.size());
  for (const auto& p : res.pairs) {
    st.push_back(res.treated_scores[p.treated_index]);
    su.push_back(res.untreated_scores[p.untreated_index]);
  }
  res.propensity_balance = balance_stat(st, su);
  res.confounder_balance.resize(d);
  std::vector<double> ct(res.pairs.size()), cu(res.pairs.size());
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = 0; k < res.pairs.size(); ++k) {
      ct[k] = treated[res.pairs[k].treated_index][j];
      cu[k] = untreated[res.pairs[k].untreated_index][j];
    }
    res.confounder_balance[j] = balance_stat(ct, cu);
  }
  return res;
}

bool cholesky(const Matrix& a, Matrix& l) {
  const std::size_t n = a.size();
  l.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    require(a[i].size() == n, "cholesky: matrix not square");
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
      if (i == j) {
        if (sum <= 1e-12) return false;
        l[i][i] = std::sqrt(sum);
      } else {
        l[i][j] = sum / l[j][j];
      }
    }
  }
  return true;
}

MatchResult mahalanobis_match(const Matrix& treated, const Matrix& untreated, int max_reuse) {
  require(!treated.empty() && !untreated.empty(),
          "mahalanobis_match: need cases on both sides");
  const std::size_t d = treated[0].size();
  require(d >= 1, "mahalanobis_match: need at least one confounder");

  MatchResult res;
  res.treated_total = treated.size();
  res.untreated_total = untreated.size();

  // Pooled covariance over all cases, ridge-regularized so collinear
  // confounders stay factorable.
  const std::size_t n = treated.size() + untreated.size();
  std::vector<double> mu(d, 0.0);
  auto accumulate_mean = [&](const Matrix& m) {
    for (const auto& row : m) {
      require(row.size() == d, "mahalanobis_match: ragged matrix");
      for (std::size_t j = 0; j < d; ++j) mu[j] += row[j];
    }
  };
  accumulate_mean(treated);
  accumulate_mean(untreated);
  for (auto& v : mu) v /= static_cast<double>(n);

  Matrix cov(d, std::vector<double>(d, 0.0));
  auto accumulate_cov = [&](const Matrix& m) {
    for (const auto& row : m)
      for (std::size_t j = 0; j < d; ++j)
        for (std::size_t k = j; k < d; ++k)
          cov[j][k] += (row[j] - mu[j]) * (row[k] - mu[k]);
  };
  accumulate_cov(treated);
  accumulate_cov(untreated);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = j; k < d; ++k) {
      cov[j][k] /= static_cast<double>(n);
      cov[k][j] = cov[j][k];
    }
    cov[j][j] += 1e-6 * (cov[j][j] + 1e-6);  // ridge
  }

  Matrix l;
  require(cholesky(cov, l), "mahalanobis_match: covariance not positive definite");

  // Whiten: z = L^-1 x via forward substitution; Mahalanobis distance
  // becomes Euclidean distance in z-space.
  auto whiten = [&](const std::vector<double>& x) {
    std::vector<double> z(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      double sum = x[i] - mu[i];
      for (std::size_t k = 0; k < i; ++k) sum -= l[i][k] * z[k];
      z[i] = sum / l[i][i];
    }
    return z;
  };
  Matrix zt, zu;
  zt.reserve(treated.size());
  zu.reserve(untreated.size());
  for (const auto& row : treated) zt.push_back(whiten(row));
  for (const auto& row : untreated) zu.push_back(whiten(row));

  const int max_uses = max_reuse > 0 ? max_reuse : std::numeric_limits<int>::max();
  std::vector<int> uses(untreated.size(), 0);
  std::set<std::size_t> used;
  for (std::size_t ti = 0; ti < zt.size(); ++ti) {
    std::ptrdiff_t best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t ui = 0; ui < zu.size(); ++ui) {
      if (uses[ui] >= max_uses) continue;
      double dist = 0;
      for (std::size_t j = 0; j < d; ++j) {
        const double delta = zt[ti][j] - zu[ui][j];
        dist += delta * delta;
        if (dist >= best_dist) break;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<std::ptrdiff_t>(ui);
      }
    }
    if (best < 0) continue;
    uses[static_cast<std::size_t>(best)]++;
    used.insert(static_cast<std::size_t>(best));
    res.pairs.push_back(
        MatchedPair{ti, static_cast<std::size_t>(best), std::sqrt(best_dist)});
  }
  res.untreated_matched_distinct = used.size();

  // Balance diagnostics on the raw confounders.
  res.confounder_balance.resize(d);
  std::vector<double> ct(res.pairs.size()), cu(res.pairs.size());
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = 0; k < res.pairs.size(); ++k) {
      ct[k] = treated[res.pairs[k].treated_index][j];
      cu[k] = untreated[res.pairs[k].untreated_index][j];
    }
    res.confounder_balance[j] = balance_stat(ct, cu);
  }
  return res;
}

std::size_t exact_match_count(const Matrix& treated, const Matrix& untreated) {
  std::set<std::vector<double>> pool(untreated.begin(), untreated.end());
  std::size_t n = 0;
  for (const auto& row : treated)
    if (pool.count(row)) ++n;
  return n;
}

}  // namespace mpa
