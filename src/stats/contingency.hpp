// Dense, allocation-free contingency kernels for the info-theory hot
// paths (§5.1). The public entropy / MI / CMI entry points in
// stats/info.hpp delegate here whenever their inputs are
// small-cardinality non-negative ints (binned data always is); the
// original std::map-based implementations are retained in
// mpa::reference as a test oracle.
//
// Bit-compatibility contract: every entropy term is accumulated cell by
// cell in ascending flat-index order, skipping empty cells, with the
// exact per-cell arithmetic of the map path (p = c / n; h -= p *
// log2(p)). A std::map over bin values (or lexicographic bin pairs)
// iterates in that same order, so the dense kernels return
// bit-identical doubles to the reference — the speedup comes from flat
// counting and the shared plogp cache, not from reordered floating
// point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpa {

/// Per-variable cardinality cap for the dense kernels; larger-alphabet
/// inputs fall back to the map-based reference path.
inline constexpr int kMaxDenseBins = 4096;

/// Cap on total cells of any dense count table (joint tables included).
inline constexpr std::size_t kMaxDenseCells = std::size_t{1} << 20;

/// Scan for the dense-kernel precondition: all values non-negative and
/// below `limit`. On success stores max+1 in `cardinality`.
bool small_cardinality(std::span<const int> v, int limit, int* cardinality);

/// Shared memo table for the per-cell entropy term p*log2(p) with
/// p = c/n: within one kernel invocation every cell count c maps to the
/// same double, so repeated counts cost one std::log2 call instead of
/// one per cell. Entries are epoch-stamped — begin(n) with a new n
/// invalidates them in O(1), while a repeated n keeps the cache warm
/// across calls (the per-month loops hit this constantly). Memoization
/// is bit-transparent: the cached value is exactly the double the
/// direct computation would produce.
class PlogpCache {
 public:
  /// Start a computation over n samples (n > 0).
  void begin(std::size_t n) {
    if (n_ == n && epoch_ != 0) return;
    n_ = n;
    ++epoch_;
  }

  /// (c/n) * log2(c/n) for a cell count c >= 1.
  double plogp(std::uint32_t c);

 private:
  std::vector<double> val_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::size_t n_ = 0;
};

/// Flat-array joint contingency table over two binned variables: one
/// pass fills cx*cy cells plus both marginals, then the entropy terms
/// are read straight off the counts. reset() + count() reuse the same
/// backing storage, so steady-state operation performs no allocations.
class ContingencyTable {
 public:
  /// Size (and zero) the table for cardinalities cx >= 1, cy >= 1.
  void reset(int cx, int cy);

  /// Add one (x, y) observation; values must be within the reset
  /// cardinalities.
  void add(int x, int y) {
    ++cells_[static_cast<std::size_t>(x) * static_cast<std::size_t>(cy_) +
             static_cast<std::size_t>(y)];
    ++mx_[static_cast<std::size_t>(x)];
    ++my_[static_cast<std::size_t>(y)];
    ++n_;
  }

  /// Bulk one-pass joint count (equal-length spans).
  void count(std::span<const int> x, std::span<const int> y);

  /// One-pass 1-D count: only the x marginal is filled, for plain
  /// entropy. Requires reset(cx, 1).
  void count_values(std::span<const int> x);

  std::size_t samples() const { return n_; }

  /// H(X) over the x marginal (ascending bin order).
  double entropy_x();
  /// H(Y) over the y marginal.
  double entropy_y();
  /// H(X,Y) over the joint, ascending (x-major) cell order — the
  /// iteration order of a std::map keyed on (x, y) pairs.
  double joint_entropy();
  /// H(Y|X) = H(X,Y) - H(X).
  double conditional_entropy_y_given_x() { return joint_entropy() - entropy_x(); }
  /// I(X;Y) = H(Y) - H(Y|X), composed exactly like the reference.
  double mutual_information() { return entropy_y() - conditional_entropy_y_given_x(); }
  /// Miller-Madow corrected MI (reference arithmetic, occupied-cell
  /// counts standing in for the reference's std::set sizes).
  double mutual_information_mm();

  /// Distinct values present (non-empty marginal cells).
  int occupied_x() const;
  int occupied_y() const;

 private:
  double marginal_entropy(const std::vector<std::uint32_t>& marginal);

  int cx_ = 0;
  int cy_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> cells_;
  std::vector<std::uint32_t> mx_;
  std::vector<std::uint32_t> my_;
  PlogpCache plogp_;
};

/// One-pass conditional-mutual-information accumulator:
/// I(X1;X2|Y) = H(X1|Y) - H(X1|X2,Y). A single scan fills the (y, x1)
/// joint and the ((x2,y)-pair, x1) joint, with (x2, y) pairs mapped to
/// dense ids in first-appearance order — the same encoding the
/// reference implementation uses, which keeps every entropy term's
/// summation order (and therefore every bit of the result) identical.
class CmiAccumulator {
 public:
  /// Size (and zero) for cardinalities c1, c2, cy >= 1.
  void reset(int c1, int c2, int cy);

  /// Add one (x1, x2, y) observation.
  void add(int x1, int x2, int y);

  /// Bulk one-pass count (equal-length spans).
  void count(std::span<const int> x1, std::span<const int> x2, std::span<const int> y);

  std::size_t samples() const { return n_; }

  /// I(X1;X2|Y) over everything added since reset().
  double value();

 private:
  int c1_ = 0;
  int c2_ = 0;
  int cy_ = 0;
  int num_ids_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint32_t> cells_y_;   ///< cy x c1, y-major.
  std::vector<std::uint32_t> marg_y_;    ///< cy.
  std::vector<std::int32_t> id_of_;      ///< c2*cy -> dense pair id or -1.
  std::vector<std::uint32_t> cells_id_;  ///< (c2*cy) x c1, id-major.
  std::vector<std::uint32_t> marg_id_;   ///< c2*cy.
  PlogpCache plogp_;
};

}  // namespace mpa
