#include "stats/info.hpp"

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "stats/contingency.hpp"
#include "util/error.hpp"

namespace mpa {
namespace {

// Per-thread scratch tables: the dense kernels are allocation-free in
// steady state, and pool fan-outs (e.g. the CMI pairs) each count into
// their own thread's tables.
ContingencyTable& scratch_table() {
  thread_local ContingencyTable table;
  return table;
}

CmiAccumulator& scratch_cmi() {
  thread_local CmiAccumulator acc;
  return acc;
}

bool dense_pair(std::span<const int> x, std::span<const int> y, int* cx, int* cy) {
  return small_cardinality(x, kMaxDenseBins, cx) && small_cardinality(y, kMaxDenseBins, cy) &&
         static_cast<std::size_t>(*cx) * static_cast<std::size_t>(*cy) <= kMaxDenseCells;
}

}  // namespace

namespace reference {
namespace {

double plogp_sum(const std::map<int, int>& counts, double n) {
  double h = 0;
  for (const auto& [k, c] : counts) {
    const double p = c / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double entropy(std::span<const int> x) {
  if (x.empty()) return 0;
  std::map<int, int> counts;
  for (int v : x) counts[v]++;
  return plogp_sum(counts, static_cast<double>(x.size()));
}

double conditional_entropy(std::span<const int> y, std::span<const int> x) {
  require(x.size() == y.size(), "conditional_entropy: length mismatch");
  if (x.empty()) return 0;
  // H(Y|X) = H(X,Y) - H(X).
  std::map<std::pair<int, int>, int> joint;
  std::map<int, int> marginal;
  for (std::size_t i = 0; i < x.size(); ++i) {
    joint[{x[i], y[i]}]++;
    marginal[x[i]]++;
  }
  const double n = static_cast<double>(x.size());
  double h_joint = 0;
  for (const auto& [k, c] : joint) {
    const double p = c / n;
    h_joint -= p * std::log2(p);
  }
  return h_joint - plogp_sum(marginal, n);
}

double mutual_information(std::span<const int> x, std::span<const int> y) {
  require(x.size() == y.size(), "mutual_information: length mismatch");
  require(!x.empty(), "mutual_information: empty input");
  return entropy(y) - conditional_entropy(y, x);
}

double mutual_information_mm(std::span<const int> x, std::span<const int> y) {
  const double mi = mutual_information(x, y);
  std::set<int> ux(x.begin(), x.end()), uy(y.begin(), y.end());
  const double bias = (static_cast<double>(ux.size()) - 1.0) *
                      (static_cast<double>(uy.size()) - 1.0) /
                      (2.0 * static_cast<double>(x.size()) * std::log(2.0));
  return std::max(0.0, mi - bias);
}

double conditional_mutual_information(std::span<const int> x1, std::span<const int> x2,
                                      std::span<const int> y) {
  require(x1.size() == x2.size() && x1.size() == y.size(),
          "conditional_mutual_information: length mismatch");
  require(!x1.empty(), "conditional_mutual_information: empty input");
  // I(X1;X2|Y) = H(X1|Y) - H(X1|X2,Y). Encode (X2,Y) pairs as a single
  // discrete variable for the second term.
  std::map<std::pair<int, int>, int> pair_ids;
  std::vector<int> x2y(x1.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    const auto [it, inserted] =
        pair_ids.emplace(std::make_pair(x2[i], y[i]), static_cast<int>(pair_ids.size()));
    x2y[i] = it->second;
  }
  return conditional_entropy(x1, y) - conditional_entropy(x1, x2y);
}

}  // namespace reference

double entropy(std::span<const int> x) {
  if (x.empty()) return 0;
  int cx = 0;
  if (!small_cardinality(x, kMaxDenseBins, &cx)) return reference::entropy(x);
  ContingencyTable& t = scratch_table();
  t.reset(cx, 1);
  t.count_values(x);
  return t.entropy_x();
}

double conditional_entropy(std::span<const int> y, std::span<const int> x) {
  require(x.size() == y.size(), "conditional_entropy: length mismatch");
  if (x.empty()) return 0;
  int cx = 0, cy = 0;
  if (!dense_pair(x, y, &cx, &cy)) return reference::conditional_entropy(y, x);
  ContingencyTable& t = scratch_table();
  t.reset(cx, cy);
  t.count(x, y);
  return t.conditional_entropy_y_given_x();
}

double mutual_information(std::span<const int> x, std::span<const int> y) {
  require(x.size() == y.size(), "mutual_information: length mismatch");
  require(!x.empty(), "mutual_information: empty input");
  int cx = 0, cy = 0;
  if (!dense_pair(x, y, &cx, &cy)) return reference::mutual_information(x, y);
  ContingencyTable& t = scratch_table();
  t.reset(cx, cy);
  t.count(x, y);
  return t.mutual_information();
}

double mutual_information_mm(std::span<const int> x, std::span<const int> y) {
  require(x.size() == y.size(), "mutual_information: length mismatch");
  require(!x.empty(), "mutual_information: empty input");
  int cx = 0, cy = 0;
  if (!dense_pair(x, y, &cx, &cy)) return reference::mutual_information_mm(x, y);
  ContingencyTable& t = scratch_table();
  t.reset(cx, cy);
  t.count(x, y);
  return t.mutual_information_mm();
}

double conditional_mutual_information(std::span<const int> x1, std::span<const int> x2,
                                      std::span<const int> y) {
  require(x1.size() == x2.size() && x1.size() == y.size(),
          "conditional_mutual_information: length mismatch");
  require(!x1.empty(), "conditional_mutual_information: empty input");
  int c1 = 0, c2 = 0, cy = 0;
  const bool dense =
      small_cardinality(x1, kMaxDenseBins, &c1) && small_cardinality(x2, kMaxDenseBins, &c2) &&
      small_cardinality(y, kMaxDenseBins, &cy) &&
      static_cast<std::size_t>(c2) * static_cast<std::size_t>(cy) <= kMaxDenseCells &&
      static_cast<std::size_t>(c2) * static_cast<std::size_t>(cy) *
              static_cast<std::size_t>(c1) <=
          kMaxDenseCells;
  if (!dense) return reference::conditional_mutual_information(x1, x2, y);
  CmiAccumulator& acc = scratch_cmi();
  acc.reset(c1, c2, cy);
  acc.count(x1, x2, y);
  return acc.value();
}

double entropy_of_counts(std::span<const double> counts) {
  double total = 0;
  for (double c : counts) {
    require(c >= 0, "entropy_of_counts: negative count");
    total += c;
  }
  if (total <= 0) return 0;
  double h = 0;
  for (double c : counts) {
    if (c <= 0) continue;
    const double p = c / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace mpa
