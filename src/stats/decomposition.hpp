// The dependence-decomposition baselines the paper rejects (§5.1):
// "Common approaches for decomposing the impact of different factors
// include analysis of variance (ANOVA) and principal/independent
// component analyses (PCA/ICA). However, these techniques make key
// assumptions about underlying dependencies that make them
// inapplicable to MPA."
//
// They are implemented here so the argument can be *demonstrated*
// (bench/ablation_dependence): linear measures miss the non-monotonic
// relationships of Figure 4(c), and PCA components are uninterpretable
// mixes of practices.
#pragma once

#include <span>
#include <vector>

#include "stats/logistic.hpp"  // for Matrix

namespace mpa {

/// Squared Pearson correlation — the variance a *linear* model explains.
double linear_r2(std::span<const double> x, std::span<const double> y);

/// One-way ANOVA of `y` across the groups labelled by `group`
/// (0-based). Returns the F statistic and its p-value.
struct AnovaResult {
  double f_statistic = 0;
  double p_value = 1;
  int df_between = 0;
  int df_within = 0;
};

AnovaResult one_way_anova(std::span<const int> group, std::span<const double> y);

/// Upper-tail p-value of the F distribution, P(F(d1, d2) >= f).
/// Exposed for tests (computed via the regularized incomplete beta).
double f_distribution_sf(double f, int d1, int d2);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Numerical Recipes style). Exposed for tests.
double regularized_incomplete_beta(double a, double b, double x);

/// Principal component analysis by power iteration with deflation over
/// the correlation matrix of `data` (rows = samples).
struct PcaResult {
  /// components[k][j]: loading of feature j in component k (unit norm).
  std::vector<std::vector<double>> components;
  /// Eigenvalue of each component (variance explained, correlation scale).
  std::vector<double> eigenvalues;
  /// Fraction of total variance explained by each component.
  std::vector<double> explained;
};

PcaResult pca(const Matrix& data, int num_components);

/// FastICA (deflationary, tanh nonlinearity) over PCA-whitened data —
/// the "ICA" of §5.1. Returns `num_components` unmixing directions in
/// the original feature space (rows, unit norm). Like PCA, each
/// recovered component is still a linear blend of practices, which is
/// the paper's interpretability objection.
struct IcaResult {
  std::vector<std::vector<double>> components;  ///< Unmixing directions.
  bool converged = true;
};

IcaResult fast_ica(const Matrix& data, int num_components, int max_iters = 400);

}  // namespace mpa
