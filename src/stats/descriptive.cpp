#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {

double mean(std::span<const double> v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0;
  const double m = mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double percentile(std::span<const double> v, double p) {
  require(!v.empty(), "percentile: empty input");
  require(p >= 0 && p <= 100, "percentile: p out of range");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> v) { return percentile(v, 50); }

double pearson(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "pearson: length mismatch");
  require(!x.empty(), "pearson: empty input");
  const double mx = mean(x), my = mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

BoxStats box_stats(std::span<const double> v, double whisker_iqr) {
  require(!v.empty(), "box_stats: empty input");
  BoxStats b;
  b.q25 = percentile(v, 25);
  b.q50 = percentile(v, 50);
  b.q75 = percentile(v, 75);
  b.mean = mean(v);
  const double iqr = b.q75 - b.q25;
  const double lo_limit = b.q25 - whisker_iqr * iqr;
  const double hi_limit = b.q75 + whisker_iqr * iqr;
  b.lo_whisker = b.q50;
  b.hi_whisker = b.q50;
  bool first = true;
  for (double x : v) {
    if (x < lo_limit || x > hi_limit) continue;
    if (first) {
      b.lo_whisker = b.hi_whisker = x;
      first = false;
    } else {
      b.lo_whisker = std::min(b.lo_whisker, x);
      b.hi_whisker = std::max(b.hi_whisker, x);
    }
  }
  return b;
}

std::vector<std::pair<double, double>> ecdf(std::span<const double> v) {
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values to the final (highest) CDF point.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    out.emplace_back(sorted[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

}  // namespace mpa
