#include "stats/signtest.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {
namespace {

// log(n choose k) via lgamma.
double log_choose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

// P(Bin(n, 1/2) >= k), exact, in log space per term.
double binom_upper_tail(int n, int k) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  const double log_half_n = -n * std::log(2.0);
  double p = 0;
  for (int i = k; i <= n; ++i) p += std::exp(log_choose(n, i) + log_half_n);
  return std::min(p, 1.0);
}

// Normal upper-tail Q(z) = P(Z >= z).
double normal_upper(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

double sign_test_p(int n_pos, int n_neg) {
  require(n_pos >= 0 && n_neg >= 0, "sign_test_p: negative counts");
  const int n = n_pos + n_neg;
  if (n == 0) return 1.0;
  const int k = std::max(n_pos, n_neg);
  double tail;
  if (n <= 5000) {
    tail = binom_upper_tail(n, k);
  } else {
    // Continuity-corrected normal approximation.
    const double mu = n / 2.0;
    const double sd = std::sqrt(n) / 2.0;
    tail = normal_upper((k - 0.5 - mu) / sd);
  }
  return std::min(1.0, 2.0 * tail);
}

SignTestResult sign_test(std::span<const double> diffs) {
  SignTestResult r;
  for (double d : diffs) {
    if (d > 0) {
      ++r.n_pos;
    } else if (d < 0) {
      ++r.n_neg;
    } else {
      ++r.n_zero;
    }
  }
  r.p_value = sign_test_p(r.n_pos, r.n_neg);
  return r;
}

}  // namespace mpa
