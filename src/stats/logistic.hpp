// L2-regularized logistic regression, used to estimate propensity
// scores (§5.2.3): the probability of a case receiving treatment given
// its observed confounding practices.
//
// Fitting is iteratively reweighted least squares (IRLS) over
// internally-standardized features, with a ridge term for stability
// when confounders are collinear (they strongly are, per Table 4).
#pragma once

#include <span>
#include <vector>

namespace mpa {

/// Dense row-major matrix of samples (n rows) x features (d columns).
using Matrix = std::vector<std::vector<double>>;

struct LogitOptions {
  int max_iters = 50;  ///< IRLS iterations.
  double ridge = 1e-3; ///< L2 penalty on (standardized) weights.
  double tol = 1e-8;   ///< Convergence threshold on weight change.
};

class LogisticRegression {
 public:
  /// Fit P(y=1 | x). `labels` must be 0/1 and contain both classes.
  /// Rows of `features` must share one length d >= 1.
  static LogisticRegression fit(const Matrix& features, std::span<const int> labels,
                                LogitOptions opts = {});

  /// Predicted probability P(y=1 | x); x.size() must equal d.
  double predict_prob(std::span<const double> x) const;

  /// Probabilities for every row.
  std::vector<double> predict_all(const Matrix& features) const;

  /// Weights in standardized feature space; [0] is the intercept.
  const std::vector<double>& weights() const { return w_; }

 private:
  std::vector<double> w_;         // intercept + d weights
  std::vector<double> feat_mean_; // standardization parameters
  std::vector<double> feat_sd_;
};

/// Solve the symmetric positive-definite system A x = b in place by
/// Gaussian elimination with partial pivoting. Exposed for tests.
/// Returns false if A is singular to working precision.
bool solve_linear_system(Matrix a, std::vector<double> b, std::vector<double>& x);

}  // namespace mpa
