// Descriptive statistics shared by the analyses and report printers.
#pragma once

#include <span>
#include <vector>

namespace mpa {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> v);

/// Population variance; 0 for fewer than 2 elements.
double variance(std::span<const double> v);

/// Population standard deviation.
double stddev(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty v.
double percentile(std::span<const double> v, double p);

/// Median (50th percentile). Requires non-empty v.
double median(std::span<const double> v);

/// Pearson correlation coefficient; 0 if either side is constant.
/// Requires equal, non-zero lengths.
double pearson(std::span<const double> x, std::span<const double> y);

/// Five-number-ish box summary used by the figure benches: 25th, 50th,
/// 75th percentiles plus whiskers at the most extreme datapoints within
/// `whisker_iqr` x IQR of the box (the paper's figures use 2x).
struct BoxStats {
  double q25 = 0, q50 = 0, q75 = 0;
  double lo_whisker = 0, hi_whisker = 0;
  double mean = 0;
};

BoxStats box_stats(std::span<const double> v, double whisker_iqr = 2.0);

/// Empirical CDF sampled at each distinct value: (value, P[X <= value]).
std::vector<std::pair<double, double>> ecdf(std::span<const double> v);

}  // namespace mpa
