#include "stats/logistic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mpa {
namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

bool solve_linear_system(Matrix a, std::vector<double> b, std::vector<double>& x) {
  const std::size_t n = b.size();
  require(a.size() == n, "solve_linear_system: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  x.assign(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return true;
}

LogisticRegression LogisticRegression::fit(const Matrix& features, std::span<const int> labels,
                                           LogitOptions opts) {
  const std::size_t n = features.size();
  require(n == labels.size(), "LogisticRegression::fit: shape mismatch");
  require(n >= 2, "LogisticRegression::fit: need at least two samples");
  const std::size_t d = features[0].size();
  require(d >= 1, "LogisticRegression::fit: need at least one feature");
  bool has0 = false, has1 = false;
  for (int y : labels) {
    require(y == 0 || y == 1, "LogisticRegression::fit: labels must be 0/1");
    (y ? has1 : has0) = true;
  }
  require(has0 && has1, "LogisticRegression::fit: need both classes");

  LogisticRegression model;
  // Standardize features for a well-conditioned Hessian.
  model.feat_mean_.assign(d, 0);
  model.feat_sd_.assign(d, 0);
  for (const auto& row : features) {
    require(row.size() == d, "LogisticRegression::fit: ragged feature matrix");
    for (std::size_t j = 0; j < d; ++j) model.feat_mean_[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) model.feat_mean_[j] /= static_cast<double>(n);
  for (const auto& row : features)
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - model.feat_mean_[j];
      model.feat_sd_[j] += delta * delta;
    }
  for (std::size_t j = 0; j < d; ++j) {
    model.feat_sd_[j] = std::sqrt(model.feat_sd_[j] / static_cast<double>(n));
    if (model.feat_sd_[j] < 1e-12) model.feat_sd_[j] = 1;  // constant feature
  }

  // Standardized design matrix with leading intercept column.
  Matrix z(n, std::vector<double>(d + 1, 1.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < d; ++j)
      z[i][j + 1] = (features[i][j] - model.feat_mean_[j]) / model.feat_sd_[j];

  std::vector<double> w(d + 1, 0.0);
  for (int iter = 0; iter < opts.max_iters; ++iter) {
    // Gradient and Hessian of the (penalized) negative log-likelihood.
    std::vector<double> grad(d + 1, 0.0);
    Matrix hess(d + 1, std::vector<double>(d + 1, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      double eta = 0;
      for (std::size_t j = 0; j <= d; ++j) eta += w[j] * z[i][j];
      const double p = sigmoid(eta);
      const double r = p - static_cast<double>(labels[i]);
      const double wgt = std::max(p * (1 - p), 1e-9);
      for (std::size_t j = 0; j <= d; ++j) {
        grad[j] += r * z[i][j];
        for (std::size_t k = j; k <= d; ++k) hess[j][k] += wgt * z[i][j] * z[i][k];
      }
    }
    for (std::size_t j = 1; j <= d; ++j) {  // no penalty on the intercept
      grad[j] += opts.ridge * w[j];
      hess[j][j] += opts.ridge;
    }
    for (std::size_t j = 0; j <= d; ++j)
      for (std::size_t k = 0; k < j; ++k) hess[j][k] = hess[k][j];

    std::vector<double> step;
    if (!solve_linear_system(hess, grad, step)) break;  // keep current w
    double max_delta = 0;
    for (std::size_t j = 0; j <= d; ++j) {
      w[j] -= step[j];
      max_delta = std::max(max_delta, std::abs(step[j]));
    }
    if (max_delta < opts.tol) break;
  }
  model.w_ = std::move(w);
  return model;
}

double LogisticRegression::predict_prob(std::span<const double> x) const {
  require(x.size() + 1 == w_.size(), "LogisticRegression::predict_prob: dimension mismatch");
  double eta = w_[0];
  for (std::size_t j = 0; j < x.size(); ++j)
    eta += w_[j + 1] * (x[j] - feat_mean_[j]) / feat_sd_[j];
  return sigmoid(eta);
}

std::vector<double> LogisticRegression::predict_all(const Matrix& features) const {
  std::vector<double> out;
  out.reserve(features.size());
  for (const auto& row : features) out.push_back(predict_prob(row));
  return out;
}

}  // namespace mpa
