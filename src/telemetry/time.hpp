// Time conventions for the MPA datasets.
//
// Timestamps are minutes since the start of the observation window
// (the paper's window is Aug 2013 - Dec 2014, 17 months). For monthly
// aggregation we use fixed 30-day months; the analyses only ever
// compare within this synthetic calendar, so uniform months are a
// harmless simplification.
#pragma once

#include <cstdint>

namespace mpa {

/// Minutes since the start of the observation window.
using Timestamp = std::int64_t;

inline constexpr Timestamp kMinutesPerHour = 60;
inline constexpr Timestamp kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr Timestamp kMinutesPerMonth = 30 * kMinutesPerDay;

/// Month index (0-based) containing `t`. Negative times map to month 0.
inline int month_of(Timestamp t) {
  return t < 0 ? 0 : static_cast<int>(t / kMinutesPerMonth);
}

/// First minute of month `m`.
inline Timestamp month_start(int m) { return static_cast<Timestamp>(m) * kMinutesPerMonth; }

}  // namespace mpa
