#include "telemetry/health_metrics.hpp"

#include <set>

namespace mpa {

bool is_high_impact_symptom(const std::string& symptom) {
  return symptom == "device-unreachable" || symptom == "vip-unreachable" ||
         symptom == "link-down";
}

HealthSummary summarize_health(const TicketLog& log, const std::string& network_id, int month) {
  HealthSummary out;
  std::set<std::string> devices;
  double resolve_sum = 0;
  for (const auto& t : log.all()) {
    if (t.network_id != network_id || t.origin == TicketOrigin::kMaintenance) continue;
    if (month_of(t.created) != month) continue;
    ++out.tickets;
    if (is_high_impact_symptom(t.symptom)) ++out.high_impact;
    if (t.origin == TicketOrigin::kUserReport) ++out.user_reported;
    if (t.resolved >= t.created) resolve_sum += static_cast<double>(t.resolved - t.created);
    for (const auto& d : t.devices) devices.insert(d);
  }
  out.distinct_devices = static_cast<int>(devices.size());
  if (out.tickets > 0) out.mean_minutes_to_resolve = resolve_sum / out.tickets;
  return out;
}

std::map<std::string, int> symptom_histogram(const TicketLog& log,
                                             const std::string& network_id) {
  std::map<std::string, int> out;
  for (const auto* t : log.health_tickets(network_id)) out[t->symptom]++;
  return out;
}

}  // namespace mpa
