// Finer-grained health measures from ticket logs — the paper's stated
// future work (§2.2): "we plan to explore how to accurately obtain more
// fine-grained health measures using tools like NetSieve."
//
// The paper cautions that some of these are noisy in practice ("tickets
// are sometimes not marked as resolved until well after the problem has
// been fixed"), so each measure documents its failure mode. They can be
// fed to causal_analysis() as alternative outcomes.
#pragma once

#include <map>
#include <string>

#include "telemetry/tickets.hpp"

namespace mpa {

/// Per-(network, month) health summary beyond the raw ticket count.
struct HealthSummary {
  int tickets = 0;            ///< Non-maintenance tickets (the paper's metric).
  int high_impact = 0;        ///< Tickets with outage-class symptoms.
  double mean_minutes_to_resolve = 0;  ///< Noisy: resolution stamps lag fixes.
  int distinct_devices = 0;   ///< Devices implicated in this month's tickets.
  int user_reported = 0;      ///< Tickets users noticed (vs monitors).
};

/// Symptoms treated as outage-class (service down rather than degraded).
bool is_high_impact_symptom(const std::string& symptom);

/// Summarize one network-month.
HealthSummary summarize_health(const TicketLog& log, const std::string& network_id, int month);

/// Symptom histogram over a network's non-maintenance tickets (all
/// months) — NetSieve-style "what actually breaks here".
std::map<std::string, int> symptom_histogram(const TicketLog& log,
                                             const std::string& network_id);

}  // namespace mpa
