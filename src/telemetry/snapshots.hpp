// Device-configuration snapshots: the second data source (§2.1).
//
// "NMSes such as RANCID and HPNA subscribe to syslog feeds from network
// devices and snapshot a device's configuration whenever the device
// generates a syslog alert that its configuration has changed. Each
// snapshot includes the configuration text, as well as metadata about
// the change, e.g., when it occurred and the login information of the
// entity (i.e., user or script) that made the change."
//
// Snapshots hold rendered *text*, not parsed configs — the metrics
// layer must parse them through the dialect layer, exactly as the
// paper's pipeline runs Batfish over archived RANCID output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/time.hpp"

namespace mpa {

/// One archived configuration snapshot.
struct ConfigSnapshot {
  std::string device_id;
  Timestamp time = 0;   ///< When the triggering change occurred.
  std::string login;    ///< Account that made the change (user or script).
  std::string text;     ///< Full rendered configuration.
};

/// Append-only archive of snapshots, ordered per device by time.
class SnapshotStore {
 public:
  /// Archive a snapshot. Snapshots for a device must arrive in
  /// non-decreasing time order (as a syslog-fed NMS would see them).
  void add(ConfigSnapshot snap);

  /// All snapshots of a device, time-ordered. Empty if unknown device.
  const std::vector<ConfigSnapshot>& for_device(const std::string& device_id) const;

  /// Device ids with at least one snapshot.
  std::vector<std::string> devices() const;

  std::size_t total_snapshots() const { return total_; }

  /// Total bytes of archived configuration text.
  std::size_t total_bytes() const { return bytes_; }

 private:
  std::map<std::string, std::vector<ConfigSnapshot>> by_device_;
  std::size_t total_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace mpa
