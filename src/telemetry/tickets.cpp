#include "telemetry/tickets.hpp"

namespace mpa {

std::string_view to_string(TicketOrigin o) {
  switch (o) {
    case TicketOrigin::kMonitoringAlarm: return "alarm";
    case TicketOrigin::kUserReport: return "user";
    case TicketOrigin::kMaintenance: return "maintenance";
  }
  return "unknown";
}

void TicketLog::add(Ticket t) { tickets_.push_back(std::move(t)); }

int TicketLog::count_health_tickets(const std::string& network_id, int month) const {
  int n = 0;
  for (const auto& t : tickets_) {
    if (t.network_id == network_id && t.origin != TicketOrigin::kMaintenance &&
        month_of(t.created) == month) {
      ++n;
    }
  }
  return n;
}

std::vector<const Ticket*> TicketLog::health_tickets(const std::string& network_id) const {
  std::vector<const Ticket*> out;
  for (const auto& t : tickets_)
    if (t.network_id == network_id && t.origin != TicketOrigin::kMaintenance) out.push_back(&t);
  return out;
}

}  // namespace mpa
