// Trouble-ticket logs: the third data source (§2.1).
//
// Tickets are created when monitoring alarms fire, when users report
// problems, or for planned maintenance. The health metric is the
// monthly ticket count *excluding* maintenance tickets ("maintenance
// tickets are unlikely to be triggered by performance or availability
// problems").
#pragma once

#include <string>
#include <vector>

#include "telemetry/time.hpp"

namespace mpa {

/// How a ticket came to exist.
enum class TicketOrigin : std::uint8_t { kMonitoringAlarm, kUserReport, kMaintenance };

std::string_view to_string(TicketOrigin o);

/// One incident-management ticket (structured fields only; the paper's
/// free-text syslog/IM blobs carry no signal our analyses use).
struct Ticket {
  std::string ticket_id;
  std::string network_id;
  Timestamp created = 0;
  Timestamp resolved = 0;  ///< May lag the actual fix (§2.2).
  std::vector<std::string> devices;  ///< Devices causing or affected.
  TicketOrigin origin = TicketOrigin::kMonitoringAlarm;
  std::string symptom;  ///< From a pre-defined symptom list.
};

/// The organization-wide ticket archive.
class TicketLog {
 public:
  void add(Ticket t);

  /// Pre-size the backing vector (performance hint for loaders).
  void reserve(std::size_t n) { tickets_.reserve(n); }

  const std::vector<Ticket>& all() const { return tickets_; }
  std::size_t size() const { return tickets_.size(); }

  /// Health metric: tickets for `network_id` created during month `m`,
  /// excluding maintenance tickets.
  int count_health_tickets(const std::string& network_id, int month) const;

  /// All non-maintenance tickets of a network (any month).
  std::vector<const Ticket*> health_tickets(const std::string& network_id) const;

 private:
  std::vector<Ticket> tickets_;
};

}  // namespace mpa
