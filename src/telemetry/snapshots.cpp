#include "telemetry/snapshots.hpp"

#include "util/error.hpp"

namespace mpa {

void SnapshotStore::add(ConfigSnapshot snap) {
  auto& vec = by_device_[snap.device_id];
  require(vec.empty() || vec.back().time <= snap.time,
          "SnapshotStore::add: out-of-order snapshot for " + snap.device_id);
  bytes_ += snap.text.size();
  ++total_;
  vec.push_back(std::move(snap));
}

const std::vector<ConfigSnapshot>& SnapshotStore::for_device(const std::string& device_id) const {
  static const std::vector<ConfigSnapshot> kEmpty;
  const auto it = by_device_.find(device_id);
  return it == by_device_.end() ? kEmpty : it->second;
}

std::vector<std::string> SnapshotStore::devices() const {
  std::vector<std::string> out;
  out.reserve(by_device_.size());
  for (const auto& [id, snaps] : by_device_) out.push_back(id);
  return out;
}

}  // namespace mpa
