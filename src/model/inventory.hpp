// Inventory records: the first of the paper's three data sources (§2.1).
//
// Organizations track the networks they manage, and the vendor, model,
// role and firmware of every device. These records are the input for
// the "purpose / physical composition" design metrics (Table 1, D1-D3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mpa {

/// Device role in the network, as recorded in inventory (§2.1).
enum class Role : std::uint8_t {
  kRouter,
  kSwitch,
  kFirewall,
  kLoadBalancer,
  kAdc,  // application delivery controller (TCP/SSL offload, etc.)
};

inline constexpr int kNumRoles = 5;

/// Stable display name ("router", "switch", ...).
std::string_view to_string(Role r);

/// True if the role is a middlebox (firewall, ADC, or load balancer),
/// per the paper's definition in Appendix A.1.
bool is_middlebox(Role r);

/// Config-language dialect a vendor's devices speak.
enum class Vendor : std::uint8_t {
  kCirrus,    // IOS-like dialect   (stands in for Cisco)
  kJunegrass, // JunOS-like dialect (stands in for Juniper)
  kAristos,   // IOS-like dialect   (stands in for Arista)
  kEffen,     // IOS-like dialect   (stands in for F5-style LB gear)
  kPaloverde, // IOS-like dialect   (stands in for a firewall vendor)
  kBrocatel,  // JunOS-like dialect
};

inline constexpr int kNumVendors = 6;

std::string_view to_string(Vendor v);

/// The kind of workload a network serves (§2: "A workload is a service
/// or a group of users").
enum class WorkloadKind : std::uint8_t { kWebService, kFileSystem, kApplication, kUserGroup };

struct Workload {
  std::string name;
  WorkloadKind kind = WorkloadKind::kWebService;
};

/// One inventory line: a physical device and where it lives.
struct DeviceRecord {
  std::string device_id;   ///< Globally unique device name, e.g. "net12-sw-03".
  std::string network_id;  ///< Owning network.
  Vendor vendor = Vendor::kCirrus;
  std::string model;       ///< Hardware model, e.g. "CX-4500".
  Role role = Role::kSwitch;
  std::string firmware;    ///< Firmware version string, e.g. "12.2(33)".
};

/// One managed network: a set of devices serving zero or more workloads
/// (interconnect networks host none).
struct NetworkRecord {
  std::string network_id;
  std::vector<Workload> workloads;
  std::vector<std::string> device_ids;
};

/// The organization-wide inventory: all networks and devices.
class Inventory {
 public:
  /// Register a network. Throws PreconditionError on duplicate id.
  void add_network(NetworkRecord net);
  /// Register a device; its network must already exist.
  void add_device(DeviceRecord dev);

  /// Pre-size the backing vectors when the final counts are known
  /// (dataset loaders); purely a performance hint.
  void reserve(std::size_t networks, std::size_t devices);

  const std::vector<NetworkRecord>& networks() const { return networks_; }
  const std::vector<DeviceRecord>& devices() const { return devices_; }

  /// Devices belonging to one network (linear scan; inventories are small).
  std::vector<const DeviceRecord*> devices_in(const std::string& network_id) const;

  const NetworkRecord* find_network(const std::string& network_id) const;
  const DeviceRecord* find_device(const std::string& device_id) const;

  std::size_t num_networks() const { return networks_.size(); }
  std::size_t num_devices() const { return devices_.size(); }

 private:
  std::vector<NetworkRecord> networks_;
  std::vector<DeviceRecord> devices_;
  // Name -> index into the vectors above. Ordered maps keep iteration
  // deterministic (srclint forbids iterating unordered containers) and
  // make find_network/find_device O(log n) instead of a linear scan —
  // dataset loads call them once per record, which was O(n^2) at the
  // 100k-network scale the columnar generator targets.
  std::map<std::string, std::size_t> network_index_;
  std::map<std::string, std::size_t> device_index_;
};

}  // namespace mpa
