#include "model/inventory.hpp"

#include <algorithm>

namespace mpa {

std::string_view to_string(Role r) {
  switch (r) {
    case Role::kRouter: return "router";
    case Role::kSwitch: return "switch";
    case Role::kFirewall: return "firewall";
    case Role::kLoadBalancer: return "load-balancer";
    case Role::kAdc: return "adc";
  }
  return "unknown";
}

bool is_middlebox(Role r) {
  return r == Role::kFirewall || r == Role::kLoadBalancer || r == Role::kAdc;
}

std::string_view to_string(Vendor v) {
  switch (v) {
    case Vendor::kCirrus: return "cirrus";
    case Vendor::kJunegrass: return "junegrass";
    case Vendor::kAristos: return "aristos";
    case Vendor::kEffen: return "effen";
    case Vendor::kPaloverde: return "paloverde";
    case Vendor::kBrocatel: return "brocatel";
  }
  return "unknown";
}

void Inventory::add_network(NetworkRecord net) {
  require(find_network(net.network_id) == nullptr,
          "Inventory::add_network: duplicate network id " + net.network_id);
  network_index_.emplace(net.network_id, networks_.size());
  networks_.push_back(std::move(net));
}

void Inventory::add_device(DeviceRecord dev) {
  auto* net = const_cast<NetworkRecord*>(find_network(dev.network_id));
  require(net != nullptr, "Inventory::add_device: unknown network " + dev.network_id);
  require(find_device(dev.device_id) == nullptr,
          "Inventory::add_device: duplicate device id " + dev.device_id);
  if (std::find(net->device_ids.begin(), net->device_ids.end(), dev.device_id) ==
      net->device_ids.end()) {
    net->device_ids.push_back(dev.device_id);
  }
  device_index_.emplace(dev.device_id, devices_.size());
  devices_.push_back(std::move(dev));
}

void Inventory::reserve(std::size_t networks, std::size_t devices) {
  networks_.reserve(networks);
  devices_.reserve(devices);
}

std::vector<const DeviceRecord*> Inventory::devices_in(const std::string& network_id) const {
  std::vector<const DeviceRecord*> out;
  for (const auto& d : devices_)
    if (d.network_id == network_id) out.push_back(&d);
  return out;
}

const NetworkRecord* Inventory::find_network(const std::string& network_id) const {
  const auto it = network_index_.find(network_id);
  return it == network_index_.end() ? nullptr : &networks_[it->second];
}

const DeviceRecord* Inventory::find_device(const std::string& device_id) const {
  const auto it = device_index_.find(device_id);
  return it == device_index_.end() ? nullptr : &devices_[it->second];
}

}  // namespace mpa
