// Sliding-window aggregation for the serve plane (DESIGN.md §15): a
// registry of per-(tenant, kind) series, each a ring of fixed-width
// time buckets advanced on a logical clock. Answers the questions the
// cumulative Registry cannot for a long-lived daemon: rolling
// throughput, error/reject/deadline rates, and queue-wait / service /
// latency quantiles over the last window.
//
// Design constraints:
//  - lock-cheap on the worker hot path: record() takes the registry
//    mutex only for the series lookup (same cost class as
//    Registry::counter); in-bucket updates are relaxed atomics. A
//    per-series mutex is taken only when a bucket's epoch rotates.
//  - injectable clock: tests drive a logical clock to pin wraparound
//    and idle-gap expiry without sleeping.
//  - deterministic identity form: canonical_json() is timestamp-free
//    and counts-only, so a replay whose window covers the whole run is
//    byte-identical at any worker count (pinned in test_serve).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace mpa::obs {

/// Fixed millisecond upper edges for the windowed queue/service/latency
/// histograms (an implicit +Inf bucket catches the rest).
const std::vector<double>& window_ms_bounds();

struct WindowOptions {
  /// Ring size: the window is `buckets * bucket_width_ns` wide.
  std::size_t buckets = 60;
  std::uint64_t bucket_width_ns = 1'000'000'000;  ///< 1s buckets by default.
  /// Monotonic nanosecond clock; defaults to obs::now_ns. Injected by
  /// tests as a logical clock. Must be set before the first record().
  std::function<std::uint64_t()> clock;
};

class WindowRegistry {
 public:
  explicit WindowRegistry(WindowOptions opts = {});

  /// Process-wide instance recorded into by the serve scheduler when
  /// observability is enabled and no explicit registry was injected.
  static WindowRegistry& global();

  /// Replace options and drop all series. Not safe concurrently with
  /// record()/snapshot() — the CLI calls it once before the server is
  /// constructed.
  void configure(WindowOptions opts) EXCLUDES(mu_);

  /// Record one finished request into the bucket for "now".
  /// `status` is one of ok / rejected / deadline_exceeded / error
  /// (anything else counts as error).
  void record(std::string_view tenant, std::string_view kind, std::string_view status,
              double queue_ms, double service_ms, double latency_ms) EXCLUDES(mu_);

  struct SeriesWindow {
    std::string tenant;
    std::string kind;
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t error = 0;
    double throughput_rps = 0;
    double ok_rate = 0;
    double reject_rate = 0;
    double deadline_rate = 0;
    double error_rate = 0;
    double queue_p50_ms = 0, queue_p90_ms = 0, queue_p99_ms = 0;
    double service_p50_ms = 0, service_p90_ms = 0, service_p99_ms = 0;
    double latency_p50_ms = 0, latency_p90_ms = 0, latency_p99_ms = 0;
  };
  struct Snapshot {
    double window_seconds = 0;
    /// Sorted by (tenant, kind); series whose window holds no requests
    /// are omitted (that is what "expired on an idle gap" means).
    std::vector<SeriesWindow> series;
  };
  Snapshot snapshot() const EXCLUDES(mu_);

  /// Single-line JSON document over snapshot() (no trailing newline, so
  /// it embeds verbatim in a `stats` response body).
  std::string to_json() const;
  /// Prometheus text exposition: mpa_window_* gauges labeled by
  /// tenant/kind (gauges, not counters — windowed values can decrease).
  std::string to_prometheus() const;
  /// Timestamp-free identity form: per-series status counts only,
  /// sorted by (tenant, kind). Byte-identical across worker counts
  /// whenever the window covers the whole run.
  std::string canonical_json() const;

  /// Drop all series (tests; configure() implies it).
  void clear() EXCLUDES(mu_);

 private:
  static constexpr std::size_t kStatuses = 4;  ///< ok/rejected/deadline/error.
  static constexpr std::size_t kHistSlots = 13;  ///< window_ms_bounds().size() + 1.

  struct Bucket {
    /// Which bucket-width epoch this slot currently holds. kIdleEpoch
    /// marks a slot that has never been written.
    std::atomic<std::uint64_t> epoch{kIdleEpoch};
    std::array<std::atomic<std::uint64_t>, kStatuses> by_status{};
    std::array<std::atomic<std::uint64_t>, kHistSlots> queue{};
    std::array<std::atomic<std::uint64_t>, kHistSlots> service{};
    std::array<std::atomic<std::uint64_t>, kHistSlots> latency{};
  };
  struct Series {
    explicit Series(std::size_t buckets) : ring(buckets) {}
    /// Serializes epoch rotation for this series. A concurrent record
    /// racing a rotation can land one sample in the fresh bucket — the
    /// standard windowed-counter smear, bounded to one bucket width.
    // srclint-disable(mutex-annotation): guards the zero-then-publish
    // rotation sequence, not data — the bucket counters stay atomics
    // updated lock-free, so no field can carry GUARDED_BY(rotate_mu).
    Mutex rotate_mu;
    std::vector<Bucket> ring;
  };
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

  Bucket& bucket_for(Series& s, std::uint64_t epoch);
  std::uint64_t now() const;

  WindowOptions opts_;
  /// Guards the series map only — lookup/registration and snapshot,
  /// never held while touching bucket atomics.
  mutable Mutex mu_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Series>> series_ GUARDED_BY(mu_);
};

}  // namespace mpa::obs
