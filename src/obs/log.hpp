// Structured event log for the MPA engine: leveled events with typed
// key/value fields, recorded into per-thread buffers that are merged
// only at snapshot time (the Tracer pattern — the hot path never takes
// a shared lock), exported as JSONL.
//
// Contracts (DESIGN.md §10):
//  - Zero overhead when disabled: constructing a LogEvent while the
//    log is off (or below the minimum level) is a single relaxed
//    atomic load — no clock read, no allocation, no buffer write. The
//    enabled flag and minimum level are packed into one atomic gate
//    so the level filter costs nothing extra.
//  - Deterministic content at any thread count: an event's identity is
//    its level, name, and fields — never its timestamp or the thread
//    that recorded it. canonical_jsonl() serializes the merged stream
//    without timestamps in a content-sorted order, so instrumented
//    runs of a deterministic pipeline produce bit-identical canonical
//    streams at 1, 2, and 8 threads (pinned in tests/test_obs.cpp).
//  - Flight recorder: set_ring_capacity(N) bounds each thread's buffer
//    to the most recent N events (evictions counted in dropped()), so
//    always-on logging in a long-lived server keeps bounded memory.
//
// Usage — the builder is a temporary whose destructor commits:
//   obs::LogEvent(obs::LogLevel::kInfo, "stage_done")
//       .str("stage", "lint").u64("networks", n);
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.hpp"

namespace mpa::obs {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable lowercase name ("debug", "info", "warn", "error").
std::string_view to_string(LogLevel level);
/// Parse a level name; returns false on unknown input.
bool parse_log_level(std::string_view name, LogLevel* out);

/// Global event-log switch, independent of the metrics/span switch so
/// `--metrics-out` alone never pays logging costs. Off by default.
bool log_enabled();
void set_log_enabled(bool on);
/// Events below `level` are dropped at the gate (same single atomic
/// load as the on/off check). Default: kDebug (record everything).
void set_log_min_level(LogLevel level);
LogLevel log_min_level();

/// One typed key/value field.
struct LogField {
  enum class Type : std::uint8_t { kString, kInt, kUint, kDouble, kBool };

  std::string key;
  Type type = Type::kString;
  std::string s;       ///< kString payload.
  std::int64_t i = 0;  ///< kInt payload.
  std::uint64_t u = 0; ///< kUint payload.
  double d = 0;        ///< kDouble payload.
  bool b = false;      ///< kBool payload.

  /// The field's value serialized as a JSON token.
  std::string value_json() const;
};

/// One committed event.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string name;
  std::uint64_t t_ns = 0;  ///< obs::now_ns() at commit.
  std::vector<LogField> fields;
  /// Request tags stamped from the recording thread's installed
  /// RequestContext (0/"" outside a request). Serialized only in the
  /// timed form: with more than one worker, which request a memoized
  /// stage executes under is timing-dependent, so the tags are excluded
  /// from the canonical (determinism-pinned) form like t_ns is.
  std::uint64_t ctx_req_id = 0;
  std::string ctx_tenant;

  /// One JSON object (no trailing newline): {"t_ns":...,"level":...,
  /// "name":...,"fields":{...}}. `with_time` false omits t_ns and the
  /// request tags — the deterministic form used by canonical_jsonl().
  std::string to_json(bool with_time = true) const;
};

/// Process-wide log buffer. Records land in per-thread ring buffers
/// (registered on first use, co-owned so they survive thread exit) and
/// are merged + sorted only at snapshot/export time.
class Logger {
 public:
  static Logger& global();

  /// Flight-recorder bound per thread buffer (0 = unbounded, the
  /// default). Takes effect for subsequent commits; shrinking does not
  /// retroactively evict.
  void set_ring_capacity(std::size_t n);
  std::size_t ring_capacity() const;
  /// Events evicted by the ring since the last clear().
  std::uint64_t dropped() const;

  /// Merge every thread's buffer, sorted by (t_ns, content) — a stable
  /// chronological order with deterministic ties.
  std::vector<LogRecord> snapshot() const EXCLUDES(mu_);

  /// One JSON object per line, chronological (the --log-out format).
  std::string to_jsonl() const;

  /// Timestamp-free serialization sorted by content: bit-identical
  /// across thread counts for a deterministic pipeline.
  std::string canonical_jsonl() const;

  /// Drop every recorded event and zero dropped().
  void clear() EXCLUDES(mu_);

 private:
  friend class LogEvent;
  struct Buffer {
    Mutex mu;  ///< Uncontended except at snapshot/clear time.
    std::vector<LogRecord> records GUARDED_BY(mu);
    std::size_t ring_next GUARDED_BY(mu) = 0;  ///< Overwrite cursor once bounded.
  };

  Logger() = default;
  Buffer& local_buffer() EXCLUDES(mu_);
  void commit(LogRecord&& rec) EXCLUDES(mu_);

  mutable Mutex mu_;  ///< Guards buffers_ (registration + export).
  std::vector<std::shared_ptr<Buffer>> buffers_ GUARDED_BY(mu_);
  std::atomic<std::size_t> ring_capacity_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Builder for one event. Construction reads the gate (one relaxed
/// atomic load); when below it, every method is an early-out on a
/// plain bool and the destructor does nothing. When active, field
/// setters append typed fields in call order and the destructor
/// timestamps and commits the record.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view name);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& str(std::string_view key, std::string_view value);
  LogEvent& i64(std::string_view key, std::int64_t value);
  LogEvent& u64(std::string_view key, std::uint64_t value);
  LogEvent& f64(std::string_view key, double value);
  LogEvent& boolean(std::string_view key, bool value);

  /// True when the event passed the gate and will commit.
  bool active() const { return active_; }

 private:
  bool active_ = false;
  LogRecord rec_;
};

}  // namespace mpa::obs
