// Scoped trace spans for the MPA engine: RAII wall-time timers with
// parent/child nesting, recorded into per-thread buffers that are only
// merged at export time — so the engine's fork-join thread pool never
// contends on a shared trace lock.
//
// Nesting is thread-local: a Span opened while another Span is live on
// the same thread becomes its child ("parent/child" paths). Fan-out
// bodies that run on pool workers (where the thread-local stack is
// empty) adopt their logical parent explicitly via Span::with_path,
// keeping the exported tree deterministic in names and counts at any
// thread count (timings, of course, vary).
//
// Zero-overhead-when-disabled: constructing a Span while obs::enabled()
// is false is a single relaxed atomic load — no clock read, no
// allocation, no buffer write.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace mpa::obs {

/// One completed span. `path` is '/'-separated from the root
/// ("infer/case_table"); times are now_ns() values. `tid` identifies
/// the recording thread (buffer registration order, 1-based) — it
/// feeds the Chrome-trace lane layout and is excluded from every
/// determinism contract, like the timestamps.
struct SpanRecord {
  std::string path;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  /// Request tags stamped from the thread's installed RequestContext
  /// (0/"" outside a request). Like tid, excluded from determinism
  /// contracts: stage→request attribution is timing-dependent with
  /// more than one worker (memoization races).
  std::uint64_t req_id = 0;
  std::string tenant;
};

/// Request-scoped trace context (DESIGN.md §15): minted by the serve
/// scheduler at submit, carried through the queue, and installed on the
/// executing worker thread via ScopedRequestContext — every Span closed
/// and LogEvent emitted while installed is tagged with req_id/tenant,
/// enabling per-request Chrome traces and slow-request attribution.
struct RequestContext {
  std::uint64_t req_id = 0;
  std::string tenant;
  std::string kind;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t dequeue_ns = 0;
  std::uint64_t finish_ns = 0;
  /// Collect per-stage (path, dur_ns) samples from closing spans into
  /// stage_ns. Single-owner: only the installing worker thread may set
  /// it; pool fan-out task bodies adopt a tag_only() copy so the shared
  /// parent context is never mutated concurrently.
  bool collect = false;
  std::vector<std::pair<std::string, std::uint64_t>> stage_ns;

  /// Copy carrying only the request tags (collect off, no samples) —
  /// safe to share read-only across pool workers.
  RequestContext tag_only() const;
};

/// The calling thread's installed context, or nullptr outside a
/// request.
RequestContext* current_request_context();

/// RAII installation of a RequestContext on the calling thread
/// (restores the previous one on destruction). Installing nullptr is a
/// no-op placeholder that still restores — the idiom for "adopt the
/// parent's context if there is one".
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* ctx);
  ~ScopedRequestContext();
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* prev_;
};

/// Aggregated per-path count/total-time tree (indented by depth), for
/// Tracer::summary() and `mpa_cli trace summarize` over parsed files.
std::string summarize_spans(const std::vector<SpanRecord>& spans);

class Tracer {
 public:
  static Tracer& global();

  /// The calling thread's innermost live span path ("" at top level).
  /// Capture this before a parallel fan-out and pass it to
  /// Span::with_path inside the task body.
  static std::string current_path();

  /// Merge every thread's buffer, ordered by (start_ns, path) — stable
  /// content (paths and counts) across thread counts.
  std::vector<SpanRecord> snapshot() const EXCLUDES(mu_);

  /// {"spans":[{"path":...,"start_ns":...,"dur_ns":...},...]}
  std::string to_json() const;

  /// Aggregated human-readable tree: per-path call count and total
  /// wall time, indented by depth.
  std::string summary() const;

  /// Drop every recorded span (buffers stay registered).
  void clear() EXCLUDES(mu_);

 private:
  friend class Span;
  struct Buffer {
    Mutex mu;  ///< Uncontended except at snapshot/clear time.
    std::vector<SpanRecord> records GUARDED_BY(mu);
    std::uint32_t tid = 0;  ///< Registration-order thread id (1-based).
  };

  Tracer() = default;
  Buffer& local_buffer() EXCLUDES(mu_);

  mutable Mutex mu_;  ///< Guards buffers_ (registration + export).
  std::vector<std::shared_ptr<Buffer>> buffers_ GUARDED_BY(mu_);
};

/// RAII span on the global tracer. Records on destruction.
class Span {
 public:
  /// Nest under the calling thread's current span.
  explicit Span(std::string_view name);

  /// Absolute path, ignoring the thread-local stack (for pool-worker
  /// task bodies adopting the fan-out's parent).
  static Span with_path(std::string path);

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  struct AbsolutePath {};
  Span(AbsolutePath, std::string path);

  void open();

  bool active_ = false;
  std::string path_;
  std::string prev_path_;  ///< Thread-current path to restore on close.
  std::uint64_t start_ns_ = 0;
};

}  // namespace mpa::obs
