#include "obs/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace mpa::obs {
namespace {

/// The gate packs enabled + minimum level into one atomic: values
/// 0..3 are the minimum level while enabled, kGateOff disables. A
/// LogEvent passes when its level >= the loaded gate, so the disabled
/// check and the level filter are the same single relaxed load.
constexpr int kGateOff = 4;

std::atomic<int> g_gate{kGateOff};
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kDebug)};

/// Shortest round-trippable double, always a valid JSON token.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  if (std::strchr(buf, 'i') != nullptr || std::strchr(buf, 'n') != nullptr) return "0";
  return buf;
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  for (LogLevel l : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError}) {
    if (name == to_string(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

bool log_enabled() { return g_gate.load(std::memory_order_relaxed) != kGateOff; }

void set_log_enabled(bool on) {
  g_gate.store(on ? g_min_level.load(std::memory_order_relaxed) : kGateOff,
               std::memory_order_relaxed);
}

void set_log_min_level(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
  if (log_enabled()) g_gate.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::string LogField::value_json() const {
  switch (type) {
    case Type::kString: return "\"" + json_escape(s) + "\"";
    case Type::kInt: return std::to_string(i);
    case Type::kUint: return std::to_string(u);
    case Type::kDouble: return format_number(d);
    case Type::kBool: return b ? "true" : "false";
  }
  return "null";
}

std::string LogRecord::to_json(bool with_time) const {
  std::ostringstream os;
  os << '{';
  if (with_time) {
    os << "\"t_ns\":" << t_ns << ',';
    if (ctx_req_id != 0) {
      os << "\"req_id\":" << ctx_req_id << ",\"tenant\":\"" << json_escape(ctx_tenant) << "\",";
    }
  }
  os << "\"level\":\"" << to_string(level) << "\",\"name\":\"" << json_escape(name)
     << "\",\"fields\":{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(fields[i].key) << "\":" << fields[i].value_json();
  }
  os << "}}";
  return os.str();
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_ring_capacity(std::size_t n) {
  ring_capacity_.store(n, std::memory_order_relaxed);
}

std::size_t Logger::ring_capacity() const {
  return ring_capacity_.load(std::memory_order_relaxed);
}

std::uint64_t Logger::dropped() const { return dropped_.load(std::memory_order_relaxed); }

Logger::Buffer& Logger::local_buffer() {
  // The logger co-owns every buffer so records survive thread exit
  // (pool teardown) until the next clear() — same lifetime rule as
  // Tracer's span buffers.
  thread_local std::shared_ptr<Buffer> buf;
  if (buf == nullptr) {
    buf = std::make_shared<Buffer>();
    MutexLock lk(mu_);
    buffers_.push_back(buf);
  }
  return *buf;
}

void Logger::commit(LogRecord&& rec) {
  Buffer& buf = local_buffer();
  const std::size_t cap = ring_capacity_.load(std::memory_order_relaxed);
  MutexLock lk(buf.mu);
  if (cap == 0 || buf.records.size() < cap) {
    buf.records.push_back(std::move(rec));
    return;
  }
  // Flight-recorder mode: overwrite the oldest retained event.
  if (buf.ring_next >= buf.records.size()) buf.ring_next = 0;
  buf.records[buf.ring_next] = std::move(rec);
  ++buf.ring_next;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<LogRecord> Logger::snapshot() const {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    MutexLock lk(mu_);
    bufs = buffers_;
  }
  std::vector<LogRecord> out;
  for (const auto& b : bufs) {
    MutexLock lk(b->mu);
    out.insert(out.end(), b->records.begin(), b->records.end());
  }
  std::sort(out.begin(), out.end(), [](const LogRecord& a, const LogRecord& b) {
    if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
    return a.to_json(false) < b.to_json(false);
  });
  return out;
}

std::string Logger::to_jsonl() const {
  std::ostringstream os;
  for (const auto& rec : snapshot()) os << rec.to_json(true) << '\n';
  return os.str();
}

std::string Logger::canonical_jsonl() const {
  std::vector<std::string> lines;
  for (const auto& rec : snapshot()) lines.push_back(rec.to_json(false));
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const auto& line : lines) os << line << '\n';
  return os.str();
}

void Logger::clear() {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    MutexLock lk(mu_);
    bufs = buffers_;
  }
  for (const auto& b : bufs) {
    MutexLock lk(b->mu);
    b->records.clear();
    b->ring_next = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

LogEvent::LogEvent(LogLevel level, std::string_view name) {
  // The zero-overhead gate: one relaxed atomic load covering both the
  // on/off switch and the level filter. Nothing below touches a clock
  // or allocates until the event is known to record.
  if (static_cast<int>(level) < g_gate.load(std::memory_order_relaxed)) return;
  active_ = true;
  rec_.level = level;
  rec_.name = std::string(name);
  if (const RequestContext* ctx = current_request_context()) {
    rec_.ctx_req_id = ctx->req_id;
    rec_.ctx_tenant = ctx->tenant;
  }
}

LogEvent::~LogEvent() {
  if (!active_) return;
  rec_.t_ns = now_ns();
  Logger::global().commit(std::move(rec_));
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  LogField f;
  f.key = std::string(key);
  f.type = LogField::Type::kString;
  f.s = std::string(value);
  rec_.fields.push_back(std::move(f));
  return *this;
}

LogEvent& LogEvent::i64(std::string_view key, std::int64_t value) {
  if (!active_) return *this;
  LogField f;
  f.key = std::string(key);
  f.type = LogField::Type::kInt;
  f.i = value;
  rec_.fields.push_back(std::move(f));
  return *this;
}

LogEvent& LogEvent::u64(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  LogField f;
  f.key = std::string(key);
  f.type = LogField::Type::kUint;
  f.u = value;
  rec_.fields.push_back(std::move(f));
  return *this;
}

LogEvent& LogEvent::f64(std::string_view key, double value) {
  if (!active_) return *this;
  LogField f;
  f.key = std::string(key);
  f.type = LogField::Type::kDouble;
  f.d = value;
  rec_.fields.push_back(std::move(f));
  return *this;
}

LogEvent& LogEvent::boolean(std::string_view key, bool value) {
  if (!active_) return *this;
  LogField f;
  f.key = std::string(key);
  f.type = LogField::Type::kBool;
  f.b = value;
  rec_.fields.push_back(std::move(f));
  return *this;
}

}  // namespace mpa::obs
