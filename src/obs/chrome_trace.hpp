// Chrome trace-event export for Tracer snapshots, so a session
// timeline opens directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing instead of being eyeballed as raw span JSON.
//
// The export uses complete ("X") events only — one per SpanRecord,
// with pid/tid/name/cat/ts/dur and the full '/'-separated span path
// under args.path — because a uniform event shape keeps the CI
// validator and downstream tooling trivial (every event has the same
// required keys). Timestamps are microseconds (the trace-event unit),
// carried as decimals so nanosecond starts survive the conversion.
//
// The parser accepts both trace shapes this repo writes — the
// Tracer::to_json() span list and the Chrome trace produced here — so
// `mpa_cli trace summarize` works on either file.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mpa::obs {

/// Serialize spans as a Chrome trace: {"displayTimeUnit":"ms",
/// "traceEvents":[{"ph":"X",...},...]}.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

/// Parse a trace file back into span records. Accepts Tracer span
/// JSON ({"spans":[...]}) and Chrome trace JSON ({"traceEvents":[...]},
/// X events; args.path preferred over name). Throws DataError on
/// malformed input or an unrecognized shape.
std::vector<SpanRecord> parse_trace_json(const std::string& json);

}  // namespace mpa::obs
