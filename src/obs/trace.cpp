#include "obs/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"

namespace mpa::obs {
namespace {

std::string& thread_current_path() {
  thread_local std::string path;
  return path;
}

RequestContext*& thread_request_context() {
  thread_local RequestContext* ctx = nullptr;
  return ctx;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

RequestContext RequestContext::tag_only() const {
  RequestContext out;
  out.req_id = req_id;
  out.tenant = tenant;
  out.kind = kind;
  out.enqueue_ns = enqueue_ns;
  out.dequeue_ns = dequeue_ns;
  return out;
}

RequestContext* current_request_context() { return thread_request_context(); }

ScopedRequestContext::ScopedRequestContext(RequestContext* ctx)
    : prev_(thread_request_context()) {
  thread_request_context() = ctx != nullptr ? ctx : prev_;
}

ScopedRequestContext::~ScopedRequestContext() { thread_request_context() = prev_; }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::string Tracer::current_path() { return thread_current_path(); }

Tracer::Buffer& Tracer::local_buffer() {
  // The tracer co-owns every buffer, so records survive thread exit
  // (pool teardown) until the next clear().
  thread_local std::shared_ptr<Buffer> buf;
  if (buf == nullptr) {
    buf = std::make_shared<Buffer>();
    MutexLock lk(mu_);
    buf->tid = static_cast<std::uint32_t>(buffers_.size()) + 1;
    buffers_.push_back(buf);
  }
  return *buf;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    MutexLock lk(mu_);
    bufs = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& b : bufs) {
    MutexLock lk(b->mu);
    out.insert(out.end(), b->records.begin(), b->records.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.path < b.path;
  });
  return out;
}

std::string Tracer::to_json() const {
  const auto spans = snapshot();
  std::ostringstream os;
  os << "{\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"path\":\"" << json_escape(spans[i].path) << "\",\"start_ns\":" << spans[i].start_ns
       << ",\"dur_ns\":" << spans[i].dur_ns;
    if (spans[i].req_id != 0) {
      os << ",\"req_id\":" << spans[i].req_id << ",\"tenant\":\"" << json_escape(spans[i].tenant)
         << '"';
    }
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string summarize_spans(const std::vector<SpanRecord>& spans) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_path;
  for (const auto& s : spans) {
    Agg& a = by_path[s.path];
    ++a.count;
    a.total_ns += s.dur_ns;
  }
  std::ostringstream os;
  for (const auto& [path, agg] : by_path) {
    std::size_t depth = 0;
    std::size_t last_seg = 0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] == '/') {
        ++depth;
        last_seg = i + 1;
      }
    }
    os << std::string(depth * 2, ' ') << path.substr(last_seg) << "  count=" << agg.count
       << "  total=" << static_cast<double>(agg.total_ns) * 1e-9 << "s\n";
  }
  return os.str();
}

std::string Tracer::summary() const { return summarize_spans(snapshot()); }

void Tracer::clear() {
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    MutexLock lk(mu_);
    bufs = buffers_;
  }
  for (const auto& b : bufs) {
    MutexLock lk(b->mu);
    b->records.clear();
  }
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  const std::string& cur = thread_current_path();
  path_ = cur.empty() ? std::string(name) : cur + "/" + std::string(name);
  open();
}

Span Span::with_path(std::string path) { return Span(AbsolutePath{}, std::move(path)); }

Span::Span(AbsolutePath, std::string path) {
  if (!enabled()) return;
  path_ = std::move(path);
  open();
}

void Span::open() {
  active_ = true;
  prev_path_ = thread_current_path();
  thread_current_path() = path_;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_ns();
  thread_current_path() = prev_path_;
  SpanRecord rec{std::move(path_), start_ns_, end - start_ns_, 0, 0, {}};
  if (RequestContext* ctx = thread_request_context()) {
    rec.req_id = ctx->req_id;
    rec.tenant = ctx->tenant;
    if (ctx->collect) ctx->stage_ns.emplace_back(rec.path, rec.dur_ns);
  }
  Tracer::Buffer& buf = Tracer::global().local_buffer();
  MutexLock lk(buf.mu);
  rec.tid = buf.tid;
  buf.records.push_back(std::move(rec));
}

}  // namespace mpa::obs
