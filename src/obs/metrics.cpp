#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace mpa::obs {
namespace {

std::atomic<bool> g_enabled{false};

double bits_to_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t next = double_to_bits(bits_to_double(old) + delta);
    if (bits.compare_exchange_weak(old, next, std::memory_order_relaxed)) return;
  }
}

/// Shortest round-trippable representation, always a valid JSON number.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  // Normalize "inf"/"nan" (never produced by our instruments, but keep
  // the output valid JSON regardless).
  if (std::strchr(buf, 'i') != nullptr || std::strchr(buf, 'n') != nullptr) return "0";
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t now_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

void Gauge::set(double v) { bits_.store(double_to_bits(v), std::memory_order_relaxed); }

void Gauge::add(double v) { atomic_add_double(bits_, v); }

double Gauge::value() const { return bits_to_double(bits_.load(std::memory_order_relaxed)); }

void Gauge::reset() { bits_.store(0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, v);
}

double Histogram::sum() const { return bits_to_double(sum_bits_.load(std::memory_order_relaxed)); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), q);
}

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts, double q) {
  const std::size_t n = std::min(counts.size(), bounds.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n; ++b) total += counts[b];
  if (total == 0) return 0;
  if (!(q >= 0)) q = 0;  // also catches NaN
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(total);
  double cumulative = 0;
  for (std::size_t b = 0; b < n; ++b) {
    if (counts[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next < target) {
      cumulative = next;
      continue;
    }
    // The +Inf bucket has no upper edge to interpolate toward: report
    // the highest finite bound (the best statement the buckets allow).
    if (b >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
    const double lower = b == 0 ? 0 : bounds[b - 1];
    const double upper = bounds[b];
    const double frac = (target - cumulative) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * frac;
  }
  return bounds.empty() ? 0 : bounds.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& latency_buckets_seconds() {
  static const std::vector<double> buckets = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                              0.1,  0.5,  1.0,  5.0,  30.0};
  return buckets;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, const std::vector<double>& bounds) {
  MutexLock lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::map<std::string, std::uint64_t> Registry::counters_snapshot() const {
  MutexLock lk(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::string Registry::to_json() const {
  MutexLock lk(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << format_number(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << format_number(h->sum()) << ",\"p50\":" << format_number(h->quantile(0.5))
       << ",\"p90\":" << format_number(h->quantile(0.9))
       << ",\"p99\":" << format_number(h->quantile(0.99)) << ",\"buckets\":[";
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      if (i != 0) os << ',';
      os << "{\"le\":";
      if (i < h->bounds().size()) {
        os << format_number(h->bounds()[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << cumulative << '}';
    }
    os << "]}";
  }
  os << "}}\n";
  return os.str();
}

std::string Registry::to_prometheus() const {
  MutexLock lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "# TYPE " << name << " counter\n" << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "# TYPE " << name << " gauge\n" << name << ' ' << format_number(g->value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "# TYPE " << name << " histogram\n";
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"";
      if (i < h->bounds().size()) {
        os << format_number(h->bounds()[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << '\n';
    }
    os << name << "_sum " << format_number(h->sum()) << '\n'
       << name << "_count " << h->count() << '\n';
  }
  return os.str();
}

std::string Registry::to_text() const {
  MutexLock lk(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) os << name << " = " << c->value() << '\n';
  for (const auto& [name, g] : gauges_) os << name << " = " << format_number(g->value()) << '\n';
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h->count() << " sum=" << format_number(h->sum())
       << "s p50=" << format_number(h->quantile(0.5)) << "s p90=" << format_number(h->quantile(0.9))
       << "s p99=" << format_number(h->quantile(0.99)) << "s\n";
  }
  return os.str();
}

void Registry::reset_values() {
  MutexLock lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace mpa::obs
