// Observability metrics for the MPA engine: a process-wide registry of
// counters, gauges, and fixed-bucket latency histograms, exported as
// JSON, Prometheus text, or a human-readable table.
//
// Design constraints (see DESIGN.md §8):
//  - lock-cheap on the hot path: instruments are plain atomics once
//    looked up; the registry mutex is only taken at lookup/registration
//    and export time.
//  - zero-overhead-when-disabled: call sites gate on `obs::enabled()`
//    (one relaxed atomic load) before touching clocks or instruments.
//  - deterministic export: instruments are keyed and emitted in name
//    order, so two runs that record the same events produce the same
//    metric names and (for counters) the same values regardless of
//    thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace mpa::obs {

/// Global observability switch. Off by default: the CLI turns it on for
/// --metrics-out / --trace-out / --stats, the benches for
/// MPA_BENCH_METRICS_OUT. Relaxed loads — callers only need a
/// monotonic-enough view, not an ordering guarantee.
bool enabled();
void set_enabled(bool on);

/// Nanoseconds since the first call (steady clock; shared by the span
/// tracer so span starts and histogram samples are comparable).
std::uint64_t now_ns();

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v);
  void add(double v);
  double value() const;
  void reset();

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< double stored as bit pattern.
};

/// Fixed-bucket histogram (cumulative counts at export, Prometheus
/// style). Bounds are upper edges; an implicit +Inf bucket catches the
/// rest. observe() is two relaxed atomic adds plus a CAS loop for the
/// sum — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Estimated q-quantile (q in [0,1]) from the bucket boundaries:
  /// linear interpolation inside the bucket holding the target rank,
  /// clamped to the highest finite bound for +Inf-bucket hits. 0 when
  /// empty. Exports surface p50/p90/p99.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
};

/// Default bounds for wall-time histograms, in seconds.
const std::vector<double>& latency_buckets_seconds();

/// Bucket-walk quantile estimator shared by Histogram and the windowed
/// registry. `bounds` are upper edges, `counts` has one extra slot for
/// the implicit +Inf bucket (counts.size() == bounds.size() + 1; excess
/// count slots are ignored). Well-defined at the edges: an empty
/// histogram is 0, all mass in one bucket interpolates within it (so
/// q=1 is exactly the bucket bound), +Inf-bucket hits clamp to the
/// highest finite bound, and q is clamped to [0,1].
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& counts, double q);

/// Named instruments, created on first access and stable thereafter
/// (references never invalidate). One process-wide instance.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name) EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) EXCLUDES(mu_);
  /// `bounds` is consulted only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = latency_buckets_seconds())
      EXCLUDES(mu_);

  /// All counter values, keyed by name (tests, summaries).
  std::map<std::string, std::uint64_t> counters_snapshot() const EXCLUDES(mu_);

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const EXCLUDES(mu_);
  /// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count).
  std::string to_prometheus() const EXCLUDES(mu_);
  /// Human-readable table for the CLI's --stats summary.
  std::string to_text() const EXCLUDES(mu_);

  /// Zero every instrument, keeping registrations (tests).
  void reset_values() EXCLUDES(mu_);

 private:
  Registry() = default;

  /// Guards the instrument maps. Lookup/registration and export only —
  /// never on the record hot path (instruments are atomics once
  /// returned; references stay valid for the process lifetime).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

/// RAII wall-time sample into a histogram (seconds). A null histogram
/// makes the timer inert — the idiom for disabled observability:
///   obs::ScopedTimer t(obs::enabled() ? &h : nullptr);
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), start_(h != nullptr ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->observe(static_cast<double>(now_ns() - start_) * 1e-9);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_;
};

}  // namespace mpa::obs
