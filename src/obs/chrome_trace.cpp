#include "obs/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace mpa::obs {
namespace {

/// Microseconds with nanosecond precision ("1234.567").
std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

std::string_view leaf_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string_view(path)
                                    : std::string_view(path).substr(slash + 1);
}

std::uint64_t us_to_ns(double us) {
  return us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i != 0) os << ',';
    os << "{\"ph\":\"X\",\"name\":\"" << json_escape(std::string(leaf_of(s.path)))
       << "\",\"cat\":\"mpa\",\"pid\":1,\"tid\":" << s.tid << ",\"ts\":" << format_us(s.start_ns)
       << ",\"dur\":" << format_us(s.dur_ns) << ",\"args\":{\"path\":\"" << json_escape(s.path)
       << '"';
    if (s.req_id != 0) {
      os << ",\"req_id\":" << s.req_id << ",\"tenant\":\"" << json_escape(s.tenant) << '"';
    }
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

std::vector<SpanRecord> parse_trace_json(const std::string& json) {
  const JsonValue doc = parse_json(json);
  std::vector<SpanRecord> out;
  if (const JsonValue* spans = doc.find("spans")) {
    for (const JsonValue& s : spans->as_array()) {
      SpanRecord rec;
      rec.path = s.at("path").as_string();
      rec.start_ns = s.at("start_ns").as_u64();
      rec.dur_ns = s.at("dur_ns").as_u64();
      if (const JsonValue* tid = s.find("tid"))
        rec.tid = static_cast<std::uint32_t>(tid->as_u64());
      if (const JsonValue* req = s.find("req_id")) rec.req_id = req->as_u64();
      if (const JsonValue* tenant = s.find("tenant")) rec.tenant = tenant->as_string();
      out.push_back(std::move(rec));
    }
    return out;
  }
  if (const JsonValue* events = doc.find("traceEvents")) {
    for (const JsonValue& e : events->as_array()) {
      // Tolerate foreign phases (metadata, counters) in hand-edited
      // traces; only complete events carry a duration to aggregate.
      if (const JsonValue* ph = e.find("ph"); ph != nullptr && ph->as_string() != "X") continue;
      SpanRecord rec;
      const JsonValue* path = e.find("args");
      const JsonValue* path_arg = path != nullptr ? path->find("path") : nullptr;
      rec.path = path_arg != nullptr ? path_arg->as_string() : e.at("name").as_string();
      rec.start_ns = us_to_ns(e.at("ts").as_number());
      rec.dur_ns = us_to_ns(e.at("dur").as_number());
      if (const JsonValue* tid = e.find("tid"))
        rec.tid = static_cast<std::uint32_t>(tid->as_number());
      if (path != nullptr) {
        if (const JsonValue* req = path->find("req_id")) rec.req_id = req->as_u64();
        if (const JsonValue* tenant = path->find("tenant")) rec.tenant = tenant->as_string();
      }
      out.push_back(std::move(rec));
    }
    return out;
  }
  throw DataError("trace file has neither \"spans\" nor \"traceEvents\"");
}

}  // namespace mpa::obs
