#include "obs/window.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"

namespace mpa::obs {
namespace {

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  if (std::strchr(buf, 'i') != nullptr || std::strchr(buf, 'n') != nullptr) return "0";
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::size_t status_slot(std::string_view status) {
  if (status == "ok") return 0;
  if (status == "rejected") return 1;
  if (status == "deadline_exceeded") return 2;
  return 3;  // error and anything unknown
}

void observe_ms(std::array<std::atomic<std::uint64_t>, 13>& hist, double ms) {
  const std::vector<double>& bounds = window_ms_bounds();
  std::size_t b = 0;
  while (b < bounds.size() && ms > bounds[b]) ++b;
  hist[b].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const std::vector<double>& window_ms_bounds() {
  static const std::vector<double> bounds = {0.1, 0.5, 1.0,   5.0,   10.0,  25.0,
                                             50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0};
  return bounds;
}

WindowRegistry::WindowRegistry(WindowOptions opts) : opts_(std::move(opts)) {
  if (opts_.buckets == 0) opts_.buckets = 1;
  if (opts_.bucket_width_ns == 0) opts_.bucket_width_ns = 1;
}

WindowRegistry& WindowRegistry::global() {
  static WindowRegistry* registry = new WindowRegistry();
  return *registry;
}

void WindowRegistry::configure(WindowOptions opts) {
  MutexLock lk(mu_);
  opts_ = std::move(opts);
  if (opts_.buckets == 0) opts_.buckets = 1;
  if (opts_.bucket_width_ns == 0) opts_.bucket_width_ns = 1;
  series_.clear();
}

std::uint64_t WindowRegistry::now() const {
  return opts_.clock ? opts_.clock() : now_ns();
}

WindowRegistry::Bucket& WindowRegistry::bucket_for(Series& s, std::uint64_t epoch) {
  Bucket& b = s.ring[static_cast<std::size_t>(epoch % s.ring.size())];
  if (b.epoch.load(std::memory_order_acquire) != epoch) {
    MutexLock lk(s.rotate_mu);
    if (b.epoch.load(std::memory_order_relaxed) != epoch) {
      for (auto& c : b.by_status) c.store(0, std::memory_order_relaxed);
      for (auto& c : b.queue) c.store(0, std::memory_order_relaxed);
      for (auto& c : b.service) c.store(0, std::memory_order_relaxed);
      for (auto& c : b.latency) c.store(0, std::memory_order_relaxed);
      b.epoch.store(epoch, std::memory_order_release);
    }
  }
  return b;
}

void WindowRegistry::record(std::string_view tenant, std::string_view kind,
                            std::string_view status, double queue_ms, double service_ms,
                            double latency_ms) {
  const std::uint64_t epoch = now() / opts_.bucket_width_ns;
  Series* series = nullptr;
  {
    MutexLock lk(mu_);
    auto& slot = series_[{std::string(tenant), std::string(kind)}];
    if (slot == nullptr) slot = std::make_unique<Series>(opts_.buckets);
    series = slot.get();
  }
  Bucket& b = bucket_for(*series, epoch);
  b.by_status[status_slot(status)].fetch_add(1, std::memory_order_relaxed);
  observe_ms(b.queue, queue_ms);
  observe_ms(b.service, service_ms);
  observe_ms(b.latency, latency_ms);
}

WindowRegistry::Snapshot WindowRegistry::snapshot() const {
  MutexLock lk(mu_);
  Snapshot snap;
  snap.window_seconds = static_cast<double>(opts_.buckets) *
                        static_cast<double>(opts_.bucket_width_ns) * 1e-9;
  const std::uint64_t current = now() / opts_.bucket_width_ns;
  const std::uint64_t min_epoch =
      current >= opts_.buckets - 1 ? current - (opts_.buckets - 1) : 0;
  for (const auto& [key, series] : series_) {
    SeriesWindow w;
    w.tenant = key.first;
    w.kind = key.second;
    std::vector<std::uint64_t> queue(kHistSlots, 0);
    std::vector<std::uint64_t> service(kHistSlots, 0);
    std::vector<std::uint64_t> latency(kHistSlots, 0);
    for (const Bucket& b : series->ring) {
      const std::uint64_t epoch = b.epoch.load(std::memory_order_acquire);
      if (epoch == kIdleEpoch || epoch < min_epoch || epoch > current) continue;
      w.ok += b.by_status[0].load(std::memory_order_relaxed);
      w.rejected += b.by_status[1].load(std::memory_order_relaxed);
      w.deadline_exceeded += b.by_status[2].load(std::memory_order_relaxed);
      w.error += b.by_status[3].load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kHistSlots; ++i) {
        queue[i] += b.queue[i].load(std::memory_order_relaxed);
        service[i] += b.service[i].load(std::memory_order_relaxed);
        latency[i] += b.latency[i].load(std::memory_order_relaxed);
      }
    }
    w.total = w.ok + w.rejected + w.deadline_exceeded + w.error;
    if (w.total == 0) continue;  // expired on an idle gap
    const double total = static_cast<double>(w.total);
    w.throughput_rps = snap.window_seconds > 0 ? total / snap.window_seconds : 0;
    w.ok_rate = static_cast<double>(w.ok) / total;
    w.reject_rate = static_cast<double>(w.rejected) / total;
    w.deadline_rate = static_cast<double>(w.deadline_exceeded) / total;
    w.error_rate = static_cast<double>(w.error) / total;
    const std::vector<double>& bounds = window_ms_bounds();
    w.queue_p50_ms = quantile_from_buckets(bounds, queue, 0.5);
    w.queue_p90_ms = quantile_from_buckets(bounds, queue, 0.9);
    w.queue_p99_ms = quantile_from_buckets(bounds, queue, 0.99);
    w.service_p50_ms = quantile_from_buckets(bounds, service, 0.5);
    w.service_p90_ms = quantile_from_buckets(bounds, service, 0.9);
    w.service_p99_ms = quantile_from_buckets(bounds, service, 0.99);
    w.latency_p50_ms = quantile_from_buckets(bounds, latency, 0.5);
    w.latency_p90_ms = quantile_from_buckets(bounds, latency, 0.9);
    w.latency_p99_ms = quantile_from_buckets(bounds, latency, 0.99);
    snap.series.push_back(std::move(w));
  }
  return snap;
}

std::string WindowRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"window_seconds\":" << format_number(snap.window_seconds) << ",\"series\":[";
  bool first = true;
  for (const SeriesWindow& w : snap.series) {
    if (!first) os << ',';
    first = false;
    os << "{\"tenant\":\"" << json_escape(w.tenant) << "\",\"kind\":\"" << json_escape(w.kind)
       << "\",\"total\":" << w.total << ",\"ok\":" << w.ok << ",\"rejected\":" << w.rejected
       << ",\"deadline_exceeded\":" << w.deadline_exceeded << ",\"error\":" << w.error
       << ",\"throughput_rps\":" << format_number(w.throughput_rps)
       << ",\"ok_rate\":" << format_number(w.ok_rate)
       << ",\"reject_rate\":" << format_number(w.reject_rate)
       << ",\"deadline_rate\":" << format_number(w.deadline_rate)
       << ",\"error_rate\":" << format_number(w.error_rate) << ",\"queue_ms\":{\"p50\":"
       << format_number(w.queue_p50_ms) << ",\"p90\":" << format_number(w.queue_p90_ms)
       << ",\"p99\":" << format_number(w.queue_p99_ms) << "},\"service_ms\":{\"p50\":"
       << format_number(w.service_p50_ms) << ",\"p90\":" << format_number(w.service_p90_ms)
       << ",\"p99\":" << format_number(w.service_p99_ms) << "},\"latency_ms\":{\"p50\":"
       << format_number(w.latency_p50_ms) << ",\"p90\":" << format_number(w.latency_p90_ms)
       << ",\"p99\":" << format_number(w.latency_p99_ms) << "}}";
  }
  os << "]}";
  return os.str();
}

std::string WindowRegistry::to_prometheus() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  auto labels = [](const SeriesWindow& w) {
    return "{tenant=\"" + w.tenant + "\",kind=\"" + w.kind + "\"}";
  };
  os << "# TYPE mpa_window_requests_total gauge\n";
  static const char* const kStatusNames[] = {"ok", "rejected", "deadline_exceeded", "error"};
  for (const SeriesWindow& w : snap.series) {
    const std::uint64_t by_status[] = {w.ok, w.rejected, w.deadline_exceeded, w.error};
    for (std::size_t s = 0; s < 4; ++s) {
      os << "mpa_window_requests_total{tenant=\"" << w.tenant << "\",kind=\"" << w.kind
         << "\",status=\"" << kStatusNames[s] << "\"} " << by_status[s] << '\n';
    }
  }
  os << "# TYPE mpa_window_throughput_rps gauge\n";
  for (const SeriesWindow& w : snap.series) {
    os << "mpa_window_throughput_rps" << labels(w) << ' ' << format_number(w.throughput_rps)
       << '\n';
  }
  os << "# TYPE mpa_window_error_rate gauge\n";
  for (const SeriesWindow& w : snap.series) {
    os << "mpa_window_error_rate" << labels(w) << ' ' << format_number(w.error_rate) << '\n';
  }
  os << "# TYPE mpa_window_reject_rate gauge\n";
  for (const SeriesWindow& w : snap.series) {
    os << "mpa_window_reject_rate" << labels(w) << ' ' << format_number(w.reject_rate) << '\n';
  }
  os << "# TYPE mpa_window_deadline_rate gauge\n";
  for (const SeriesWindow& w : snap.series) {
    os << "mpa_window_deadline_rate" << labels(w) << ' ' << format_number(w.deadline_rate)
       << '\n';
  }
  static const char* const kQuantiles[] = {"0.5", "0.9", "0.99"};
  auto hist_block = [&](const char* name, auto member_p50, auto member_p90, auto member_p99) {
    os << "# TYPE " << name << " gauge\n";
    for (const SeriesWindow& w : snap.series) {
      const double qs[] = {w.*member_p50, w.*member_p90, w.*member_p99};
      for (std::size_t i = 0; i < 3; ++i) {
        os << name << "{tenant=\"" << w.tenant << "\",kind=\"" << w.kind << "\",quantile=\""
           << kQuantiles[i] << "\"} " << format_number(qs[i]) << '\n';
      }
    }
  };
  hist_block("mpa_window_queue_ms", &SeriesWindow::queue_p50_ms, &SeriesWindow::queue_p90_ms,
             &SeriesWindow::queue_p99_ms);
  hist_block("mpa_window_service_ms", &SeriesWindow::service_p50_ms,
             &SeriesWindow::service_p90_ms, &SeriesWindow::service_p99_ms);
  hist_block("mpa_window_latency_ms", &SeriesWindow::latency_p50_ms,
             &SeriesWindow::latency_p90_ms, &SeriesWindow::latency_p99_ms);
  return os.str();
}

std::string WindowRegistry::canonical_json() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"series\":[";
  bool first = true;
  for (const SeriesWindow& w : snap.series) {
    if (!first) os << ',';
    first = false;
    os << "{\"tenant\":\"" << json_escape(w.tenant) << "\",\"kind\":\"" << json_escape(w.kind)
       << "\",\"total\":" << w.total << ",\"ok\":" << w.ok << ",\"rejected\":" << w.rejected
       << ",\"deadline_exceeded\":" << w.deadline_exceeded << ",\"error\":" << w.error << '}';
  }
  os << "]}";
  return os.str();
}

void WindowRegistry::clear() {
  MutexLock lk(mu_);
  series_.clear();
}

}  // namespace mpa::obs
