#include "learn/eval.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

/// Stratified fold assignment: shuffle within each class, deal
/// round-robin so each fold mirrors the class skew.
std::vector<int> assign_folds(const Dataset& data, int k, Rng& rng) {
  std::vector<int> fold_of(data.size(), 0);
  std::vector<std::vector<std::size_t>> by_class(static_cast<std::size_t>(data.num_classes));
  for (std::size_t i = 0; i < data.size(); ++i)
    by_class[static_cast<std::size_t>(data.y[i])].push_back(i);
  int next = 0;
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    for (std::size_t i : rows) fold_of[i] = next++ % k;
  }
  return fold_of;
}

EvalResult from_confusion(std::vector<std::vector<int>> confusion) {
  EvalResult r;
  const std::size_t k = confusion.size();
  r.precision.assign(k, 0.0);
  r.recall.assign(k, 0.0);
  long correct = 0, total = 0;
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t p = 0; p < k; ++p) {
      total += confusion[a][p];
      if (a == p) correct += confusion[a][p];
    }
  r.accuracy = total == 0 ? 0 : static_cast<double>(correct) / static_cast<double>(total);
  for (std::size_t c = 0; c < k; ++c) {
    long pred_c = 0, actual_c = 0;
    for (std::size_t a = 0; a < k; ++a) pred_c += confusion[a][c];
    for (std::size_t p = 0; p < k; ++p) actual_c += confusion[c][p];
    if (pred_c > 0)
      r.precision[c] = static_cast<double>(confusion[c][c]) / static_cast<double>(pred_c);
    if (actual_c > 0)
      r.recall[c] = static_cast<double>(confusion[c][c]) / static_cast<double>(actual_c);
  }
  r.confusion = std::move(confusion);
  return r;
}

}  // namespace

std::string EvalResult::to_string(std::span<const std::string> class_names) const {
  std::ostringstream os;
  os << "accuracy " << format_double(accuracy * 100, 1) << "%\n";
  for (std::size_t c = 0; c < precision.size(); ++c) {
    os << "  " << class_names[c] << ": precision " << format_double(precision[c], 2)
       << ", recall " << format_double(recall[c], 2) << '\n';
  }
  return os.str();
}

EvalResult evaluate(const Dataset& test, const Predictor& model) {
  require(!test.x.empty(), "evaluate: empty test set");
  std::vector<std::vector<int>> confusion(
      static_cast<std::size_t>(test.num_classes),
      std::vector<int>(static_cast<std::size_t>(test.num_classes), 0));
  for (std::size_t i = 0; i < test.size(); ++i)
    confusion[static_cast<std::size_t>(test.y[i])]
             [static_cast<std::size_t>(model(test.x[i]))]++;
  return from_confusion(std::move(confusion));
}

EvalResult cross_validate(const Dataset& data, int k, const Trainer& trainer, Rng& rng,
                          const std::function<Dataset(const Dataset&)>& transform_train) {
  require(k >= 2, "cross_validate: need k >= 2");
  require(data.size() >= static_cast<std::size_t>(k), "cross_validate: too few samples");

  const std::vector<int> fold_of = assign_folds(data, k, rng);

  std::vector<std::vector<int>> confusion(
      static_cast<std::size_t>(data.num_classes),
      std::vector<int>(static_cast<std::size_t>(data.num_classes), 0));
  for (int f = 0; f < k; ++f) {
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < data.size(); ++i)
      (fold_of[i] == f ? test_idx : train_idx).push_back(i);
    if (test_idx.empty() || train_idx.empty()) continue;
    Dataset train = data.subset(train_idx);
    if (transform_train) train = transform_train(train);
    const Dataset test = data.subset(test_idx);
    const Predictor model = trainer(train);
    for (std::size_t i = 0; i < test.size(); ++i)
      confusion[static_cast<std::size_t>(test.y[i])]
               [static_cast<std::size_t>(model(test.x[i]))]++;
  }
  return from_confusion(std::move(confusion));
}

EvalResult cross_validate(const Dataset& data, int k, const TrainerFactory& factory, Rng& rng,
                          const std::function<Dataset(const Dataset&)>& transform_train,
                          ThreadPool* pool) {
  require(k >= 2, "cross_validate: need k >= 2");
  require(data.size() >= static_cast<std::size_t>(k), "cross_validate: too few samples");

  const std::vector<int> fold_of = assign_folds(data, k, rng);

  // All RNG derivation happens here, on the calling thread, in fold
  // order — the fanned-out folds only consume their private streams.
  std::vector<Rng> fold_rngs;
  fold_rngs.reserve(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) fold_rngs.push_back(rng.fork());

  const std::size_t kc = static_cast<std::size_t>(data.num_classes);
  std::vector<std::vector<std::vector<int>>> fold_confusion(
      static_cast<std::size_t>(k),
      std::vector<std::vector<int>>(kc, std::vector<int>(kc, 0)));

  parallel_for(pool, static_cast<std::size_t>(k), [&](std::size_t fi) {
    const int f = static_cast<int>(fi);
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < data.size(); ++i)
      (fold_of[i] == f ? test_idx : train_idx).push_back(i);
    if (test_idx.empty() || train_idx.empty()) return;
    Dataset train = data.subset(train_idx);
    if (transform_train) train = transform_train(train);
    const Dataset test = data.subset(test_idx);
    const Trainer trainer = factory(fold_rngs[fi]);
    const Predictor model = trainer(train);
    auto& confusion = fold_confusion[fi];
    for (std::size_t i = 0; i < test.size(); ++i)
      confusion[static_cast<std::size_t>(test.y[i])]
               [static_cast<std::size_t>(model(test.x[i]))]++;
  });

  std::vector<std::vector<int>> confusion(kc, std::vector<int>(kc, 0));
  for (const auto& fc : fold_confusion)
    for (std::size_t a = 0; a < kc; ++a)
      for (std::size_t p = 0; p < kc; ++p) confusion[a][p] += fc[a][p];
  return from_confusion(std::move(confusion));
}

}  // namespace mpa
