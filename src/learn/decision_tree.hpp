// C4.5-style decision tree over binned categorical features (§6.1).
//
// "Decision trees are better equipped to capture the limited set of
// unhealthy cases, because they can model arbitrary boundaries between
// cases. Furthermore, they are intuitive for operators to understand."
//
// Splits are multiway on a feature's bin value, chosen by information
// gain ratio (Quinlan). Pruning follows the paper: "each branch where
// the number of data points reaching this branch is below a threshold
// alpha is replaced with a leaf whose label is the majority class among
// the data points reaching that leaf. We set alpha = 1% of all data."
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "learn/dataset.hpp"

namespace mpa {

struct TreeOptions {
  /// Pruning threshold as a fraction of the total training weight.
  double min_weight_frac = 0.01;
  /// Optional depth cap (weak learners for boosting); <=0 = unlimited.
  int max_depth = 0;
  /// Gain ratio (C4.5) vs plain information gain (ID3-style).
  bool use_gain_ratio = true;
};

class DecisionTree {
 public:
  /// Learn a tree from weighted examples. Requires a non-empty dataset.
  static DecisionTree fit(const Dataset& data, const TreeOptions& opts = {});

  /// Predict the class of one binned feature vector.
  int predict(std::span<const int> x) const;

  /// Number of nodes (internal + leaves).
  std::size_t node_count() const { return nodes_.size(); }
  /// Number of leaves.
  std::size_t leaf_count() const;
  /// Maximum root-to-leaf depth (root = 0).
  int depth() const;

  /// The feature split at the root (-1 if the tree is a single leaf) —
  /// the paper observes this is the highest-MI practice (§6.2).
  int root_feature() const;

  /// Render the top `max_depth` levels, one node per line, using the
  /// given feature and class names (Figure 10).
  std::string describe(std::span<const std::string> feature_names,
                       std::span<const std::string> class_names, int max_depth = 3) const;

  /// One root-to-leaf decision rule: the bin constraints along the path
  /// and the leaf's class. §6.2: "examining the paths from the decision
  /// tree's root to its leaves provides valuable insights into which
  /// combinations of management practices lead to an (un)healthy
  /// network."
  struct Rule {
    /// (feature index, bin value) constraints in root-to-leaf order.
    std::vector<std::pair<int, int>> conditions;
    int label = 0;
  };

  /// All rules whose leaf predicts `label`, shortest first.
  std::vector<Rule> paths_to(int label) const;

  /// Render a rule like "No. of devices=high AND No. of roles=low ->
  /// unhealthy" using 5-bin level names.
  static std::string format_rule(const Rule& rule, std::span<const std::string> feature_names,
                                 std::span<const std::string> class_names);

 private:
  struct Node {
    int feature = -1;           ///< -1 for leaves.
    int label = 0;              ///< Majority class (valid for all nodes).
    std::vector<int> children;  ///< Child node index per bin value.
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows, std::vector<bool>& used,
            double total_weight, const TreeOptions& opts, int depth);

  std::vector<Node> nodes_;  ///< nodes_[0] is the root.
  int root_ = -1;
};

}  // namespace mpa
