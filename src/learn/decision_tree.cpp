#include "learn/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace mpa {
namespace {

double entropy_from_weights(std::span<const double> class_w, double total) {
  if (total <= 0) return 0;
  double h = 0;
  for (double w : class_w) {
    if (w <= 0) continue;
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

DecisionTree DecisionTree::fit(const Dataset& data, const TreeOptions& opts) {
  require(!data.x.empty(), "DecisionTree::fit: empty dataset");
  require(data.x.size() == data.y.size() && data.x.size() == data.w.size(),
          "DecisionTree::fit: inconsistent dataset");
  DecisionTree tree;
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<bool> used(data.num_features(), false);
  tree.root_ = tree.build(data, rows, used, data.total_weight(), opts, 0);
  return tree;
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& rows,
                        std::vector<bool>& used, double total_weight, const TreeOptions& opts,
                        int depth) {
  // Class distribution at this node.
  std::vector<double> class_w(static_cast<std::size_t>(data.num_classes), 0.0);
  double node_weight = 0;
  for (std::size_t i : rows) {
    class_w[static_cast<std::size_t>(data.y[i])] += data.w[i];
    node_weight += data.w[i];
  }
  const int majority =
      static_cast<int>(std::max_element(class_w.begin(), class_w.end()) - class_w.begin());

  Node node;
  node.label = majority;

  const bool pure = class_w[static_cast<std::size_t>(majority)] >= node_weight - 1e-12;
  const bool too_small = node_weight < opts.min_weight_frac * total_weight;
  const bool too_deep = opts.max_depth > 0 && depth >= opts.max_depth;
  bool any_feature_left = false;
  for (bool u : used)
    if (!u) {
      any_feature_left = true;
      break;
    }

  if (!pure && !too_small && !too_deep && any_feature_left && rows.size() >= 2) {
    // Pick the best split by (gain ratio | information gain).
    const double parent_h = entropy_from_weights(class_w, node_weight);
    int best_feature = -1;
    double best_score = 1e-12;  // require strictly positive gain
    const int bins = data.feature_bins;
    std::vector<double> bin_w(static_cast<std::size_t>(bins));
    std::vector<std::vector<double>> bin_class_w(
        static_cast<std::size_t>(bins),
        std::vector<double>(static_cast<std::size_t>(data.num_classes)));

    for (std::size_t f = 0; f < data.num_features(); ++f) {
      if (used[f]) continue;
      for (auto& v : bin_w) v = 0;
      for (auto& vec : bin_class_w) std::fill(vec.begin(), vec.end(), 0.0);
      // Stream the contiguous feature column instead of striding rows.
      const std::span<const int> column = data.x.col(f);
      for (std::size_t i : rows) {
        const auto b = static_cast<std::size_t>(column[i]);
        bin_w[b] += data.w[i];
        bin_class_w[b][static_cast<std::size_t>(data.y[i])] += data.w[i];
      }
      double cond_h = 0, split_info = 0;
      int populated = 0;
      for (int b = 0; b < bins; ++b) {
        const double wb = bin_w[static_cast<std::size_t>(b)];
        if (wb <= 0) continue;
        ++populated;
        const double p = wb / node_weight;
        cond_h += p * entropy_from_weights(bin_class_w[static_cast<std::size_t>(b)], wb);
        split_info -= p * std::log2(p);
      }
      if (populated < 2) continue;  // feature is constant here
      const double gain = parent_h - cond_h;
      const double score = opts.use_gain_ratio ? (split_info > 1e-9 ? gain / split_info : 0) : gain;
      if (score > best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
      }
    }

    if (best_feature >= 0) {
      node.feature = best_feature;
      const int node_index = static_cast<int>(nodes_.size());
      nodes_.push_back(node);  // placeholder; children filled below

      // Partition rows by bin value of the chosen feature.
      std::vector<std::vector<std::size_t>> parts(static_cast<std::size_t>(data.feature_bins));
      const std::span<const int> best_column =
          data.x.col(static_cast<std::size_t>(best_feature));
      for (std::size_t i : rows)
        parts[static_cast<std::size_t>(best_column[i])].push_back(i);

      used[static_cast<std::size_t>(best_feature)] = true;
      std::vector<int> children(static_cast<std::size_t>(data.feature_bins), -1);
      for (int b = 0; b < data.feature_bins; ++b) {
        auto& part = parts[static_cast<std::size_t>(b)];
        if (part.empty()) {
          // Empty branch: leaf with the parent's majority class.
          Node leaf;
          leaf.label = majority;
          children[static_cast<std::size_t>(b)] = static_cast<int>(nodes_.size());
          nodes_.push_back(leaf);
        } else {
          children[static_cast<std::size_t>(b)] =
              build(data, part, used, total_weight, opts, depth + 1);
        }
      }
      used[static_cast<std::size_t>(best_feature)] = false;
      nodes_[static_cast<std::size_t>(node_index)].children = std::move(children);
      return node_index;
    }
  }

  // Leaf.
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

int DecisionTree::predict(std::span<const int> x) const {
  require(root_ >= 0, "DecisionTree::predict: tree not fitted");
  const Node* n = &nodes_[static_cast<std::size_t>(root_)];
  while (n->feature >= 0) {
    const auto f = static_cast<std::size_t>(n->feature);
    require(f < x.size(), "DecisionTree::predict: feature vector too short");
    auto b = static_cast<std::size_t>(x[f]);
    if (b >= n->children.size()) b = n->children.size() - 1;  // clamp stray bins
    n = &nodes_[static_cast<std::size_t>(n->children[b])];
  }
  return n->label;
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes_)
    if (n.feature < 0) ++c;
  return c;
}

int DecisionTree::depth() const {
  if (root_ < 0) return 0;
  // Iterative DFS carrying depth.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    for (int c : n.children) stack.emplace_back(c, d + 1);
  }
  return max_depth;
}

int DecisionTree::root_feature() const {
  return root_ < 0 ? -1 : nodes_[static_cast<std::size_t>(root_)].feature;
}

std::vector<DecisionTree::Rule> DecisionTree::paths_to(int label) const {
  std::vector<Rule> out;
  if (root_ < 0) return out;
  struct Frame {
    int idx;
    std::vector<std::pair<int, int>> conditions;
  };
  std::vector<Frame> stack{{root_, {}}};
  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(fr.idx)];
    if (n.feature < 0) {
      if (n.label == label) out.push_back(Rule{std::move(fr.conditions), n.label});
      continue;
    }
    for (std::size_t b = 0; b < n.children.size(); ++b) {
      Frame child{n.children[b], fr.conditions};
      child.conditions.emplace_back(n.feature, static_cast<int>(b));
      stack.push_back(std::move(child));
    }
  }
  std::sort(out.begin(), out.end(), [](const Rule& a, const Rule& b) {
    return a.conditions.size() < b.conditions.size();
  });
  return out;
}

std::string DecisionTree::format_rule(const Rule& rule,
                                      std::span<const std::string> feature_names,
                                      std::span<const std::string> class_names) {
  static const char* kBinNames[] = {"very low", "low", "medium", "high", "very high"};
  std::string out;
  for (std::size_t i = 0; i < rule.conditions.size(); ++i) {
    if (i) out += " AND ";
    const auto [feature, bin] = rule.conditions[i];
    out += feature_names[static_cast<std::size_t>(feature)];
    out += '=';
    out += bin < 5 ? kBinNames[bin] : std::to_string(bin).c_str();
  }
  out += " -> ";
  out += class_names[static_cast<std::size_t>(rule.label)];
  return out;
}

std::string DecisionTree::describe(std::span<const std::string> feature_names,
                                   std::span<const std::string> class_names,
                                   int max_depth) const {
  std::ostringstream os;
  if (root_ < 0) return "<empty tree>\n";
  // DFS with explicit stack of (node, depth, branch label).
  struct Frame {
    int idx;
    int depth;
    std::string branch;
  };
  std::vector<Frame> stack{{root_, 0, ""}};
  while (!stack.empty()) {
    const Frame fr = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(fr.idx)];
    os << std::string(static_cast<std::size_t>(fr.depth) * 2, ' ');
    if (!fr.branch.empty()) os << "[" << fr.branch << "] ";
    if (n.feature < 0) {
      os << "-> " << class_names[static_cast<std::size_t>(n.label)] << '\n';
      continue;
    }
    os << feature_names[static_cast<std::size_t>(n.feature)];
    if (fr.depth + 1 > max_depth) {
      os << " ...\n";
      continue;
    }
    os << '\n';
    static const char* kBinNames[] = {"very low", "low", "medium", "high", "very high"};
    for (std::size_t b = n.children.size(); b-- > 0;) {
      const std::string label =
          n.children.size() == 5 ? kBinNames[b] : ("bin " + std::to_string(b));
      stack.push_back(Frame{n.children[b], fr.depth + 1, label});
    }
  }
  return os.str();
}

}  // namespace mpa
