// Minority-class oversampling (§6.1).
//
// "Oversampling directly addresses skew as it repeats the minority
// class examples during training. When building a 2-class model we
// replicate samples from the unhealthy class twice, and when building a
// 5-class model we replicate samples from the poor class twice and the
// moderate and good classes thrice."
#pragma once

#include <map>

#include "learn/dataset.hpp"

namespace mpa {

/// Replicate each class's samples so class c appears `multiplicity[c]`
/// times in the output (1 = unchanged; classes absent from the map are
/// unchanged). Multiplicities must be >= 1.
Dataset oversample(const Dataset& data, const std::map<int, int>& multiplicity);

/// The paper's replication recipe for 2- and 5-class models.
std::map<int, int> paper_oversampling_recipe(int num_classes);

}  // namespace mpa
