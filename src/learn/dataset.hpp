// Learning datasets for the health-prediction models (§6.1).
//
// "Prior to learning, we bin data as described in Section 5.1.1.
// However, we use only 5 bins for each management practice. For network
// health, we use either 2 bins or 5 bins; two bins differentiate
// coarsely between healthy (<=1 tickets) and unhealthy networks, while
// five bins capture excellent, good, moderate, poor, and very poor
// (<=2, 3-5, 6-8, 9-11, and >=12 tickets, respectively)."
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "metrics/case_table.hpp"
#include "stats/binning.hpp"

namespace mpa {

/// Number of bins per practice feature in learned models.
inline constexpr int kFeatureBins = 5;

/// Dual-layout feature matrix: rows are stored contiguously (so a
/// sample still hands models a zero-copy `span<const int>`, preserving
/// the Predictor API) and every feature column is stored contiguously
/// as well (so split search streams one cache-friendly column instead
/// of striding across rows). All rows must share one width, fixed by
/// the first push_back.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  /// Brace construction/assignment: `x = {{0, 1}, {1, 0}};`.
  FeatureMatrix(std::initializer_list<std::vector<int>> rows) {
    for (const auto& r : rows) push_back(r);
  }

  /// Append one sample (width must match previously pushed rows).
  void push_back(std::span<const int> row);
  void push_back(std::initializer_list<int> row) {
    push_back(std::span<const int>(row.begin(), row.size()));
  }

  /// Row i as a contiguous span (valid until the next push_back).
  std::span<const int> operator[](std::size_t i) const {
    return {row_major_.data() + i * width_, width_};
  }
  /// Feature column f, one value per row, contiguous.
  std::span<const int> col(std::size_t f) const { return cols_[f]; }

  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  /// Features per row (0 until the first push_back).
  std::size_t width() const { return width_; }
  void reserve(std::size_t rows) {
    row_major_.reserve(rows * width_);
    for (auto& c : cols_) c.reserve(rows);
  }

  bool operator==(const FeatureMatrix& o) const {
    return rows_ == o.rows_ && width_ == o.width_ && row_major_ == o.row_major_;
  }

  /// Row iteration (`for (auto row : x)` yields spans).
  class const_iterator {
   public:
    const_iterator(const FeatureMatrix* m, std::size_t i) : m_(m), i_(i) {}
    std::span<const int> operator*() const { return (*m_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const FeatureMatrix* m_;
    std::size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, rows_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t width_ = 0;
  std::vector<int> row_major_;          ///< rows_ x width_, row-major.
  std::vector<std::vector<int>> cols_;  ///< width_ columns, each rows_ long.
};

/// 2-class health label: 0 = healthy (<=1 ticket), 1 = unhealthy.
int health_class_2(double tickets);
/// 5-class health label: 0..4 = excellent..very poor.
int health_class_5(double tickets);

/// Display names for the label space ("healthy"/"unhealthy" or
/// "excellent".."very poor").
std::vector<std::string> health_class_names(int num_classes);

/// A discretized learning dataset: binned features + class labels +
/// per-sample weights.
struct Dataset {
  FeatureMatrix x;                  ///< n rows x d binned features.
  std::vector<int> y;               ///< n labels in [0, num_classes).
  std::vector<double> w;            ///< n weights (all 1.0 unless reweighted).
  std::vector<std::string> feature_names;
  int num_classes = 2;
  int feature_bins = kFeatureBins;  ///< Bin count shared by all features.

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return feature_names.size(); }
  double total_weight() const;
  /// Per-class summed weight.
  std::vector<double> class_weights() const;
  /// Majority class by weight.
  int majority_class() const;
  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;
};

/// Feature binners fitted on a case table (one per practice), so a
/// model trained on months t-M..t-1 can discretize month t consistently.
struct FeatureSpace {
  std::vector<Binner> binners;  ///< One per practice, kFeatureBins bins.

  static FeatureSpace fit(const CaseTable& table);
  /// Discretize one case's practice vector.
  std::vector<int> bin_case(const Case& c) const;
};

/// Build a dataset from a case table. `num_classes` must be 2 or 5.
/// When `space` is provided it is used as-is (online prediction);
/// otherwise a fresh FeatureSpace is fitted on `table`.
Dataset make_dataset(const CaseTable& table, int num_classes,
                     const FeatureSpace* space = nullptr);

}  // namespace mpa
