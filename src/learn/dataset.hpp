// Learning datasets for the health-prediction models (§6.1).
//
// "Prior to learning, we bin data as described in Section 5.1.1.
// However, we use only 5 bins for each management practice. For network
// health, we use either 2 bins or 5 bins; two bins differentiate
// coarsely between healthy (<=1 tickets) and unhealthy networks, while
// five bins capture excellent, good, moderate, poor, and very poor
// (<=2, 3-5, 6-8, 9-11, and >=12 tickets, respectively)."
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/case_table.hpp"
#include "stats/binning.hpp"

namespace mpa {

/// Number of bins per practice feature in learned models.
inline constexpr int kFeatureBins = 5;

/// 2-class health label: 0 = healthy (<=1 ticket), 1 = unhealthy.
int health_class_2(double tickets);
/// 5-class health label: 0..4 = excellent..very poor.
int health_class_5(double tickets);

/// Display names for the label space ("healthy"/"unhealthy" or
/// "excellent".."very poor").
std::vector<std::string> health_class_names(int num_classes);

/// A discretized learning dataset: binned features + class labels +
/// per-sample weights.
struct Dataset {
  std::vector<std::vector<int>> x;  ///< n rows x d binned features.
  std::vector<int> y;               ///< n labels in [0, num_classes).
  std::vector<double> w;            ///< n weights (all 1.0 unless reweighted).
  std::vector<std::string> feature_names;
  int num_classes = 2;
  int feature_bins = kFeatureBins;  ///< Bin count shared by all features.

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return feature_names.size(); }
  double total_weight() const;
  /// Per-class summed weight.
  std::vector<double> class_weights() const;
  /// Majority class by weight.
  int majority_class() const;
  /// Subset by row indices.
  Dataset subset(std::span<const std::size_t> indices) const;
};

/// Feature binners fitted on a case table (one per practice), so a
/// model trained on months t-M..t-1 can discretize month t consistently.
struct FeatureSpace {
  std::vector<Binner> binners;  ///< One per practice, kFeatureBins bins.

  static FeatureSpace fit(const CaseTable& table);
  /// Discretize one case's practice vector.
  std::vector<int> bin_case(const Case& c) const;
};

/// Build a dataset from a case table. `num_classes` must be 2 or 5.
/// When `space` is provided it is used as-is (online prediction);
/// otherwise a fresh FeatureSpace is fitted on `table`.
Dataset make_dataset(const CaseTable& table, int num_classes,
                     const FeatureSpace* space = nullptr);

}  // namespace mpa
