#include "learn/adaboost.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {
namespace {

// One SAMME round: fit a tree on `working` weights, compute its
// weighted error and alpha, and update the weights in place.
// Returns false (and leaves weights unchanged) if boosting should stop.
bool samme_round(Dataset& working, const TreeOptions& tree_opts, DecisionTree* out_tree,
                 double* out_alpha) {
  const DecisionTree tree = DecisionTree::fit(working, tree_opts);
  double err = 0, total = 0;
  std::vector<bool> wrong(working.size());
  for (std::size_t i = 0; i < working.size(); ++i) {
    wrong[i] = tree.predict(working.x[i]) != working.y[i];
    if (wrong[i]) err += working.w[i];
    total += working.w[i];
  }
  err /= total;
  const double k = working.num_classes;
  if (err <= 1e-12) {  // perfect learner: keep it, stop boosting
    *out_tree = tree;
    *out_alpha = 10.0;  // effectively dominant
    return false;
  }
  if (err >= 1.0 - 1.0 / k) return false;  // worse than chance: stop
  const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
  for (std::size_t i = 0; i < working.size(); ++i)
    if (wrong[i]) working.w[i] *= std::exp(alpha);
  // Normalize to keep weights in a sane range.
  double sum = 0;
  for (double w : working.w) sum += w;
  const double scale = static_cast<double>(working.size()) / sum;
  for (double& w : working.w) w *= scale;
  *out_tree = tree;
  *out_alpha = alpha;
  return true;
}

}  // namespace

AdaBoostClassifier AdaBoostClassifier::fit(const Dataset& data, const BoostOptions& opts) {
  require(!data.x.empty(), "AdaBoostClassifier::fit: empty dataset");
  AdaBoostClassifier model;
  model.num_classes_ = data.num_classes;
  Dataset working = data;
  for (int t = 0; t < opts.iterations; ++t) {
    DecisionTree tree;
    double alpha = 0;
    const bool cont = samme_round(working, opts.tree, &tree, &alpha);
    if (alpha > 0) {
      model.trees_.push_back(std::move(tree));
      model.alphas_.push_back(alpha);
    }
    if (!cont) break;
  }
  if (model.trees_.empty()) {
    // Degenerate data (e.g. single class): fall back to one plain tree.
    model.trees_.push_back(DecisionTree::fit(data, opts.tree));
    model.alphas_.push_back(1.0);
  }
  return model;
}

int AdaBoostClassifier::predict(std::span<const int> x) const {
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t)
    votes[static_cast<std::size_t>(trees_[t].predict(x))] += alphas_[t];
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

DecisionTree fit_reweighted_tree(const Dataset& data, const BoostOptions& opts) {
  require(!data.x.empty(), "fit_reweighted_tree: empty dataset");
  Dataset working = data;
  for (int t = 0; t < opts.iterations; ++t) {
    DecisionTree tree;
    double alpha = 0;
    if (!samme_round(working, opts.tree, &tree, &alpha)) break;
  }
  return DecisionTree::fit(working, opts.tree);
}

}  // namespace mpa
