// AdaBoost for the skewed health-prediction problem (§6.1).
//
// "Over many iterations (we use 15) AdaBoost increases (decreases) the
// weight of examples that were classified incorrectly (correctly) by
// the learner; the final learner (i.e., decision tree) is built from
// the last iteration's weighted examples."
//
// Two variants are provided:
//  * AdaBoostClassifier — the standard SAMME ensemble (weighted vote);
//  * fit_reweighted_tree — the paper's variant: run the SAMME weight
//    updates and keep only the single tree trained on the final
//    weights (operators get one interpretable tree).
#pragma once

#include <span>
#include <vector>

#include "learn/decision_tree.hpp"

namespace mpa {

struct BoostOptions {
  int iterations = 15;
  TreeOptions tree = {};
};

/// SAMME multi-class AdaBoost over decision-tree weak learners.
class AdaBoostClassifier {
 public:
  static AdaBoostClassifier fit(const Dataset& data, const BoostOptions& opts = {});

  int predict(std::span<const int> x) const;

  std::size_t rounds() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
  int num_classes_ = 2;
};

/// The paper's single-tree variant: SAMME reweighting for
/// `opts.iterations` rounds, then one tree fitted on the final weights.
DecisionTree fit_reweighted_tree(const Dataset& data, const BoostOptions& opts = {});

}  // namespace mpa
