// Random forests, including the balanced and weighted variants the
// paper evaluated (§6.1, footnote 2):
//
// "We also experimented with random forests; neither balanced nor
// weighted random forests improve the accuracy for the minority classes
// beyond the improvements we are already able to achieve with boosting
// and oversampling."
#pragma once

#include <span>
#include <vector>

#include "learn/decision_tree.hpp"
#include "util/rng.hpp"

namespace mpa {

enum class ForestVariant : std::uint8_t {
  kPlain,     ///< Standard bootstrap over all samples.
  kBalanced,  ///< Per-tree bootstrap draws equal counts from each class.
  kWeighted,  ///< Sample weights inversely proportional to class frequency.
};

struct ForestOptions {
  int num_trees = 25;
  ForestVariant variant = ForestVariant::kPlain;
  /// Features considered per tree (random subspace); <=0 means sqrt(d).
  int features_per_tree = 0;
  TreeOptions tree = {};
};

class RandomForest {
 public:
  static RandomForest fit(const Dataset& data, Rng& rng, const ForestOptions& opts = {});

  /// Majority vote over the ensemble.
  int predict(std::span<const int> x) const;

  std::size_t size() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  /// Per tree: which original feature each reduced column came from.
  std::vector<std::vector<std::size_t>> feature_maps_;
  int num_classes_ = 2;
};

}  // namespace mpa
