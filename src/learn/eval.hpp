// Model evaluation: accuracy, per-class precision/recall, confusion
// matrices, and stratified k-fold cross-validation (§6.1, "Model
// Validation": 5-fold cross validation).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "learn/dataset.hpp"
#include "util/rng.hpp"

namespace mpa {

class ThreadPool;

/// A fitted model as a prediction function over binned features.
using Predictor = std::function<int(std::span<const int>)>;

/// A training procedure: dataset -> predictor. Trainers that need
/// randomness should capture their own forked Rng.
using Trainer = std::function<Predictor(const Dataset&)>;

/// Builds one fold's trainer from that fold's private RNG stream.
/// Fold streams are forked from the caller's Rng in fold order on the
/// dispatching thread, which is what makes parallel cross-validation
/// bit-identical to the serial run.
using TrainerFactory = std::function<Trainer(Rng& fold_rng)>;

struct EvalResult {
  double accuracy = 0;
  std::vector<double> precision;  ///< Per class; 0 when nothing predicted as c.
  std::vector<double> recall;     ///< Per class; 0 when class absent.
  std::vector<std::vector<int>> confusion;  ///< [actual][predicted].

  std::string to_string(std::span<const std::string> class_names) const;
};

/// Evaluate a predictor on a labelled dataset.
EvalResult evaluate(const Dataset& test, const Predictor& model);

/// Stratified k-fold cross-validation: per-class shuffled round-robin
/// fold assignment; trains k times and aggregates one pooled confusion
/// matrix. `transform_train` (optional) is applied to each training
/// fold only — this is where oversampling belongs, so duplicated
/// minority samples never leak into a test fold.
EvalResult cross_validate(const Dataset& data, int k, const Trainer& trainer, Rng& rng,
                          const std::function<Dataset(const Dataset&)>& transform_train = {});

/// Fork-join cross-validation: fold assignment and the per-fold RNG
/// streams are derived from `rng` on the calling thread (in fold
/// order), then the k train+test passes fan out on `pool` (null =
/// run inline). Per-fold confusion matrices merge in fold order, so
/// the result is bit-identical at any thread count — including to
/// this function's own 1-thread run.
EvalResult cross_validate(const Dataset& data, int k, const TrainerFactory& factory, Rng& rng,
                          const std::function<Dataset(const Dataset&)>& transform_train = {},
                          ThreadPool* pool = nullptr);

}  // namespace mpa
