// Model evaluation: accuracy, per-class precision/recall, confusion
// matrices, and stratified k-fold cross-validation (§6.1, "Model
// Validation": 5-fold cross validation).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "learn/dataset.hpp"
#include "util/rng.hpp"

namespace mpa {

/// A fitted model as a prediction function over binned features.
using Predictor = std::function<int(std::span<const int>)>;

/// A training procedure: dataset -> predictor. Trainers that need
/// randomness should capture their own forked Rng.
using Trainer = std::function<Predictor(const Dataset&)>;

struct EvalResult {
  double accuracy = 0;
  std::vector<double> precision;  ///< Per class; 0 when nothing predicted as c.
  std::vector<double> recall;     ///< Per class; 0 when class absent.
  std::vector<std::vector<int>> confusion;  ///< [actual][predicted].

  std::string to_string(std::span<const std::string> class_names) const;
};

/// Evaluate a predictor on a labelled dataset.
EvalResult evaluate(const Dataset& test, const Predictor& model);

/// Stratified k-fold cross-validation: per-class shuffled round-robin
/// fold assignment; trains k times and aggregates one pooled confusion
/// matrix. `transform_train` (optional) is applied to each training
/// fold only — this is where oversampling belongs, so duplicated
/// minority samples never leak into a test fold.
EvalResult cross_validate(const Dataset& data, int k, const Trainer& trainer, Rng& rng,
                          const std::function<Dataset(const Dataset&)>& transform_train = {});

}  // namespace mpa
