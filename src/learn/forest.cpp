#include "learn/forest.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {
namespace {

// Draw a bootstrap sample of row indices according to the variant.
std::vector<std::size_t> bootstrap_rows(const Dataset& data, ForestVariant variant, Rng& rng) {
  const std::size_t n = data.size();
  std::vector<std::size_t> rows;
  rows.reserve(n);
  if (variant == ForestVariant::kBalanced) {
    // Equal draws per class, sized so the total is ~n.
    std::vector<std::vector<std::size_t>> by_class(static_cast<std::size_t>(data.num_classes));
    for (std::size_t i = 0; i < n; ++i)
      by_class[static_cast<std::size_t>(data.y[i])].push_back(i);
    std::size_t populated = 0;
    for (const auto& v : by_class)
      if (!v.empty()) ++populated;
    const std::size_t per_class = std::max<std::size_t>(1, n / std::max<std::size_t>(1, populated));
    for (const auto& v : by_class) {
      if (v.empty()) continue;
      for (std::size_t k = 0; k < per_class; ++k)
        rows.push_back(v[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))]);
    }
  } else {
    for (std::size_t k = 0; k < n; ++k)
      rows.push_back(
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  return rows;
}

}  // namespace

RandomForest RandomForest::fit(const Dataset& data, Rng& rng, const ForestOptions& opts) {
  require(!data.x.empty(), "RandomForest::fit: empty dataset");
  require(opts.num_trees >= 1, "RandomForest::fit: need at least one tree");
  RandomForest forest;
  forest.num_classes_ = data.num_classes;

  const std::size_t d = data.num_features();
  const std::size_t subspace =
      opts.features_per_tree > 0
          ? std::min<std::size_t>(static_cast<std::size_t>(opts.features_per_tree), d)
          : std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(static_cast<double>(d))));

  // Class weights for the weighted variant: inverse frequency.
  std::vector<double> class_weight(static_cast<std::size_t>(data.num_classes), 1.0);
  if (opts.variant == ForestVariant::kWeighted) {
    const auto cw = data.class_weights();
    const double total = data.total_weight();
    for (std::size_t c = 0; c < cw.size(); ++c)
      class_weight[c] = cw[c] > 0 ? total / (static_cast<double>(cw.size()) * cw[c]) : 0.0;
  }

  for (int t = 0; t < opts.num_trees; ++t) {
    const auto rows = bootstrap_rows(data, opts.variant, rng);
    const auto features = rng.sample_indices(d, subspace);

    Dataset sub;
    sub.num_classes = data.num_classes;
    sub.feature_bins = data.feature_bins;
    for (std::size_t f : features) sub.feature_names.push_back(data.feature_names[f]);
    sub.x.reserve(rows.size());
    sub.y.reserve(rows.size());
    sub.w.reserve(rows.size());
    for (std::size_t i : rows) {
      std::vector<int> xi;
      xi.reserve(features.size());
      for (std::size_t f : features) xi.push_back(data.x[i][f]);
      sub.x.push_back(std::move(xi));
      sub.y.push_back(data.y[i]);
      sub.w.push_back(data.w[i] * class_weight[static_cast<std::size_t>(data.y[i])]);
    }
    forest.trees_.push_back(DecisionTree::fit(sub, opts.tree));
    forest.feature_maps_.push_back(features);
  }
  return forest;
}

int RandomForest::predict(std::span<const int> x) const {
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  std::vector<int> reduced;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const auto& map = feature_maps_[t];
    reduced.assign(map.size(), 0);
    for (std::size_t j = 0; j < map.size(); ++j) reduced[j] = x[map[j]];
    votes[static_cast<std::size_t>(trees_[t].predict(reduced))]++;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace mpa
