#include "learn/sampling.hpp"

#include "util/error.hpp"

namespace mpa {

Dataset oversample(const Dataset& data, const std::map<int, int>& multiplicity) {
  for (const auto& [cls, mult] : multiplicity)
    require(mult >= 1, "oversample: multiplicity must be >= 1");
  Dataset out;
  out.feature_names = data.feature_names;
  out.num_classes = data.num_classes;
  out.feature_bins = data.feature_bins;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto it = multiplicity.find(data.y[i]);
    const int copies = it == multiplicity.end() ? 1 : it->second;
    for (int c = 0; c < copies; ++c) {
      out.x.push_back(data.x[i]);
      out.y.push_back(data.y[i]);
      out.w.push_back(data.w[i]);
    }
  }
  return out;
}

std::map<int, int> paper_oversampling_recipe(int num_classes) {
  if (num_classes == 2) return {{1, 2}};  // unhealthy x2
  require(num_classes == 5, "paper_oversampling_recipe: num_classes must be 2 or 5");
  // good x3, moderate x3, poor x2.
  return {{1, 3}, {2, 3}, {3, 2}};
}

}  // namespace mpa
