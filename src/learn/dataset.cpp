#include "learn/dataset.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mpa {

int health_class_2(double tickets) { return tickets <= 1 ? 0 : 1; }

int health_class_5(double tickets) {
  if (tickets <= 2) return 0;   // excellent
  if (tickets <= 5) return 1;   // good
  if (tickets <= 8) return 2;   // moderate
  if (tickets <= 11) return 3;  // poor
  return 4;                     // very poor
}

std::vector<std::string> health_class_names(int num_classes) {
  if (num_classes == 2) return {"healthy", "unhealthy"};
  require(num_classes == 5, "health_class_names: num_classes must be 2 or 5");
  return {"excellent", "good", "moderate", "poor", "very poor"};
}

void FeatureMatrix::push_back(std::span<const int> row) {
  if (rows_ == 0 && cols_.empty()) {
    width_ = row.size();
    cols_.resize(width_);
  }
  require(row.size() == width_, "FeatureMatrix: inconsistent row width");
  row_major_.insert(row_major_.end(), row.begin(), row.end());
  for (std::size_t f = 0; f < width_; ++f) cols_[f].push_back(row[f]);
  ++rows_;
}

double Dataset::total_weight() const {
  double t = 0;
  for (double wi : w) t += wi;
  return t;
}

std::vector<double> Dataset::class_weights() const {
  std::vector<double> out(static_cast<std::size_t>(num_classes), 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) out[static_cast<std::size_t>(y[i])] += w[i];
  return out;
}

int Dataset::majority_class() const {
  const auto cw = class_weights();
  return static_cast<int>(std::max_element(cw.begin(), cw.end()) - cw.begin());
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.feature_names = feature_names;
  out.num_classes = num_classes;
  out.feature_bins = feature_bins;
  out.x.reserve(indices.size());
  out.y.reserve(indices.size());
  out.w.reserve(indices.size());
  for (std::size_t i : indices) {
    require(i < x.size(), "Dataset::subset: index out of range");
    out.x.push_back(x[i]);
    out.y.push_back(y[i]);
    out.w.push_back(w[i]);
  }
  return out;
}

FeatureSpace FeatureSpace::fit(const CaseTable& table) {
  FeatureSpace space;
  space.binners.reserve(kNumPractices);
  for (Practice p : all_practices()) {
    const auto col = table.column(p);
    space.binners.push_back(Binner::fit(col, kFeatureBins));
  }
  return space;
}

std::vector<int> FeatureSpace::bin_case(const Case& c) const {
  std::vector<int> out(kNumPractices);
  for (int j = 0; j < kNumPractices; ++j)
    out[static_cast<std::size_t>(j)] =
        binners[static_cast<std::size_t>(j)].bin(c[static_cast<Practice>(j)]);
  return out;
}

Dataset make_dataset(const CaseTable& table, int num_classes, const FeatureSpace* space) {
  require(num_classes == 2 || num_classes == 5, "make_dataset: num_classes must be 2 or 5");
  FeatureSpace local;
  if (space == nullptr) {
    local = FeatureSpace::fit(table);
    space = &local;
  }
  Dataset d;
  d.num_classes = num_classes;
  d.feature_bins = kFeatureBins;
  for (Practice p : all_practices()) d.feature_names.emplace_back(practice_name(p));
  d.x.reserve(table.size());
  d.y.reserve(table.size());
  d.w.assign(table.size(), 1.0);
  for (const auto& c : table.cases()) {
    d.x.push_back(space->bin_case(c));
    d.y.push_back(num_classes == 2 ? health_class_2(c.tickets) : health_class_5(c.tickets));
  }
  return d;
}

}  // namespace mpa
