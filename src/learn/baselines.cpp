#include "learn/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpa {

MajorityClassifier MajorityClassifier::fit(const Dataset& data) {
  require(!data.x.empty(), "MajorityClassifier::fit: empty dataset");
  MajorityClassifier m;
  m.majority_ = data.majority_class();
  return m;
}

int MajorityClassifier::predict(std::span<const int>) const { return majority_; }

LinearSvm LinearSvm::fit(const Dataset& data, Rng& rng, const SvmOptions& opts) {
  require(!data.x.empty(), "LinearSvm::fit: empty dataset");
  LinearSvm svm;
  svm.num_classes_ = data.num_classes;
  const std::size_t d = data.num_features();
  svm.w_.assign(static_cast<std::size_t>(data.num_classes), std::vector<double>(d, 0.0));
  svm.b_.assign(static_cast<std::size_t>(data.num_classes), 0.0);

  // Pegasos per class: minimize lambda/2 ||w||^2 + hinge loss.
  for (int cls = 0; cls < data.num_classes; ++cls) {
    auto& w = svm.w_[static_cast<std::size_t>(cls)];
    auto& b = svm.b_[static_cast<std::size_t>(cls)];
    long t = 0;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
      std::vector<std::size_t> order(data.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.shuffle(order);
      for (std::size_t i : order) {
        ++t;
        const double eta = 1.0 / (opts.lambda * static_cast<double>(t));
        const double yi = data.y[i] == cls ? 1.0 : -1.0;
        double margin = b;
        for (std::size_t j = 0; j < d; ++j) margin += w[j] * data.x[i][j];
        margin *= yi;
        for (std::size_t j = 0; j < d; ++j) w[j] *= (1.0 - eta * opts.lambda);
        if (margin < 1.0) {
          for (std::size_t j = 0; j < d; ++j) w[j] += eta * yi * data.x[i][j];
          b += eta * yi;
        }
      }
    }
  }
  return svm;
}

int LinearSvm::predict(std::span<const int> x) const {
  int best = 0;
  double best_score = -1e300;
  for (int cls = 0; cls < num_classes_; ++cls) {
    double score = b_[static_cast<std::size_t>(cls)];
    const auto& w = w_[static_cast<std::size_t>(cls)];
    for (std::size_t j = 0; j < w.size() && j < x.size(); ++j) score += w[j] * x[j];
    if (score > best_score) {
      best_score = score;
      best = cls;
    }
  }
  return best;
}

}  // namespace mpa
