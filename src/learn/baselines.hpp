// Baseline classifiers the paper compares against (§6.1).
//
//  * Majority-class predictor — the trivial baseline whose accuracy the
//    decision trees must beat (64.8% on 2 classes in the paper).
//  * Linear SVM — "we found the SVMs performed worse than a simple
//    majority classifier. This is due to unhealthy cases being
//    concentrated in a small part of the management practice space."
//    Implemented as one-vs-rest Pegasos over the binned features.
#pragma once

#include <span>
#include <vector>

#include "learn/dataset.hpp"
#include "util/rng.hpp"

namespace mpa {

/// Predicts the majority class of the training data, always.
class MajorityClassifier {
 public:
  static MajorityClassifier fit(const Dataset& data);
  int predict(std::span<const int> x) const;
  int majority() const { return majority_; }

 private:
  int majority_ = 0;
};

struct SvmOptions {
  double lambda = 1e-3;  ///< Regularization.
  int epochs = 20;       ///< Passes over the data.
};

/// One-vs-rest linear SVM trained with Pegasos SGD. Bin indices are
/// used directly as (scaled) feature values.
class LinearSvm {
 public:
  static LinearSvm fit(const Dataset& data, Rng& rng, const SvmOptions& opts = {});
  int predict(std::span<const int> x) const;

 private:
  std::vector<std::vector<double>> w_;  ///< Per-class weight vectors.
  std::vector<double> b_;               ///< Per-class biases.
  int num_classes_ = 2;
};

}  // namespace mpa
