// mpac: the binary columnar on-disk dataset format.
//
// CSV (dataset_io.hpp) stays the interchange format; mpac is the
// performance format — the same three sources laid out as per-column
// contiguous arrays so a load is a handful of mmaps plus one
// fingerprint pass instead of a text parse. A dataset directory holds:
//
//   mpac-manifest.json   format/version, per-source totals, and the
//                        shard list (file name, byte size, fingerprint,
//                        per-shard record counts). Fingerprints are
//                        bare u64 decimals read back exactly through
//                        JsonValue::as_u64.
//   shard-00000.mpac     one or more shards, each self-contained.
//
// Shard layout (all integers little-endian, blocks 8-byte aligned):
//
//   +--------+---------+------------+-----------+-----------+
//   | header | column  | column ... | directory | trailer   |
//   | 24 B   | block 0 | blocks     | entries   | u64 fnv   |
//   +--------+---------+------------+-----------+-----------+
//
//   header     magic "MPAC", u32 version, u64 dir_offset, u32
//              dir_count, u32 reserved.
//   blocks     one per column: raw element array, zero-padded to the
//              next 8-byte boundary so every u64/i64 span is aligned.
//   directory  dir_count records of {u32 tag, u32 elem_size,
//              u64 offset, u64 count}.
//   trailer    word-folded FNV-1a (util/hash.hpp fnv1a_words) over
//              every byte before it; verified on load against both the
//              trailer and the manifest.
//
// Strings (ids, models, firmware, logins, symptoms, workload names)
// are dictionary-encoded per shard: one offsets+blob pair holds each
// distinct string once, sorted, and the record columns store u32
// codes. The sorted dictionary makes the encoding canonical — shard
// bytes depend only on record order, not on which add_* call first
// discovered a string — so the streaming generator and batch
// conversion produce byte-identical shards. Config
// text goes uncompressed into a separate blob with u64 begin offsets —
// snapshot text is unique per record, so a dictionary would only add
// indirection. Timestamps are fixed-width i64 minutes. Each record
// carries a global u64 sequence number so multi-shard reconstruction
// can verify it is replaying the original container order.
//
// mpac stores exactly the information content of the CSV form (e.g.
// workload *names* only, like networks.csv), so CSV -> mpac -> CSV is
// byte-identical and a session opened from either format produces
// bit-identical artifacts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "io/dataset_io.hpp"

namespace mpa {

inline constexpr std::uint32_t kMpacVersion = 1;
inline constexpr char kMpacMagic[4] = {'M', 'P', 'A', 'C'};
inline constexpr const char* kMpacManifestName = "mpac-manifest.json";

/// Column identifiers, stable across versions. elem_size in brackets.
enum class ColumnTag : std::uint32_t {
  kDictOffsets = 1,       ///< [8] u64, dict_size+1 begin offsets into kDictBlob
  kDictBlob = 2,          ///< [1] concatenated dictionary string bytes
  kNetSeq = 10,           ///< [8] global network sequence number
  kNetId = 11,            ///< [4] dict code: network_id
  kNetWorkloadBegin = 12, ///< [4] networks+1 begin offsets into kNetWorkloadCode
  kNetWorkloadCode = 13,  ///< [4] dict code: workload name
  kDevSeq = 20,           ///< [8] global device sequence number
  kDevId = 21,            ///< [4] dict code: device_id
  kDevNetwork = 22,       ///< [4] dict code: owning network_id
  kDevVendor = 23,        ///< [1] Vendor enum value
  kDevModel = 24,         ///< [4] dict code: model
  kDevRole = 25,          ///< [1] Role enum value
  kDevFirmware = 26,      ///< [4] dict code: firmware
  kTktSeq = 30,           ///< [8] global ticket sequence number
  kTktId = 31,            ///< [4] dict code: ticket_id
  kTktNetwork = 32,       ///< [4] dict code: network_id
  kTktCreated = 33,       ///< [8] i64 created timestamp (minutes)
  kTktResolved = 34,      ///< [8] i64 resolved timestamp (minutes)
  kTktOrigin = 35,        ///< [1] TicketOrigin enum value
  kTktSymptom = 36,       ///< [4] dict code: symptom
  kTktDeviceBegin = 37,   ///< [4] tickets+1 begin offsets into kTktDeviceCode
  kTktDeviceCode = 38,    ///< [4] dict code: ticket device_id
  kSnapDevice = 40,       ///< [4] dict code: device_id
  kSnapTime = 41,         ///< [8] i64 capture timestamp (minutes)
  kSnapLogin = 42,        ///< [4] dict code: login
  kSnapTextBegin = 43,    ///< [8] snapshots+1 begin offsets into kConfigBlob
  kConfigBlob = 50,       ///< [1] concatenated raw config text
};

struct ColumnarWriteOptions {
  /// Approximate serialized size at which the writer cuts a shard.
  std::size_t max_shard_bytes = 64ull << 20;
};

/// Record totals for a written or loaded mpac dataset.
struct MpacTotals {
  std::uint64_t networks = 0;
  std::uint64_t devices = 0;
  std::uint64_t tickets = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t config_bytes = 0;  ///< Raw config text bytes across shards.
  std::uint64_t shard_bytes = 0;   ///< Serialized shard bytes (sans manifest).
  std::uint64_t shards = 0;
};

/// One manifest shard entry.
struct MpacShardInfo {
  std::string file;  ///< File name relative to the dataset directory.
  std::uint64_t bytes = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t networks = 0;
  std::uint64_t devices = 0;
  std::uint64_t tickets = 0;
  std::uint64_t snapshots = 0;
};

/// Streaming mpac writer: append records in container order and shards
/// are cut automatically near max_shard_bytes, so memory stays bounded
/// by one shard regardless of dataset size (the 100k-network generator
/// streams through this). Records are never split across a shard
/// boundary. Call finish() exactly once to flush and write the
/// manifest; the writer is unusable afterwards.
///
/// Ordering contract (same as the CSV files): devices of a network may
/// arrive before or after other networks, but each device's snapshots
/// must arrive in non-decreasing time order relative to one another.
class ColumnarWriter {
 public:
  explicit ColumnarWriter(std::string dir, ColumnarWriteOptions opts = {});
  ~ColumnarWriter();

  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  void add_network(const NetworkRecord& net);
  void add_device(const DeviceRecord& dev);
  void add_ticket(const Ticket& t);
  void add_snapshot(const ConfigSnapshot& snap);

  /// Serialize buffered records into the next shard file (no-op when
  /// nothing is buffered). Called automatically near max_shard_bytes.
  void flush_shard();

  /// Flush and write mpac-manifest.json. Returns the final totals.
  MpacTotals finish();

 private:
  struct Buffers;

  std::uint32_t dict_code(std::string_view s);
  void maybe_flush();

  std::string dir_;
  ColumnarWriteOptions opts_;
  std::unique_ptr<Buffers> buf_;
  std::vector<MpacShardInfo> shards_;
  MpacTotals totals_;
  bool finished_ = false;
};

/// Read-only byte range backed by mmap when the platform provides it,
/// falling back to a heap read otherwise. Move-only RAII.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const { return {data_, size_}; }
  bool is_mapped() const { return mapped_; }

 private:
  void reset() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;
};

/// A validated view over one shard's bytes. Construction checks the
/// header, directory, fingerprint, column bounds/alignment, and offset
/// arrays; accessors after that are zero-copy spans straight into the
/// mapping. Dictionary codes are range-checked at use (and exhaustively
/// by verify_columnar).
class ShardView {
 public:
  struct ColumnInfo {
    std::uint32_t tag = 0;
    std::uint32_t elem_size = 0;
    std::uint64_t offset = 0;  ///< Byte offset from the start of the shard.
    std::uint64_t count = 0;
  };

  /// `expected_fingerprint` comes from the manifest; pass the trailer
  /// value itself to skip the cross-check (verify-one-file mode).
  ShardView(std::span<const std::byte> bytes, std::string file,
            std::uint64_t expected_fingerprint);

  std::size_t num_networks() const { return u64s(ColumnTag::kNetSeq).size(); }
  std::size_t num_devices() const { return u64s(ColumnTag::kDevSeq).size(); }
  std::size_t num_tickets() const { return u64s(ColumnTag::kTktSeq).size(); }
  std::size_t num_snapshots() const { return u32s(ColumnTag::kSnapDevice).size(); }
  std::size_t dict_size() const { return u64s(ColumnTag::kDictOffsets).size() - 1; }

  /// Typed column spans (aliases of the underlying mapping).
  std::span<const std::uint64_t> u64s(ColumnTag tag) const;
  std::span<const std::int64_t> i64s(ColumnTag tag) const;
  std::span<const std::uint32_t> u32s(ColumnTag tag) const;
  std::span<const std::uint8_t> u8s(ColumnTag tag) const;

  /// Dictionary entry for `code`; throws DataError "dictionary index
  /// out of range" on a corrupt code. The view aliases the mapping.
  std::string_view dict(std::uint32_t code) const;

  /// Raw config text of snapshot row `i` (aliases the mapping).
  std::string_view config_text(std::size_t i) const;

  const ColumnInfo* column(ColumnTag tag) const;
  std::span<const std::byte> bytes() const { return bytes_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  const std::string& file() const { return file_; }

 private:
  const ColumnInfo& require_column(ColumnTag tag) const;

  std::span<const std::byte> bytes_;
  std::string file_;
  std::uint64_t fingerprint_ = 0;
  std::vector<ColumnInfo> columns_;  ///< Sorted by tag.
};

/// A loaded mpac dataset: the mapped shards plus manifest totals.
/// Shard views stay valid for the lifetime of this object.
class ColumnarDataset {
 public:
  const std::vector<ShardView>& shards() const { return views_; }
  const std::vector<MpacShardInfo>& shard_infos() const { return infos_; }
  const MpacTotals& totals() const { return totals_; }

  /// Manifest + shard bytes actually read (for load observability).
  std::uint64_t total_bytes() const { return bytes_read_; }

  /// Compatibility path: materialize the classic in-memory containers.
  /// Validates sequence order, enum codes, and ticket time sanity with
  /// "mpac:"-prefixed errors; per-device snapshot order is enforced by
  /// SnapshotStore exactly as on the CSV path.
  DiskDataset to_disk_dataset() const;

 private:
  friend ColumnarDataset load_columnar(const std::string& dir);

  std::vector<MappedFile> maps_;
  std::vector<ShardView> views_;
  std::vector<MpacShardInfo> infos_;
  MpacTotals totals_;
  std::uint64_t bytes_read_ = 0;
};

/// True when `dir` contains an mpac manifest (format auto-detection).
bool is_columnar_dir(const std::string& dir);

/// Write `data` as an mpac dataset into `dir` (created if absent) in
/// the same record order save_dataset uses. Throws DataError on I/O
/// failure.
void save_columnar(const DiskDataset& data, const std::string& dir,
                   ColumnarWriteOptions opts = {});

/// Map and validate an mpac dataset directory. Every shard's header,
/// directory, and fingerprint are verified before this returns; throws
/// DataError naming the shard and defect ("bad magic", "unsupported
/// version", "truncated shard", "fingerprint mismatch").
ColumnarDataset load_columnar(const std::string& dir);

/// Deep-verify an mpac dataset: everything load_columnar checks plus an
/// exhaustive scan of dictionary codes, sequence numbers, enum values,
/// ticket time ordering, and per-device snapshot ordering. Returns a
/// human-readable report; throws DataError on any defect.
std::string verify_columnar(const std::string& dir);

}  // namespace mpa
