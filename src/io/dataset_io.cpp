#include "io/dataset_io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/columnar.hpp"
#include "telemetry/time.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace mpa {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  require_data(static_cast<bool>(in), "load_dataset: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  require_data(static_cast<bool>(out), "save_dataset: cannot open " + path.string());
  out << content;
  require_data(static_cast<bool>(out), "save_dataset: write failed for " + path.string());
}

// CSV field escaping: our ids/names never contain commas, but symptom
// strings could; forbid rather than quote (keeps the format trivial).
// Stray '\r' is rejected too — the loader strips one trailing '\r' per
// line to accept CRLF files, so a carriage return inside a field would
// not survive the round trip.
void check_field(const std::string& s, const char* what) {
  require_data(s.find(',') == std::string::npos && s.find('\n') == std::string::npos &&
                   s.find('\r') == std::string::npos,
               std::string("dataset field contains ',', newline, or carriage return: ") + what +
                   ": " + s);
}

// from_chars keeps the hot parse loops allocation-free; error strings
// are pinned by tests and must not change.
std::int64_t parse_int(std::string_view s, const char* what) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec == std::errc() && ptr != s.data() + s.size())
    throw DataError(std::string("trailing junk in ") + what + ": " + std::string(s));
  if (ec != std::errc())
    throw DataError(std::string("bad integer for ") + what + ": " + std::string(s));
  return v;
}

// Shared row/record codecs so the full-dataset and month-delta paths
// stay byte-compatible (and fail with identical error strings).

void render_ticket_row(std::ostream& os, const Ticket& t) {
  check_field(t.ticket_id, "ticket_id");
  check_field(t.symptom, "symptom");
  os << t.ticket_id << ',' << t.network_id << ',' << t.created << ',' << t.resolved << ','
     << to_string(t.origin) << ',' << t.symptom << ',' << join(t.devices, ";") << '\n';
}

Ticket parse_ticket_row(std::string_view line) {
  const auto cells = split_views(line, ',');
  require_data(cells.size() == 7, "tickets.csv: bad row: " + std::string(line));
  Ticket t;
  t.ticket_id = std::string(cells[0]);
  t.network_id = std::string(cells[1]);
  t.created = parse_int(cells[2], "ticket created");
  t.resolved = parse_int(cells[3], "ticket resolved");
  require_data(t.resolved >= t.created,
               "tickets.csv: resolved time " + std::string(cells[3]) + " precedes created time " +
                   std::string(cells[2]) + " for ticket " + t.ticket_id);
  t.origin = origin_from_string(cells[4]);
  t.symptom = std::string(cells[5]);
  if (!cells[6].empty()) t.devices = split(cells[6], ';');
  return t;
}

void render_snapshot_record(std::ostream& os, const ConfigSnapshot& snap) {
  check_header_token(snap.device_id, "snapshot device_id");
  check_header_token(snap.login, "snapshot login");
  os << "@snapshot " << snap.device_id << ' ' << snap.time << ' ' << snap.login << ' '
     << snap.text.size() << '\n'
     << snap.text;
}

std::vector<ConfigSnapshot> parse_snapshot_log(const std::string& log) {
  std::vector<ConfigSnapshot> out;
  const std::string_view view(log);
  std::size_t pos = 0;
  while (pos < view.size()) {
    const std::size_t eol = view.find('\n', pos);
    require_data(eol != std::string_view::npos, "snapshots.log: truncated header");
    const std::string_view header = view.substr(pos, eol - pos);
    const auto tokens = split_ws_views(header);
    require_data(tokens.size() == 5 && tokens[0] == "@snapshot",
                 "snapshots.log: bad header: " + std::string(header));
    // A negative length cast straight to size_t would become a huge
    // offset and misreport as "truncated body"; reject it by name.
    const std::int64_t declared = parse_int(tokens[4], "snapshot length");
    require_data(declared >= 0,
                 "snapshots.log: negative snapshot length in header: " + std::string(header));
    const auto length = static_cast<std::size_t>(declared);
    require_data(eol + 1 + length <= view.size(), "snapshots.log: truncated body");
    ConfigSnapshot snap;
    snap.device_id = std::string(tokens[1]);
    snap.time = parse_int(tokens[2], "snapshot time");
    snap.login = std::string(tokens[3]);
    snap.text = log.substr(eol + 1, length);
    out.push_back(std::move(snap));
    pos = eol + 1 + length;
  }
  return out;
}

}  // namespace

// snapshots.log headers are whitespace-delimited ("@snapshot <device>
// <time> <login> <length>"), so a device_id or login containing
// whitespace would change the token count and corrupt every record
// after it. Validate on save, like check_field does for the CSVs.
void check_header_token(const std::string& s, const char* what) {
  require_data(!s.empty(), std::string("snapshot header field is empty: ") + what);
  for (const char c : s)
    require_data(std::isspace(static_cast<unsigned char>(c)) == 0,
                 std::string("snapshot header field contains whitespace: ") + what + ": " + s);
}

Vendor vendor_from_string(std::string_view s) {
  for (int v = 0; v < kNumVendors; ++v)
    if (to_string(static_cast<Vendor>(v)) == s) return static_cast<Vendor>(v);
  throw DataError("unknown vendor: " + std::string(s));
}

Role role_from_string(std::string_view s) {
  for (int r = 0; r < kNumRoles; ++r)
    if (to_string(static_cast<Role>(r)) == s) return static_cast<Role>(r);
  throw DataError("unknown role: " + std::string(s));
}

TicketOrigin origin_from_string(std::string_view s) {
  for (auto o : {TicketOrigin::kMonitoringAlarm, TicketOrigin::kUserReport,
                 TicketOrigin::kMaintenance}) {
    if (to_string(o) == s) return o;
  }
  throw DataError("unknown ticket origin: " + std::string(s));
}

void save_dataset(const DiskDataset& data, const std::string& dir) {
  fs::create_directories(dir);
  const fs::path base(dir);

  // networks.csv
  {
    std::ostringstream os;
    os << "network_id,workloads\n";
    for (const auto& net : data.inventory.networks()) {
      check_field(net.network_id, "network_id");
      std::vector<std::string> wl;
      for (const auto& w : net.workloads) {
        check_field(w.name, "workload");
        wl.push_back(w.name);
      }
      os << net.network_id << ',' << join(wl, ";") << '\n';
    }
    write_file(base / "networks.csv", os.str());
  }

  // devices.csv
  {
    std::ostringstream os;
    os << "device_id,network_id,vendor,model,role,firmware\n";
    for (const auto& d : data.inventory.devices()) {
      check_field(d.device_id, "device_id");
      check_field(d.model, "model");
      check_field(d.firmware, "firmware");
      os << d.device_id << ',' << d.network_id << ',' << to_string(d.vendor) << ',' << d.model
         << ',' << to_string(d.role) << ',' << d.firmware << '\n';
    }
    write_file(base / "devices.csv", os.str());
  }

  // tickets.csv
  {
    std::ostringstream os;
    os << "ticket_id,network_id,created,resolved,origin,symptom,devices\n";
    for (const auto& t : data.tickets.all()) render_ticket_row(os, t);
    write_file(base / "tickets.csv", os.str());
  }

  // snapshots.log — length-prefixed records so config text needs no
  // escaping.
  {
    std::ostringstream os;
    for (const auto& device_id : data.snapshots.devices())
      for (const auto& snap : data.snapshots.for_device(device_id))
        render_snapshot_record(os, snap);
    write_file(base / "snapshots.log", os.str());
  }
}

DiskDataset load_dataset(const std::string& dir, std::uint64_t* bytes_read) {
  // Format auto-detection: an mpac manifest marks a columnar dataset;
  // everything downstream (AnalysisSession::from_directory, serve
  // session open) inherits the detection through this one switch.
  if (is_columnar_dir(dir)) {
    const ColumnarDataset columnar = load_columnar(dir);
    if (bytes_read != nullptr) *bytes_read = columnar.total_bytes();
    return columnar.to_disk_dataset();
  }

  const fs::path base(dir);
  require_data(fs::is_directory(base), "load_dataset: dataset directory does not exist: " + dir);
  // Name the absent file up front — "cannot open .../tickets.csv" out
  // of a half-readable directory is a worse diagnostic than saying
  // which source is missing from an otherwise-valid dataset dir.
  for (const char* name : {"networks.csv", "devices.csv", "tickets.csv", "snapshots.log"})
    require_data(fs::exists(base / name),
                 "load_dataset: missing " + std::string(name) + " in dataset directory " + dir);

  DiskDataset data;
  std::uint64_t bytes = 0;

  // networks.csv — fields are parsed as string_view slices of the file
  // buffer (one copy per stored string, none per intermediate field).
  {
    const std::string text = read_file(base / "networks.csv");
    bytes += text.size();
    const auto lines = split_line_views(text);
    data.inventory.reserve(lines.size() > 1 ? lines.size() - 1 : 0, 0);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (trim(lines[i]).empty()) continue;
      const auto cells = split_views(lines[i], ',');
      require_data(cells.size() == 2, "networks.csv: bad row: " + std::string(lines[i]));
      NetworkRecord net;
      net.network_id = std::string(cells[0]);
      if (!cells[1].empty()) {
        for (const auto name : split_views(cells[1], ';')) {
          Workload w;
          w.name = std::string(name);
          net.workloads.push_back(std::move(w));
        }
      }
      data.inventory.add_network(std::move(net));
    }
  }

  // devices.csv
  {
    const std::string text = read_file(base / "devices.csv");
    bytes += text.size();
    const auto lines = split_line_views(text);
    data.inventory.reserve(0, lines.size() > 1 ? lines.size() - 1 : 0);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (trim(lines[i]).empty()) continue;
      const auto cells = split_views(lines[i], ',');
      require_data(cells.size() == 6, "devices.csv: bad row: " + std::string(lines[i]));
      DeviceRecord d;
      d.device_id = std::string(cells[0]);
      d.network_id = std::string(cells[1]);
      d.vendor = vendor_from_string(cells[2]);
      d.model = std::string(cells[3]);
      d.role = role_from_string(cells[4]);
      d.firmware = std::string(cells[5]);
      data.inventory.add_device(std::move(d));
    }
  }

  // tickets.csv
  {
    const std::string text = read_file(base / "tickets.csv");
    bytes += text.size();
    const auto lines = split_line_views(text);
    data.tickets.reserve(lines.size() > 1 ? lines.size() - 1 : 0);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (trim(lines[i]).empty()) continue;
      data.tickets.add(parse_ticket_row(lines[i]));
    }
  }

  // snapshots.log
  {
    const std::string text = read_file(base / "snapshots.log");
    bytes += text.size();
    for (auto& snap : parse_snapshot_log(text)) data.snapshots.add(std::move(snap));
  }

  if (bytes_read != nullptr) *bytes_read = bytes;
  return data;
}

void save_month_delta(const MonthDelta& delta, const std::string& dir) {
  fs::create_directories(dir);
  const fs::path base(dir);

  write_file(base / "month.txt", std::to_string(delta.month) + "\n");

  {
    std::ostringstream os;
    os << "ticket_id,network_id,created,resolved,origin,symptom,devices\n";
    for (const auto& t : delta.tickets) render_ticket_row(os, t);
    write_file(base / "tickets.csv", os.str());
  }

  {
    std::ostringstream os;
    for (const auto& snap : delta.snapshots) render_snapshot_record(os, snap);
    write_file(base / "snapshots.log", os.str());
  }
}

MonthDelta load_month_delta(const std::string& dir) {
  const fs::path base(dir);
  MonthDelta delta;

  {
    const std::string text(trim(read_file(base / "month.txt")));
    const std::int64_t month = parse_int(text, "delta month");
    require_data(month >= 0, "month.txt: delta month is negative: " + text);
    delta.month = static_cast<int>(month);
  }

  {
    const auto lines = split_lines(read_file(base / "tickets.csv"));
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (trim(lines[i]).empty()) continue;
      delta.tickets.push_back(parse_ticket_row(lines[i]));
    }
  }

  delta.snapshots = parse_snapshot_log(read_file(base / "snapshots.log"));
  return delta;
}

SplitDataset split_dataset(const DiskDataset& data, int first_delta_month) {
  SplitDataset out;
  out.base.inventory = data.inventory;

  // One delta per month from the cut to the last month observed in the
  // data, contiguous so the append sequence has no gaps.
  int last_month = first_delta_month - 1;
  for (const auto& t : data.tickets.all()) last_month = std::max(last_month, month_of(t.created));
  for (const auto& device_id : data.snapshots.devices())
    for (const auto& snap : data.snapshots.for_device(device_id))
      last_month = std::max(last_month, month_of(snap.time));
  out.deltas.resize(static_cast<std::size_t>(last_month - first_delta_month + 1));
  for (std::size_t i = 0; i < out.deltas.size(); ++i)
    out.deltas[i].month = first_delta_month + static_cast<int>(i);

  // Stored orders are preserved within each destination: replaying the
  // deltas over the base re-adds every record in its original relative
  // order, so the merged containers (and their FNV fingerprint) match
  // the unsplit dataset.
  for (const auto& t : data.tickets.all()) {
    const int m = month_of(t.created);
    if (m < first_delta_month)
      out.base.tickets.add(t);
    else
      out.deltas[static_cast<std::size_t>(m - first_delta_month)].tickets.push_back(t);
  }
  for (const auto& device_id : data.snapshots.devices()) {
    for (const auto& snap : data.snapshots.for_device(device_id)) {
      const int m = month_of(snap.time);
      if (m < first_delta_month)
        out.base.snapshots.add(snap);
      else
        out.deltas[static_cast<std::size_t>(m - first_delta_month)].snapshots.push_back(snap);
    }
  }
  return out;
}

}  // namespace mpa
