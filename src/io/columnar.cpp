#include "io/columnar.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MPA_HAVE_MMAP 1
#endif

// The shard layout stores raw little-endian element arrays and the
// readers reinterpret them in place; a big-endian port would need a
// byte-swapping read path.
static_assert(std::endian::native == std::endian::little,
              "mpac shards are little-endian; this platform is not");

namespace mpa {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kDirEntryBytes = 24;
constexpr std::size_t kTrailerBytes = 8;

std::string shard_err(const std::string& file, const std::string& what) {
  return "mpac: " + file + ": " + what;
}

void append_raw(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}

void append_u32(std::string& buf, std::uint32_t v) { append_raw(buf, &v, sizeof v); }
void append_u64(std::string& buf, std::uint64_t v) { append_raw(buf, &v, sizeof v); }

void pad8(std::string& buf) {
  while (buf.size() % 8 != 0) buf.push_back('\0');
}

std::uint32_t read_u32(std::span<const std::byte> b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}

std::uint64_t read_u64(std::span<const std::byte> b, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}

std::uint32_t expected_elem_size(ColumnTag tag) {
  switch (tag) {
    case ColumnTag::kDictOffsets:
    case ColumnTag::kNetSeq:
    case ColumnTag::kDevSeq:
    case ColumnTag::kTktSeq:
    case ColumnTag::kTktCreated:
    case ColumnTag::kTktResolved:
    case ColumnTag::kSnapTime:
    case ColumnTag::kSnapTextBegin:
      return 8;
    case ColumnTag::kNetId:
    case ColumnTag::kNetWorkloadBegin:
    case ColumnTag::kNetWorkloadCode:
    case ColumnTag::kDevId:
    case ColumnTag::kDevNetwork:
    case ColumnTag::kDevModel:
    case ColumnTag::kDevFirmware:
    case ColumnTag::kTktId:
    case ColumnTag::kTktNetwork:
    case ColumnTag::kTktSymptom:
    case ColumnTag::kTktDeviceBegin:
    case ColumnTag::kTktDeviceCode:
    case ColumnTag::kSnapDevice:
    case ColumnTag::kSnapLogin:
      return 4;
    case ColumnTag::kDictBlob:
    case ColumnTag::kDevVendor:
    case ColumnTag::kDevRole:
    case ColumnTag::kTktOrigin:
    case ColumnTag::kConfigBlob:
      return 1;
  }
  return 0;
}

constexpr ColumnTag kAllTags[] = {
    ColumnTag::kDictOffsets,      ColumnTag::kDictBlob,      ColumnTag::kNetSeq,
    ColumnTag::kNetId,            ColumnTag::kNetWorkloadBegin,
    ColumnTag::kNetWorkloadCode,  ColumnTag::kDevSeq,        ColumnTag::kDevId,
    ColumnTag::kDevNetwork,       ColumnTag::kDevVendor,     ColumnTag::kDevModel,
    ColumnTag::kDevRole,          ColumnTag::kDevFirmware,   ColumnTag::kTktSeq,
    ColumnTag::kTktId,            ColumnTag::kTktNetwork,    ColumnTag::kTktCreated,
    ColumnTag::kTktResolved,      ColumnTag::kTktOrigin,     ColumnTag::kTktSymptom,
    ColumnTag::kTktDeviceBegin,   ColumnTag::kTktDeviceCode, ColumnTag::kSnapDevice,
    ColumnTag::kSnapTime,         ColumnTag::kSnapLogin,     ColumnTag::kSnapTextBegin,
    ColumnTag::kConfigBlob,
};

void write_binary_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  require_data(static_cast<bool>(out), "mpac: cannot open " + path.string() + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  require_data(static_cast<bool>(out), "mpac: write failed for " + path.string());
}

std::string read_text_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  require_data(static_cast<bool>(in), "mpac: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// MappedFile

MappedFile::MappedFile(const std::string& path) {
#ifdef MPA_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  require_data(fd >= 0, "mpac: cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw DataError("mpac: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr != MAP_FAILED) {
    data_ = static_cast<const std::byte*>(addr);
    mapped_ = true;
    return;
  }
  // mmap can fail on exotic filesystems; fall through to a plain read.
#endif
  std::ifstream in(path, std::ios::binary);
  require_data(static_cast<bool>(in), "mpac: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto n = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  fallback_.resize(n);
  if (n > 0) in.read(reinterpret_cast<char*>(fallback_.data()), static_cast<std::streamsize>(n));
  require_data(static_cast<bool>(in), "mpac: read failed for " + path);
  data_ = fallback_.data();
  size_ = n;
  mapped_ = false;
}

void MappedFile::reset() noexcept {
#ifdef MPA_HAVE_MMAP
  if (mapped_ && data_ != nullptr)
    ::munmap(const_cast<void*>(static_cast<const void*>(data_)), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

// ---------------------------------------------------------------------------
// ColumnarWriter

struct ColumnarWriter::Buffers {
  std::vector<std::string> dict_entries;
  std::map<std::string, std::uint32_t, std::less<>> dict_index;

  std::vector<std::uint64_t> net_seq;
  std::vector<std::uint32_t> net_id;
  std::vector<std::uint32_t> net_wl_begin{0};
  std::vector<std::uint32_t> net_wl_code;

  std::vector<std::uint64_t> dev_seq;
  std::vector<std::uint32_t> dev_id, dev_network, dev_model, dev_firmware;
  std::vector<std::uint8_t> dev_vendor, dev_role;

  std::vector<std::uint64_t> tkt_seq;
  std::vector<std::uint32_t> tkt_id, tkt_network, tkt_symptom;
  std::vector<std::int64_t> tkt_created, tkt_resolved;
  std::vector<std::uint8_t> tkt_origin;
  std::vector<std::uint32_t> tkt_dev_begin{0};
  std::vector<std::uint32_t> tkt_dev_code;

  std::vector<std::uint32_t> snap_device, snap_login;
  std::vector<std::int64_t> snap_time;
  std::vector<std::uint64_t> snap_text_begin{0};
  std::string config_blob;

  std::size_t approx_bytes = 0;

  bool empty() const {
    return net_seq.empty() && dev_seq.empty() && tkt_seq.empty() && snap_device.empty();
  }
};

ColumnarWriter::ColumnarWriter(std::string dir, ColumnarWriteOptions opts)
    : dir_(std::move(dir)), opts_(opts), buf_(std::make_unique<Buffers>()) {
  fs::create_directories(dir_);
}

ColumnarWriter::~ColumnarWriter() = default;

std::uint32_t ColumnarWriter::dict_code(std::string_view s) {
  const auto it = buf_->dict_index.find(s);
  if (it != buf_->dict_index.end()) return it->second;
  const auto code = static_cast<std::uint32_t>(buf_->dict_entries.size());
  buf_->dict_entries.emplace_back(s);
  buf_->dict_index.emplace(buf_->dict_entries.back(), code);
  buf_->approx_bytes += s.size() + 8;
  return code;
}

void ColumnarWriter::add_network(const NetworkRecord& net) {
  require(!finished_, "ColumnarWriter: add after finish");
  buf_->net_seq.push_back(totals_.networks++);
  buf_->net_id.push_back(dict_code(net.network_id));
  for (const auto& w : net.workloads) buf_->net_wl_code.push_back(dict_code(w.name));
  buf_->net_wl_begin.push_back(static_cast<std::uint32_t>(buf_->net_wl_code.size()));
  buf_->approx_bytes += 16 + 4 * net.workloads.size();
  maybe_flush();
}

void ColumnarWriter::add_device(const DeviceRecord& dev) {
  require(!finished_, "ColumnarWriter: add after finish");
  buf_->dev_seq.push_back(totals_.devices++);
  buf_->dev_id.push_back(dict_code(dev.device_id));
  buf_->dev_network.push_back(dict_code(dev.network_id));
  buf_->dev_vendor.push_back(static_cast<std::uint8_t>(dev.vendor));
  buf_->dev_model.push_back(dict_code(dev.model));
  buf_->dev_role.push_back(static_cast<std::uint8_t>(dev.role));
  buf_->dev_firmware.push_back(dict_code(dev.firmware));
  buf_->approx_bytes += 26;
  maybe_flush();
}

void ColumnarWriter::add_ticket(const Ticket& t) {
  require(!finished_, "ColumnarWriter: add after finish");
  buf_->tkt_seq.push_back(totals_.tickets++);
  buf_->tkt_id.push_back(dict_code(t.ticket_id));
  buf_->tkt_network.push_back(dict_code(t.network_id));
  buf_->tkt_created.push_back(t.created);
  buf_->tkt_resolved.push_back(t.resolved);
  buf_->tkt_origin.push_back(static_cast<std::uint8_t>(t.origin));
  buf_->tkt_symptom.push_back(dict_code(t.symptom));
  for (const auto& d : t.devices) buf_->tkt_dev_code.push_back(dict_code(d));
  buf_->tkt_dev_begin.push_back(static_cast<std::uint32_t>(buf_->tkt_dev_code.size()));
  buf_->approx_bytes += 41 + 4 * t.devices.size();
  maybe_flush();
}

void ColumnarWriter::add_snapshot(const ConfigSnapshot& snap) {
  require(!finished_, "ColumnarWriter: add after finish");
  ++totals_.snapshots;
  totals_.config_bytes += snap.text.size();
  buf_->snap_device.push_back(dict_code(snap.device_id));
  buf_->snap_time.push_back(snap.time);
  buf_->snap_login.push_back(dict_code(snap.login));
  buf_->config_blob.append(snap.text);
  buf_->snap_text_begin.push_back(buf_->config_blob.size());
  buf_->approx_bytes += 24 + snap.text.size();
  maybe_flush();
}

void ColumnarWriter::maybe_flush() {
  if (buf_->approx_bytes >= opts_.max_shard_bytes) flush_shard();
}

void ColumnarWriter::flush_shard() {
  require(!finished_, "ColumnarWriter: flush after finish");
  Buffers& b = *buf_;
  if (b.empty()) return;

  // Canonical dictionary: entries are emitted in sorted order and
  // every code column remapped to match, so shard bytes depend only on
  // the record order fed to the writer — not on which add_* call
  // happened to discover each string first. The streaming generator
  // (record-interleaved per network) and batch conversion (table-major)
  // therefore emit byte-identical shards for the same records.
  std::vector<std::uint32_t> remap(b.dict_entries.size());
  std::vector<std::uint64_t> dict_offsets;
  dict_offsets.reserve(b.dict_entries.size() + 1);
  std::string dict_blob;
  dict_offsets.push_back(0);
  {
    std::uint32_t next = 0;
    for (const auto& [str, old_code] : b.dict_index) {  // sorted by key
      remap[old_code] = next++;
      dict_blob.append(str);
      dict_offsets.push_back(dict_blob.size());
    }
  }
  for (auto* col : {&b.net_id, &b.net_wl_code, &b.dev_id, &b.dev_network, &b.dev_model,
                    &b.dev_firmware, &b.tkt_id, &b.tkt_network, &b.tkt_symptom, &b.tkt_dev_code,
                    &b.snap_device, &b.snap_login})
    for (std::uint32_t& code : *col) code = remap[code];

  std::string buf;
  buf.reserve(b.approx_bytes + (b.approx_bytes >> 2) + 4096);
  // Header placeholder; dir_offset patched once known.
  append_raw(buf, kMpacMagic, sizeof kMpacMagic);
  append_u32(buf, kMpacVersion);
  append_u64(buf, 0);  // dir_offset
  append_u32(buf, 0);  // dir_count
  append_u32(buf, 0);  // reserved

  std::vector<ShardView::ColumnInfo> dir;
  const auto emit = [&](ColumnTag tag, const void* data, std::size_t elem, std::size_t count) {
    pad8(buf);
    ShardView::ColumnInfo info;
    info.tag = static_cast<std::uint32_t>(tag);
    info.elem_size = static_cast<std::uint32_t>(elem);
    info.offset = buf.size();
    info.count = count;
    dir.push_back(info);
    append_raw(buf, data, elem * count);
  };

  emit(ColumnTag::kDictOffsets, dict_offsets.data(), 8, dict_offsets.size());
  emit(ColumnTag::kDictBlob, dict_blob.data(), 1, dict_blob.size());
  emit(ColumnTag::kNetSeq, b.net_seq.data(), 8, b.net_seq.size());
  emit(ColumnTag::kNetId, b.net_id.data(), 4, b.net_id.size());
  emit(ColumnTag::kNetWorkloadBegin, b.net_wl_begin.data(), 4, b.net_wl_begin.size());
  emit(ColumnTag::kNetWorkloadCode, b.net_wl_code.data(), 4, b.net_wl_code.size());
  emit(ColumnTag::kDevSeq, b.dev_seq.data(), 8, b.dev_seq.size());
  emit(ColumnTag::kDevId, b.dev_id.data(), 4, b.dev_id.size());
  emit(ColumnTag::kDevNetwork, b.dev_network.data(), 4, b.dev_network.size());
  emit(ColumnTag::kDevVendor, b.dev_vendor.data(), 1, b.dev_vendor.size());
  emit(ColumnTag::kDevModel, b.dev_model.data(), 4, b.dev_model.size());
  emit(ColumnTag::kDevRole, b.dev_role.data(), 1, b.dev_role.size());
  emit(ColumnTag::kDevFirmware, b.dev_firmware.data(), 4, b.dev_firmware.size());
  emit(ColumnTag::kTktSeq, b.tkt_seq.data(), 8, b.tkt_seq.size());
  emit(ColumnTag::kTktId, b.tkt_id.data(), 4, b.tkt_id.size());
  emit(ColumnTag::kTktNetwork, b.tkt_network.data(), 4, b.tkt_network.size());
  emit(ColumnTag::kTktCreated, b.tkt_created.data(), 8, b.tkt_created.size());
  emit(ColumnTag::kTktResolved, b.tkt_resolved.data(), 8, b.tkt_resolved.size());
  emit(ColumnTag::kTktOrigin, b.tkt_origin.data(), 1, b.tkt_origin.size());
  emit(ColumnTag::kTktSymptom, b.tkt_symptom.data(), 4, b.tkt_symptom.size());
  emit(ColumnTag::kTktDeviceBegin, b.tkt_dev_begin.data(), 4, b.tkt_dev_begin.size());
  emit(ColumnTag::kTktDeviceCode, b.tkt_dev_code.data(), 4, b.tkt_dev_code.size());
  emit(ColumnTag::kSnapDevice, b.snap_device.data(), 4, b.snap_device.size());
  emit(ColumnTag::kSnapTime, b.snap_time.data(), 8, b.snap_time.size());
  emit(ColumnTag::kSnapLogin, b.snap_login.data(), 4, b.snap_login.size());
  emit(ColumnTag::kSnapTextBegin, b.snap_text_begin.data(), 8, b.snap_text_begin.size());
  emit(ColumnTag::kConfigBlob, b.config_blob.data(), 1, b.config_blob.size());

  pad8(buf);
  const std::uint64_t dir_offset = buf.size();
  for (const auto& e : dir) {
    append_u32(buf, e.tag);
    append_u32(buf, e.elem_size);
    append_u64(buf, e.offset);
    append_u64(buf, e.count);
  }
  {
    const auto count = static_cast<std::uint32_t>(dir.size());
    std::memcpy(buf.data() + 8, &dir_offset, sizeof dir_offset);
    std::memcpy(buf.data() + 16, &count, sizeof count);
  }
  const std::uint64_t fp = fnv1a_words(buf.data(), buf.size());
  append_u64(buf, fp);

  char name[32];
  std::snprintf(name, sizeof name, "shard-%05zu.mpac", shards_.size());
  write_binary_file(fs::path(dir_) / name, buf);

  MpacShardInfo info;
  info.file = name;
  info.bytes = buf.size();
  info.fingerprint = fp;
  info.networks = b.net_seq.size();
  info.devices = b.dev_seq.size();
  info.tickets = b.tkt_seq.size();
  info.snapshots = b.snap_device.size();
  shards_.push_back(std::move(info));
  totals_.shard_bytes += buf.size();
  ++totals_.shards;

  buf_ = std::make_unique<Buffers>();
}

MpacTotals ColumnarWriter::finish() {
  require(!finished_, "ColumnarWriter: finish called twice");
  flush_shard();
  finished_ = true;

  // Hand-written stream like every other exporter: field order is part
  // of the contract, and u64 fingerprints are emitted as bare decimals
  // so JsonValue::as_u64 reads them back exactly.
  std::ostringstream os;
  os << "{\n"
     << "  \"format\":\"mpac\",\n"
     << "  \"version\":" << kMpacVersion << ",\n"
     << "  \"networks\":" << totals_.networks << ",\n"
     << "  \"devices\":" << totals_.devices << ",\n"
     << "  \"tickets\":" << totals_.tickets << ",\n"
     << "  \"snapshots\":" << totals_.snapshots << ",\n"
     << "  \"config_bytes\":" << totals_.config_bytes << ",\n"
     << "  \"shards\":[";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& s = shards_[i];
    if (i != 0) os << ',';
    os << "\n    {\"file\":\"" << json_escape(s.file) << "\",\"bytes\":" << s.bytes
       << ",\"fingerprint\":" << s.fingerprint << ",\"networks\":" << s.networks
       << ",\"devices\":" << s.devices << ",\"tickets\":" << s.tickets
       << ",\"snapshots\":" << s.snapshots << '}';
  }
  os << (shards_.empty() ? "]\n" : "\n  ]\n") << "}\n";
  write_binary_file(fs::path(dir_) / kMpacManifestName, os.str());
  return totals_;
}

// ---------------------------------------------------------------------------
// ShardView

ShardView::ShardView(std::span<const std::byte> bytes, std::string file,
                     std::uint64_t expected_fingerprint)
    : bytes_(bytes), file_(std::move(file)) {
  require_data(bytes_.size() >= kHeaderBytes + kTrailerBytes,
               shard_err(file_, "truncated shard"));
  require_data(std::memcmp(bytes_.data(), kMpacMagic, sizeof kMpacMagic) == 0,
               shard_err(file_, "bad magic"));
  const std::uint32_t version = read_u32(bytes_, 4);
  require_data(version == kMpacVersion,
               shard_err(file_, "unsupported version " + std::to_string(version)));
  const std::uint64_t dir_offset = read_u64(bytes_, 8);
  const std::uint32_t dir_count = read_u32(bytes_, 16);
  const std::uint64_t payload_end = bytes_.size() - kTrailerBytes;
  require_data(dir_offset >= kHeaderBytes && dir_offset % 8 == 0 &&
                   dir_offset + static_cast<std::uint64_t>(dir_count) * kDirEntryBytes <=
                       payload_end,
               shard_err(file_, "truncated shard"));

  fingerprint_ = read_u64(bytes_, payload_end);
  const std::uint64_t actual = fnv1a_words(bytes_.data(), payload_end);
  require_data(actual == fingerprint_ && actual == expected_fingerprint,
               shard_err(file_, "fingerprint mismatch"));

  columns_.reserve(dir_count);
  for (std::uint32_t i = 0; i < dir_count; ++i) {
    const std::size_t at = dir_offset + static_cast<std::size_t>(i) * kDirEntryBytes;
    ColumnInfo info;
    info.tag = read_u32(bytes_, at);
    info.elem_size = read_u32(bytes_, at + 4);
    info.offset = read_u64(bytes_, at + 8);
    info.count = read_u64(bytes_, at + 16);
    const std::uint32_t want = expected_elem_size(static_cast<ColumnTag>(info.tag));
    require_data(want != 0, shard_err(file_, "unknown column tag " + std::to_string(info.tag)));
    require_data(info.elem_size == want,
                 shard_err(file_, "wrong element size for column " + std::to_string(info.tag)));
    require_data(info.offset >= kHeaderBytes && info.offset % info.elem_size == 0 &&
                     info.offset + info.count * info.elem_size <= dir_offset,
                 shard_err(file_, "truncated column " + std::to_string(info.tag)));
    columns_.push_back(info);
  }
  std::sort(columns_.begin(), columns_.end(),
            [](const ColumnInfo& a, const ColumnInfo& b) { return a.tag < b.tag; });
  for (std::size_t i = 1; i < columns_.size(); ++i)
    require_data(columns_[i - 1].tag != columns_[i].tag,
                 shard_err(file_, "duplicate column tag " + std::to_string(columns_[i].tag)));
  for (const ColumnTag tag : kAllTags)
    require_data(column(tag) != nullptr,
                 shard_err(file_, "missing column " +
                                      std::to_string(static_cast<std::uint32_t>(tag))));

  // Cross-column structure: record columns agree on counts and every
  // begin/offset array is a valid prefix-sum over its target.
  const auto want_count = [&](ColumnTag tag, std::uint64_t n) {
    require_data(require_column(tag).count == n,
                 shard_err(file_, "column count mismatch for column " +
                                      std::to_string(static_cast<std::uint32_t>(tag))));
  };
  const std::uint64_t nets = require_column(ColumnTag::kNetSeq).count;
  want_count(ColumnTag::kNetId, nets);
  want_count(ColumnTag::kNetWorkloadBegin, nets + 1);
  const std::uint64_t devs = require_column(ColumnTag::kDevSeq).count;
  for (const ColumnTag t : {ColumnTag::kDevId, ColumnTag::kDevNetwork, ColumnTag::kDevVendor,
                            ColumnTag::kDevModel, ColumnTag::kDevRole, ColumnTag::kDevFirmware})
    want_count(t, devs);
  const std::uint64_t tkts = require_column(ColumnTag::kTktSeq).count;
  for (const ColumnTag t : {ColumnTag::kTktId, ColumnTag::kTktNetwork, ColumnTag::kTktCreated,
                            ColumnTag::kTktResolved, ColumnTag::kTktOrigin,
                            ColumnTag::kTktSymptom})
    want_count(t, tkts);
  want_count(ColumnTag::kTktDeviceBegin, tkts + 1);
  const std::uint64_t snaps = require_column(ColumnTag::kSnapDevice).count;
  want_count(ColumnTag::kSnapTime, snaps);
  want_count(ColumnTag::kSnapLogin, snaps);
  want_count(ColumnTag::kSnapTextBegin, snaps + 1);
  require_data(require_column(ColumnTag::kDictOffsets).count >= 1,
               shard_err(file_, "empty dictionary offsets"));

  const auto check_begins_u32 = [&](ColumnTag tag, std::uint64_t target) {
    const auto begins = u32s(tag);
    require_data(!begins.empty() && begins.front() == 0 && begins.back() == target,
                 shard_err(file_, "corrupt offsets in column " +
                                      std::to_string(static_cast<std::uint32_t>(tag))));
    for (std::size_t i = 1; i < begins.size(); ++i)
      require_data(begins[i - 1] <= begins[i],
                   shard_err(file_, "corrupt offsets in column " +
                                        std::to_string(static_cast<std::uint32_t>(tag))));
  };
  const auto check_begins_u64 = [&](ColumnTag tag, std::uint64_t target) {
    const auto begins = u64s(tag);
    require_data(!begins.empty() && begins.front() == 0 && begins.back() == target,
                 shard_err(file_, "corrupt offsets in column " +
                                      std::to_string(static_cast<std::uint32_t>(tag))));
    for (std::size_t i = 1; i < begins.size(); ++i)
      require_data(begins[i - 1] <= begins[i],
                   shard_err(file_, "corrupt offsets in column " +
                                        std::to_string(static_cast<std::uint32_t>(tag))));
  };
  check_begins_u64(ColumnTag::kDictOffsets, require_column(ColumnTag::kDictBlob).count);
  check_begins_u32(ColumnTag::kNetWorkloadBegin,
                   require_column(ColumnTag::kNetWorkloadCode).count);
  check_begins_u32(ColumnTag::kTktDeviceBegin, require_column(ColumnTag::kTktDeviceCode).count);
  check_begins_u64(ColumnTag::kSnapTextBegin, require_column(ColumnTag::kConfigBlob).count);
}

const ShardView::ColumnInfo* ShardView::column(ColumnTag tag) const {
  const auto want = static_cast<std::uint32_t>(tag);
  const auto it = std::lower_bound(
      columns_.begin(), columns_.end(), want,
      [](const ColumnInfo& c, std::uint32_t t) { return c.tag < t; });
  return (it != columns_.end() && it->tag == want) ? &*it : nullptr;
}

const ShardView::ColumnInfo& ShardView::require_column(ColumnTag tag) const {
  const ColumnInfo* c = column(tag);
  require(c != nullptr, shard_err(file_, "column accessed before validation"));
  return *c;
}

std::span<const std::uint64_t> ShardView::u64s(ColumnTag tag) const {
  const ColumnInfo& c = require_column(tag);
  return {reinterpret_cast<const std::uint64_t*>(bytes_.data() + c.offset), c.count};
}

std::span<const std::int64_t> ShardView::i64s(ColumnTag tag) const {
  const ColumnInfo& c = require_column(tag);
  return {reinterpret_cast<const std::int64_t*>(bytes_.data() + c.offset), c.count};
}

std::span<const std::uint32_t> ShardView::u32s(ColumnTag tag) const {
  const ColumnInfo& c = require_column(tag);
  return {reinterpret_cast<const std::uint32_t*>(bytes_.data() + c.offset), c.count};
}

std::span<const std::uint8_t> ShardView::u8s(ColumnTag tag) const {
  const ColumnInfo& c = require_column(tag);
  return {reinterpret_cast<const std::uint8_t*>(bytes_.data() + c.offset), c.count};
}

std::string_view ShardView::dict(std::uint32_t code) const {
  const auto offsets = u64s(ColumnTag::kDictOffsets);
  require_data(static_cast<std::size_t>(code) + 1 < offsets.size(),
               shard_err(file_, "dictionary index out of range"));
  const auto blob = u8s(ColumnTag::kDictBlob);
  return {reinterpret_cast<const char*>(blob.data()) + offsets[code],
          static_cast<std::size_t>(offsets[code + 1] - offsets[code])};
}

std::string_view ShardView::config_text(std::size_t i) const {
  const auto begins = u64s(ColumnTag::kSnapTextBegin);
  require(i + 1 < begins.size(), shard_err(file_, "config_text row out of range"));
  const auto blob = u8s(ColumnTag::kConfigBlob);
  return {reinterpret_cast<const char*>(blob.data()) + begins[i],
          static_cast<std::size_t>(begins[i + 1] - begins[i])};
}

// ---------------------------------------------------------------------------
// Dataset-level load / save / verify

bool is_columnar_dir(const std::string& dir) {
  return fs::exists(fs::path(dir) / kMpacManifestName);
}

void save_columnar(const DiskDataset& data, const std::string& dir, ColumnarWriteOptions opts) {
  ColumnarWriter w(dir, opts);
  for (const auto& net : data.inventory.networks()) w.add_network(net);
  for (const auto& dev : data.inventory.devices()) w.add_device(dev);
  for (const auto& t : data.tickets.all()) w.add_ticket(t);
  for (const auto& device_id : data.snapshots.devices())
    for (const auto& snap : data.snapshots.for_device(device_id)) w.add_snapshot(snap);
  w.finish();
}

ColumnarDataset load_columnar(const std::string& dir) {
  const fs::path base(dir);
  const fs::path manifest_path = base / kMpacManifestName;
  const std::string manifest_text = read_text_file(manifest_path);
  const JsonValue doc = parse_json(manifest_text);

  require_data(doc.at("format").as_string() == "mpac", "mpac: manifest format is not mpac");
  const std::uint64_t version = doc.at("version").as_u64();
  require_data(version == kMpacVersion,
               "mpac: unsupported version " + std::to_string(version) + " in manifest");

  ColumnarDataset out;
  out.totals_.networks = doc.at("networks").as_u64();
  out.totals_.devices = doc.at("devices").as_u64();
  out.totals_.tickets = doc.at("tickets").as_u64();
  out.totals_.snapshots = doc.at("snapshots").as_u64();
  out.totals_.config_bytes = doc.at("config_bytes").as_u64();
  out.bytes_read_ = manifest_text.size();

  for (const JsonValue& s : doc.at("shards").as_array()) {
    MpacShardInfo info;
    info.file = s.at("file").as_string();
    info.bytes = s.at("bytes").as_u64();
    info.fingerprint = s.at("fingerprint").as_u64();
    info.networks = s.at("networks").as_u64();
    info.devices = s.at("devices").as_u64();
    info.tickets = s.at("tickets").as_u64();
    info.snapshots = s.at("snapshots").as_u64();

    MappedFile map((base / info.file).string());
    require_data(map.bytes().size() == info.bytes,
                 shard_err(info.file, "truncated shard (expected " + std::to_string(info.bytes) +
                                          " bytes, found " +
                                          std::to_string(map.bytes().size()) + ")"));
    ShardView view(map.bytes(), info.file, info.fingerprint);
    require_data(view.num_networks() == info.networks && view.num_devices() == info.devices &&
                     view.num_tickets() == info.tickets && view.num_snapshots() == info.snapshots,
                 shard_err(info.file, "record counts disagree with manifest"));
    out.bytes_read_ += info.bytes;
    out.totals_.shard_bytes += info.bytes;
    ++out.totals_.shards;
    out.maps_.push_back(std::move(map));
    out.views_.push_back(std::move(view));
    out.infos_.push_back(std::move(info));
  }

  std::uint64_t nets = 0, devs = 0, tkts = 0, snaps = 0;
  for (const auto& i : out.infos_) {
    nets += i.networks;
    devs += i.devices;
    tkts += i.tickets;
    snaps += i.snapshots;
  }
  require_data(nets == out.totals_.networks && devs == out.totals_.devices &&
                   tkts == out.totals_.tickets && snaps == out.totals_.snapshots,
               "mpac: shard totals disagree with manifest");
  return out;
}

DiskDataset ColumnarDataset::to_disk_dataset() const {
  DiskDataset out;
  out.inventory.reserve(totals_.networks, totals_.devices);
  out.tickets.reserve(totals_.tickets);

  const auto check_seq = [](const ShardView& v, std::span<const std::uint64_t> seqs,
                            std::uint64_t& expect, const char* what) {
    for (const std::uint64_t s : seqs) {
      require_data(s == expect, shard_err(v.file(), std::string("out-of-order ") + what +
                                                        " record " + std::to_string(s)));
      ++expect;
    }
  };

  std::uint64_t seq = 0;
  for (const ShardView& v : views_) {
    check_seq(v, v.u64s(ColumnTag::kNetSeq), seq, "network");
    const auto ids = v.u32s(ColumnTag::kNetId);
    const auto wl_begin = v.u32s(ColumnTag::kNetWorkloadBegin);
    const auto wl_code = v.u32s(ColumnTag::kNetWorkloadCode);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      NetworkRecord net;
      net.network_id = std::string(v.dict(ids[i]));
      net.workloads.reserve(wl_begin[i + 1] - wl_begin[i]);
      for (std::uint32_t w = wl_begin[i]; w < wl_begin[i + 1]; ++w) {
        Workload wl;
        wl.name = std::string(v.dict(wl_code[w]));
        net.workloads.push_back(std::move(wl));
      }
      out.inventory.add_network(std::move(net));
    }
  }

  seq = 0;
  for (const ShardView& v : views_) {
    check_seq(v, v.u64s(ColumnTag::kDevSeq), seq, "device");
    const auto ids = v.u32s(ColumnTag::kDevId);
    const auto nets = v.u32s(ColumnTag::kDevNetwork);
    const auto vendors = v.u8s(ColumnTag::kDevVendor);
    const auto models = v.u32s(ColumnTag::kDevModel);
    const auto roles = v.u8s(ColumnTag::kDevRole);
    const auto firmwares = v.u32s(ColumnTag::kDevFirmware);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      require_data(vendors[i] < kNumVendors,
                   shard_err(v.file(), "bad vendor code " + std::to_string(vendors[i])));
      require_data(roles[i] < kNumRoles,
                   shard_err(v.file(), "bad role code " + std::to_string(roles[i])));
      DeviceRecord d;
      d.device_id = std::string(v.dict(ids[i]));
      d.network_id = std::string(v.dict(nets[i]));
      d.vendor = static_cast<Vendor>(vendors[i]);
      d.model = std::string(v.dict(models[i]));
      d.role = static_cast<Role>(roles[i]);
      d.firmware = std::string(v.dict(firmwares[i]));
      out.inventory.add_device(std::move(d));
    }
  }

  seq = 0;
  for (const ShardView& v : views_) {
    check_seq(v, v.u64s(ColumnTag::kTktSeq), seq, "ticket");
    const auto ids = v.u32s(ColumnTag::kTktId);
    const auto nets = v.u32s(ColumnTag::kTktNetwork);
    const auto created = v.i64s(ColumnTag::kTktCreated);
    const auto resolved = v.i64s(ColumnTag::kTktResolved);
    const auto origins = v.u8s(ColumnTag::kTktOrigin);
    const auto symptoms = v.u32s(ColumnTag::kTktSymptom);
    const auto dev_begin = v.u32s(ColumnTag::kTktDeviceBegin);
    const auto dev_code = v.u32s(ColumnTag::kTktDeviceCode);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      require_data(origins[i] <= static_cast<std::uint8_t>(TicketOrigin::kMaintenance),
                   shard_err(v.file(), "bad origin code " + std::to_string(origins[i])));
      Ticket t;
      t.ticket_id = std::string(v.dict(ids[i]));
      require_data(resolved[i] >= created[i],
                   shard_err(v.file(), "resolved time precedes created time for ticket " +
                                           t.ticket_id));
      t.network_id = std::string(v.dict(nets[i]));
      t.created = created[i];
      t.resolved = resolved[i];
      t.origin = static_cast<TicketOrigin>(origins[i]);
      t.symptom = std::string(v.dict(symptoms[i]));
      t.devices.reserve(dev_begin[i + 1] - dev_begin[i]);
      for (std::uint32_t d = dev_begin[i]; d < dev_begin[i + 1]; ++d)
        t.devices.emplace_back(v.dict(dev_code[d]));
      out.tickets.add(std::move(t));
    }
  }

  for (const ShardView& v : views_) {
    const auto devices = v.u32s(ColumnTag::kSnapDevice);
    const auto times = v.i64s(ColumnTag::kSnapTime);
    const auto logins = v.u32s(ColumnTag::kSnapLogin);
    for (std::size_t i = 0; i < devices.size(); ++i) {
      ConfigSnapshot snap;
      snap.device_id = std::string(v.dict(devices[i]));
      snap.time = times[i];
      snap.login = std::string(v.dict(logins[i]));
      snap.text = std::string(v.config_text(i));
      out.snapshots.add(std::move(snap));
    }
  }

  return out;
}

std::string verify_columnar(const std::string& dir) {
  const ColumnarDataset data = load_columnar(dir);

  // Deep scan beyond the structural checks: every dictionary code in
  // range, sequence numbers contiguous across shards, enum and time
  // fields sane, per-device snapshot order non-decreasing.
  std::uint64_t net_seq = 0, dev_seq = 0, tkt_seq = 0;
  std::map<std::string, std::int64_t, std::less<>> last_snap_time;
  for (const ShardView& v : data.shards()) {
    const std::size_t dict_n = v.dict_size();
    const auto check_codes = [&](ColumnTag tag) {
      for (const std::uint32_t code : v.u32s(tag))
        require_data(code < dict_n, shard_err(v.file(), "dictionary index out of range"));
    };
    for (const ColumnTag t :
         {ColumnTag::kNetId, ColumnTag::kNetWorkloadCode, ColumnTag::kDevId,
          ColumnTag::kDevNetwork, ColumnTag::kDevModel, ColumnTag::kDevFirmware,
          ColumnTag::kTktId, ColumnTag::kTktNetwork, ColumnTag::kTktSymptom,
          ColumnTag::kTktDeviceCode, ColumnTag::kSnapDevice, ColumnTag::kSnapLogin})
      check_codes(t);
    for (const std::uint64_t s : v.u64s(ColumnTag::kNetSeq))
      require_data(s == net_seq++, shard_err(v.file(), "out-of-order network record"));
    for (const std::uint64_t s : v.u64s(ColumnTag::kDevSeq))
      require_data(s == dev_seq++, shard_err(v.file(), "out-of-order device record"));
    for (const std::uint64_t s : v.u64s(ColumnTag::kTktSeq))
      require_data(s == tkt_seq++, shard_err(v.file(), "out-of-order ticket record"));
    for (const std::uint8_t vendor : v.u8s(ColumnTag::kDevVendor))
      require_data(vendor < kNumVendors, shard_err(v.file(), "bad vendor code"));
    for (const std::uint8_t role : v.u8s(ColumnTag::kDevRole))
      require_data(role < kNumRoles, shard_err(v.file(), "bad role code"));
    for (const std::uint8_t origin : v.u8s(ColumnTag::kTktOrigin))
      require_data(origin <= static_cast<std::uint8_t>(TicketOrigin::kMaintenance),
                   shard_err(v.file(), "bad origin code"));
    const auto created = v.i64s(ColumnTag::kTktCreated);
    const auto resolved = v.i64s(ColumnTag::kTktResolved);
    for (std::size_t i = 0; i < created.size(); ++i)
      require_data(resolved[i] >= created[i],
                   shard_err(v.file(), "resolved time precedes created time"));
    const auto snap_devices = v.u32s(ColumnTag::kSnapDevice);
    const auto snap_times = v.i64s(ColumnTag::kSnapTime);
    for (std::size_t i = 0; i < snap_devices.size(); ++i) {
      const std::string_view device = v.dict(snap_devices[i]);
      const auto it = last_snap_time.find(device);
      if (it != last_snap_time.end()) {
        require_data(it->second <= snap_times[i],
                     shard_err(v.file(), "out-of-order snapshot for device " +
                                             std::string(device)));
        it->second = snap_times[i];
      } else {
        last_snap_time.emplace(std::string(device), snap_times[i]);
      }
    }
  }

  const MpacTotals& t = data.totals();
  std::ostringstream os;
  os << "mpac dataset: " << dir << "\n"
     << "  shards      " << t.shards << "\n"
     << "  networks    " << t.networks << "\n"
     << "  devices     " << t.devices << "\n"
     << "  tickets     " << t.tickets << "\n"
     << "  snapshots   " << t.snapshots << "\n"
     << "  config      " << t.config_bytes << " bytes\n"
     << "  total       " << data.total_bytes() << " bytes\n";
  for (const auto& s : data.shard_infos()) {
    char fp[24];
    std::snprintf(fp, sizeof fp, "%016llx", static_cast<unsigned long long>(s.fingerprint));
    os << "  " << s.file << "  OK  fingerprint " << fp << "  " << s.bytes << " bytes\n";
  }
  return os.str();
}

}  // namespace mpa
