// On-disk dataset format, so organizations can run MPA on their own
// data ("Our tool is publicly available, so organizations can analyze
// their own management practices", §1).
//
// A dataset directory contains:
//
//   networks.csv    network_id,workloads            (workloads ';'-separated)
//   devices.csv     device_id,network_id,vendor,model,role,firmware
//   tickets.csv     ticket_id,network_id,created,resolved,origin,symptom,devices
//   snapshots.log   one record per snapshot:
//                     @snapshot <device_id> <time> <login> <byte-count>
//                     <byte-count bytes of raw config text>
//
// Timestamps are minutes from the start of the observation window
// (telemetry/time.hpp). Vendors/roles/origins use the to_string names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/inventory.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/tickets.hpp"

namespace mpa {

/// A loaded (or to-be-saved) on-disk dataset.
struct DiskDataset {
  Inventory inventory;
  SnapshotStore snapshots;
  TicketLog tickets;
};

/// Write all three data sources into `dir` (created if absent).
/// Throws DataError on I/O failure.
void save_dataset(const DiskDataset& data, const std::string& dir);

/// Load a dataset directory written by save_dataset (or assembled by
/// hand / by an exporter from RANCID + an inventory system). Throws
/// DataError on malformed content, naming the missing file when the
/// directory or one of the four sources is absent.
///
/// Detects the format automatically: a directory containing an mpac
/// manifest (io/columnar.hpp) is loaded through the binary columnar
/// path instead of the CSV parser. When `bytes_read` is non-null it
/// receives the total bytes read from disk (for load observability).
DiskDataset load_dataset(const std::string& dir, std::uint64_t* bytes_read = nullptr);

/// One month of new telemetry for a live dataset: the snapshots and
/// tickets whose timestamps fall inside month `month`. The inventory is
/// fixed across a delta — adding devices or networks goes through
/// AnalysisSession::replace_data, which is a full rebuild by design.
struct MonthDelta {
  int month = 0;
  std::vector<ConfigSnapshot> snapshots;
  std::vector<Ticket> tickets;
};

/// Write a month delta into `dir` (created if absent): month.txt plus
/// tickets.csv and snapshots.log in the exact formats save_dataset
/// uses (same field validation, same error strings). Throws DataError
/// on I/O failure or an invalid field.
void save_month_delta(const MonthDelta& delta, const std::string& dir);

/// Load a delta directory written by save_month_delta. Throws
/// DataError on malformed content, with the same validation (and the
/// same error strings) as load_dataset: resolved < created tickets,
/// negative snapshot lengths, and malformed headers are rejected by
/// name; CRLF line endings are accepted.
MonthDelta load_month_delta(const std::string& dir);

/// A dataset cut at a month boundary: `base` holds every record whose
/// timestamp falls strictly before `first_delta_month`, and `deltas`
/// holds one MonthDelta per later month (contiguous, possibly empty
/// months included) in ascending month order. Within every destination
/// the original relative record order is preserved, so replaying the
/// deltas over the base reproduces each device's snapshot sequence
/// exactly; the global ticket order becomes month-major (base first,
/// then each delta), which no analysis observes — artifacts equal a
/// from-scratch run over the replayed containers bit-exactly.
struct SplitDataset {
  DiskDataset base;
  std::vector<MonthDelta> deltas;
};

/// Split a dataset at `first_delta_month` (tickets are attributed to
/// the month of their created time, snapshots to the month of their
/// capture time). The inventory is copied into the base unchanged.
SplitDataset split_dataset(const DiskDataset& data, int first_delta_month);

/// Parse helpers exposed for tests.
Vendor vendor_from_string(std::string_view s);
Role role_from_string(std::string_view s);
TicketOrigin origin_from_string(std::string_view s);

/// Validation shared by save_dataset and save_month_delta, exposed for
/// tests: snapshots.log header tokens are whitespace-delimited, so a
/// device_id or login that is empty or contains whitespace is rejected
/// by name before it can corrupt the record stream.
void check_header_token(const std::string& s, const char* what);

}  // namespace mpa
