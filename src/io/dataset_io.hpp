// On-disk dataset format, so organizations can run MPA on their own
// data ("Our tool is publicly available, so organizations can analyze
// their own management practices", §1).
//
// A dataset directory contains:
//
//   networks.csv    network_id,workloads            (workloads ';'-separated)
//   devices.csv     device_id,network_id,vendor,model,role,firmware
//   tickets.csv     ticket_id,network_id,created,resolved,origin,symptom,devices
//   snapshots.log   one record per snapshot:
//                     @snapshot <device_id> <time> <login> <byte-count>
//                     <byte-count bytes of raw config text>
//
// Timestamps are minutes from the start of the observation window
// (telemetry/time.hpp). Vendors/roles/origins use the to_string names.
#pragma once

#include <string>

#include "model/inventory.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/tickets.hpp"

namespace mpa {

/// A loaded (or to-be-saved) on-disk dataset.
struct DiskDataset {
  Inventory inventory;
  SnapshotStore snapshots;
  TicketLog tickets;
};

/// Write all three data sources into `dir` (created if absent).
/// Throws DataError on I/O failure.
void save_dataset(const DiskDataset& data, const std::string& dir);

/// Load a dataset directory written by save_dataset (or assembled by
/// hand / by an exporter from RANCID + an inventory system). Throws
/// DataError on malformed content.
DiskDataset load_dataset(const std::string& dir);

/// Parse helpers exposed for tests.
Vendor vendor_from_string(std::string_view s);
Role role_from_string(std::string_view s);
TicketOrigin origin_from_string(std::string_view s);

}  // namespace mpa
