#include "metrics/case_table.hpp"

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace mpa {

std::vector<double> CaseTable::column(Practice p) const {
  std::vector<double> out;
  out.reserve(cases_.size());
  for (const auto& c : cases_) out.push_back(c[p]);
  return out;
}

std::vector<double> CaseTable::tickets() const {
  std::vector<double> out;
  out.reserve(cases_.size());
  for (const auto& c : cases_) out.push_back(c.tickets);
  return out;
}

CaseTable CaseTable::filter_months(int first, int last) const {
  CaseTable out;
  for (const auto& c : cases_)
    if (c.month >= first && c.month <= last) out.add(c);
  return out;
}

std::vector<std::string> CaseTable::network_ids() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& c : cases_)
    if (seen.insert(c.network_id).second) out.push_back(c.network_id);
  return out;
}

std::string CaseTable::to_csv() const {
  std::ostringstream os;
  os << "network,month";
  for (Practice p : all_practices()) {
    std::string name(practice_name(p));
    for (auto& ch : name)
      if (ch == ' ' || ch == ',') ch = '_';
    os << ',' << name;
  }
  os << ",tickets\n";
  for (const auto& c : cases_) {
    os << c.network_id << ',' << c.month;
    for (Practice p : all_practices()) os << ',' << format_double(c[p], 6);
    os << ',' << format_double(c.tickets, 6) << '\n';
  }
  return os.str();
}

CaseTable CaseTable::from_csv(std::string_view csv) {
  CaseTable out;
  bool header = true;
  for (const auto& line : split(csv, '\n')) {
    if (trim(line).empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto cells = split(line, ',');
    require_data(cells.size() == 3 + kNumPractices,
                 "CaseTable::from_csv: wrong column count in: " + line);
    Case c;
    c.network_id = cells[0];
    try {
      c.month = std::stoi(cells[1]);
      for (int j = 0; j < kNumPractices; ++j)
        c.practice[static_cast<std::size_t>(j)] = std::stod(cells[static_cast<std::size_t>(2 + j)]);
      c.tickets = std::stod(cells[cells.size() - 1]);
    } catch (const std::exception&) {
      throw DataError("CaseTable::from_csv: non-numeric cell in: " + line);
    }
    out.add(std::move(c));
  }
  return out;
}

}  // namespace mpa
