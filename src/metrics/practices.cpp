#include "metrics/practices.hpp"

namespace mpa {

std::string_view practice_name(Practice p) {
  switch (p) {
    case Practice::kNumWorkloads: return "No. of workloads";
    case Practice::kNumDevices: return "No. of devices";
    case Practice::kNumVendors: return "No. of vendors";
    case Practice::kNumModels: return "No. of models";
    case Practice::kNumRoles: return "No. of roles";
    case Practice::kNumFirmwareVersions: return "No. of firmware versions";
    case Practice::kHardwareEntropy: return "Hardware entropy";
    case Practice::kFirmwareEntropy: return "Firmware entropy";
    case Practice::kNumL2Protocols: return "No. of L2 protocols";
    case Practice::kNumL3Protocols: return "No. of L3 protocols";
    case Practice::kNumProtocols: return "No. of protocols";
    case Practice::kNumVlans: return "No. of VLANs";
    case Practice::kNumBgpInstances: return "No. of BGP instances";
    case Practice::kNumOspfInstances: return "No. of OSPF instances";
    case Practice::kAvgBgpInstanceSize: return "Avg. size of a BGP instance";
    case Practice::kAvgOspfInstanceSize: return "Avg. size of an OSPF instance";
    case Practice::kIntraDeviceComplexity: return "Intra-device complexity";
    case Practice::kInterDeviceComplexity: return "Inter-device complexity";
    case Practice::kNumConfigChanges: return "No. of config changes";
    case Practice::kNumDevicesChanged: return "No. of devices changed";
    case Practice::kFracDevicesChanged: return "Frac. devices changed";
    case Practice::kFracChangesAutomated: return "Frac. changes automated";
    case Practice::kNumChangeTypes: return "No. of change types";
    case Practice::kNumChangeEvents: return "No. of change events";
    case Practice::kAvgDevicesPerEvent: return "Avg. devices changed per event";
    case Practice::kFracEventsInterface: return "Frac. events w/ interface change";
    case Practice::kFracEventsAcl: return "Frac. events w/ ACL change";
    case Practice::kFracEventsRouter: return "Frac. events w/ router change";
    case Practice::kFracEventsVlan: return "Frac. events w/ VLAN change";
    case Practice::kFracEventsMbox: return "Frac. events w/ mbox change";
    case Practice::kFracEventsPool: return "Frac. events w/ pool change";
    case Practice::kLintIssues: return "No. of lint issues";
    case Practice::kLintErrors: return "No. of lint errors";
    case Practice::kLintRulesHit: return "No. of lint rules hit";
    case Practice::kLintDensity: return "Lint issues per device";
  }
  return "unknown";
}

PracticeCategory practice_category(Practice p) {
  if (static_cast<int>(p) < static_cast<int>(Practice::kNumConfigChanges))
    return PracticeCategory::kDesign;
  if (static_cast<int>(p) < static_cast<int>(Practice::kLintIssues))
    return PracticeCategory::kOperational;
  return PracticeCategory::kHygiene;
}

std::string_view category_tag(Practice p) {
  switch (practice_category(p)) {
    case PracticeCategory::kDesign: return "D";
    case PracticeCategory::kOperational: return "O";
    case PracticeCategory::kHygiene: return "H";
  }
  return "?";
}

std::array<Practice, kNumPractices> all_practices() {
  std::array<Practice, kNumPractices> out{};
  for (int i = 0; i < kNumPractices; ++i) out[static_cast<std::size_t>(i)] = static_cast<Practice>(i);
  return out;
}

std::vector<Practice> analysis_practices() {
  std::vector<Practice> out;
  for (Practice p : all_practices()) {
    if (p == Practice::kFracDevicesChanged || p == Practice::kNumProtocols ||
        p == Practice::kLintDensity) {
      continue;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace mpa
