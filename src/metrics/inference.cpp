#include "metrics/inference.hpp"

#include <algorithm>
#include <map>

#include "config/dialect.hpp"
#include "metrics/design_metrics.hpp"
#include "metrics/lint_metrics.hpp"
#include "util/parallel.hpp"

namespace mpa {
namespace {

/// Parsed snapshot timeline of one device.
struct DeviceTimeline {
  std::vector<Timestamp> times;
  std::vector<DeviceConfig> configs;
  std::vector<LintSource> sources;  ///< Spans + pragmas, per snapshot.

  /// Index of the last snapshot strictly before `t`, or -1.
  int state_before(Timestamp t) const {
    const auto it = std::lower_bound(times.begin(), times.end(), t);
    return static_cast<int>(it - times.begin()) - 1;
  }
};

/// Rows of one network for months [first_month, opts.num_months), in
/// month order. Pure function of its inputs: safe to fan out per
/// network, and the concatenation in inventory order is byte-identical
/// to the serial loop.
///
/// With first_month > 0 only the per-device snapshot *suffix* from the
/// last snapshot strictly before the window is parsed and diffed — the
/// carry-in snapshot supplies every earlier config state a month-end
/// lookup inside the window can resolve to, and every change record
/// the window's months select survives (change i pairs snapshots
/// (i-1, i), and snapshot i is inside the suffix exactly when its time
/// is >= month_start(first_month)). This is what makes append_month
/// O(delta) instead of O(history).
std::vector<Case> infer_network_cases(const NetworkRecord& net, const Inventory& inventory,
                                      const SnapshotStore& snapshots, const TicketLog& tickets,
                                      const InferenceOptions& opts, int first_month) {
  const auto devices = inventory.devices_in(net.network_id);
  const Timestamp window_start = month_start(first_month);

  std::map<std::string, Role> device_roles;
  for (const auto* d : devices) device_roles[d->device_id] = d->role;

  // Parse each device's snapshot archive once (only the suffix that
  // can influence the requested months); derive both the monthly
  // config states and the change stream from it.
  std::map<std::string, DeviceTimeline> timelines;
  std::vector<ChangeRecord> changes;
  for (const auto* d : devices) {
    const auto& snaps = snapshots.for_device(d->device_id);
    if (snaps.empty()) continue;
    const Dialect dialect = dialect_of(d->vendor);
    std::size_t begin = 0;
    if (first_month > 0) {
      // Last snapshot strictly before the window (carry-in state);
      // parse from there. Snapshots are time-ordered per device.
      const auto before = static_cast<std::size_t>(
          std::partition_point(snaps.begin(), snaps.end(),
                               [&](const ConfigSnapshot& s) { return s.time < window_start; }) -
          snaps.begin());
      begin = before > 0 ? before - 1 : 0;
    }
    DeviceTimeline tl;
    tl.times.reserve(snaps.size() - begin);
    tl.configs.reserve(snaps.size() - begin);
    for (std::size_t i = begin; i < snaps.size(); ++i) {
      tl.times.push_back(snaps[i].time);
      tl.configs.push_back(parse(snaps[i].text, dialect, d->device_id));
      tl.sources.push_back(LintSource::scan(snaps[i].text, dialect));
    }
    for (std::size_t i = 1; i < tl.configs.size(); ++i) {
      auto stanza_changes = diff(tl.configs[i - 1], tl.configs[i]);
      if (stanza_changes.empty()) continue;
      ChangeRecord cr;
      cr.device_id = d->device_id;
      cr.network_id = net.network_id;
      cr.time = snaps[begin + i].time;
      cr.login = snaps[begin + i].login;
      cr.automated = opts.automation(snaps[begin + i].login);
      cr.stanza_changes = std::move(stanza_changes);
      changes.push_back(std::move(cr));
    }
    timelines.emplace(d->device_id, std::move(tl));
  }
  // stable_sort, not sort: records tied on (time, device_id) keep their
  // generation order, so sorting a per-device suffix of the change
  // stream and sorting the full stream agree on every month window —
  // the property the tail path's bit-exactness contract rests on.
  std::stable_sort(changes.begin(), changes.end(),
                   [](const ChangeRecord& a, const ChangeRecord& b) {
                     return a.time != b.time ? a.time < b.time : a.device_id < b.device_id;
                   });

  std::vector<Case> rows;
  rows.reserve(static_cast<std::size_t>(opts.num_months - first_month));
  for (int m = first_month; m < opts.num_months; ++m) {
    const Timestamp m_start = month_start(m);
    const Timestamp m_end = month_start(m + 1);

    Case row;
    row.network_id = net.network_id;
    row.month = m;

    // Design metrics from the configuration state at month end.
    std::vector<DeviceConfig> state;
    std::vector<LintInput> lint_inputs;
    state.reserve(timelines.size());
    lint_inputs.reserve(timelines.size());
    for (const auto& [dev_id, tl] : timelines) {
      const int idx = tl.state_before(m_end);
      if (idx < 0) continue;
      state.push_back(tl.configs[static_cast<std::size_t>(idx)]);
      lint_inputs.push_back(LintInput{&tl.configs[static_cast<std::size_t>(idx)],
                                      &tl.sources[static_cast<std::size_t>(idx)]});
    }
    compute_design_metrics(net, devices, state, row);

    // Hygiene metrics from linting the same month-end state.
    const auto diags = run_lint(lint_inputs, opts.lint);
    apply_lint_metrics(LintSummary::of(diags, lint_inputs.size()), row);

    // Operational metrics from this month's changes.
    std::vector<const ChangeRecord*> month_changes;
    for (const auto& c : changes)
      if (c.time >= m_start && c.time < m_end) month_changes.push_back(&c);
    const auto events = group_events(month_changes, opts.event_window);
    compute_operational_metrics(month_changes, events, devices.size(), device_roles, row);

    row.tickets = tickets.count_health_tickets(net.network_id, m);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

CaseTable infer_case_table(const Inventory& inventory, const SnapshotStore& snapshots,
                           const TicketLog& tickets, const InferenceOptions& opts) {
  return infer_case_table_tail(inventory, snapshots, tickets, opts, 0);
}

CaseTable infer_case_table_tail(const Inventory& inventory, const SnapshotStore& snapshots,
                                const TicketLog& tickets, const InferenceOptions& opts,
                                int first_month) {
  const auto& networks = inventory.networks();
  std::vector<std::vector<Case>> per_network(networks.size());
  parallel_for(opts.pool, networks.size(), [&](std::size_t n) {
    per_network[n] =
        infer_network_cases(networks[n], inventory, snapshots, tickets, opts, first_month);
  });

  CaseTable table;
  for (auto& rows : per_network)
    for (auto& row : rows) table.add(std::move(row));
  return table;
}

}  // namespace mpa
