// The management-practice metric catalogue (Table 1).
//
// Design practices (D1-D6) are long-term structural decisions inferred
// from inventory + configuration state; operational practices (O1-O4)
// are inferred from configuration-change streams. The paper analyzes
// 28 metrics; our inference produces the 31 below (a couple of the
// per-type change fractions are kept separate rather than folded).
#pragma once

#include <array>
#include <vector>
#include <cstdint>
#include <string_view>

namespace mpa {

enum class Practice : std::uint8_t {
  // --- Design practices -------------------------------------------------
  kNumWorkloads,          // D1: services / users / networks connected
  kNumDevices,            // D2
  kNumVendors,            // D2
  kNumModels,             // D2
  kNumRoles,              // D2
  kNumFirmwareVersions,   // D2
  kHardwareEntropy,       // D3: normalized model-x-role entropy
  kFirmwareEntropy,       // D3
  kNumL2Protocols,        // D4
  kNumL3Protocols,        // D5
  kNumProtocols,          // D4+D5 combined (Figure 11(b) "Both")
  kNumVlans,              // D4 instance count
  kNumBgpInstances,       // D5
  kNumOspfInstances,      // D5
  kAvgBgpInstanceSize,    // D5
  kAvgOspfInstanceSize,   // D5
  kIntraDeviceComplexity, // D6
  kInterDeviceComplexity, // D6
  // --- Operational practices --------------------------------------------
  kNumConfigChanges,      // O1
  kNumDevicesChanged,     // O1
  kFracDevicesChanged,    // O1
  kFracChangesAutomated,  // O2
  kNumChangeTypes,        // O3
  kNumChangeEvents,       // O4
  kAvgDevicesPerEvent,    // O4
  kFracEventsInterface,   // O3 (per-type modality)
  kFracEventsAcl,         // O3
  kFracEventsRouter,      // O3
  kFracEventsVlan,        // O3
  kFracEventsMbox,        // O3: event touches a middlebox device
  kFracEventsPool,        // O3
  // --- Hygiene practices (lint-derived) ----------------------------------
  kLintIssues,            // H1: total unsuppressed lint findings
  kLintErrors,            // H1: error-severity findings
  kLintRulesHit,          // H2: distinct rule ids that fired
  kLintDensity,           // H1: findings per device
};

inline constexpr int kNumPractices = 35;

enum class PracticeCategory : std::uint8_t { kDesign, kOperational, kHygiene };

/// Human-readable name matching the paper's tables ("No. of devices").
std::string_view practice_name(Practice p);

/// D / O / H classification (the parenthetical annotations in Tables
/// 3-4, extended with the lint-derived hygiene metrics).
PracticeCategory practice_category(Practice p);

/// "D" / "O" / "H" suffix used in table printouts.
std::string_view category_tag(Practice p);

/// All practices, in enum order.
std::array<Practice, kNumPractices> all_practices();

/// The practices used by the dependence and causal analyses. Excludes
/// metrics that are *exact arithmetic identities* of other included
/// metrics (kFracDevicesChanged = kNumDevicesChanged / kNumDevices,
/// kNumProtocols = kNumL2Protocols + kNumL3Protocols, and
/// kLintDensity = kLintIssues / kNumDevices): an exact identity lets
/// the propensity model reconstruct any treatment from its confounders
/// perfectly, which makes matched designs impossible by construction.
/// They remain available for characterization figures.
std::vector<Practice> analysis_practices();

}  // namespace mpa
