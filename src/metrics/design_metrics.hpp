// Design-practice inference (Table 1, D1-D6).
//
// Inputs are the inventory records for one network plus the parsed
// configuration state of its devices (at some point in time, typically
// the end of an analysis month).
#pragma once

#include <vector>

#include "config/stanza.hpp"
#include "metrics/case_table.hpp"
#include "model/inventory.hpp"

namespace mpa {

/// Normalized hardware-heterogeneity entropy (D3):
///   -sum_ij p_ij log2 p_ij / log2 N
/// where p_ij is the fraction of devices of model i playing role j and
/// N the number of devices. 0 for empty or single-device networks.
double hardware_entropy(const std::vector<const DeviceRecord*>& devices);

/// Firmware-heterogeneity entropy: same construction over
/// (firmware version, role) pairs.
double firmware_entropy(const std::vector<const DeviceRecord*>& devices);

/// Protocol constructs in use across a network's configs (D4/D5).
struct ProtocolUsage {
  int l2 = 0;    ///< Distinct L2 constructs (vlan, stp, lag, udld, dhcp-relay).
  int l3 = 0;    ///< Distinct L3 constructs (bgp, ospf).
  int total() const { return l2 + l3; }
};

ProtocolUsage count_protocols(const std::vector<DeviceConfig>& configs);

/// Number of distinct VLANs configured network-wide (D4 instance count).
int count_vlans(const std::vector<DeviceConfig>& configs);

/// Fill the design-practice fields of `out` from inventory + configs.
/// Operational fields and tickets are left untouched.
void compute_design_metrics(const NetworkRecord& net,
                            const std::vector<const DeviceRecord*>& devices,
                            const std::vector<DeviceConfig>& configs, Case& out);

}  // namespace mpa
