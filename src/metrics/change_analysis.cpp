#include "metrics/change_analysis.hpp"

#include <algorithm>

#include "config/dialect.hpp"
#include "util/strings.hpp"

namespace mpa {

bool default_automation_classifier(const std::string& login) {
  return starts_with(login, "svc-");
}

bool ChangeRecord::touches_type(std::string_view agnostic_type) const {
  for (const auto& sc : stanza_changes)
    if (sc.agnostic_type == agnostic_type) return true;
  return false;
}

std::vector<ChangeRecord> extract_changes(const Inventory& inventory,
                                          const SnapshotStore& snapshots,
                                          const AutomationClassifier& is_automated) {
  std::vector<ChangeRecord> out;
  for (const auto& device_id : snapshots.devices()) {
    const DeviceRecord* rec = inventory.find_device(device_id);
    if (rec == nullptr) continue;  // device absent from inventory: skip
    const Dialect dialect = dialect_of(rec->vendor);
    const auto& snaps = snapshots.for_device(device_id);
    if (snaps.size() < 2) continue;

    DeviceConfig prev = parse(snaps[0].text, dialect, device_id);
    for (std::size_t i = 1; i < snaps.size(); ++i) {
      DeviceConfig cur = parse(snaps[i].text, dialect, device_id);
      auto changes = diff(prev, cur);
      if (!changes.empty()) {
        ChangeRecord cr;
        cr.device_id = device_id;
        cr.network_id = rec->network_id;
        cr.time = snaps[i].time;
        cr.login = snaps[i].login;
        cr.automated = is_automated(snaps[i].login);
        cr.stanza_changes = std::move(changes);
        out.push_back(std::move(cr));
      }
      prev = std::move(cur);
    }
  }
  std::sort(out.begin(), out.end(), [](const ChangeRecord& a, const ChangeRecord& b) {
    if (a.network_id != b.network_id) return a.network_id < b.network_id;
    if (a.time != b.time) return a.time < b.time;
    return a.device_id < b.device_id;
  });
  return out;
}

std::set<std::string> ChangeEvent::devices() const {
  std::set<std::string> out;
  for (const auto* c : changes) out.insert(c->device_id);
  return out;
}

bool ChangeEvent::touches_type(std::string_view agnostic_type) const {
  for (const auto* c : changes)
    if (c->touches_type(agnostic_type)) return true;
  return false;
}

bool ChangeEvent::touches_middlebox(const std::map<std::string, Role>& device_roles) const {
  for (const auto* c : changes) {
    const auto it = device_roles.find(c->device_id);
    if (it != device_roles.end() && is_middlebox(it->second)) return true;
  }
  return false;
}

std::vector<ChangeEvent> group_events(const std::vector<const ChangeRecord*>& sorted_changes,
                                      Timestamp delta) {
  std::vector<ChangeEvent> out;
  for (const auto* c : sorted_changes) {
    const bool chain = delta > 0 && !out.empty() && c->time - out.back().end <= delta;
    if (!chain) {
      out.emplace_back();
      out.back().start = c->time;
      out.back().end = c->time;
    }
    out.back().changes.push_back(c);
    out.back().end = std::max(out.back().end, c->time);
  }
  return out;
}

std::vector<ChangeEvent> group_events_typed(
    const std::vector<const ChangeRecord*>& sorted_changes, Timestamp delta) {
  std::vector<ChangeEvent> out;
  // Open events carry the set of agnostic types seen so far; a linear
  // scan over open events suffices (few are open at any moment).
  std::vector<std::set<std::string>> open_types;  // parallel to out
  for (const auto* c : sorted_changes) {
    std::ptrdiff_t target = -1;
    if (delta > 0) {
      // Most recent open event sharing a type.
      for (std::ptrdiff_t e = static_cast<std::ptrdiff_t>(out.size()) - 1; e >= 0; --e) {
        if (c->time - out[static_cast<std::size_t>(e)].end > delta) break;  // older ones too
        bool shares = false;
        for (const auto& sc : c->stanza_changes)
          if (open_types[static_cast<std::size_t>(e)].count(sc.agnostic_type)) shares = true;
        if (shares) {
          target = e;
          break;
        }
      }
    }
    if (target < 0) {
      out.emplace_back();
      out.back().start = c->time;
      out.back().end = c->time;
      open_types.emplace_back();
      target = static_cast<std::ptrdiff_t>(out.size()) - 1;
    }
    auto& ev = out[static_cast<std::size_t>(target)];
    ev.changes.push_back(c);
    ev.end = std::max(ev.end, c->time);
    for (const auto& sc : c->stanza_changes)
      open_types[static_cast<std::size_t>(target)].insert(sc.agnostic_type);
  }
  return out;
}

void compute_operational_metrics(const std::vector<const ChangeRecord*>& month_changes,
                                 const std::vector<ChangeEvent>& month_events,
                                 std::size_t network_device_count,
                                 const std::map<std::string, Role>& device_roles, Case& out) {
  const double n_changes = static_cast<double>(month_changes.size());
  out[Practice::kNumConfigChanges] = n_changes;

  std::set<std::string> devices_changed;
  std::set<std::string> change_types;
  double automated = 0;
  for (const auto* c : month_changes) {
    devices_changed.insert(c->device_id);
    if (c->automated) automated += 1;
    for (const auto& sc : c->stanza_changes) change_types.insert(sc.agnostic_type);
  }
  out[Practice::kNumDevicesChanged] = static_cast<double>(devices_changed.size());
  out[Practice::kFracDevicesChanged] =
      network_device_count == 0
          ? 0
          : static_cast<double>(devices_changed.size()) / static_cast<double>(network_device_count);
  out[Practice::kFracChangesAutomated] = n_changes == 0 ? 0 : automated / n_changes;
  out[Practice::kNumChangeTypes] = static_cast<double>(change_types.size());

  const double n_events = static_cast<double>(month_events.size());
  out[Practice::kNumChangeEvents] = n_events;
  if (n_events == 0) {
    out[Practice::kAvgDevicesPerEvent] = 0;
    out[Practice::kFracEventsInterface] = 0;
    out[Practice::kFracEventsAcl] = 0;
    out[Practice::kFracEventsRouter] = 0;
    out[Practice::kFracEventsVlan] = 0;
    out[Practice::kFracEventsMbox] = 0;
    out[Practice::kFracEventsPool] = 0;
    return;
  }
  double devices_per_event = 0, w_iface = 0, w_acl = 0, w_router = 0, w_vlan = 0, w_mbox = 0,
         w_pool = 0;
  for (const auto& ev : month_events) {
    devices_per_event += static_cast<double>(ev.devices().size());
    if (ev.touches_type("interface")) w_iface += 1;
    if (ev.touches_type("acl")) w_acl += 1;
    if (ev.touches_type("router")) w_router += 1;
    if (ev.touches_type("vlan")) w_vlan += 1;
    if (ev.touches_type("pool")) w_pool += 1;
    if (ev.touches_middlebox(device_roles)) w_mbox += 1;
  }
  out[Practice::kAvgDevicesPerEvent] = devices_per_event / n_events;
  out[Practice::kFracEventsInterface] = w_iface / n_events;
  out[Practice::kFracEventsAcl] = w_acl / n_events;
  out[Practice::kFracEventsRouter] = w_router / n_events;
  out[Practice::kFracEventsVlan] = w_vlan / n_events;
  out[Practice::kFracEventsMbox] = w_mbox / n_events;
  out[Practice::kFracEventsPool] = w_pool / n_events;
}

}  // namespace mpa
