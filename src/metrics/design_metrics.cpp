#include "metrics/design_metrics.hpp"

#include <cmath>
#include <map>
#include <set>

#include "config/refs.hpp"
#include "config/routing.hpp"
#include "config/types.hpp"
#include "stats/info.hpp"

namespace mpa {
namespace {

// Entropy over (key, role) cells, normalized by log2(N).
template <typename KeyFn>
double normalized_pair_entropy(const std::vector<const DeviceRecord*>& devices, KeyFn key_of) {
  const std::size_t n = devices.size();
  if (n <= 1) return 0;
  std::map<std::pair<std::string, Role>, double> cells;
  for (const auto* d : devices) cells[{key_of(*d), d->role}] += 1.0;
  std::vector<double> counts;
  counts.reserve(cells.size());
  for (const auto& [cell, c] : cells) counts.push_back(c);
  const double h = entropy_of_counts(counts);
  return h / std::log2(static_cast<double>(n));
}

}  // namespace

double hardware_entropy(const std::vector<const DeviceRecord*>& devices) {
  return normalized_pair_entropy(devices, [](const DeviceRecord& d) { return d.model; });
}

double firmware_entropy(const std::vector<const DeviceRecord*>& devices) {
  return normalized_pair_entropy(devices, [](const DeviceRecord& d) { return d.firmware; });
}

ProtocolUsage count_protocols(const std::vector<DeviceConfig>& configs) {
  std::set<std::string> l2, l3;
  for (const auto& cfg : configs) {
    for (const auto& s : cfg.stanzas()) {
      for (const auto& construct : constructs_of(s.type)) {
        switch (layer_of(construct)) {
          case PlaneLayer::kL2: l2.insert(construct); break;
          case PlaneLayer::kL3: l3.insert(construct); break;
          case PlaneLayer::kNeither: break;
        }
      }
    }
  }
  return ProtocolUsage{static_cast<int>(l2.size()), static_cast<int>(l3.size())};
}

int count_vlans(const std::vector<DeviceConfig>& configs) {
  std::set<std::string> vlans;
  for (const auto& cfg : configs)
    for (const auto& s : cfg.stanzas())
      if (normalize_type(s.type) == "vlan") vlans.insert(s.name);
  return static_cast<int>(vlans.size());
}

void compute_design_metrics(const NetworkRecord& net,
                            const std::vector<const DeviceRecord*>& devices,
                            const std::vector<DeviceConfig>& configs, Case& out) {
  out[Practice::kNumWorkloads] = static_cast<double>(net.workloads.size());
  out[Practice::kNumDevices] = static_cast<double>(devices.size());

  std::set<Vendor> vendors;
  std::set<std::string> models, firmwares;
  std::set<Role> roles;
  for (const auto* d : devices) {
    vendors.insert(d->vendor);
    models.insert(d->model);
    firmwares.insert(d->firmware);
    roles.insert(d->role);
  }
  out[Practice::kNumVendors] = static_cast<double>(vendors.size());
  out[Practice::kNumModels] = static_cast<double>(models.size());
  out[Practice::kNumRoles] = static_cast<double>(roles.size());
  out[Practice::kNumFirmwareVersions] = static_cast<double>(firmwares.size());
  out[Practice::kHardwareEntropy] = hardware_entropy(devices);
  out[Practice::kFirmwareEntropy] = firmware_entropy(devices);

  const ProtocolUsage protos = count_protocols(configs);
  out[Practice::kNumL2Protocols] = protos.l2;
  out[Practice::kNumL3Protocols] = protos.l3;
  out[Practice::kNumProtocols] = protos.total();
  out[Practice::kNumVlans] = count_vlans(configs);

  const auto instances = extract_routing_instances(configs);
  const InstanceStats bgp = instance_stats(instances, "bgp");
  const InstanceStats ospf = instance_stats(instances, "ospf");
  out[Practice::kNumBgpInstances] = bgp.count;
  out[Practice::kNumOspfInstances] = ospf.count;
  out[Practice::kAvgBgpInstanceSize] = bgp.mean_size;
  out[Practice::kAvgOspfInstanceSize] = ospf.mean_size;

  const NetworkComplexity cx = referential_complexity(configs);
  out[Practice::kIntraDeviceComplexity] = cx.mean_intra;
  out[Practice::kInterDeviceComplexity] = cx.mean_inter;
}

}  // namespace mpa
