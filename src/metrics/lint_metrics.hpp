// Aggregating lint diagnostics (config/lint.hpp) into the
// per-(network, month) hygiene metrics that join the case table.
//
// The paper correlates management practices with network health; the
// lint rules give us a direct "config hygiene" practice family (H in
// the tables): how many inconsistencies a network's configs carry, how
// severe they are, and how many distinct failure modes appear. The
// summary feeds Practice::kLintIssues / kLintErrors / kLintRulesHit /
// kLintDensity, which flow through dependence, causal, and prediction
// analyses like every other practice metric.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "config/lint.hpp"
#include "metrics/case_table.hpp"

namespace mpa {

/// Counts over one network's diagnostics at one point in time.
struct LintSummary {
  int total = 0;  ///< Unsuppressed findings.
  std::array<int, kNumLintCategories> by_category{};
  std::array<int, kNumLintSeverities> by_severity{};
  int suppressed = 0;  ///< Pragma-suppressed findings (when kept).
  int rules_hit = 0;   ///< Distinct rule ids among unsuppressed findings.
  double density = 0.0;  ///< total / num_devices (0 when no devices).

  static LintSummary of(const std::vector<Diagnostic>& diags, std::size_t num_devices);
};

/// Write the summary's metrics into a case row.
void apply_lint_metrics(const LintSummary& summary, Case& c);

}  // namespace mpa
