// The case table: one row per (network, month), with all inferred
// practice metrics and the health outcome (§5.1.1: "we compute the mean
// value of each management practice and health metric on a monthly
// basis for each network, giving us ~11K data points").
#pragma once

#include <array>
#include <string_view>
#include <string>
#include <vector>

#include "metrics/practices.hpp"

namespace mpa {

/// One analysis case: a network observed for one month.
struct Case {
  std::string network_id;
  int month = 0;
  std::array<double, kNumPractices> practice{};
  double tickets = 0;  ///< Health outcome: non-maintenance tickets.

  double operator[](Practice p) const { return practice[static_cast<std::size_t>(p)]; }
  double& operator[](Practice p) { return practice[static_cast<std::size_t>(p)]; }
};

/// A collection of cases with column-extraction helpers.
class CaseTable {
 public:
  CaseTable() = default;
  explicit CaseTable(std::vector<Case> cases) : cases_(std::move(cases)) {}

  void add(Case c) { cases_.push_back(std::move(c)); }
  const std::vector<Case>& cases() const { return cases_; }
  std::size_t size() const { return cases_.size(); }
  bool empty() const { return cases_.empty(); }
  const Case& operator[](std::size_t i) const { return cases_[i]; }

  /// One practice column across all cases.
  std::vector<double> column(Practice p) const;

  /// The health (tickets) column.
  std::vector<double> tickets() const;

  /// Rows whose month is in [first, last] inclusive.
  CaseTable filter_months(int first, int last) const;

  /// Rows for one month.
  CaseTable month(int m) const { return filter_months(m, m); }

  /// Distinct network ids, in first-appearance order.
  std::vector<std::string> network_ids() const;

  /// CSV dump (header + one row per case) for external tooling and the
  /// bench-side dataset cache.
  std::string to_csv() const;

  /// Parse a table previously produced by to_csv(). Throws DataError on
  /// malformed input (wrong column count or non-numeric cells).
  static CaseTable from_csv(std::string_view csv);

 private:
  std::vector<Case> cases_;
};

}  // namespace mpa
