// Operational-practice inference (Table 1, O1-O4).
//
// Changes are recovered by parsing successive snapshots of each device
// and diffing them stanza-by-stanza. Change *events* group changes
// across devices: "if a configuration change on a device occurs within
// delta time units of a change on another device in the same network,
// then we assume the changes on both devices are part of the same
// change event" (transitively chained; the paper uses delta = 5 min).
//
// Modality (automated vs manual) is inferred from login metadata: "we
// mark a change as automated if the login is classified as a special
// account in the organization's user management system."
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "config/diff.hpp"
#include "metrics/case_table.hpp"
#include "model/inventory.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/time.hpp"

namespace mpa {

/// Predicate deciding whether a login belongs to an automation account.
using AutomationClassifier = std::function<bool(const std::string& login)>;

/// Default organization policy: service accounts are prefixed "svc-".
/// (Conservative, like the paper: scripts run under regular user
/// accounts are classified manual.)
bool default_automation_classifier(const std::string& login);

/// One configuration change: a snapshot pair on one device that differs
/// in at least one stanza.
struct ChangeRecord {
  std::string device_id;
  std::string network_id;
  Timestamp time = 0;
  std::string login;
  bool automated = false;
  std::vector<StanzaChange> stanza_changes;

  /// True if any stanza change has the given agnostic type.
  bool touches_type(std::string_view agnostic_type) const;
};

/// Recover all changes across the organization by diffing successive
/// snapshots of every device. Devices missing from the inventory are
/// skipped (inconsistent logging happens; the paper's data is "indirect
/// and noisy"). Output is ordered by (network, time).
std::vector<ChangeRecord> extract_changes(
    const Inventory& inventory, const SnapshotStore& snapshots,
    const AutomationClassifier& is_automated = default_automation_classifier);

/// A grouped change event within one network.
struct ChangeEvent {
  Timestamp start = 0;
  Timestamp end = 0;
  std::vector<const ChangeRecord*> changes;

  std::set<std::string> devices() const;
  bool touches_type(std::string_view agnostic_type) const;
  /// True if any change lands on a device whose role is a middlebox.
  bool touches_middlebox(const std::map<std::string, Role>& device_roles) const;
};

/// Group one network's time-sorted changes into events. `delta` is the
/// chaining window in minutes; `delta` <= 0 disables grouping (each
/// change becomes its own event — Figure 3's "NA" point).
std::vector<ChangeEvent> group_events(const std::vector<const ChangeRecord*>& sorted_changes,
                                      Timestamp delta);

/// Finer grouping, the paper's stated future work (§2.2): "we plan to
/// also consider the change type ... to more finely group related
/// changes." A change joins the most recent open event (one whose last
/// change is within `delta`) that shares at least one vendor-agnostic
/// change type; otherwise it opens a new event. Two unrelated
/// maintenance activities interleaved in time therefore stay separate
/// events instead of being chained into one.
std::vector<ChangeEvent> group_events_typed(
    const std::vector<const ChangeRecord*>& sorted_changes, Timestamp delta);

/// Fill the operational-practice fields of `out` from one network's
/// changes and events within one month. Fractions whose denominator is
/// zero (no changes / no events) are recorded as 0 — see §5.2.2 on
/// undefined values.
void compute_operational_metrics(const std::vector<const ChangeRecord*>& month_changes,
                                 const std::vector<ChangeEvent>& month_events,
                                 std::size_t network_device_count,
                                 const std::map<std::string, Role>& device_roles, Case& out);

}  // namespace mpa
