#include "metrics/lint_metrics.hpp"

#include <set>
#include <string_view>

namespace mpa {

LintSummary LintSummary::of(const std::vector<Diagnostic>& diags, std::size_t num_devices) {
  LintSummary s;
  std::set<std::string_view> rules;
  for (const auto& d : diags) {
    if (d.suppressed) {
      ++s.suppressed;
      continue;
    }
    ++s.total;
    ++s.by_category[static_cast<std::size_t>(d.category)];
    ++s.by_severity[static_cast<std::size_t>(d.severity)];
    rules.insert(d.rule_id);
  }
  s.rules_hit = static_cast<int>(rules.size());
  if (num_devices > 0) s.density = static_cast<double>(s.total) / static_cast<double>(num_devices);
  return s;
}

void apply_lint_metrics(const LintSummary& summary, Case& c) {
  c[Practice::kLintIssues] = summary.total;
  c[Practice::kLintErrors] = summary.by_severity[static_cast<std::size_t>(LintSeverity::kError)];
  c[Practice::kLintRulesHit] = summary.rules_hit;
  c[Practice::kLintDensity] = summary.density;
}

}  // namespace mpa
