// End-to-end practice inference: raw data sources -> case table (§2).
//
// This is the entry point an organization points at its own inventory,
// snapshot archive and ticket log. Design metrics are computed from the
// configuration state at the end of each month; operational metrics
// from the changes within the month; health from that month's
// non-maintenance ticket count.
#pragma once

#include "config/lint.hpp"
#include "metrics/case_table.hpp"
#include "metrics/change_analysis.hpp"
#include "model/inventory.hpp"
#include "telemetry/snapshots.hpp"
#include "telemetry/tickets.hpp"

namespace mpa {

class ThreadPool;

struct InferenceOptions {
  /// Change-event grouping window delta, in minutes (paper: 5; <= 0
  /// disables grouping).
  Timestamp event_window = 5;
  /// Number of observation months (paper: 17).
  int num_months = 17;
  /// Login classifier for change modality (O2).
  AutomationClassifier automation = default_automation_classifier;
  /// Lint configuration for the hygiene metrics (kLint*). The rule set
  /// runs over each month-end config state; suppression pragmas in the
  /// snapshot text are honored.
  LintOptions lint;
  /// Fan inference out per network on this pool (null = serial). Each
  /// network's rows are computed independently and concatenated in
  /// inventory order, so the result is bit-identical at any thread
  /// count.
  ThreadPool* pool = nullptr;
};

/// Build the (network, month) case table from the three data sources.
/// Networks with no archived snapshots still produce rows (their
/// config-derived metrics are zero — incomplete logging is expected).
CaseTable infer_case_table(const Inventory& inventory, const SnapshotStore& snapshots,
                           const TicketLog& tickets, const InferenceOptions& opts = {});

/// Rows for months [first_month, opts.num_months) only — bit-identical
/// to the corresponding rows of infer_case_table over the same data,
/// but each device's snapshot archive is parsed and diffed only from
/// the last snapshot strictly before the window (the carry-in state).
/// This is the O(delta) path AnalysisSession::append_month extends a
/// live case table with; infer_case_table(...) == tail(..., 0).
CaseTable infer_case_table_tail(const Inventory& inventory, const SnapshotStore& snapshots,
                                const TicketLog& tickets, const InferenceOptions& opts,
                                int first_month);

}  // namespace mpa
