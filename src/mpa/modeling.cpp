#include "mpa/modeling.hpp"

#include <memory>

#include "learn/baselines.hpp"
#include "learn/forest.hpp"
#include "learn/sampling.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mpa {

std::string_view to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMajority: return "majority";
    case ModelKind::kSvm: return "svm";
    case ModelKind::kDecisionTree: return "DT";
    case ModelKind::kDtBoost: return "DT+AB";
    case ModelKind::kDtOversample: return "DT+OS";
    case ModelKind::kDtBoostOversample: return "DT+AB+OS";
    case ModelKind::kBoostEnsemble: return "AB-ensemble";
    case ModelKind::kForestPlain: return "RF";
    case ModelKind::kForestBalanced: return "RF-balanced";
    case ModelKind::kForestWeighted: return "RF-weighted";
  }
  return "unknown";
}

bool uses_oversampling(ModelKind kind) {
  return kind == ModelKind::kDtOversample || kind == ModelKind::kDtBoostOversample;
}

Trainer make_trainer(ModelKind kind, int num_classes, Rng& rng, const ModelingOptions& opts) {
  switch (kind) {
    case ModelKind::kMajority:
      return [](const Dataset& train) -> Predictor {
        const auto model = MajorityClassifier::fit(train);
        return [model](std::span<const int> x) { return model.predict(x); };
      };
    case ModelKind::kSvm: {
      auto fork = std::make_shared<Rng>(rng.fork());
      return [fork](const Dataset& train) -> Predictor {
        const auto model = LinearSvm::fit(train, *fork);
        return [model](std::span<const int> x) { return model.predict(x); };
      };
    }
    case ModelKind::kDecisionTree:
    case ModelKind::kDtOversample: {
      const TreeOptions tree_opts = opts.tree;
      return [tree_opts](const Dataset& train) -> Predictor {
        auto model = std::make_shared<DecisionTree>(DecisionTree::fit(train, tree_opts));
        return [model](std::span<const int> x) { return model->predict(x); };
      };
    }
    case ModelKind::kDtBoost:
    case ModelKind::kDtBoostOversample:
    case ModelKind::kBoostEnsemble: {
      const BoostOptions boost_opts = opts.boost;
      return [boost_opts](const Dataset& train) -> Predictor {
        auto model = std::make_shared<AdaBoostClassifier>(
            AdaBoostClassifier::fit(train, boost_opts));
        return [model](std::span<const int> x) { return model->predict(x); };
      };
    }
    case ModelKind::kForestPlain:
    case ModelKind::kForestBalanced:
    case ModelKind::kForestWeighted: {
      ForestOptions fopts;
      fopts.tree = opts.tree;
      fopts.variant = kind == ModelKind::kForestBalanced  ? ForestVariant::kBalanced
                      : kind == ModelKind::kForestWeighted ? ForestVariant::kWeighted
                                                            : ForestVariant::kPlain;
      auto fork = std::make_shared<Rng>(rng.fork());
      return [fopts, fork](const Dataset& train) -> Predictor {
        auto model = std::make_shared<RandomForest>(RandomForest::fit(train, *fork, fopts));
        return [model](std::span<const int> x) { return model->predict(x); };
      };
    }
  }
  require(false, "make_trainer: unknown model kind");
  (void)num_classes;
  return {};
}

EvalResult evaluate_model_cv(const CaseTable& table, int num_classes, ModelKind kind, Rng& rng,
                             const ModelingOptions& opts) {
  const Dataset data = make_dataset(table, num_classes);
  // One trainer per fold, built from that fold's private RNG stream
  // (randomized trainers stay independent across concurrent folds).
  const TrainerFactory factory = [&](Rng& fold_rng) {
    return make_trainer(kind, num_classes, fold_rng, opts);
  };
  std::function<Dataset(const Dataset&)> transform;
  if (uses_oversampling(kind)) {
    const auto recipe = paper_oversampling_recipe(num_classes);
    transform = [recipe](const Dataset& train) { return oversample(train, recipe); };
  }
  return cross_validate(data, opts.folds, factory, rng, transform, opts.pool);
}

DecisionTree fit_final_tree(const CaseTable& table, int num_classes,
                            const ModelingOptions& opts) {
  Dataset data = make_dataset(table, num_classes);
  data = oversample(data, paper_oversampling_recipe(num_classes));
  (void)opts;
  return DecisionTree::fit(data, opts.tree);
}

double online_prediction_accuracy(const CaseTable& table, int num_classes, int history_m,
                                  ModelKind kind, Rng& rng, int first_t, int last_t,
                                  const ModelingOptions& opts) {
  require(history_m >= 1, "online_prediction_accuracy: need at least one history month");
  if (last_t < first_t) return 0;
  const std::size_t num_t = static_cast<std::size_t>(last_t - first_t + 1);

  // One private RNG stream per month t, forked in t order on the
  // calling thread (unconditionally, so skipped months don't shift
  // later streams); the months then fan out independently.
  std::vector<Rng> month_rngs;
  month_rngs.reserve(num_t);
  for (std::size_t i = 0; i < num_t; ++i) month_rngs.push_back(rng.fork());

  std::vector<double> acc(num_t, 0.0);
  std::vector<char> counted(num_t, 0);
  parallel_for(opts.pool, num_t, [&](std::size_t ti) {
    const int t = first_t + static_cast<int>(ti);
    const CaseTable train_cases = table.filter_months(t - history_m, t - 1);
    const CaseTable test_cases = table.month(t);
    if (train_cases.empty() || test_cases.empty()) return;

    // Feature space fitted on the training window only; month t is
    // discretized with the *trained* bins (true online protocol).
    const FeatureSpace space = FeatureSpace::fit(train_cases);
    Dataset train = make_dataset(train_cases, num_classes, &space);
    if (uses_oversampling(kind)) train = oversample(train, paper_oversampling_recipe(num_classes));
    const Dataset test = make_dataset(test_cases, num_classes, &space);

    const Trainer trainer = make_trainer(kind, num_classes, month_rngs[ti], opts);
    const Predictor model = trainer(train);
    const EvalResult ev = evaluate(test, model);
    acc[ti] = ev.accuracy;
    counted[ti] = 1;
  });

  double acc_sum = 0;
  int months = 0;
  for (std::size_t ti = 0; ti < num_t; ++ti) {
    if (!counted[ti]) continue;
    acc_sum += acc[ti];
    ++months;
  }
  return months == 0 ? 0 : acc_sum / months;
}

}  // namespace mpa
