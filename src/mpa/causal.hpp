// Causal analysis via matched-design QEDs (§5.2).
//
// For a treatment practice: bin its values into 5 bins (same clamped
// equal-width strategy as §5.1.1), treat neighbouring bins (b, b+1) as
// untreated/treated, match on propensity scores over all remaining
// practices, verify balance, and sign-test the per-pair ticket
// differences. Comparison points 1:2 .. 4:5 reproduce Tables 5-8.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "metrics/case_table.hpp"
#include "stats/matching.hpp"
#include "stats/signtest.hpp"

namespace mpa {

class ThreadPool;

struct CausalOptions {
  int treatment_bins = 5;
  double lo_pct = 5.0;
  double hi_pct = 95.0;
  double p_threshold = 1e-3;  ///< "moderately conservative" §5.2.5.
  /// Feed log1p(confounder) to the propensity model and balance
  /// diagnostics. Most practice metrics are heavy-tailed (Appendix A);
  /// matching and assessing balance on the log scale is the standard
  /// treatment for skewed covariates.
  bool log_transform_confounders = true;
  /// Match quality criterion. Standardized mean differences are the
  /// primary diagnostic (Stuart 2010); variance ratios are secondary —
  /// a comparison is "balanced" when the propensity score passes the
  /// classic thresholds, no confounder's |std. diff of means| exceeds
  /// `max_abs_std_diff`, and at least `min_vr_pass_frac` of confounders
  /// have variance ratios within [0.5, 2]. (Our synthetic covariates
  /// are heavier-tailed than the OSP's; see EXPERIMENTS.md.)
  double max_abs_std_diff = 0.50;
  double min_vr_pass_frac = 0.70;
  MatchOptions match = {};
  /// Fan the comparison points (1:2 .. 4:5) out on this pool (null =
  /// serial). Matching is deterministic, so results are bit-identical
  /// at any thread count.
  ThreadPool* pool = nullptr;
};

/// Result of one comparison point (e.g. bin 1 vs bin 2).
struct ComparisonResult {
  int untreated_bin = 0;  ///< 0-based bin b; the paper labels it b+1.
  std::size_t untreated_cases = 0;
  std::size_t treated_cases = 0;
  std::size_t pairs = 0;
  std::size_t untreated_matched = 0;  ///< Distinct untreated used.
  BalanceStat propensity_balance;
  double worst_abs_std_diff = 0;   ///< Across confounders.
  double vr_pass_fraction = 1;     ///< Confounders with variance ratio in [0.5,2].
  bool balanced = false;      ///< Match quality criterion passes.
  SignTestResult outcome;     ///< fewer/none/more tickets + p-value.
  bool causal = false;        ///< balanced && p < threshold.

  /// "1:2"-style label.
  std::string label() const;
};

/// Full causal analysis of one treatment practice.
struct CausalResult {
  Practice treatment{};
  std::vector<ComparisonResult> comparisons;  ///< One per adjacent bin pair.

  /// The paper's headline cell: the 1:2 comparison.
  const ComparisonResult* low_bins() const {
    return comparisons.empty() ? nullptr : &comparisons.front();
  }
};

/// Run the matched-design QED for `treatment` over `table`. All other
/// practices are confounders. Comparison points with an empty side are
/// skipped.
CausalResult causal_analysis(const CaseTable& table, Practice treatment,
                             const CausalOptions& opts = {});

/// As above but with a custom outcome column aligned to `table`'s rows
/// (e.g. high-impact ticket counts from summarize_health, §2.2's
/// finer-grained health measures). `outcome.size()` must equal
/// `table.size()`.
CausalResult causal_analysis_outcome(const CaseTable& table, Practice treatment,
                                     std::span<const double> outcome,
                                     const CausalOptions& opts = {});

/// The raw inputs of one comparison point — confounder matrices (after
/// the configured log transform) and outcomes for the treated
/// (bin `untreated_bin`+1) and untreated (bin `untreated_bin`) cases.
/// Exposed so benches can reproduce the matching internals shown in
/// Table 5 and Figure 7.
struct ComparisonData {
  Matrix treated;
  Matrix untreated;
  std::vector<double> treated_tickets;
  std::vector<double> untreated_tickets;
  std::vector<Practice> confounders;  ///< Column order of the matrices.
};

ComparisonData comparison_data(const CaseTable& table, Practice treatment, int untreated_bin,
                               const CausalOptions& opts = {});

}  // namespace mpa
