// Predictive health modeling (§6): the model zoo (decision tree,
// +AdaBoost, +oversampling, majority, SVM, random forests), 5-fold
// cross-validated evaluation (Figure 8, §6.1 text), and the online
// month-t prediction protocol (Table 9).
#pragma once

#include <string_view>

#include "learn/adaboost.hpp"
#include "learn/eval.hpp"
#include "metrics/case_table.hpp"

namespace mpa {

enum class ModelKind : std::uint8_t {
  kMajority,
  kSvm,
  kDecisionTree,        // DT
  kDtBoost,             // DT+AB  (SAMME ensemble)
  kDtOversample,        // DT+OS
  kDtBoostOversample,   // DT+AB+OS
  kBoostEnsemble,       // alias of DT+AB without oversampling
  kForestPlain,         // footnote-2 comparisons
  kForestBalanced,
  kForestWeighted,
};

std::string_view to_string(ModelKind kind);

struct ModelingOptions {
  int folds = 5;
  TreeOptions tree = {};
  BoostOptions boost = {};
  /// Fan CV folds / online months out on this pool (null = serial).
  /// Every trainer consumes a private RNG stream forked on the calling
  /// thread in task order, so results are bit-identical at any thread
  /// count.
  ThreadPool* pool = nullptr;
};

/// Whether this kind oversamples its training data (the transform is
/// applied to training folds only).
bool uses_oversampling(ModelKind kind);

/// Build a Trainer for `kind`. Randomized trainers fork `rng`.
Trainer make_trainer(ModelKind kind, int num_classes, Rng& rng,
                     const ModelingOptions& opts = {});

/// Cross-validated evaluation of one model kind on a case table
/// (fits the feature space on the full table, as the paper does).
EvalResult evaluate_model_cv(const CaseTable& table, int num_classes, ModelKind kind, Rng& rng,
                             const ModelingOptions& opts = {});

/// Fit the paper's best single tree (AB+OS) on all data, for Figure 10.
DecisionTree fit_final_tree(const CaseTable& table, int num_classes,
                            const ModelingOptions& opts = {});

/// Online prediction (Table 9): for each t in [first_t, last_t], train
/// on months t-M..t-1 and predict month t; returns the mean per-month
/// accuracy. Months with no train or test rows are skipped.
double online_prediction_accuracy(const CaseTable& table, int num_classes, int history_m,
                                  ModelKind kind, Rng& rng, int first_t, int last_t,
                                  const ModelingOptions& opts = {});

}  // namespace mpa
