// A month-major binned view of the case table: every practice column
// and the health column discretized exactly once (bounds fitted on the
// full table, §5.1.1), with rows permuted so each month occupies one
// contiguous block. Per-month per-column slices are then zero-copy
// spans, which is what the dependence kernels, the bootstrap-CI
// resampler, and the benches consume — no re-slicing, no per-month
// vector copies.
//
// Months are ordered ascending and the original row order is preserved
// within a month (a stable grouping), so iteration over the view visits
// cases in the same order the previous map-of-row-indices
// implementation did — results stay bit-identical.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "metrics/case_table.hpp"
#include "stats/binning.hpp"

namespace mpa {

class BinnedCaseView {
 public:
  /// Fits one binner per practice plus one for health on the full
  /// table, bins every column, and groups rows month-major. The table
  /// must be non-empty.
  BinnedCaseView(const CaseTable& table, int bins, double lo_pct, double hi_pct);

  /// Try to extend the view with the rows of month `month` from the
  /// merged table (the view's original rows plus the new month's,
  /// which must be the table's last month — out-of-order months are
  /// rejected by name). Binners are refitted on the merged columns; if
  /// every bound and bin count is bitwise-unchanged the new rows are
  /// binned with the existing binners and appended as one month block
  /// (bit-identical to constructing a fresh view over the merged
  /// table), and true is returned. If any column's range drifted,
  /// incremental binning is unsound: the view is left untouched and
  /// false is returned so the caller can rebuild from scratch.
  bool try_append_month(const CaseTable& table, int month);

  /// Total cases.
  std::size_t rows() const { return n_; }

  /// Distinct months, ascending.
  std::size_t num_months() const { return month_ids_.size(); }
  /// The calendar month value of month block `mi`.
  int month_id(std::size_t mi) const { return month_ids_[mi]; }
  /// Cases in month block `mi`.
  std::size_t month_size(std::size_t mi) const {
    return month_begin_[mi + 1] - month_begin_[mi];
  }

  /// Binned values of one practice for one month block (contiguous).
  std::span<const int> practice_month(Practice p, std::size_t mi) const {
    return column_month(static_cast<std::size_t>(p), mi);
  }
  /// Binned health values for one month block (contiguous).
  std::span<const int> health_month(std::size_t mi) const {
    return column_month(kNumPractices, mi);
  }

  /// Whole binned practice column in month-major row order.
  std::span<const int> practice_column(Practice p) const {
    return column(static_cast<std::size_t>(p));
  }
  /// Whole binned health column in month-major row order.
  std::span<const int> health_column() const { return column(kNumPractices); }

  /// Bin counts (dense-kernel cardinalities).
  int practice_cardinality(Practice p) const {
    return practice_binners_[static_cast<std::size_t>(p)].num_bins();
  }
  int health_cardinality() const { return health_binner_.num_bins(); }

  const Binner& binner(Practice p) const {
    return practice_binners_[static_cast<std::size_t>(p)];
  }
  const Binner& health_binner() const { return health_binner_; }

 private:
  std::span<const int> column(std::size_t c) const { return {cols_[c].data(), n_}; }
  std::span<const int> column_month(std::size_t c, std::size_t mi) const {
    return {cols_[c].data() + month_begin_[mi], month_size(mi)};
  }

  std::vector<Binner> practice_binners_;
  Binner health_binner_{0, 0, 1};
  int bins_ = 1;
  double lo_pct_ = 0;
  double hi_pct_ = 100;
  std::size_t n_ = 0;
  /// kNumPractices + 1 binned columns (the last is health), each n_
  /// rows permuted month-major. Per-column vectors rather than one
  /// flat buffer so appending a month block is a plain suffix push
  /// into each column.
  std::vector<std::vector<int>> cols_;
  std::vector<int> month_ids_;             ///< Ascending distinct months.
  std::vector<std::size_t> month_begin_;   ///< num_months + 1 offsets.
};

}  // namespace mpa
