// Umbrella header for the Management Plane Analytics library.
//
// Typical flow:
//   1. Load (or synthesize) the three data sources: Inventory,
//      SnapshotStore, TicketLog.
//   2. infer_case_table() -> CaseTable of (network, month) cases.
//   3. DependenceAnalysis for MI/CMI rankings (Tables 3-4).
//   4. causal_analysis() per top practice (Tables 5-8).
//   5. evaluate_model_cv() / online_prediction_accuracy() for the
//      predictive models (Figures 8-10, Table 9).
#pragma once

#include "metrics/inference.hpp"
#include "mpa/causal.hpp"
#include "mpa/dependence.hpp"
#include "mpa/modeling.hpp"
