#include "mpa/causal.hpp"

#include <cmath>
#include <span>

#include <optional>

#include "stats/binning.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mpa {

std::string ComparisonResult::label() const {
  return std::to_string(untreated_bin + 1) + ":" + std::to_string(untreated_bin + 2);
}

ComparisonData comparison_data(const CaseTable& table, Practice treatment, int untreated_bin,
                               const CausalOptions& opts) {
  require(!table.empty(), "comparison_data: empty case table");
  const auto treat_col = table.column(treatment);
  const Binner binner = Binner::fit(treat_col, opts.treatment_bins, opts.lo_pct, opts.hi_pct);
  require(untreated_bin >= 0 && untreated_bin + 1 < binner.num_bins(),
          "comparison_data: comparison point out of range");
  const auto treat_bins = binner.bin_all(treat_col);

  ComparisonData data;
  // Confounders: every other analysis practice (§5.2.3: "we include all
  // of the practice metrics we infer, minus the treatment practice, as
  // confounding factors").
  for (Practice p : analysis_practices())
    if (p != treatment) data.confounders.push_back(p);

  auto confounder_row = [&](std::size_t i) {
    std::vector<double> row;
    row.reserve(data.confounders.size());
    for (Practice p : data.confounders) {
      const double v = table[i][p];
      row.push_back(opts.log_transform_confounders ? std::log1p(std::max(0.0, v)) : v);
    }
    return row;
  };

  for (std::size_t i = 0; i < table.size(); ++i) {
    if (treat_bins[i] == untreated_bin) {
      data.untreated.push_back(confounder_row(i));
      data.untreated_tickets.push_back(table[i].tickets);
    } else if (treat_bins[i] == untreated_bin + 1) {
      data.treated.push_back(confounder_row(i));
      data.treated_tickets.push_back(table[i].tickets);
    }
  }
  return data;
}

CausalResult causal_analysis(const CaseTable& table, Practice treatment,
                             const CausalOptions& opts) {
  return causal_analysis_outcome(table, treatment, table.tickets(), opts);
}

CausalResult causal_analysis_outcome(const CaseTable& table, Practice treatment,
                                     std::span<const double> outcome,
                                     const CausalOptions& opts) {
  require(!table.empty(), "causal_analysis: empty case table");
  require(outcome.size() == table.size(),
          "causal_analysis_outcome: outcome length must match table size");
  CausalResult result;
  result.treatment = treatment;

  const auto treat_col = table.column(treatment);
  const Binner binner =
      Binner::fit(treat_col, opts.treatment_bins, opts.lo_pct, opts.hi_pct);

  const auto treat_col2 = table.column(treatment);
  const auto treat_bins = binner.bin_all(treat_col2);

  // Each comparison point is independent (matching has no shared
  // state and uses no RNG), so fan them out; slots keep bin order.
  const std::size_t num_points =
      binner.num_bins() > 0 ? static_cast<std::size_t>(binner.num_bins() - 1) : 0;
  std::vector<std::optional<ComparisonResult>> points(num_points);
  parallel_for(opts.pool, num_points, [&](std::size_t point) {
    const int b = static_cast<int>(point);
    ComparisonData data = comparison_data(table, treatment, b, opts);
    if (data.untreated.empty() || data.treated.empty()) return;
    // Swap in the requested outcome (comparison_data fills tickets).
    data.treated_tickets.clear();
    data.untreated_tickets.clear();
    for (std::size_t i = 0; i < table.size(); ++i) {
      if (treat_bins[i] == b) {
        data.untreated_tickets.push_back(outcome[i]);
      } else if (treat_bins[i] == b + 1) {
        data.treated_tickets.push_back(outcome[i]);
      }
    }

    ComparisonResult cmp;
    cmp.untreated_bin = b;
    cmp.untreated_cases = data.untreated.size();
    cmp.treated_cases = data.treated.size();

    const MatchResult match = propensity_match(data.treated, data.untreated, opts.match);
    cmp.pairs = match.pairs.size();
    cmp.untreated_matched = match.untreated_matched_distinct;
    cmp.propensity_balance = match.propensity_balance;
    cmp.worst_abs_std_diff = match.worst_abs_std_diff();
    cmp.vr_pass_fraction = match.variance_ratio_pass_fraction();
    cmp.balanced = !match.pairs.empty() && match.propensity_balance.ok() &&
                   cmp.worst_abs_std_diff < opts.max_abs_std_diff &&
                   cmp.vr_pass_fraction >= opts.min_vr_pass_frac;

    std::vector<double> diffs;
    diffs.reserve(match.pairs.size());
    for (const auto& pr : match.pairs)
      diffs.push_back(data.treated_tickets[pr.treated_index] -
                      data.untreated_tickets[pr.untreated_index]);
    cmp.outcome = sign_test(diffs);
    cmp.causal = cmp.balanced && cmp.outcome.p_value < opts.p_threshold;

    points[point] = std::move(cmp);
  });
  for (auto& point : points)
    if (point.has_value()) result.comparisons.push_back(std::move(*point));
  return result;
}

}  // namespace mpa
