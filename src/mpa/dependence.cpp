#include "mpa/dependence.hpp"

#include <algorithm>
#include <chrono>

#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mpa {
namespace {

// Average monthly MI between one binned practice column and health,
// using a caller-owned scratch table (allocation-free across calls).
double avg_monthly_mi(const BinnedCaseView& view, Practice p, ContingencyTable& scratch) {
  const int cx = view.practice_cardinality(p);
  const int cy = view.health_cardinality();
  double total = 0;
  int months = 0;
  for (std::size_t mi = 0; mi < view.num_months(); ++mi) {
    if (view.month_size(mi) < 2) continue;
    scratch.reset(cx, cy);
    scratch.count(view.practice_month(p, mi), view.health_month(mi));
    total += scratch.mutual_information();
    ++months;
  }
  return months == 0 ? 0 : total / months;
}

// Average monthly CMI of a practice pair given health.
double avg_monthly_cmi(const BinnedCaseView& view, Practice a, Practice b,
                       CmiAccumulator& scratch) {
  const int c1 = view.practice_cardinality(a);
  const int c2 = view.practice_cardinality(b);
  const int cy = view.health_cardinality();
  double total = 0;
  int months = 0;
  for (std::size_t mi = 0; mi < view.num_months(); ++mi) {
    if (view.month_size(mi) < 2) continue;
    scratch.reset(c1, c2, cy);
    scratch.count(view.practice_month(a, mi), view.practice_month(b, mi),
                  view.health_month(mi));
    total += scratch.value();
    ++months;
  }
  return months == 0 ? 0 : total / months;
}

}  // namespace

DependenceAnalysis::DependenceAnalysis(const CaseTable& table, const DependenceOptions& opts)
    : view_((require(!table.empty(), "DependenceAnalysis: empty case table"), table), opts.bins,
            opts.lo_pct, opts.hi_pct) {
  // Average monthly MI per practice (analysis set only; the excluded
  // identity metrics would just duplicate their parents).
  const auto analysis_set = analysis_practices();
  ContingencyTable mi_scratch;
  mi_.reserve(analysis_set.size());
  for (Practice p : analysis_set)
    mi_.push_back(PracticeMi{p, avg_monthly_mi(view_, p, mi_scratch)});
  std::sort(mi_.begin(), mi_.end(), [](const PracticeMi& a, const PracticeMi& b) {
    return a.avg_monthly_mi > b.avg_monthly_mi;
  });

  // Average monthly CMI per practice pair, given health. Pairs are
  // enumerated in (ai, bi) order, each task writes only its own slot,
  // and the final sort sees the same sequence at any thread count.
  std::vector<std::pair<Practice, Practice>> pairs;
  pairs.reserve(analysis_set.size() * (analysis_set.size() - 1) / 2);
  for (std::size_t ai = 0; ai < analysis_set.size(); ++ai)
    for (std::size_t bi = ai + 1; bi < analysis_set.size(); ++bi)
      pairs.emplace_back(analysis_set[ai], analysis_set[bi]);

  cmi_.resize(pairs.size());
  if (opts.record_pair_times) pair_seconds_.assign(pairs.size(), 0.0);
  parallel_for(opts.pool, pairs.size(), [&](std::size_t pi) {
    const auto start = opts.record_pair_times ? std::chrono::steady_clock::now()
                                              : std::chrono::steady_clock::time_point{};
    thread_local CmiAccumulator scratch;
    const auto [a, b] = pairs[pi];
    cmi_[pi] = PairCmi{a, b, avg_monthly_cmi(view_, a, b, scratch)};
    if (opts.record_pair_times)
      pair_seconds_[pi] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  });
  std::sort(cmi_.begin(), cmi_.end(), [](const PairCmi& a, const PairCmi& b) {
    return a.avg_monthly_cmi > b.avg_monthly_cmi;
  });
}

std::pair<double, double> DependenceAnalysis::mi_confidence_interval(Practice p, Rng& rng,
                                                                     int rounds, double lo_pct,
                                                                     double hi_pct) const {
  require(rounds >= 10, "mi_confidence_interval: need at least 10 rounds");
  const int cx = view_.practice_cardinality(p);
  const int cy = view_.health_cardinality();
  ContingencyTable scratch;
  std::vector<double> replicates;
  replicates.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    double total = 0;
    int months = 0;
    for (std::size_t mi = 0; mi < view_.num_months(); ++mi) {
      const std::size_t len = view_.month_size(mi);
      if (len < 2) continue;
      const std::span<const int> xs = view_.practice_month(p, mi);
      const std::span<const int> ys = view_.health_month(mi);
      // Resample with replacement straight into the contingency table —
      // no intermediate sample vectors.
      scratch.reset(cx, cy);
      for (std::size_t k = 0; k < len; ++k) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(len) - 1));
        scratch.add(xs[pick], ys[pick]);
      }
      total += scratch.mutual_information();
      ++months;
    }
    replicates.push_back(months == 0 ? 0 : total / months);
  }
  return {percentile(replicates, lo_pct), percentile(replicates, hi_pct)};
}

std::vector<PracticeMi> DependenceAnalysis::top_practices(std::size_t k) const {
  return {mi_.begin(), mi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, mi_.size()))};
}

std::vector<PairCmi> DependenceAnalysis::top_pairs(std::size_t k) const {
  return {cmi_.begin(), cmi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, cmi_.size()))};
}

}  // namespace mpa
