#include "mpa/dependence.hpp"

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"
#include "stats/info.hpp"
#include "util/error.hpp"

namespace mpa {

DependenceAnalysis::DependenceAnalysis(const CaseTable& table, const DependenceOptions& opts) {
  require(!table.empty(), "DependenceAnalysis: empty case table");

  // Fit binners on the full table (bounds are global; per-month MI uses
  // the same discretization so months are comparable).
  practice_binners_.reserve(kNumPractices);
  for (Practice p : all_practices()) {
    practice_binners_.push_back(Binner::fit(table.column(p), opts.bins, opts.lo_pct, opts.hi_pct));
  }
  health_binner_ = Binner::fit(table.tickets(), opts.bins, opts.lo_pct, opts.hi_pct);

  // Discretize every case once, grouped by month.
  std::map<int, std::vector<std::size_t>> rows_by_month;
  for (std::size_t i = 0; i < table.size(); ++i) rows_by_month[table[i].month].push_back(i);

  std::vector<std::vector<int>> binned(kNumPractices);
  for (int j = 0; j < kNumPractices; ++j) {
    const auto p = static_cast<Practice>(j);
    binned[static_cast<std::size_t>(j)] =
        practice_binners_[static_cast<std::size_t>(j)].bin_all(table.column(p));
  }
  std::vector<int> health = health_binner_.bin_all(table.tickets());

  auto month_slice = [&](const std::vector<int>& col, const std::vector<std::size_t>& rows) {
    std::vector<int> out;
    out.reserve(rows.size());
    for (std::size_t i : rows) out.push_back(col[i]);
    return out;
  };

  // Average monthly MI per practice (analysis set only; the excluded
  // identity metrics would just duplicate their parents).
  const auto analysis_set = analysis_practices();
  for (Practice p : analysis_set) {
    const int j = static_cast<int>(p);
    double total = 0;
    int months = 0;
    for (const auto& [m, rows] : rows_by_month) {
      if (rows.size() < 2) continue;
      const auto x = month_slice(binned[static_cast<std::size_t>(j)], rows);
      const auto y = month_slice(health, rows);
      total += mutual_information(x, y);
      ++months;
    }
    mi_.push_back(PracticeMi{p, months == 0 ? 0 : total / months});
  }
  std::sort(mi_.begin(), mi_.end(),
            [](const PracticeMi& a, const PracticeMi& b) {
              return a.avg_monthly_mi > b.avg_monthly_mi;
            });

  // Average monthly CMI per practice pair, given health.
  for (std::size_t ai = 0; ai < analysis_set.size(); ++ai) {
    for (std::size_t bi = ai + 1; bi < analysis_set.size(); ++bi) {
      const int a = static_cast<int>(analysis_set[ai]);
      const int b = static_cast<int>(analysis_set[bi]);
      double total = 0;
      int months = 0;
      for (const auto& [m, rows] : rows_by_month) {
        if (rows.size() < 2) continue;
        const auto xa = month_slice(binned[static_cast<std::size_t>(a)], rows);
        const auto xb = month_slice(binned[static_cast<std::size_t>(b)], rows);
        const auto y = month_slice(health, rows);
        total += conditional_mutual_information(xa, xb, y);
        ++months;
      }
      cmi_.push_back(PairCmi{analysis_set[ai], analysis_set[bi],
                             months == 0 ? 0 : total / months});
    }
  }
  std::sort(cmi_.begin(), cmi_.end(),
            [](const PairCmi& a, const PairCmi& b) {
              return a.avg_monthly_cmi > b.avg_monthly_cmi;
            });
}

std::pair<double, double> DependenceAnalysis::mi_confidence_interval(
    const CaseTable& table, Practice p, Rng& rng, int rounds, double lo_pct,
    double hi_pct) const {
  require(!table.empty(), "mi_confidence_interval: empty case table");
  require(rounds >= 10, "mi_confidence_interval: need at least 10 rounds");
  const auto col_bins = binner(p).bin_all(table.column(p));
  const auto health_bins = health_binner().bin_all(table.tickets());
  std::map<int, std::vector<std::size_t>> rows_by_month;
  for (std::size_t i = 0; i < table.size(); ++i) rows_by_month[table[i].month].push_back(i);

  std::vector<double> replicates;
  replicates.reserve(static_cast<std::size_t>(rounds));
  std::vector<int> x, y;
  for (int r = 0; r < rounds; ++r) {
    double total = 0;
    int months = 0;
    for (const auto& [m, rows] : rows_by_month) {
      if (rows.size() < 2) continue;
      x.clear();
      y.clear();
      for (std::size_t k2 = 0; k2 < rows.size(); ++k2) {
        const std::size_t pick = rows[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1))];
        x.push_back(col_bins[pick]);
        y.push_back(health_bins[pick]);
      }
      total += mutual_information(x, y);
      ++months;
    }
    replicates.push_back(months == 0 ? 0 : total / months);
  }
  return {percentile(replicates, lo_pct), percentile(replicates, hi_pct)};
}

std::vector<PracticeMi> DependenceAnalysis::top_practices(std::size_t k) const {
  return {mi_.begin(), mi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, mi_.size()))};
}

std::vector<PairCmi> DependenceAnalysis::top_pairs(std::size_t k) const {
  return {cmi_.begin(), cmi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, cmi_.size()))};
}

}  // namespace mpa
