#include "mpa/dependence.hpp"

#include <algorithm>
#include <chrono>

#include "stats/contingency.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mpa {
namespace {

// MI of one binned practice column with health over one month block,
// using a caller-owned scratch table (allocation-free across calls).
double month_mi(const BinnedCaseView& view, Practice p, std::size_t mi,
                ContingencyTable& scratch) {
  scratch.reset(view.practice_cardinality(p), view.health_cardinality());
  scratch.count(view.practice_month(p, mi), view.health_month(mi));
  return scratch.mutual_information();
}

// CMI of a practice pair given health over one month block.
double month_cmi(const BinnedCaseView& view, Practice a, Practice b, std::size_t mi,
                 CmiAccumulator& scratch) {
  scratch.reset(view.practice_cardinality(a), view.practice_cardinality(b),
                view.health_cardinality());
  scratch.count(view.practice_month(a, mi), view.practice_month(b, mi), view.health_month(mi));
  return scratch.value();
}

// The ~P^2/2 practice pairs in (ai, bi) enumeration order — the fixed
// order the cmi running totals are indexed by.
std::vector<std::pair<Practice, Practice>> analysis_pairs() {
  const auto analysis_set = analysis_practices();
  std::vector<std::pair<Practice, Practice>> pairs;
  pairs.reserve(analysis_set.size() * (analysis_set.size() - 1) / 2);
  for (std::size_t ai = 0; ai < analysis_set.size(); ++ai)
    for (std::size_t bi = ai + 1; bi < analysis_set.size(); ++bi)
      pairs.emplace_back(analysis_set[ai], analysis_set[bi]);
  return pairs;
}

}  // namespace

DependenceAnalysis::DependenceAnalysis(const CaseTable& table, const DependenceOptions& opts)
    : opts_(opts),
      view_((require(!table.empty(), "DependenceAnalysis: empty case table"), table), opts.bins,
            opts.lo_pct, opts.hi_pct) {
  // Average monthly MI per practice (analysis set only; the excluded
  // identity metrics would just duplicate their parents). Months with
  // fewer than 2 cases contribute nothing to the fold.
  const auto analysis_set = analysis_practices();
  ContingencyTable mi_scratch;
  mi_totals_.resize(analysis_set.size());
  for (std::size_t i = 0; i < analysis_set.size(); ++i) {
    for (std::size_t mi = 0; mi < view_.num_months(); ++mi) {
      if (view_.month_size(mi) < 2) continue;
      mi_totals_[i].total += month_mi(view_, analysis_set[i], mi, mi_scratch);
      ++mi_totals_[i].months;
    }
  }

  // Average monthly CMI per practice pair, given health. Pairs are
  // enumerated in (ai, bi) order, each task writes only its own slot,
  // and the ranking sort sees the same sequence at any thread count.
  const auto pairs = analysis_pairs();
  cmi_totals_.resize(pairs.size());
  if (opts.record_pair_times) pair_seconds_.assign(pairs.size(), 0.0);
  parallel_for(opts.pool, pairs.size(), [&](std::size_t pi) {
    const auto start = opts.record_pair_times ? std::chrono::steady_clock::now()
                                              : std::chrono::steady_clock::time_point{};
    thread_local CmiAccumulator scratch;
    const auto [a, b] = pairs[pi];
    for (std::size_t mi = 0; mi < view_.num_months(); ++mi) {
      if (view_.month_size(mi) < 2) continue;
      cmi_totals_[pi].total += month_cmi(view_, a, b, mi, scratch);
      ++cmi_totals_[pi].months;
    }
    if (opts.record_pair_times)
      pair_seconds_[pi] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  });

  rebuild_rankings();
}

bool DependenceAnalysis::append_month(const CaseTable& table, int month) {
  const std::size_t months_before = view_.num_months();
  if (!view_.try_append_month(table, month)) return false;
  if (view_.num_months() == months_before) return true;  // Empty month: nothing to fold.

  const std::size_t mi_block = view_.num_months() - 1;
  if (view_.month_size(mi_block) < 2) return true;  // Below the fold's month threshold.

  const auto analysis_set = analysis_practices();
  ContingencyTable mi_scratch;
  for (std::size_t i = 0; i < analysis_set.size(); ++i) {
    mi_totals_[i].total += month_mi(view_, analysis_set[i], mi_block, mi_scratch);
    ++mi_totals_[i].months;
  }

  const auto pairs = analysis_pairs();
  parallel_for(opts_.pool, pairs.size(), [&](std::size_t pi) {
    thread_local CmiAccumulator scratch;
    const auto [a, b] = pairs[pi];
    cmi_totals_[pi].total += month_cmi(view_, a, b, mi_block, scratch);
    ++cmi_totals_[pi].months;
  });

  rebuild_rankings();
  return true;
}

void DependenceAnalysis::rebuild_rankings() {
  const auto analysis_set = analysis_practices();
  mi_.clear();
  mi_.reserve(analysis_set.size());
  for (std::size_t i = 0; i < analysis_set.size(); ++i)
    mi_.push_back(PracticeMi{analysis_set[i], mi_totals_[i].avg()});
  std::sort(mi_.begin(), mi_.end(), [](const PracticeMi& a, const PracticeMi& b) {
    return a.avg_monthly_mi > b.avg_monthly_mi;
  });

  const auto pairs = analysis_pairs();
  cmi_.clear();
  cmi_.reserve(pairs.size());
  for (std::size_t pi = 0; pi < pairs.size(); ++pi)
    cmi_.push_back(PairCmi{pairs[pi].first, pairs[pi].second, cmi_totals_[pi].avg()});
  std::sort(cmi_.begin(), cmi_.end(), [](const PairCmi& a, const PairCmi& b) {
    return a.avg_monthly_cmi > b.avg_monthly_cmi;
  });
}

std::pair<double, double> DependenceAnalysis::mi_confidence_interval(Practice p, Rng& rng,
                                                                     int rounds, double lo_pct,
                                                                     double hi_pct) const {
  require(rounds >= 10, "mi_confidence_interval: need at least 10 rounds");
  const int cx = view_.practice_cardinality(p);
  const int cy = view_.health_cardinality();
  ContingencyTable scratch;
  std::vector<double> replicates;
  replicates.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    double total = 0;
    int months = 0;
    for (std::size_t mi = 0; mi < view_.num_months(); ++mi) {
      const std::size_t len = view_.month_size(mi);
      if (len < 2) continue;
      const std::span<const int> xs = view_.practice_month(p, mi);
      const std::span<const int> ys = view_.health_month(mi);
      // Resample with replacement straight into the contingency table —
      // no intermediate sample vectors.
      scratch.reset(cx, cy);
      for (std::size_t k = 0; k < len; ++k) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(len) - 1));
        scratch.add(xs[pick], ys[pick]);
      }
      total += scratch.mutual_information();
      ++months;
    }
    replicates.push_back(months == 0 ? 0 : total / months);
  }
  return {percentile(replicates, lo_pct), percentile(replicates, hi_pct)};
}

std::vector<PracticeMi> DependenceAnalysis::top_practices(std::size_t k) const {
  return {mi_.begin(), mi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, mi_.size()))};
}

std::vector<PairCmi> DependenceAnalysis::top_pairs(std::size_t k) const {
  return {cmi_.begin(), cmi_.begin() + static_cast<std::ptrdiff_t>(std::min(k, cmi_.size()))};
}

}  // namespace mpa
