#include "mpa/binned_view.hpp"

#include <map>

#include "util/error.hpp"

namespace mpa {

BinnedCaseView::BinnedCaseView(const CaseTable& table, int bins, double lo_pct, double hi_pct)
    : bins_(bins), lo_pct_(lo_pct), hi_pct_(hi_pct) {
  require(!table.empty(), "BinnedCaseView: empty case table");
  n_ = table.size();

  practice_binners_.reserve(kNumPractices);
  for (Practice p : all_practices())
    practice_binners_.push_back(Binner::fit(table.column(p), bins, lo_pct, hi_pct));
  health_binner_ = Binner::fit(table.tickets(), bins, lo_pct, hi_pct);

  // Stable month-major permutation: months ascending, original order
  // preserved within each month.
  std::map<int, std::vector<std::size_t>> rows_by_month;
  for (std::size_t i = 0; i < n_; ++i) rows_by_month[table[i].month].push_back(i);
  std::vector<std::size_t> perm;
  perm.reserve(n_);
  month_begin_.push_back(0);
  for (const auto& [m, rows] : rows_by_month) {
    month_ids_.push_back(m);
    perm.insert(perm.end(), rows.begin(), rows.end());
    month_begin_.push_back(perm.size());
  }

  // Bin every column once and scatter through the permutation into the
  // per-column buffers.
  cols_.resize(kNumPractices + 1);
  for (int j = 0; j <= kNumPractices; ++j) {
    const bool health = j == kNumPractices;
    const std::vector<int> binned =
        health ? health_binner_.bin_all(table.tickets())
               : practice_binners_[static_cast<std::size_t>(j)].bin_all(
                     table.column(static_cast<Practice>(j)));
    auto& col = cols_[static_cast<std::size_t>(j)];
    col.resize(n_);
    for (std::size_t r = 0; r < n_; ++r) col[r] = binned[perm[r]];
  }
}

bool BinnedCaseView::try_append_month(const CaseTable& table, int month) {
  require(!month_ids_.empty() && month > month_ids_.back(),
          "BinnedCaseView::try_append_month: out-of-order month");

  // Refit every binner on the merged columns. Bin bounds are fitted
  // percentiles of the whole column, so a new month can move them; any
  // bitwise drift in a bound or bin count re-bins history, which makes
  // additive maintenance unsound — leave the view untouched and let
  // the caller rebuild.
  const auto same = [](const Binner& a, const Binner& b) {
    return a.lo() == b.lo() && a.hi() == b.hi() && a.num_bins() == b.num_bins();
  };
  std::vector<Binner> refit;
  refit.reserve(kNumPractices);
  for (Practice p : all_practices()) {
    refit.push_back(Binner::fit(table.column(p), bins_, lo_pct_, hi_pct_));
    if (!same(refit.back(), practice_binners_[refit.size() - 1])) return false;
  }
  if (!same(Binner::fit(table.tickets(), bins_, lo_pct_, hi_pct_), health_binner_)) return false;

  // Gather the new month's rows in table order — the same stable
  // within-month order the month-major permutation would give them.
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < table.size(); ++i)
    if (table[i].month == month) rows.push_back(i);
  if (rows.empty()) return true;  // An empty month adds no block.

  for (int j = 0; j <= kNumPractices; ++j) {
    auto& col = cols_[static_cast<std::size_t>(j)];
    col.reserve(n_ + rows.size());
    for (const std::size_t r : rows) {
      const Case& c = table[r];
      col.push_back(j == kNumPractices
                        ? health_binner_.bin(c.tickets)
                        : practice_binners_[static_cast<std::size_t>(j)].bin(
                              c[static_cast<Practice>(j)]));
    }
  }
  n_ += rows.size();
  month_ids_.push_back(month);
  month_begin_.push_back(n_);
  return true;
}

}  // namespace mpa
