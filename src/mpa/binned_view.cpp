#include "mpa/binned_view.hpp"

#include <map>

#include "util/error.hpp"

namespace mpa {

BinnedCaseView::BinnedCaseView(const CaseTable& table, int bins, double lo_pct, double hi_pct) {
  require(!table.empty(), "BinnedCaseView: empty case table");
  n_ = table.size();

  practice_binners_.reserve(kNumPractices);
  for (Practice p : all_practices())
    practice_binners_.push_back(Binner::fit(table.column(p), bins, lo_pct, hi_pct));
  health_binner_ = Binner::fit(table.tickets(), bins, lo_pct, hi_pct);

  // Stable month-major permutation: months ascending, original order
  // preserved within each month.
  std::map<int, std::vector<std::size_t>> rows_by_month;
  for (std::size_t i = 0; i < n_; ++i) rows_by_month[table[i].month].push_back(i);
  std::vector<std::size_t> perm;
  perm.reserve(n_);
  month_begin_.push_back(0);
  for (const auto& [m, rows] : rows_by_month) {
    month_ids_.push_back(m);
    perm.insert(perm.end(), rows.begin(), rows.end());
    month_begin_.push_back(perm.size());
  }

  // Bin every column once and scatter through the permutation into the
  // column-major buffer.
  data_.resize((kNumPractices + 1) * n_);
  for (int j = 0; j <= kNumPractices; ++j) {
    const bool health = j == kNumPractices;
    const std::vector<int> binned =
        health ? health_binner_.bin_all(table.tickets())
               : practice_binners_[static_cast<std::size_t>(j)].bin_all(
                     table.column(static_cast<Practice>(j)));
    int* out = data_.data() + static_cast<std::size_t>(j) * n_;
    for (std::size_t r = 0; r < n_; ++r) out[r] = binned[perm[r]];
  }
}

}  // namespace mpa
