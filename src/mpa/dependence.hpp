// Dependence analysis (§5.1): rank practices by average monthly mutual
// information with network health (Table 3), and practice pairs by
// conditional mutual information given health (Table 4).
//
// The analysis builds one month-major BinnedCaseView up front (every
// column binned once, months contiguous) and runs the dense contingency
// kernels over its zero-copy spans; the ~P^2/2 CMI pairs optionally fan
// out across a ThreadPool. Each pair's result is written to its own
// slot in pair-index order, so rankings are bit-identical at any thread
// count.
#pragma once

#include <utility>
#include <vector>

#include "metrics/case_table.hpp"
#include "mpa/binned_view.hpp"
#include "stats/binning.hpp"
#include "util/rng.hpp"

namespace mpa {

class ThreadPool;

struct DependenceOptions {
  int bins = 10;        ///< §5.1.1: 10 equal-width bins.
  double lo_pct = 5.0;  ///< Clamped percentile bounds.
  double hi_pct = 95.0;
  /// Fan the CMI pairs out on this pool (null = serial). Results are
  /// bit-identical either way.
  ThreadPool* pool = nullptr;
  /// Record per-pair CMI compute time (pair_compute_seconds()); the
  /// engine enables this when observability is on.
  bool record_pair_times = false;
};

/// MI of one practice with health.
struct PracticeMi {
  Practice practice{};
  double avg_monthly_mi = 0;
};

/// CMI of a practice pair given health.
struct PairCmi {
  Practice a{};
  Practice b{};
  double avg_monthly_cmi = 0;
};

class DependenceAnalysis {
 public:
  /// Bins every column once (bounds fitted on the full table), then
  /// computes per-month MI/CMI and averages across months.
  explicit DependenceAnalysis(const CaseTable& table, const DependenceOptions& opts = {});

  /// Incrementally absorb month `month` from the merged table (the
  /// rows this analysis was built over plus the new month's). The
  /// per-month MI/CMI folds are additive — each practice and pair
  /// keeps an unsorted running {total, months} in enumeration order —
  /// so only the new month block is counted and the rankings are
  /// re-derived from the updated totals, bit-identical to a fresh
  /// analysis over the merged table. Returns false (analysis
  /// untouched) when the new month moves any column's fitted bin
  /// bounds: re-binned history invalidates every count, so the caller
  /// must rebuild from scratch.
  bool append_month(const CaseTable& table, int month);

  /// All practices, sorted by MI with health, descending.
  const std::vector<PracticeMi>& mi_ranking() const { return mi_; }

  /// Top-k practices (Table 3).
  std::vector<PracticeMi> top_practices(std::size_t k) const;

  /// All practice pairs, sorted by CMI given health, descending.
  const std::vector<PairCmi>& cmi_ranking() const { return cmi_; }

  /// Top-k pairs (Table 4).
  std::vector<PairCmi> top_pairs(std::size_t k) const;

  /// Nonparametric bootstrap confidence interval for one practice's
  /// avg monthly MI over the analysis's own case table: months are
  /// kept fixed; cases are resampled with replacement within each
  /// month, directly into a scratch contingency table (no per-round
  /// copies). Reuses the month-major view built at construction.
  /// Returns the (lo_pct, hi_pct) percentile interval over `rounds`
  /// replicates.
  std::pair<double, double> mi_confidence_interval(Practice p, Rng& rng, int rounds = 200,
                                                   double lo_pct = 2.5,
                                                   double hi_pct = 97.5) const;

  /// The binned month-major view the analysis computes over.
  const BinnedCaseView& view() const { return view_; }

  /// The fitted binner for a practice (bench code reuses it for plots).
  const Binner& binner(Practice p) const { return view_.binner(p); }
  const Binner& health_binner() const { return view_.health_binner(); }

  /// Wall-time per CMI pair, in cmi-pair index order (empty unless
  /// DependenceOptions::record_pair_times was set).
  const std::vector<double>& pair_compute_seconds() const { return pair_seconds_; }

 private:
  /// Left-fold state of one avg-monthly series: appending a month adds
  /// its term to `total` exactly where a from-scratch fold would, so
  /// the running average stays bit-identical to a full recompute.
  struct RunningAvg {
    double total = 0;
    int months = 0;
    double avg() const { return months == 0 ? 0 : total / months; }
  };

  /// Re-derive the sorted mi_/cmi_ rankings from the running totals.
  void rebuild_rankings();

  DependenceOptions opts_;
  BinnedCaseView view_;
  std::vector<RunningAvg> mi_totals_;   ///< analysis_practices() order.
  std::vector<RunningAvg> cmi_totals_;  ///< (ai, bi) pair-index order.
  std::vector<PracticeMi> mi_;
  std::vector<PairCmi> cmi_;
  std::vector<double> pair_seconds_;
};

}  // namespace mpa
