// Dependence analysis (§5.1): rank practices by average monthly mutual
// information with network health (Table 3), and practice pairs by
// conditional mutual information given health (Table 4).
#pragma once

#include <utility>
#include <vector>

#include "metrics/case_table.hpp"
#include "stats/binning.hpp"
#include "util/rng.hpp"

namespace mpa {

struct DependenceOptions {
  int bins = 10;        ///< §5.1.1: 10 equal-width bins.
  double lo_pct = 5.0;  ///< Clamped percentile bounds.
  double hi_pct = 95.0;
};

/// MI of one practice with health.
struct PracticeMi {
  Practice practice{};
  double avg_monthly_mi = 0;
};

/// CMI of a practice pair given health.
struct PairCmi {
  Practice a{};
  Practice b{};
  double avg_monthly_cmi = 0;
};

class DependenceAnalysis {
 public:
  /// Bins every column once (bounds fitted on the full table), then
  /// computes per-month MI/CMI and averages across months.
  DependenceAnalysis(const CaseTable& table, const DependenceOptions& opts = {});

  /// All practices, sorted by MI with health, descending.
  const std::vector<PracticeMi>& mi_ranking() const { return mi_; }

  /// Top-k practices (Table 3).
  std::vector<PracticeMi> top_practices(std::size_t k) const;

  /// All practice pairs, sorted by CMI given health, descending.
  const std::vector<PairCmi>& cmi_ranking() const { return cmi_; }

  /// Top-k pairs (Table 4).
  std::vector<PairCmi> top_pairs(std::size_t k) const;

  /// Nonparametric bootstrap confidence interval for one practice's
  /// avg monthly MI: months are kept fixed; cases are resampled with
  /// replacement within each month. Returns the (lo_pct, hi_pct)
  /// percentile interval over `rounds` replicates.
  std::pair<double, double> mi_confidence_interval(const CaseTable& table, Practice p, Rng& rng,
                                                   int rounds = 200, double lo_pct = 2.5,
                                                   double hi_pct = 97.5) const;

  /// The fitted binner for a practice (bench code reuses it for plots).
  const Binner& binner(Practice p) const {
    return practice_binners_[static_cast<std::size_t>(p)];
  }
  const Binner& health_binner() const { return health_binner_; }

 private:
  std::vector<Binner> practice_binners_;
  Binner health_binner_{0, 0, 1};
  std::vector<PracticeMi> mi_;
  std::vector<PairCmi> cmi_;
};

}  // namespace mpa
