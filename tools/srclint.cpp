// srclint: static enforcement of MPA project invariants that the
// compiler (even clang's thread-safety analysis) cannot see
// (DESIGN.md §12). Line-oriented, dependency-free, and fast — it runs
// as a ctest entry over the live tree and as a blocking CI job.
//
// Rules (ids are stable; see --list-rules):
//   nondeterminism        src/ library code must not reach for
//                         ambient entropy or wall clocks: bans
//                         random_device, rand/srand, system_clock.
//                         Determinism is a product contract (replay
//                         byte-identity at any worker count).
//   unordered-iteration   iterating an unordered_map/unordered_set
//                         feeds hash-order into whatever consumes the
//                         loop — poison for serialized or
//                         deterministic output paths. src/ uses
//                         ordered containers; violations are flagged
//                         at the iteration site and at the member
//                         declaration that enables them.
//   layering              include DAG between src/ layers: util is the
//                         root (includes nothing above it), obs never
//                         includes engine/serve, stats/mpa never
//                         include serve, and every other edge must be
//                         one this tool's table already allows —
//                         adding a dependency edge is an explicit,
//                         reviewed decision.
//   raw-output            src/ libraries never write to stdout:
//                         no std::cout, printf, puts. Rendering
//                         returns strings; only tools/ and bench/
//                         own process output.
//   mutex-annotation      raw std::mutex / std::shared_mutex members
//                         are invisible to the thread-safety analysis
//                         — library code must use the annotated
//                         mpa::Mutex (util/sync.hpp), and every Mutex
//                         member in src/ must be referenced by at
//                         least one capability annotation
//                         (GUARDED_BY / REQUIRES / ACQUIRE / ...) in
//                         the same file.
//   bad-pragma            a srclint-disable pragma that names no rule
//                         or gives no reason is itself a finding —
//                         suppressions are documented decisions.
//
// Suppression: `// srclint-disable(<rule>): <reason>` on the flagged
// line or the line above it; `// srclint-disable-file(<rule>): <reason>`
// anywhere in the file disables the rule for the whole file.
//
// Output: human-readable text (default) or machine-readable JSONL
// (--format json: one {"file","line","rule","message"} object per
// finding). Exit 0 = clean, 1 = findings, 2 = usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Banned tokens are spelled in concatenated fragments throughout this
// file so srclint never flags its own source when scanning tools/.
const std::string kStdMutex = std::string("std::") + "mutex";
const std::string kStdSharedMutex = std::string("std::") + "shared_mutex";
const std::string kStdRecursiveMutex = std::string("std::") + "recursive_mutex";

/// The layer include DAG for src/. A file in layer L may include its
/// own layer plus exactly these. Growing an edge here is a reviewed
/// architecture decision, not a side effect of an include.
const std::map<std::string, std::set<std::string>>& allowed_layer_deps() {
  static const std::map<std::string, std::set<std::string>> deps = {
      {"util", {}},
      {"obs", {"util"}},
      {"model", {"util"}},
      {"telemetry", {"util"}},
      {"stats", {"util"}},
      {"config", {"model", "util"}},
      // io -> util includes util/json and util/hash: the mpac columnar
      // manifest is JSON (exact u64 fingerprints via JsonValue::as_u64)
      // and shard fingerprints use the shared FNV-1a (reviewed edge —
      // both live in the util layer, not a new DAG edge).
      {"io", {"model", "telemetry", "util"}},
      {"metrics", {"config", "model", "stats", "telemetry", "util"}},
      {"simulation", {"config", "metrics", "model", "telemetry", "util"}},
      {"learn", {"metrics", "stats", "util"}},
      {"mpa", {"learn", "metrics", "stats", "util"}},
      {"engine", {"config", "io", "metrics", "model", "mpa", "obs", "telemetry", "util"}},
      // serve -> io: the ingest request kind loads month-delta
      // directories (load_month_delta) on the serving path.
      {"serve", {"config", "engine", "io", "learn", "metrics", "mpa", "obs", "util"}},
  };
  return deps;
}

const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
  static const std::vector<std::pair<std::string, std::string>> rules = {
      {"nondeterminism", "no ambient entropy/wall clocks in src/ library code"},
      {"unordered-iteration", "no unordered container iteration in src/ (hash order leaks)"},
      {"layering", "src/ layer includes must follow the allowed DAG"},
      {"raw-output", "no std::cout/printf/puts in src/ libraries"},
      {"mutex-annotation", "mutexes are annotated mpa::Mutex capabilities, never raw"},
      {"bad-pragma", "srclint-disable pragmas must name a rule and a reason"},
  };
  return rules;
}

bool is_known_rule(const std::string& id) {
  for (const auto& [rule, desc] : rule_catalog())
    if (rule == id) return true;
  return false;
}

/// True when `path` (generic form) has a component equal to `dir`.
bool under_dir(const fs::path& path, const std::string& dir) {
  for (const auto& part : path)
    if (part == dir) return true;
  return false;
}

/// The src/ layer of a path ("util" for src/util/sync.hpp), or "".
std::string layer_of(const fs::path& path) {
  bool next = false;
  for (const auto& part : path) {
    if (next) return part.string();
    if (part == "src") next = true;
  }
  return "";
}

/// Strip string literals and comment text so banned tokens inside
/// quotes or prose never count, but KEEP comment markers: pragma
/// parsing runs on the raw line, and token scans run on this cleaned
/// form with everything after // removed.
std::string strip_noise(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_str = false;
  char quote = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_str) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == quote) {
        in_str = false;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      in_str = true;
      quote = c;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;  // line comment
    out += c;
  }
  return out;
}

/// The text after the first `//` that is not inside a string literal
/// ("" when the line has no comment). Pragmas live only in comments,
/// and only at the start of one — mentions in prose or string
/// literals are not pragmas.
std::string comment_text(const std::string& line) {
  bool in_str = false;
  char quote = 0;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        in_str = false;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      in_str = true;
      quote = c;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') return line.substr(i + 2);
  }
  return "";
}

struct Pragmas {
  /// rule -> lines (1-based) with a line-scoped disable (covers that
  /// line and the next).
  std::map<std::string, std::set<std::size_t>> line_disables;
  std::set<std::string> file_disables;
};

class FileScan {
 public:
  FileScan(fs::path path, std::vector<std::string> lines)
      : path_(std::move(path)), lines_(std::move(lines)) {
    collect_pragmas();
  }

  std::vector<Finding> run() {
    const std::string layer = layer_of(path_);
    const bool in_src = under_dir(path_, "src");
    scan_nondeterminism(in_src);
    scan_unordered(in_src);
    scan_layering(layer);
    scan_raw_output(in_src);
    scan_mutex_annotation(in_src);
    return std::move(findings_);
  }

 private:
  void collect_pragmas() {
    // Well-formed, anchored at the start of the comment; the shape is
    // the disable token, "(rule)", a colon, and a non-empty reason.
    static const std::regex good(R"(^\s*srclint-disable(-file)?\(([a-z-]+)\)\s*:\s*\S)");
    static const std::regex any(R"(^\s*srclint-disable)");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string line = comment_text(lines_[i]);
      if (line.empty()) continue;
      std::smatch m;
      if (std::regex_search(line, m, good)) {
        const std::string rule = m[2].str();
        if (!is_known_rule(rule)) {
          report(i + 1, "bad-pragma", "unknown rule '" + rule + "' in srclint-disable");
        } else if (m[1].matched) {
          pragmas_.file_disables.insert(rule);
        } else {
          pragmas_.line_disables[rule].insert(i + 1);
        }
      } else if (std::regex_search(line, any)) {
        report(i + 1, "bad-pragma",
               "malformed pragma; use // srclint-disable(<rule>): <reason>");
      }
    }
  }

  bool suppressed(const std::string& rule, std::size_t line_no) const {
    if (pragmas_.file_disables.count(rule) != 0) return true;
    const auto it = pragmas_.line_disables.find(rule);
    if (it == pragmas_.line_disables.end()) return false;
    return it->second.count(line_no) != 0 || it->second.count(line_no - 1) != 0;
  }

  void report(std::size_t line_no, const std::string& rule, const std::string& message) {
    if (rule != "bad-pragma" && suppressed(rule, line_no)) return;
    findings_.push_back(Finding{path_.generic_string(), line_no, rule, message});
  }

  void scan_nondeterminism(bool in_src) {
    if (!in_src) return;  // tools/ and bench/ own their process environment
    static const std::regex entropy(R"(\brandom_device\b)");
    static const std::regex crand(R"(\bs?rand\s*\()");
    static const std::regex wallclock(R"(\bsystem_clock\b)");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string code = strip_noise(lines_[i]);
      if (std::regex_search(code, entropy))
        report(i + 1, "nondeterminism",
               "random_device is ambient entropy; derive streams from the session seed "
               "(util/rng.hpp)");
      if (std::regex_search(code, crand))
        report(i + 1, "nondeterminism", "rand()/srand() share hidden global state; use util/rng.hpp");
      if (std::regex_search(code, wallclock))
        report(i + 1, "nondeterminism",
               "system_clock is wall time; use steady_clock via obs::now_ns(), and keep "
               "timestamps out of deterministic content");
    }
  }

  void scan_unordered(bool in_src) {
    if (!in_src) return;
    // Declarations introduce hash-ordered state; iteration leaks it.
    static const std::regex decl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+))");
    static const std::regex any_unordered(R"(\bunordered_(?:map|set|multimap|multiset)\b)");
    std::set<std::string> names;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string code = strip_noise(lines_[i]);
      std::smatch m;
      if (std::regex_search(code, m, decl)) {
        names.insert(m[1].str());
        report(i + 1, "unordered-iteration",
               "unordered container '" + m[1].str() +
                   "' in library code: iteration order is hash order; use std::map/std::set "
                   "(or justify with a pragma)");
      } else if (std::regex_search(code, any_unordered)) {
        report(i + 1, "unordered-iteration",
               "unordered container in library code feeds hash order into consumers; use "
               "ordered containers");
      }
    }
    // Iteration sites over previously declared names (belt & braces
    // for declarations the decl regex missed, e.g. split lines).
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string code = strip_noise(lines_[i]);
      for (const std::string& name : names) {
        const std::regex range_for(R"(for\s*\([^)]*:\s*)" + name + R"(\b)");
        const std::regex begin_call("\\b" + name + R"(\s*\.\s*(?:begin|cbegin)\s*\()");
        if (std::regex_search(code, range_for) || std::regex_search(code, begin_call))
          report(i + 1, "unordered-iteration",
                 "iterating unordered container '" + name + "' (hash order)");
      }
    }
  }

  void scan_layering(const std::string& layer) {
    if (layer.empty()) return;  // layering governs src/ only
    const auto deps_it = allowed_layer_deps().find(layer);
    static const std::regex include(R"_(#\s*include\s+"([a-z_]+)/)_");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines_[i], m, include)) continue;
      const std::string target = m[1].str();
      if (target == layer) continue;
      if (allowed_layer_deps().count(target) == 0) continue;  // not a src/ layer
      const bool allowed =
          deps_it != allowed_layer_deps().end() && deps_it->second.count(target) != 0;
      if (!allowed)
        report(i + 1, "layering",
               "layer '" + layer + "' must not include '" + target +
                   "' (allowed DAG in tools/srclint.cpp; new edges are a reviewed decision)");
    }
  }

  void scan_raw_output(bool in_src) {
    if (!in_src) return;
    static const std::regex cout(R"(\bstd\s*::\s*cout\b)");
    static const std::regex print(R"((?:\bstd\s*::\s*|[^\w.:>])(?:printf|puts|putchar)\s*\()");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string code = strip_noise(lines_[i]);
      if (std::regex_search(code, cout))
        report(i + 1, "raw-output",
               "library code writes to stdout; return strings and let tools/ own the stream");
      if (std::regex_search(code, print))
        report(i + 1, "raw-output",
               "printf-family output in library code; format with snprintf/ostringstream and "
               "return the string");
    }
  }

  void scan_mutex_annotation(bool in_src) {
    // (a) raw standard mutex types anywhere we scan, except the one
    //     annotated wrapper that owns them.
    const bool is_wrapper = path_.filename() == "sync.hpp" && under_dir(path_, "util");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const std::string code = strip_noise(lines_[i]);
      const bool has_raw = code.find(kStdMutex) != std::string::npos ||
                           code.find(kStdSharedMutex) != std::string::npos ||
                           code.find(kStdRecursiveMutex) != std::string::npos;
      if (has_raw && !is_wrapper)
        report(i + 1, "mutex-annotation",
               "raw standard mutex is invisible to the thread-safety analysis; use "
               "mpa::Mutex / MutexLock / CondVar (util/sync.hpp)");
    }
    if (!in_src || is_wrapper) return;
    // (b) every annotated-Mutex member in src/ must back at least one
    //     capability annotation in the same file.
    static const std::regex decl(R"(^\s*(?:mutable\s+)?(?:mpa\s*::\s*)?Mutex\s+(\w+)\s*;)");
    const std::string all = [this] {
      std::string joined;
      for (const auto& l : lines_) {
        joined += l;
        joined += '\n';
      }
      return joined;
    }();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      std::smatch m;
      const std::string code = strip_noise(lines_[i]);
      if (!std::regex_match(code, m, decl)) continue;
      const std::string name = m[1].str();
      const std::regex annotated(
          R"((GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|EXCLUDES|ASSERT_CAPABILITY|RETURN_CAPABILITY)\s*\(([^)]*[\s(,!])?)" +
          name + R"(\b)");
      if (!std::regex_search(all, annotated))
        report(i + 1, "mutex-annotation",
               "Mutex '" + name +
                   "' backs no capability annotation in this file; add GUARDED_BY/REQUIRES/"
                   "EXCLUDES (or a pragma explaining why none applies)");
    }
  }

  fs::path path_;
  std::vector<std::string> lines_;
  Pragmas pragmas_;
  std::vector<Finding> findings_;
};

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--format text|json] [--list-rules] <path>...\n"
            << "  scans .cpp/.hpp files under each path; exit 0 clean, 1 findings, 2 error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) return usage(argv[0]);
      format = argv[++i];
      if (format != "text" && format != "json") return usage(argv[0]);
    } else if (arg == "--list-rules") {
      for (const auto& [rule, desc] : rule_catalog()) std::cout << rule << "  " << desc << "\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  std::vector<fs::path> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      if (scannable(root)) files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "srclint: no such file or directory: " << root.string() << "\n";
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(root, ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && scannable(it->path())) files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "srclint: cannot read " << file.string() << "\n";
      return 2;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
    auto file_findings = FileScan(file, std::move(lines)).run();
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });

  if (format == "json") {
    for (const auto& f : findings) {
      std::string msg;
      for (char c : f.message) {
        if (c == '"' || c == '\\') msg += '\\';
        msg += c;
      }
      std::cout << "{\"file\":\"" << f.file << "\",\"line\":" << f.line << ",\"rule\":\""
                << f.rule << "\",\"message\":\"" << msg << "\"}\n";
    }
  } else {
    for (const auto& f : findings)
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    std::cout << "srclint: " << files.size() << " files, " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
