// mpa_cli — the command-line face of the MPA framework, so an
// organization can run the paper's full pipeline over a dataset
// directory (see src/io/dataset_io.hpp for the format).
//
//   mpa_cli generate <dir> [--networks N] [--months M] [--seed S]
//       Write a synthetic example dataset (also documents the format).
//   mpa_cli summary <dir>
//       Dataset sizes (Table 2 style).
//   mpa_cli infer <dir> [--out cases.csv] [--delta MIN]
//       Infer the (network, month) case table and dump it as CSV.
//   mpa_cli rank <dir> [--top K]
//       Dependence analysis: MI ranking + CMI pairs (Tables 3-4).
//   mpa_cli causal <dir> --practice <name> [--threshold P]
//       Matched-design QED for one practice (Tables 5-8 per practice).
//   mpa_cli predict <dir> [--classes 2|5] [--history M]
//       Cross-validated accuracy + online month-ahead accuracy (§6).
//   mpa_cli lint <dir>
//       Configuration-consistency lint of each network's latest configs.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "config/dialect.hpp"
#include "config/lint.hpp"
#include "io/dataset_io.hpp"
#include "mpa/mpa.hpp"
#include "simulation/osp_generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace mpa;

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> flags;

  int get_int(const std::string& key, int fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  if (argc >= 3 && argv[2][0] != '-') args.dir = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string key = argv[i];
    if (starts_with(key, "--") && i + 1 < argc) {
      args.flags[key.substr(2)] = argv[++i];
    }
  }
  return args;
}

int usage() {
  std::cerr << "usage: mpa_cli <generate|summary|infer|rank|causal|predict|lint> <dir> [flags]\n"
               "run with a dataset directory (see src/io/dataset_io.hpp).\n"
               "  generate: --networks N --months M --seed S\n"
               "  infer:    --out FILE --delta MINUTES\n"
               "  rank:     --top K\n"
               "  causal:   --practice NAME --threshold P\n"
               "  predict:  --classes 2|5 --history M\n";
  return 2;
}

Practice practice_by_name(const std::string& name) {
  for (Practice p : all_practices())
    if (practice_name(p) == name) return p;
  std::string known;
  for (Practice p : analysis_practices()) known += "  " + std::string(practice_name(p)) + "\n";
  throw DataError("unknown practice '" + name + "'; known practices:\n" + known);
}

CaseTable infer_from_dir(const Args& args, int* months_out = nullptr) {
  const DiskDataset data = load_dataset(args.dir);
  // The observation window length is implied by the data: last month
  // touched by any ticket or snapshot.
  int months = 1;
  for (const auto& t : data.tickets.all()) months = std::max(months, month_of(t.created) + 1);
  for (const auto& dev : data.snapshots.devices())
    for (const auto& s : data.snapshots.for_device(dev))
      months = std::max(months, month_of(s.time) + 1);
  InferenceOptions opts;
  opts.num_months = months;
  opts.event_window = args.get_int("delta", 5);
  if (months_out != nullptr) *months_out = months;
  return infer_case_table(data.inventory, data.snapshots, data.tickets, opts);
}

int cmd_generate(const Args& args) {
  OspOptions opts;
  opts.num_networks = args.get_int("networks", 50);
  opts.num_months = args.get_int("months", 12);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const OspDataset data = generate_osp(opts);
  save_dataset(DiskDataset{data.inventory, data.snapshots, data.tickets}, args.dir);
  std::cout << "wrote " << args.dir << ": " << data.inventory.num_networks() << " networks, "
            << data.snapshots.total_snapshots() << " snapshots, " << data.tickets.size()
            << " tickets\n";
  return 0;
}

int cmd_summary(const Args& args) {
  const DiskDataset data = load_dataset(args.dir);
  int months = 1, maintenance = 0;
  for (const auto& t : data.tickets.all()) {
    months = std::max(months, month_of(t.created) + 1);
    if (t.origin == TicketOrigin::kMaintenance) ++maintenance;
  }
  TextTable t({"property", "value"});
  t.row().add("Months").add(months);
  t.row().add("Networks").add(data.inventory.num_networks());
  t.row().add("Devices").add(data.inventory.num_devices());
  t.row().add("Config snapshots").add(data.snapshots.total_snapshots());
  t.row().add("Snapshot bytes").add(data.snapshots.total_bytes());
  t.row().add("Tickets").add(data.tickets.size());
  t.row().add("  maintenance").add(maintenance);
  t.print(std::cout);
  return 0;
}

int cmd_infer(const Args& args) {
  const CaseTable table = infer_from_dir(args);
  const std::string out = args.get("out");
  if (out.empty()) {
    std::cout << table.to_csv();
  } else {
    std::ofstream f(out);
    f << table.to_csv();
    std::cout << "wrote " << table.size() << " cases to " << out << "\n";
  }
  return 0;
}

int cmd_rank(const Args& args) {
  const CaseTable table = infer_from_dir(args);
  const DependenceAnalysis dep(table);
  const auto k = static_cast<std::size_t>(args.get_int("top", 10));

  std::cout << "-- practices by avg monthly MI with health --\n";
  TextTable mi({"rank", "practice", "cat", "MI"});
  int rank = 0;
  for (const auto& pm : dep.top_practices(k))
    mi.row().add(++rank).add(std::string(practice_name(pm.practice)))
        .add(std::string(category_tag(pm.practice))).add(pm.avg_monthly_mi, 3);
  mi.print(std::cout);

  std::cout << "\n-- practice pairs by CMI given health --\n";
  TextTable cmi({"rank", "practice A", "practice B", "CMI"});
  rank = 0;
  for (const auto& pair : dep.top_pairs(k))
    cmi.row().add(++rank).add(std::string(practice_name(pair.a)))
        .add(std::string(practice_name(pair.b))).add(pair.avg_monthly_cmi, 3);
  cmi.print(std::cout);
  return 0;
}

int cmd_causal(const Args& args) {
  const std::string name = args.get("practice");
  if (name.empty()) {
    std::cerr << "causal: --practice NAME required\n";
    return 2;
  }
  const Practice treatment = practice_by_name(name);
  const CaseTable table = infer_from_dir(args);
  CausalOptions opts;
  opts.p_threshold = args.get_double("threshold", 1e-3);
  const CausalResult res = causal_analysis(table, treatment, opts);

  TextTable t({"comparison", "pairs", "+/0/-", "p-value", "balanced", "verdict"});
  for (const auto& cmp : res.comparisons) {
    t.row().add(cmp.label()).add(cmp.pairs)
        .add(std::to_string(cmp.outcome.n_pos) + "/" + std::to_string(cmp.outcome.n_zero) + "/" +
             std::to_string(cmp.outcome.n_neg))
        .add(format_sci(cmp.outcome.p_value)).add(cmp.balanced ? "yes" : "NO")
        .add(cmp.causal
                 ? (cmp.outcome.n_pos > cmp.outcome.n_neg ? "causes MORE tickets"
                                                          : "causes FEWER tickets")
                 : "no causal evidence");
  }
  t.print(std::cout);
  return 0;
}

int cmd_predict(const Args& args) {
  int months = 1;
  const CaseTable table = infer_from_dir(args, &months);
  const int classes = args.get_int("classes", 2);
  const int history = args.get_int("history", 3);
  Rng rng(7);

  const EvalResult cv = evaluate_model_cv(table, classes, ModelKind::kDtBoostOversample, rng);
  std::cout << "-- " << classes << "-class model, 5-fold CV --\n"
            << cv.to_string(health_class_names(classes));

  const int first_t = std::min(months - 1, history);
  const double online = online_prediction_accuracy(
      table, classes, history, ModelKind::kDtBoostOversample, rng, first_t, months - 1);
  std::cout << "\nonline month-ahead accuracy (history " << history
            << " months): " << format_double(online * 100, 1) << "%\n";
  return 0;
}

int cmd_lint(const Args& args) {
  const DiskDataset data = load_dataset(args.dir);
  std::size_t total = 0;
  for (const auto& net : data.inventory.networks()) {
    std::vector<DeviceConfig> configs;
    for (const auto* dev : data.inventory.devices_in(net.network_id)) {
      const auto& snaps = data.snapshots.for_device(dev->device_id);
      if (snaps.empty()) continue;
      configs.push_back(parse(snaps.back().text, dialect_of(dev->vendor), dev->device_id));
    }
    const auto issues = lint_network(configs);
    total += issues.size();
    for (const auto& i : issues)
      std::cout << net.network_id << " " << i.device_id << " [" << to_string(i.kind) << "] "
                << i.detail << "\n";
  }
  std::cout << total << " issue(s) across " << data.inventory.num_networks() << " networks\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.command.empty() || args.dir.empty()) return usage();
  try {
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "summary") return cmd_summary(args);
    if (args.command == "infer") return cmd_infer(args);
    if (args.command == "rank") return cmd_rank(args);
    if (args.command == "causal") return cmd_causal(args);
    if (args.command == "predict") return cmd_predict(args);
    if (args.command == "lint") return cmd_lint(args);
  } catch (const std::exception& e) {
    std::cerr << "mpa_cli: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
