// mpa_cli — the command-line face of the MPA framework, so an
// organization can run the paper's full pipeline over a dataset
// directory (see src/io/dataset_io.hpp for the format). All analysis
// commands run through the engine's AnalysisSession: one shared
// thread pool (--threads / MPA_THREADS), memoized artifacts, and
// deterministic per-artifact RNG streams.
//
//   mpa_cli generate <dir> [--networks N] [--months M] [--seed S]
//       Write a synthetic example dataset (also documents the format).
//   mpa_cli summary <dir>
//       Dataset sizes (Table 2 style).
//   mpa_cli infer <dir> [--out cases.csv] [--delta MIN]
//       Infer the (network, month) case table and dump it as CSV.
//   mpa_cli rank <dir> [--top K]
//       Dependence analysis: MI ranking + CMI pairs (Tables 3-4).
//   mpa_cli causal <dir> --practice <name> [--threshold P]
//       Matched-design QED for one practice (Tables 5-8 per practice).
//   mpa_cli predict <dir> [--classes 2|5] [--history M]
//       Cross-validated accuracy + online month-ahead accuracy (§6).
//   mpa_cli split <dir> --first-month M --out DIR
//       Split a dataset into DIR/base (months 0..M-1) and one
//       DIR/delta-<m> month-delta directory per later month, for
//       incremental ingestion (replaying every delta over the base
//       reproduces the original dataset bit-exactly).
//   mpa_cli ingest <dir> --deltas D1[,D2,...] [--out cases.csv]
//              [--rank-out FILE]
//       Open a session over the dataset, warm the case table / lint /
//       dependence artifacts, then append each month-delta directory
//       in order through AnalysisSession::append_month — the O(delta)
//       incremental path. Prints one maintenance summary per month;
//       --out dumps the final case table CSV and --rank-out the final
//       dependence rankings (both bit-identical to a from-scratch run
//       over the merged data).
//   mpa_cli lint <dir> [--format text|json|sarif] [--out FILE]
//              [--min-severity SEV] [--fail-on SEV]
//       Rule-engine lint of each network's latest configs. SARIF output
//       is suitable for code-review tooling; --fail-on exits 3 when a
//       finding at or above SEV exists (CI gate).
//   mpa_cli report <manifest.json> [--format text|json]
//       Render a run manifest (written by --manifest-out or persisted
//       beside keyed artifact-store entries) as text or JSON.
//   mpa_cli trace summarize <trace.json>
//       Aggregate a trace file (--trace-out span JSON or
//       --chrome-trace-out Chrome trace) into a per-path tree.
//   mpa_cli serve <dir> [--workers N] [--max-active N] [--queue-depth N]
//              [--deadline-ms D]
//       Long-lived analysis service: keeps a session resident over the
//       dataset, reads JSONL requests from stdin (src/serve/request.hpp
//       wire format), streams response JSONL to stdout as requests
//       complete. EOF drains and exits.
//   mpa_cli replay <dir> [--requests N] [--interval-ms D] [--seed S]
//              [--tenants N] [--workers N] [--max-active N]
//              [--queue-depth N] [--deadline-ms D] [--trace-in FILE]
//              [--trace-dump FILE] [--responses-out FILE]
//              [--report-out FILE]
//       Synthetic load client against an in-process server: replays a
//       seeded (or --trace-in) trace, prints throughput + p50/p90/p99.
//       --responses-out writes the deterministic response JSONL (sorted
//       by id, no timing) — byte-identical for a fixed single-worker
//       trace. --slo-ms computes per-tenant SLO attainment
//       (--slo-report writes it as JSON); --loads R1,R2,... sweeps
//       offered loads to find the saturation knee.
//   mpa_cli top [--interval-ms D] [--iterations N]
//       Periodic dashboard over a running daemon: emits `stats`
//       request JSONL on stdout, renders matching responses read from
//       stdin to stderr — wire it to `mpa_cli serve` with a fifo.
//
// Common flags: --threads N (engine pool size; default MPA_THREADS or
// the hardware concurrency). Observability (any subcommand):
//   --metrics-out FILE  write the metrics registry after the command
//                       (JSON; Prometheus text when FILE ends in .prom)
//   --trace-out FILE    write the recorded trace spans as JSON
//   --chrome-trace-out FILE  write the spans as Chrome trace-event
//                       JSON (loads in Perfetto / chrome://tracing)
//   --log-out FILE      record the structured event log, write JSONL
//   --log-level LEVEL   event-log floor: debug|info|warn|error (info)
//   --manifest-out FILE write the last session's run manifest as JSON
//   --window-out FILE   write the rolling window snapshot (JSON;
//                       Prometheus text when FILE ends in .prom)
//   --window-canonical-out FILE  write the window identity form
//                       (counts only, timestamp-free)
//   --stats             print a counter/span summary to stderr
//
// Export files are written on every exit path — a run that failed with
// exit 1/2/3 still leaves its metrics, trace, log, and manifest behind.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "config/dialect.hpp"
#include "config/lint.hpp"
#include "engine/run_manifest.hpp"
#include "engine/session.hpp"
#include "io/columnar.hpp"
#include "io/dataset_io.hpp"
#include "mpa/mpa.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "simulation/osp_generator.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

namespace {

using namespace mpa;

/// A malformed invocation (unknown flag value etc.): print the
/// message + usage and exit 2, instead of dying on an uncaught
/// std::invalid_argument out of std::stoi.
struct UsageError {
  std::string message;
};

struct Args {
  std::string command;
  std::string dir;
  std::map<std::string, std::string> flags;

  int get_int(const std::string& key, int fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
      throw UsageError{"--" + key + " expects an integer, got '" + it->second + "'"};
    return static_cast<int>(v);
  }
  int get_int_min(const std::string& key, int fallback, int min_v) const {
    const int v = get_int(key, fallback);
    if (v < min_v)
      throw UsageError{"--" + key + " must be at least " + std::to_string(min_v) + ", got " +
                       std::to_string(v)};
    return v;
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
      throw UsageError{"--" + key + " expects an unsigned integer, got '" + it->second + "'"};
    return static_cast<std::uint64_t>(v);
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
      throw UsageError{"--" + key + " expects a number, got '" + it->second + "'"};
    return v;
  }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

/// Flags that take no value.
const std::set<std::string>& bool_flags() {
  static const std::set<std::string> flags = {"stats"};
  return flags;
}

Args parse_args(int argc, char** argv) {
  Args args;
  int first_flag = 3;
  if (argc >= 2) args.command = argv[1];
  // "trace summarize" is a two-word command; its positional is the
  // trace file, not a dataset directory.
  if (args.command == "trace" && argc >= 3 && std::string(argv[2]) == "summarize") {
    args.command = "trace summarize";
    if (argc >= 4 && argv[3][0] != '-') args.dir = argv[3];
    first_flag = 4;
  } else if (args.command == "top") {
    // `top` has no dataset directory: it talks to a running daemon
    // over stdin/stdout, so flags start right after the command.
    first_flag = 2;
  } else if (argc >= 3 && argv[2][0] != '-') {
    args.dir = argv[2];
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string key = argv[i];
    if (!starts_with(key, "--"))
      throw UsageError{"unexpected argument '" + key + "'"};
    const std::string name = key.substr(2);
    if (bool_flags().count(name)) {
      args.flags[name] = "1";
      continue;
    }
    if (i + 1 >= argc) throw UsageError{"flag '" + key + "' is missing a value"};
    args.flags[name] = argv[++i];
  }
  return args;
}

/// Reject misspelled flags instead of silently ignoring them.
void check_flags(const Args& args) {
  static const std::map<std::string, std::set<std::string>> allowed = {
      {"generate",
       {"networks", "months", "seed", "format", "shard-mb", "min-devices", "max-devices"}},
      {"convert", {"out", "shard-mb"}},
      {"verify", {}},
      {"summary", {"threads", "delta"}},
      {"infer", {"threads", "delta", "out"}},
      {"rank", {"threads", "delta", "top"}},
      {"causal", {"threads", "delta", "practice", "threshold"}},
      {"predict", {"threads", "delta", "classes", "history"}},
      {"split", {"first-month", "out"}},
      {"ingest", {"threads", "delta", "deltas", "out", "rank-out"}},
      {"lint", {"threads", "delta", "format", "out", "min-severity", "fail-on"}},
      {"report", {"format"}},
      {"trace summarize", {}},
      {"serve",
       {"threads", "delta", "workers", "max-active", "queue-depth", "deadline-ms",
        "window-buckets", "window-bucket-ms", "slow-log"}},
      {"replay",
       {"threads", "delta", "workers", "max-active", "queue-depth", "deadline-ms", "requests",
        "interval-ms", "seed", "tenants", "trace-in", "trace-dump", "responses-out",
        "report-out", "window-buckets", "window-bucket-ms", "slow-log", "slo-ms", "slo-report",
        "loads"}},
      {"top", {"interval-ms", "iterations"}},
  };
  // Observability flags ride along with every subcommand.
  static const std::set<std::string> common = {
      "metrics-out", "trace-out", "chrome-trace-out", "log-out",
      "log-level",   "manifest-out", "stats", "window-out", "window-canonical-out"};
  const auto it = allowed.find(args.command);
  if (it == allowed.end()) return;  // unknown command falls through to usage()
  for (const auto& [key, value] : args.flags)
    if (!it->second.count(key) && !common.count(key))
      throw UsageError{"unknown flag '--" + key + "' for '" + args.command + "'"};
}

int usage() {
  std::cerr << "usage: mpa_cli <generate|summary|infer|rank|causal|predict|lint> <dir> [flags]\n"
               "       mpa_cli convert <dir> --out DIR [--shard-mb N]\n"
               "       mpa_cli verify <dir>\n"
               "       mpa_cli split <dir> --first-month M --out DIR\n"
               "       mpa_cli ingest <dir> --deltas D1[,D2,...] [--out FILE] [--rank-out FILE]\n"
               "       mpa_cli report <manifest.json> [--format text|json]\n"
               "       mpa_cli trace summarize <trace.json>\n"
               "       mpa_cli serve <dir> [--workers N] [--max-active N]\n"
               "                     [--queue-depth N] [--deadline-ms D]\n"
               "       mpa_cli replay <dir> [--requests N] [--interval-ms D] [--seed S]\n"
               "                     [--tenants N] [--trace-in FILE] [--trace-dump FILE]\n"
               "                     [--responses-out FILE] [--report-out FILE]\n"
               "                     [--slo-ms D] [--slo-report FILE] [--loads R1,R2,...]\n"
               "       mpa_cli top [--interval-ms D] [--iterations N]\n"
               "run with a dataset directory (see src/io/dataset_io.hpp).\n"
               "  generate: --networks N --months M --seed S\n"
               "            --format csv|mpac (mpac streams: bounded memory at any scale)\n"
               "            --shard-mb N (mpac shard size, default 64)\n"
               "            --min-devices N --max-devices N (network size range)\n"
               "  convert:  csv->mpac or mpac->csv by source format; --out DIR\n"
               "  verify:   check a dataset (mpac: fingerprints + deep scan)\n"
               "  infer:    --out FILE --delta MINUTES\n"
               "  rank:     --top K\n"
               "  causal:   --practice NAME --threshold P\n"
               "  predict:  --classes 2|5 --history M\n"
               "  split:    --first-month M (first delta month) --out DIR\n"
               "  ingest:   --deltas D1[,D2,...] (month-delta dirs, in month order)\n"
               "            --out FILE (final case table CSV)\n"
               "            --rank-out FILE (final dependence rankings)\n"
               "  lint:     --format text|json|sarif --out FILE\n"
               "            --min-severity info|warning|error (report floor)\n"
               "            --fail-on info|warning|error (exit 3 when hit)\n"
               "  serve:    --workers N (request workers, default 2)\n"
               "            --max-active N (admitted-request cap, default 64)\n"
               "            --queue-depth N (ready-queue cap, default 256)\n"
               "            --deadline-ms D (default per-request deadline, 0 = none)\n"
               "            --window-buckets N --window-bucket-ms W (rolling window\n"
               "            shape, default 60 x 1000ms) --slow-log K (exemplar bound)\n"
               "  replay:   --requests N --interval-ms D (0 = closed loop) --seed S\n"
               "            --tenants N (spread load across N tenants)\n"
               "            --trace-in FILE (replay a saved trace)\n"
               "            --trace-dump FILE (save the synthesized trace)\n"
               "            --responses-out FILE (deterministic response JSONL)\n"
               "            --report-out FILE (load report JSON)\n"
               "            --slo-ms D (per-tenant SLO attainment vs budget D)\n"
               "            --slo-report FILE (SLO report JSON)\n"
               "            --loads R1,R2,... (offered-load sweep, req/s; finds the\n"
               "            saturation knee; requires --slo-ms)\n"
               "  top:      periodic dashboard over a daemon's stdin/stdout: emits\n"
               "            `stats` request JSONL on stdout, renders matching\n"
               "            responses from stdin to stderr\n"
               "            --interval-ms D (poll period, default 1000)\n"
               "            --iterations N (stop after N polls; 0 = until EOF)\n"
               "common:     --threads N (default MPA_THREADS or hardware)\n"
               "            --metrics-out FILE (JSON; Prometheus if *.prom)\n"
               "            --trace-out FILE (span JSON)\n"
               "            --chrome-trace-out FILE (Perfetto-loadable)\n"
               "            --log-out FILE (structured event log, JSONL)\n"
               "            --log-level debug|info|warn|error (default info)\n"
               "            --manifest-out FILE (run manifest JSON)\n"
               "            --window-out FILE (rolling window snapshot JSON;\n"
               "            Prometheus if *.prom)\n"
               "            --window-canonical-out FILE (identity form, counts only)\n"
               "            --stats (counter/span summary on stderr)\n";
  return 2;
}

Practice practice_by_name(const std::string& name) {
  for (Practice p : all_practices())
    if (practice_name(p) == name) return p;
  std::string known;
  for (Practice p : analysis_practices()) known += "  " + std::string(practice_name(p)) + "\n";
  throw DataError("unknown practice '" + name + "'; known practices:\n" + known);
}

/// Open the engine session over the dataset directory, applying the
/// command-line overrides shared by the analysis commands.
AnalysisSession session_from_dir(const Args& args) {
  SessionOptions opts;
  opts.inference.event_window = args.get_int_min("delta", 5, 0);
  opts.causal.p_threshold = args.get_double("threshold", 1e-3);
  opts.threads = args.get_int_min("threads", 0, 0);
  return AnalysisSession::from_directory(args.dir, std::move(opts));
}

/// OspSink adapter: the glue between the simulation-layer streaming
/// generator and the io-layer mpac writer lives here, keeping
/// simulation below io in the layer DAG.
class ColumnarSink final : public OspSink {
 public:
  explicit ColumnarSink(ColumnarWriter& writer) : writer_(writer) {}
  void on_network(const NetworkRecord& net) override { writer_.add_network(net); }
  void on_device(const DeviceRecord& dev) override { writer_.add_device(dev); }
  void on_snapshot(const ConfigSnapshot& snap) override { writer_.add_snapshot(snap); }
  void on_ticket(const Ticket& t) override { writer_.add_ticket(t); }

 private:
  ColumnarWriter& writer_;
};

ColumnarWriteOptions shard_options(const Args& args) {
  ColumnarWriteOptions opts;
  opts.max_shard_bytes = static_cast<std::size_t>(args.get_int_min("shard-mb", 64, 1)) << 20;
  return opts;
}

int cmd_generate(const Args& args) {
  OspOptions opts;
  opts.num_networks = args.get_int_min("networks", 50, 1);
  opts.num_months = args.get_int_min("months", 12, 1);
  opts.seed = args.get_u64("seed", 1);
  opts.design.min_devices = args.get_int_min("min-devices", opts.design.min_devices, 1);
  opts.design.max_devices =
      args.get_int_min("max-devices", opts.design.max_devices, opts.design.min_devices);
  const std::string format = args.get("format", "csv");
  if (format == "mpac") {
    // Streaming path: records flow network-by-network through the
    // shard writer, so generation memory is bounded by one network
    // plus one shard buffer regardless of --networks.
    ColumnarWriter writer(args.dir, shard_options(args));
    ColumnarSink sink(writer);
    const OspStreamTotals totals = generate_osp_stream(opts, sink);
    const MpacTotals written = writer.finish();
    std::cout << "wrote " << args.dir << ": " << totals.networks << " networks, "
              << totals.snapshots << " snapshots, " << totals.tickets << " tickets ("
              << written.shards << " mpac shards, " << written.shard_bytes << " bytes)\n";
    return 0;
  }
  if (format != "csv") throw UsageError{"--format expects csv|mpac, got '" + format + "'"};
  const OspDataset data = generate_osp(opts);
  save_dataset(DiskDataset{data.inventory, data.snapshots, data.tickets}, args.dir);
  std::cout << "wrote " << args.dir << ": " << data.inventory.num_networks() << " networks, "
            << data.snapshots.total_snapshots() << " snapshots, " << data.tickets.size()
            << " tickets\n";
  return 0;
}

int cmd_convert(const Args& args) {
  const std::string out = args.get("out");
  if (out.empty()) throw UsageError{"convert requires --out DIR"};
  if (is_columnar_dir(args.dir)) {
    const DiskDataset data = load_columnar(args.dir).to_disk_dataset();
    save_dataset(data, out);
    std::cout << "converted mpac -> csv: " << out << ": " << data.inventory.num_networks()
              << " networks, " << data.snapshots.total_snapshots() << " snapshots, "
              << data.tickets.size() << " tickets\n";
    return 0;
  }
  const DiskDataset data = load_dataset(args.dir);
  ColumnarWriter writer(out, shard_options(args));
  for (const auto& net : data.inventory.networks()) writer.add_network(net);
  for (const auto& dev : data.inventory.devices()) writer.add_device(dev);
  for (const auto& t : data.tickets.all()) writer.add_ticket(t);
  for (const auto& device_id : data.snapshots.devices())
    for (const auto& snap : data.snapshots.for_device(device_id)) writer.add_snapshot(snap);
  const MpacTotals totals = writer.finish();
  std::cout << "converted csv -> mpac: " << out << ": " << totals.networks << " networks, "
            << totals.snapshots << " snapshots, " << totals.tickets << " tickets ("
            << totals.shards << " shards, " << totals.shard_bytes << " bytes)\n";
  return 0;
}

int cmd_verify(const Args& args) {
  if (is_columnar_dir(args.dir)) {
    std::cout << verify_columnar(args.dir);
    return 0;
  }
  std::uint64_t bytes = 0;
  const DiskDataset data = load_dataset(args.dir, &bytes);
  std::cout << "csv dataset: " << args.dir << " OK: " << data.inventory.num_networks()
            << " networks, " << data.inventory.num_devices() << " devices, "
            << data.tickets.size() << " tickets, " << data.snapshots.total_snapshots()
            << " snapshots, " << bytes << " bytes\n";
  return 0;
}

int cmd_summary(const Args& args) {
  AnalysisSession session = session_from_dir(args);
  int maintenance = 0;
  for (const auto& t : session.tickets().all())
    if (t.origin == TicketOrigin::kMaintenance) ++maintenance;
  TextTable t({"property", "value"});
  t.row().add("Months").add(session.num_months());
  t.row().add("Networks").add(session.inventory().num_networks());
  t.row().add("Devices").add(session.inventory().num_devices());
  t.row().add("Config snapshots").add(session.snapshots().total_snapshots());
  t.row().add("Snapshot bytes").add(session.snapshots().total_bytes());
  t.row().add("Tickets").add(session.tickets().size());
  t.row().add("  maintenance").add(maintenance);
  t.print(std::cout);
  return 0;
}

int cmd_infer(const Args& args) {
  AnalysisSession session = session_from_dir(args);
  const CaseTable& table = session.case_table();
  const std::string out = args.get("out");
  if (out.empty()) {
    std::cout << table.to_csv();
  } else {
    std::ofstream f(out);
    f << table.to_csv();
    std::cout << "wrote " << table.size() << " cases to " << out << "\n";
  }
  return 0;
}

int cmd_rank(const Args& args) {
  AnalysisSession session = session_from_dir(args);
  const DependenceAnalysis& dep = session.dependence();
  const auto k = static_cast<std::size_t>(args.get_int_min("top", 10, 1));

  std::cout << "-- practices by avg monthly MI with health --\n";
  TextTable mi({"rank", "practice", "cat", "MI"});
  int rank = 0;
  for (const auto& pm : dep.top_practices(k))
    mi.row().add(++rank).add(std::string(practice_name(pm.practice)))
        .add(std::string(category_tag(pm.practice))).add(pm.avg_monthly_mi, 3);
  mi.print(std::cout);

  std::cout << "\n-- practice pairs by CMI given health --\n";
  TextTable cmi({"rank", "practice A", "practice B", "CMI"});
  rank = 0;
  for (const auto& pair : dep.top_pairs(k))
    cmi.row().add(++rank).add(std::string(practice_name(pair.a)))
        .add(std::string(practice_name(pair.b))).add(pair.avg_monthly_cmi, 3);
  cmi.print(std::cout);
  return 0;
}

int cmd_causal(const Args& args) {
  const std::string name = args.get("practice");
  if (name.empty()) throw UsageError{"causal: --practice NAME required"};
  const Practice treatment = practice_by_name(name);
  AnalysisSession session = session_from_dir(args);
  const CausalResult& res = session.causal(treatment);

  TextTable t({"comparison", "pairs", "+/0/-", "p-value", "balanced", "verdict"});
  for (const auto& cmp : res.comparisons) {
    t.row().add(cmp.label()).add(cmp.pairs)
        .add(std::to_string(cmp.outcome.n_pos) + "/" + std::to_string(cmp.outcome.n_zero) + "/" +
             std::to_string(cmp.outcome.n_neg))
        .add(format_sci(cmp.outcome.p_value)).add(cmp.balanced ? "yes" : "NO")
        .add(cmp.causal
                 ? (cmp.outcome.n_pos > cmp.outcome.n_neg ? "causes MORE tickets"
                                                          : "causes FEWER tickets")
                 : "no causal evidence");
  }
  t.print(std::cout);
  return 0;
}

int cmd_predict(const Args& args) {
  AnalysisSession session = session_from_dir(args);
  const int classes = args.get_int_min("classes", 2, 2);
  const int history = args.get_int_min("history", 3, 1);
  const int months = session.num_months();

  const EvalResult& cv = session.evaluate_cv(classes, ModelKind::kDtBoostOversample);
  std::cout << "-- " << classes << "-class model, 5-fold CV --\n"
            << cv.to_string(health_class_names(classes));

  const int first_t = std::min(months - 1, history);
  const double online = session.online_accuracy(classes, history, ModelKind::kDtBoostOversample,
                                                first_t, months - 1);
  std::cout << "\nonline month-ahead accuracy (history " << history
            << " months): " << format_double(online * 100, 1) << "%\n";
  return 0;
}

int cmd_split(const Args& args) {
  const int first = args.get_int_min("first-month", 1, 1);
  const std::string out = args.get("out");
  if (out.empty()) throw UsageError{"split: --out DIR required"};
  const SplitDataset split = split_dataset(load_dataset(args.dir), first);
  save_dataset(split.base, out + "/base");
  for (const MonthDelta& d : split.deltas)
    save_month_delta(d, out + "/delta-" + std::to_string(d.month));
  std::cout << "wrote " << out << "/base (months 0.." << first - 1 << ") and "
            << split.deltas.size() << " delta dir(s)\n";
  return 0;
}

int cmd_ingest(const Args& args) {
  const std::string deltas = args.get("deltas");
  if (deltas.empty()) throw UsageError{"ingest: --deltas D1[,D2,...] required"};
  AnalysisSession session = session_from_dir(args);
  // Warm the maintained artifacts so the appends exercise the
  // incremental paths rather than leaving everything to lazy rebuild.
  session.case_table();
  session.lint();
  session.dependence();
  for (const std::string& dir : split(deltas, ',')) {
    const AnalysisSession::AppendResult res = session.append_month(load_month_delta(dir));
    std::cout << "month " << res.month << ": +" << res.new_rows << " case rows ("
              << res.snapshots << " snapshots, " << res.tickets << " tickets), incremental"
              << " table=" << (res.table_incremental ? "yes" : "no")
              << " lint=" << (res.lint_incremental ? "yes" : "no")
              << " dependence=" << (res.dependence_incremental ? "yes" : "no") << "\n";
  }
  const std::string out = args.get("out");
  if (!out.empty()) {
    std::ofstream f(out);
    f << session.case_table().to_csv();
    std::cout << "wrote " << session.case_table().size() << " cases to " << out << "\n";
  }
  const std::string rank_out = args.get("rank-out");
  if (!rank_out.empty()) {
    serve::Request req;
    req.kind = serve::RequestKind::kRank;
    std::ofstream f(rank_out);
    f << serve::render_request(session, req);
    std::cout << "wrote rankings to " << rank_out << "\n";
  }
  return 0;
}

LintSeverity severity_flag(const Args& args, const std::string& key, LintSeverity fallback) {
  const std::string v = args.get(key);
  if (v.empty()) return fallback;
  const auto sev = parse_severity(v);
  if (!sev) throw UsageError{"--" + key + " expects info|warning|error, got '" + v + "'"};
  return *sev;
}

int cmd_lint(const Args& args) {
  const std::string format = args.get("format").empty() ? "text" : args.get("format");
  if (format != "text" && format != "json" && format != "sarif")
    throw UsageError{"--format expects text|json|sarif, got '" + format + "'"};

  AnalysisSession session = session_from_dir(args);
  const LintReport report =
      session.lint().at_least(severity_flag(args, "min-severity", LintSeverity::kInfo));

  std::string rendered;
  if (format == "text") rendered = report.to_text();
  if (format == "json") rendered = report.to_json();
  if (format == "sarif") rendered = report.to_sarif();

  const std::string out = args.get("out");
  if (out.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream f(out);
    f << rendered;
    std::cout << "wrote " << report.total_findings() << " finding(s) to " << out << "\n";
  }

  const std::string fail_on = args.get("fail-on");
  if (!fail_on.empty()) {
    const LintSeverity gate = severity_flag(args, "fail-on", LintSeverity::kError);
    for (const auto& net : report.networks)
      for (const auto& d : net.diagnostics)
        if (d.severity >= gate) return 3;
  }
  return 0;
}

int cmd_report(const Args& args) {
  const std::string format = args.get("format").empty() ? "text" : args.get("format");
  if (format != "text" && format != "json")
    throw UsageError{"--format expects text|json, got '" + format + "'"};
  std::ifstream in(args.dir);
  if (!in) throw DataError("report: cannot open manifest '" + args.dir + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const RunManifest manifest = RunManifest::from_json(buf.str());
  std::cout << (format == "json" ? manifest.to_json() : manifest.to_text());
  return 0;
}

int cmd_trace_summarize(const Args& args) {
  std::ifstream in(args.dir);
  if (!in) throw DataError("trace summarize: cannot open trace '" + args.dir + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::cout << obs::summarize_spans(obs::parse_trace_json(buf.str()));
  return 0;
}

/// Scheduler + session options shared by `serve` and `replay`.
serve::ServerOptions server_options(const Args& args) {
  serve::ServerOptions opts;
  opts.scheduler.workers = args.get_int_min("workers", 2, 1);
  opts.scheduler.max_active_reqs =
      static_cast<std::size_t>(args.get_int_min("max-active", 64, 1));
  opts.scheduler.max_queue_depth =
      static_cast<std::size_t>(args.get_int_min("queue-depth", 256, 1));
  opts.scheduler.default_deadline_ms = args.get_double("deadline-ms", 0);
  if (opts.scheduler.default_deadline_ms < 0)
    throw UsageError{"--deadline-ms must be >= 0"};
  opts.session.inference.event_window = args.get_int_min("delta", 5, 0);
  opts.session.threads = args.get_int_min("threads", 0, 0);
  opts.slow_log_entries = static_cast<std::size_t>(args.get_int_min("slow-log", 16, 1));
  if (obs::enabled()) {
    // Shape the process-wide rolling window before the server exists;
    // the scheduler resolves to this instance, and write_observability
    // exports it on every exit path alongside the cumulative registry.
    obs::WindowOptions wopts;
    wopts.buckets = static_cast<std::size_t>(args.get_int_min("window-buckets", 60, 1));
    const std::uint64_t width_ms = args.get_u64("window-bucket-ms", 1000);
    if (width_ms == 0) throw UsageError{"--window-bucket-ms must be >= 1"};
    wopts.bucket_width_ns = width_ms * 1'000'000;
    obs::WindowRegistry::global().configure(std::move(wopts));
  }
  return opts;
}

int cmd_serve(const Args& args) {
  const serve::ServerOptions opts = server_options(args);

  // Responses complete on worker threads; serialize the stdout stream.
  Mutex out_mu;
  serve::AnalysisServer server(opts, [&out_mu](const serve::Response& resp) {
    MutexLock lk(out_mu);
    std::cout << resp.to_json() << "\n" << std::flush;
  });
  server.open_directory("main", args.dir);
  std::cerr << "mpa_cli serve: session 'main' over " << args.dir << ", "
            << server.scheduler().workers()
            << " worker(s); reading JSONL requests from stdin\n";

  std::string line;
  std::uint64_t bad_lines = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    try {
      server.submit(serve::Request::from_json(parse_json(line)));
    } catch (const DataError& e) {
      ++bad_lines;
      std::cerr << "mpa_cli serve: bad request: " << e.what() << "\n";
    }
  }
  server.drain();
  const serve::Scheduler::Stats stats = server.stats();
  std::cerr << "mpa_cli serve: " << stats.submitted << " submitted, " << stats.completed
            << " completed, " << stats.rejected << " rejected, " << stats.deadline_misses
            << " deadline-exceeded, " << stats.errors << " error(s)\n";
  return bad_lines == 0 ? 0 : 1;
}

/// Render one `stats` response body as a dashboard frame (mpa top).
/// The body is the server's introspection JSON: scheduler stats, the
/// rolling window snapshot, the resident sessions, and the slow log.
std::string render_top(const std::string& body, std::uint64_t frame) {
  const JsonValue doc = parse_json(body);
  std::ostringstream os;
  os << "-- mpa top (frame " << frame << ") --\n";

  const JsonValue& stats = doc.at("stats");
  os << "submitted " << stats.at("submitted").as_u64() << "  completed "
     << stats.at("completed").as_u64() << "  rejected " << stats.at("rejected").as_u64()
     << "  deadline_misses " << stats.at("deadline_misses").as_u64() << "  errors "
     << stats.at("errors").as_u64() << "  queue_depth " << stats.at("queue_depth").as_u64()
     << "  workers " << stats.at("workers").as_u64() << "\n";

  if (const JsonValue* window = doc.find("window"); window != nullptr && window->is_object()) {
    os << "window (" << window->at("window_seconds").as_number() << "s):\n";
    TextTable t({"tenant", "kind", "total", "req/s", "ok%", "p50 ms", "p99 ms"});
    for (const JsonValue& s : window->at("series").as_array())
      t.row().add(s.at("tenant").as_string()).add(s.at("kind").as_string())
          .add(static_cast<std::size_t>(s.at("total").as_u64()))
          .add(format_double(s.at("throughput_rps").as_number(), 1))
          .add(format_double(s.at("ok_rate").as_number() * 100, 1))
          .add(format_double(s.at("latency_ms").at("p50").as_number(), 2))
          .add(format_double(s.at("latency_ms").at("p99").as_number(), 2));
    t.print(os);
  }

  const JsonValue& slow = doc.at("slow");
  if (!slow.as_array().empty()) {
    os << "slowest requests:\n";
    TextTable t({"id", "tenant", "kind", "status", "total ms", "top stage"});
    for (const JsonValue& e : slow.as_array()) {
      std::string top_stage = "-";
      double top_ms = -1;
      for (const JsonValue& st : e.at("stages").as_array())
        if (st.at("ms").as_number() > top_ms) {
          top_ms = st.at("ms").as_number();
          top_stage = st.at("path").as_string();
        }
      t.row().add(static_cast<std::size_t>(e.at("id").as_u64())).add(e.at("tenant").as_string())
          .add(e.at("kind").as_string()).add(e.at("status").as_string())
          .add(format_double(e.at("total_ms").as_number(), 2)).add(top_stage);
    }
    t.print(os);
  }
  return os.str();
}

/// `mpa_cli top`: the live-dashboard half of a shell pipeline around a
/// running daemon —
///   mkfifo req; mpa_cli serve DIR < req | mpa_cli top > req
/// Emits one `stats` request per poll on stdout, reads the daemon's
/// response stream on stdin, and renders matching responses to stderr.
/// Because introspection is answered at submit, the daemon responds
/// even when its queue is saturated.
int cmd_top(const Args& args) {
  const double interval_ms = args.get_double("interval-ms", 1000);
  if (interval_ms < 0) throw UsageError{"--interval-ms must be >= 0"};
  const int iterations = args.get_int_min("iterations", 0, 0);

  std::uint64_t rendered = 0;
  std::string line;
  for (int i = 0; iterations == 0 || i < iterations; ++i) {
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i) + 1;
    req.kind = serve::RequestKind::kStats;
    req.tenant = "top";
    std::cout << req.to_json() << "\n" << std::flush;

    bool got = false;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      try {
        const JsonValue resp = parse_json(line);
        if (resp.at("kind").as_string() != "stats" || resp.at("id").as_u64() != req.id)
          continue;  // interleaved analysis responses
        std::cerr << render_top(resp.at("body").as_string(), ++rendered) << std::flush;
        got = true;
        break;
      } catch (const DataError& e) {
        std::cerr << "mpa_cli top: unparseable response line: " << e.what() << "\n";
      }
    }
    if (!got) break;  // daemon stream closed
    if ((iterations == 0 || i + 1 < iterations) && interval_ms > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(interval_ms));
  }
  return rendered > 0 ? 0 : 1;
}

int cmd_replay(const Args& args) {
  const serve::ServerOptions opts = server_options(args);

  serve::ClientOptions copts;
  copts.request_total_cnt = args.get_int_min("requests", 32, 1);
  copts.request_interval_ms = args.get_double("interval-ms", 0);
  if (copts.request_interval_ms < 0) throw UsageError{"--interval-ms must be >= 0"};
  copts.seed = args.get_u64("seed", 1);
  copts.deadline_ms = opts.scheduler.default_deadline_ms;
  const int tenants = args.get_int_min("tenants", 1, 1);
  copts.tenants.clear();
  for (int i = 0; i < tenants; ++i) copts.tenants.push_back("tenant" + std::to_string(i));

  std::vector<serve::Request> trace;
  const std::string trace_in = args.get("trace-in");
  if (trace_in.empty()) {
    trace = serve::synthesize_trace(copts);
  } else {
    std::ifstream in(trace_in);
    if (!in) throw DataError("replay: cannot open trace '" + trace_in + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    trace = serve::trace_from_jsonl(buf.str());
  }
  const std::string trace_dump = args.get("trace-dump");
  if (!trace_dump.empty()) {
    std::ofstream f(trace_dump);
    f << serve::trace_to_jsonl(trace);
  }

  const double slo_ms = args.get_double("slo-ms", 0);
  if (slo_ms < 0) throw UsageError{"--slo-ms must be >= 0"};
  const std::string slo_report_path = args.get("slo-report");
  const std::string loads_flag = args.get("loads");

  if (!loads_flag.empty()) {
    // Offered-load sweep: replay the same trace open-loop at each
    // offered rate against a fresh server, and report the saturation
    // knee — the first offered load whose achieved throughput fell
    // below 90% of it.
    if (slo_ms <= 0) throw UsageError{"replay: --loads requires --slo-ms"};
    std::vector<double> loads;
    for (const std::string& tok : split(loads_flag, ',')) {
      char* end = nullptr;
      const double rps = std::strtod(tok.c_str(), &end);
      if (end == tok.c_str() || *end != '\0' || rps <= 0)
        throw UsageError{"--loads expects positive req/s values, got '" + tok + "'"};
      loads.push_back(rps);
    }
    std::ostringstream sweep;
    sweep << "{\"slo_ms\":" << slo_ms << ",\"loads\":[";
    double saturation_rps = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      serve::ClientOptions load_opts = copts;
      load_opts.request_interval_ms = 1000.0 / loads[i];
      serve::AnalysisServer server(opts);
      server.open_directory("main", args.dir);
      const serve::LoadReport rep = serve::SyntheticClient(load_opts).replay(server, trace);
      const serve::SloReport slo =
          serve::compute_slo(server.responses(), slo_ms, loads[i], rep.throughput_rps);
      std::cout << "-- offered " << format_double(loads[i], 1) << " req/s --\n"
                << slo.to_text() << "\n";
      if (i > 0) sweep << ',';
      sweep << slo.to_json();
      if (slo.saturated && saturation_rps == 0) saturation_rps = loads[i];
    }
    sweep << "],\"saturation_rps\":" << saturation_rps << '}';
    if (saturation_rps > 0)
      std::cout << "saturation at " << format_double(saturation_rps, 1) << " req/s offered\n";
    else
      std::cout << "no saturation across offered loads\n";
    if (!slo_report_path.empty()) {
      std::ofstream f(slo_report_path);
      f << sweep.str();
    }
    return 0;
  }

  serve::AnalysisServer server(opts);
  server.open_directory("main", args.dir);
  const serve::LoadReport report = serve::SyntheticClient(copts).replay(server, trace);

  const std::string responses_out = args.get("responses-out");
  if (!responses_out.empty()) {
    std::ofstream f(responses_out);
    for (const serve::Response& resp : server.responses()) f << resp.to_json(false) << "\n";
  }
  const std::string report_out = args.get("report-out");
  if (!report_out.empty()) {
    std::ofstream f(report_out);
    f << report.to_json();
  }
  std::cout << report.to_text();
  if (slo_ms > 0) {
    const double offered =
        copts.request_interval_ms > 0 ? 1000.0 / copts.request_interval_ms : 0;
    const serve::SloReport slo =
        serve::compute_slo(server.responses(), slo_ms, offered, report.throughput_rps);
    std::cout << "\n" << slo.to_text();
    if (!slo_report_path.empty()) {
      std::ofstream f(slo_report_path);
      f << slo.to_json();
    }
  }
  return 0;
}

/// True when any observability flag asks for metric/span recording.
bool wants_observability(const Args& args) {
  return args.flags.count("metrics-out") != 0 || args.flags.count("trace-out") != 0 ||
         args.flags.count("chrome-trace-out") != 0 || args.flags.count("manifest-out") != 0 ||
         args.flags.count("window-out") != 0 ||
         args.flags.count("window-canonical-out") != 0 || args.flags.count("stats") != 0;
}

/// Turn the event log on when --log-out asks for it; --log-level sets
/// the recording floor (validated even without --log-out).
void configure_logging(const Args& args) {
  obs::LogLevel level = obs::LogLevel::kInfo;
  const std::string name = args.get("log-level", "info");
  if (!obs::parse_log_level(name, &level))
    throw UsageError{"--log-level expects debug|info|warn|error, got '" + name + "'"};
  if (args.flags.count("log-out") != 0) {
    obs::set_log_enabled(true);
    obs::set_log_min_level(level);
  }
}

/// Run the subcommand under a root trace span named after it, so every
/// stage span nests as "<command>/<stage>".
int dispatch(const Args& args) {
  obs::Span root(args.command);
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "convert") return cmd_convert(args);
  if (args.command == "verify") return cmd_verify(args);
  if (args.command == "summary") return cmd_summary(args);
  if (args.command == "infer") return cmd_infer(args);
  if (args.command == "rank") return cmd_rank(args);
  if (args.command == "causal") return cmd_causal(args);
  if (args.command == "predict") return cmd_predict(args);
  if (args.command == "split") return cmd_split(args);
  if (args.command == "ingest") return cmd_ingest(args);
  if (args.command == "lint") return cmd_lint(args);
  if (args.command == "report") return cmd_report(args);
  if (args.command == "trace summarize") return cmd_trace_summarize(args);
  if (args.command == "serve") return cmd_serve(args);
  if (args.command == "replay") return cmd_replay(args);
  if (args.command == "top") return cmd_top(args);
  throw UsageError{"unknown command '" + args.command + "'"};
}

/// After the command (sessions destroyed, pool stats published): write
/// the requested export files and/or print the human summary. Called
/// on success and failure alike — a failed run's telemetry is exactly
/// the run worth inspecting.
void write_observability(const Args& args) {
  if (obs::enabled()) {
    const std::string metrics_path = args.get("metrics-out");
    if (!metrics_path.empty()) {
      std::ofstream f(metrics_path);
      const bool prometheus = metrics_path.size() >= 5 &&
                              metrics_path.compare(metrics_path.size() - 5, 5, ".prom") == 0;
      if (prometheus) {
        // One scrape target: the rolling window gauges ride along with
        // the cumulative registry in the same exposition.
        f << obs::Registry::global().to_prometheus()
          << obs::WindowRegistry::global().to_prometheus();
      } else {
        f << obs::Registry::global().to_json();
      }
    }
    const std::string window_path = args.get("window-out");
    if (!window_path.empty()) {
      std::ofstream f(window_path);
      const bool prometheus = window_path.size() >= 5 &&
                              window_path.compare(window_path.size() - 5, 5, ".prom") == 0;
      if (prometheus)
        f << obs::WindowRegistry::global().to_prometheus();
      else
        f << obs::WindowRegistry::global().to_json() << "\n";
    }
    const std::string window_canonical_path = args.get("window-canonical-out");
    if (!window_canonical_path.empty()) {
      std::ofstream f(window_canonical_path);
      f << obs::WindowRegistry::global().canonical_json() << "\n";
    }
    const std::string trace_path = args.get("trace-out");
    if (!trace_path.empty()) {
      std::ofstream f(trace_path);
      f << obs::Tracer::global().to_json();
    }
    const std::string chrome_path = args.get("chrome-trace-out");
    if (!chrome_path.empty()) {
      std::ofstream f(chrome_path);
      f << obs::chrome_trace_json(obs::Tracer::global().snapshot());
    }
    const std::string manifest_path = args.get("manifest-out");
    if (!manifest_path.empty()) {
      std::ofstream f(manifest_path);
      // A run that died before opening a session has no manifest; the
      // file still appears (empty) so callers can rely on its presence.
      if (const auto manifest = last_run_manifest()) f << manifest->to_json();
    }
    if (args.flags.count("stats") != 0) {
      std::cerr << "\n-- engine stats --\n"
                << obs::Registry::global().to_text() << "\n-- trace spans --\n"
                << obs::Tracer::global().summary();
    }
  }
  if (obs::log_enabled()) {
    const std::string log_path = args.get("log-out");
    if (!log_path.empty()) {
      std::ofstream f(log_path);
      f << obs::Logger::global().to_jsonl();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    args = parse_args(argc, argv);
    if (args.command.empty() || (args.dir.empty() && args.command != "top")) return usage();
    check_flags(args);
    configure_logging(args);
  } catch (const UsageError& e) {
    std::cerr << "mpa_cli: " << e.message << "\n";
    return usage();
  }
  if (wants_observability(args)) obs::set_enabled(true);
  int rc = 0;
  try {
    rc = dispatch(args);
  } catch (const UsageError& e) {
    // A bad invocation discovered mid-command (e.g. causal without
    // --practice): the exports below still run before the exit-2
    // return.
    std::cerr << "mpa_cli: " << e.message << "\n";
    usage();
    rc = 2;
  } catch (const std::exception& e) {
    std::cerr << "mpa_cli: " << e.what() << "\n";
    rc = 1;
  }
  write_observability(args);
  return rc;
}
