// Tests for reference extraction (intra/inter-device complexity, D6).
#include <gtest/gtest.h>

#include "config/refs.hpp"

namespace mpa {
namespace {

DeviceConfig router_with_refs() {
  DeviceConfig c("rt0");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("ip address", "10.0.0.1/24");
  i.set("ip access-group", "edge");
  c.add(i);
  Stanza a;
  a.type = "ip access-list";
  a.name = "edge";
  a.set("permit", "tcp any any eq 80");
  c.add(a);
  Stanza b;
  b.type = "router bgp";
  b.name = "65001";
  b.set("neighbor", "10.0.0.2 remote-as 65001");
  b.set("network", "10.0.0.0/24");
  c.add(b);
  return c;
}

TEST(Refs, IntraAclAttachment) {
  DeviceConfig c("d");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("ip access-group", "edge");
  c.add(i);
  EXPECT_EQ(count_intra_refs(c), 0);  // ACL not defined -> dangling, no ref
  Stanza a;
  a.type = "ip access-list";
  a.name = "edge";
  c.add(a);
  EXPECT_EQ(count_intra_refs(c), 1);
}

TEST(Refs, IntraVlanMembershipBothDialects) {
  // IOS-like: membership under the interface.
  DeviceConfig ios("d1");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("switchport access vlan", "100");
  ios.add(i);
  Stanza v;
  v.type = "vlan";
  v.name = "100";
  ios.add(v);
  EXPECT_EQ(count_intra_refs(ios), 1);

  // JunOS-like: membership under the vlan.
  DeviceConfig junos("d2");
  Stanza ji;
  ji.type = "interfaces";
  ji.name = "xe-0/0/0";
  junos.add(ji);
  Stanza jv;
  jv.type = "vlans";
  jv.name = "100";
  jv.set("interface", "xe-0/0/0");
  junos.add(jv);
  EXPECT_EQ(count_intra_refs(junos), 1);
}

TEST(Refs, IntraRouterNetworkCoversInterface) {
  const DeviceConfig c = router_with_refs();
  // Refs: acl attach (1) + bgp network statement covering Eth0 (1).
  EXPECT_EQ(count_intra_refs(c), 2);
}

TEST(Refs, IntraVirtualServerPool) {
  DeviceConfig c("lb");
  Stanza p;
  p.type = "pool";
  p.name = "web";
  p.set("member", "10.200.0.1:80");
  c.add(p);
  Stanza vs;
  vs.type = "virtual-server";
  vs.name = "vip";
  vs.set("pool", "web");
  c.add(vs);
  EXPECT_EQ(count_intra_refs(c), 1);
}

TEST(Refs, IntraLagMember) {
  DeviceConfig c("sw");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  c.add(i);
  Stanza lag;
  lag.type = "port-channel";
  lag.name = "ae0";
  lag.set("member", "Eth0");
  c.add(lag);
  EXPECT_EQ(count_intra_refs(c), 1);
}

TEST(Refs, InterBgpNeighbor) {
  const DeviceConfig a = router_with_refs();
  DeviceConfig b("rt1");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("ip address", "10.0.0.2/24");
  b.add(i);
  const std::vector<DeviceConfig> net{a, b};
  // a's neighbor 10.0.0.2 is b's interface address (1), and a's network
  // statement covers the 10.0.0.0/24 subnet shared with b (1).
  EXPECT_EQ(count_inter_refs(a, net), 2);
  EXPECT_EQ(count_inter_refs(b, net), 0);  // b has no bgp/vlan stanzas
}

TEST(Refs, InterVlanSpanning) {
  DeviceConfig a("sw0"), b("sw1"), c("sw2");
  for (auto* cfg : {&a, &b}) {
    Stanza v;
    v.type = "vlan";
    v.name = "100";
    cfg->add(v);
  }
  Stanza v2;
  v2.type = "vlan";
  v2.name = "200";
  c.add(v2);
  const std::vector<DeviceConfig> net{a, b, c};
  EXPECT_EQ(count_inter_refs(a, net), 1);  // vlan 100 also on b
  EXPECT_EQ(count_inter_refs(c, net), 0);  // vlan 200 unique
}

TEST(Refs, SelfIsExcludedFromPeers) {
  const DeviceConfig a = router_with_refs();
  // Peer list containing only the device itself yields no inter refs.
  EXPECT_EQ(count_inter_refs(a, {a}), 0);
}

TEST(Refs, NetworkComplexityAverages) {
  const DeviceConfig a = router_with_refs();
  DeviceConfig b("rt1");
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("ip address", "10.0.0.2/24");
  b.add(i);
  const NetworkComplexity cx = referential_complexity({a, b});
  EXPECT_DOUBLE_EQ(cx.mean_intra, (2 + 0) / 2.0);
  EXPECT_DOUBLE_EQ(cx.mean_inter, (2 + 0) / 2.0);
}

TEST(Refs, EmptyNetwork) {
  const NetworkComplexity cx = referential_complexity({});
  EXPECT_EQ(cx.mean_intra, 0);
  EXPECT_EQ(cx.mean_inter, 0);
}

}  // namespace
}  // namespace mpa
