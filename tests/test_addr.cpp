// Tests for IPv4 address/prefix parsing.
#include <gtest/gtest.h>

#include "config/addr.hpp"

namespace mpa {
namespace {

TEST(Addr, ParseIpv4) {
  EXPECT_EQ(parse_ipv4("10.0.0.1"), 0x0a000001u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
}

TEST(Addr, ParseIpv4Rejects) {
  EXPECT_FALSE(parse_ipv4("10.0.0").has_value());
  EXPECT_FALSE(parse_ipv4("10.0.0.0.1").has_value());
  EXPECT_FALSE(parse_ipv4("10.0.0.256").has_value());
  EXPECT_FALSE(parse_ipv4("a.b.c.d").has_value());
  EXPECT_FALSE(parse_ipv4("").has_value());
  EXPECT_FALSE(parse_ipv4("10..0.1").has_value());
}

TEST(Addr, ParsePrefix) {
  const auto p = parse_prefix("10.1.2.3/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->addr, 0x0a010203u);
  EXPECT_EQ(p->len, 24);
  EXPECT_EQ(p->network(), 0x0a010200u);
}

TEST(Addr, ParsePrefixRejects) {
  EXPECT_FALSE(parse_prefix("10.0.0.1").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.1/33").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.1/").has_value());
  EXPECT_FALSE(parse_prefix("10.0.0.1/ab").has_value());
}

TEST(Addr, Contains) {
  const Ipv4Prefix p{0x0a010200u, 24};
  EXPECT_TRUE(p.contains(0x0a010201u));
  EXPECT_TRUE(p.contains(0x0a0102ffu));
  EXPECT_FALSE(p.contains(0x0a010301u));
}

TEST(Addr, ZeroLengthPrefixContainsAll) {
  const Ipv4Prefix p{0, 0};
  EXPECT_TRUE(p.contains(0xffffffffu));
  EXPECT_EQ(p.network(), 0u);
}

TEST(Addr, SubnetCanonicalizes) {
  const auto p = parse_prefix("10.1.2.3/24");
  const Ipv4Prefix s = p->subnet();
  EXPECT_EQ(s.addr, 0x0a010200u);
  EXPECT_EQ(s.len, 24);
  EXPECT_EQ(s, p->subnet());
}

TEST(Addr, FormatRoundTrip) {
  EXPECT_EQ(format_ipv4(0x0a010203u), "10.1.2.3");
  EXPECT_EQ(format_prefix(Ipv4Prefix{0x0a010200u, 24}), "10.1.2.0/24");
  const auto p = parse_prefix(format_prefix(Ipv4Prefix{0xc0a80000u, 16}));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->addr, 0xc0a80000u);
}

}  // namespace
}  // namespace mpa
