// Tests for routing-instance extraction (union-find over adjacency).
#include <gtest/gtest.h>

#include "config/routing.hpp"

namespace mpa {
namespace {

DeviceConfig bgp_router(const std::string& id, const std::string& addr,
                        const std::string& neighbor, const std::string& asn) {
  DeviceConfig c(id);
  Stanza i;
  i.type = "interface";
  i.name = "Eth0";
  i.set("ip address", addr + "/24");
  c.add(i);
  Stanza b;
  b.type = "router bgp";
  b.name = asn;
  if (!neighbor.empty()) b.set("neighbor", neighbor + " remote-as " + asn);
  c.add(b);
  return c;
}

DeviceConfig ospf_router(const std::string& id, const std::string& subnet, int pid) {
  DeviceConfig c(id);
  Stanza o;
  o.type = "router ospf";
  o.name = std::to_string(pid);
  o.set("network", subnet + " area 0");
  c.add(o);
  return c;
}

TEST(Routing, ExtractProcesses) {
  const auto procs = extract_processes({bgp_router("a", "10.0.0.1", "10.0.0.2", "65001"),
                                        ospf_router("b", "10.1.0.0/24", 1)});
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].protocol, "bgp");
  EXPECT_EQ(procs[0].key, "65001");
  EXPECT_EQ(procs[1].protocol, "ospf");
}

TEST(Routing, BgpChainFormsOneInstance) {
  // a <-> b <-> c via neighbor statements: transitive closure = one
  // instance of size 3.
  const std::vector<DeviceConfig> net{
      bgp_router("a", "10.0.0.1", "10.0.0.2", "65001"),
      bgp_router("b", "10.0.0.2", "10.0.0.3", "65001"),
      bgp_router("c", "10.0.0.3", "", "65001"),
  };
  const auto instances = extract_routing_instances(net);
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].protocol, "bgp");
  EXPECT_EQ(instances[0].size(), 3u);
}

TEST(Routing, DisjointBgpGroups) {
  const std::vector<DeviceConfig> net{
      bgp_router("a", "10.0.0.1", "10.0.0.2", "65001"),
      bgp_router("b", "10.0.0.2", "", "65001"),
      bgp_router("c", "10.0.1.1", "192.0.2.1", "65002"),  // external peer
  };
  const auto instances = extract_routing_instances(net);
  const InstanceStats st = instance_stats(instances, "bgp");
  EXPECT_EQ(st.count, 2);
  EXPECT_DOUBLE_EQ(st.mean_size, (2 + 1) / 2.0);
}

TEST(Routing, OspfSharedSubnetAdjacency) {
  const std::vector<DeviceConfig> net{
      ospf_router("a", "10.5.0.0/24", 1),
      ospf_router("b", "10.5.0.0/24", 1),
      ospf_router("c", "10.6.0.0/24", 1),
  };
  const auto instances = extract_routing_instances(net);
  const InstanceStats st = instance_stats(instances, "ospf");
  EXPECT_EQ(st.count, 2);
}

TEST(Routing, OspfNonCanonicalSubnetsStillMatch) {
  // Network statements with host bits set should canonicalize.
  const std::vector<DeviceConfig> net{
      ospf_router("a", "10.5.0.1/24", 1),
      ospf_router("b", "10.5.0.200/24", 1),
  };
  const auto instances = extract_routing_instances(net);
  EXPECT_EQ(instance_stats(instances, "ospf").count, 1);
}

TEST(Routing, ProtocolsNeverMix) {
  // A BGP process advertising the same subnet as an OSPF process must
  // not join its instance.
  DeviceConfig a = bgp_router("a", "10.0.0.1", "", "65001");
  a.find("router bgp", "65001")->set("network", "10.5.0.0/24");
  const std::vector<DeviceConfig> net{a, ospf_router("b", "10.5.0.0/24", 1)};
  const auto instances = extract_routing_instances(net);
  EXPECT_EQ(instances.size(), 2u);
}

TEST(Routing, MstpRegionsGroup) {
  auto make_switch = [](const std::string& id, const std::string& region) {
    DeviceConfig c(id);
    Stanza s;
    s.type = "spanning-tree";
    s.name = "mst0";
    s.set("region", region);
    c.add(s);
    return c;
  };
  const std::vector<DeviceConfig> net{make_switch("a", "r1"), make_switch("b", "r1"),
                                      make_switch("c", "r2")};
  const auto instances = extract_routing_instances(net);
  const InstanceStats st = instance_stats(instances, "mstp");
  EXPECT_EQ(st.count, 2);
  EXPECT_DOUBLE_EQ(st.mean_size, 1.5);
}

TEST(Routing, SameDeviceProcessesNotAdjacent) {
  // Two OSPF processes on one device sharing a subnet stay separate
  // (adjacency requires different devices).
  DeviceConfig a("a");
  Stanza o1;
  o1.type = "router ospf";
  o1.name = "1";
  o1.set("network", "10.5.0.0/24 area 0");
  a.add(o1);
  Stanza o2;
  o2.type = "router ospf";
  o2.name = "2";
  o2.set("network", "10.5.0.0/24 area 1");
  a.add(o2);
  const auto instances = extract_routing_instances({a});
  EXPECT_EQ(instance_stats(instances, "ospf").count, 2);
}

TEST(Routing, EmptyNetwork) {
  EXPECT_TRUE(extract_routing_instances({}).empty());
  EXPECT_EQ(instance_stats({}, "bgp").count, 0);
  EXPECT_EQ(instance_stats({}, "bgp").mean_size, 0);
}

}  // namespace
}  // namespace mpa
