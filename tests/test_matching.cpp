// Tests for propensity-score matching and balance diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/matching.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mpa {
namespace {

// Build a confounded scenario: confounder z drives treatment
// probability; within z-levels treatment is random.
void make_confounded(Rng& rng, int n, Matrix* treated, Matrix* untreated) {
  for (int i = 0; i < n; ++i) {
    const double z = rng.uniform(0, 1);
    const double noise = rng.normal(0, 0.2);
    const bool is_treated = rng.bernoulli(0.2 + 0.6 * z);
    (is_treated ? treated : untreated)->push_back({z, z * 2 + noise});
  }
}

TEST(Balance, StatBasics) {
  const std::vector<double> t{1, 2, 3, 4};
  const std::vector<double> u{1, 2, 3, 4};
  const BalanceStat same = balance_stat(t, u);
  EXPECT_DOUBLE_EQ(same.std_diff_of_means, 0.0);
  EXPECT_DOUBLE_EQ(same.variance_ratio, 1.0);
  EXPECT_TRUE(same.ok());

  const std::vector<double> shifted{11, 12, 13, 14};
  const BalanceStat bad = balance_stat(shifted, u);
  EXPECT_GT(bad.std_diff_of_means, 5);
  EXPECT_FALSE(bad.ok());
}

TEST(Balance, DegenerateVariances) {
  const std::vector<double> constant{2, 2, 2};
  const std::vector<double> varying{1, 2, 3};
  EXPECT_TRUE(balance_stat(constant, constant).ok());
  const BalanceStat b = balance_stat(constant, varying);
  EXPECT_FALSE(b.ok());  // zero treated variance vs nonzero untreated
  EXPECT_TRUE(std::isinf(balance_stat(std::vector<double>{3, 3}, constant).std_diff_of_means));
}

TEST(Matching, PairsTreatedToNearbyScores) {
  Rng rng(42);
  Matrix treated, untreated;
  make_confounded(rng, 4000, &treated, &untreated);
  const MatchResult res = propensity_match(treated, untreated);
  ASSERT_GT(res.pairs.size(), 100u);
  // Every pair's score distance is small.
  for (const auto& p : res.pairs) EXPECT_LT(p.score_diff, 0.2);
  // Matched confounders balance out.
  EXPECT_TRUE(res.propensity_balance.ok());
  EXPECT_LT(res.worst_abs_std_diff(), 0.25);
  EXPECT_GE(res.variance_ratio_pass_fraction(), 0.99);
  EXPECT_TRUE(res.balanced());
}

TEST(Matching, UnmatchedRawMeansDifferButMatchedDoNot) {
  Rng rng(7);
  Matrix treated, untreated;
  make_confounded(rng, 4000, &treated, &untreated);
  // Raw group means of z differ substantially (confounding).
  double mt = 0, mu = 0;
  for (const auto& r : treated) mt += r[0];
  for (const auto& r : untreated) mu += r[0];
  mt /= treated.size();
  mu /= untreated.size();
  EXPECT_GT(mt - mu, 0.1);
  // After matching, the matched-sample difference collapses.
  const MatchResult res = propensity_match(treated, untreated);
  EXPECT_LT(std::abs(res.confounder_balance[0].std_diff_of_means), 0.25);
}

TEST(Matching, WithoutReplacementNoReuse) {
  Rng rng(9);
  Matrix treated, untreated;
  make_confounded(rng, 2000, &treated, &untreated);
  MatchOptions opts;
  opts.with_replacement = false;
  const MatchResult res = propensity_match(treated, untreated, opts);
  EXPECT_EQ(res.untreated_matched_distinct, res.pairs.size());
}

TEST(Matching, MaxReuseHonored) {
  Rng rng(10);
  Matrix treated, untreated;
  make_confounded(rng, 2000, &treated, &untreated);
  MatchOptions opts;
  opts.max_reuse = 1;
  const MatchResult res = propensity_match(treated, untreated, opts);
  EXPECT_EQ(res.untreated_matched_distinct, res.pairs.size());
  opts.max_reuse = 3;
  const MatchResult res3 = propensity_match(treated, untreated, opts);
  EXPECT_GE(res3.pairs.size(), res.pairs.size());
  EXPECT_LE(res3.pairs.size(), 3 * res3.untreated_matched_distinct);
}

TEST(Matching, CommonSupportTrimsOutliers) {
  // One treated case far outside the untreated score range is dropped.
  Matrix treated{{0.5}, {100.0}};
  Matrix untreated{{0.4}, {0.45}, {0.55}, {0.6}, {0.35}, {0.65}};
  MatchOptions opts;
  opts.caliper_sd = 0;  // disable caliper to isolate support trimming
  const MatchResult res = propensity_match(treated, untreated, opts);
  EXPECT_EQ(res.pairs.size(), 1u);
  EXPECT_EQ(res.pairs[0].treated_index, 0u);
}

TEST(Matching, CaliperDropsDistantPairs) {
  Rng rng(11);
  Matrix treated, untreated;
  make_confounded(rng, 1000, &treated, &untreated);
  MatchOptions loose;
  loose.caliper_sd = 0;  // off
  loose.trim_common_support = false;
  MatchOptions tight = loose;
  tight.caliper_sd = 0.05;
  const auto nl = propensity_match(treated, untreated, loose).pairs.size();
  const auto nt = propensity_match(treated, untreated, tight).pairs.size();
  EXPECT_LE(nt, nl);
}

TEST(Matching, ScoreOrderingSane) {
  Rng rng(12);
  Matrix treated, untreated;
  make_confounded(rng, 1500, &treated, &untreated);
  const MatchResult res = propensity_match(treated, untreated);
  // Treated scores should average above untreated scores (z drives
  // treatment up).
  double st = 0, su = 0;
  for (double s : res.treated_scores) st += s;
  for (double s : res.untreated_scores) su += s;
  EXPECT_GT(st / res.treated_scores.size(), su / res.untreated_scores.size());
}

TEST(Matching, RejectsEmptyOrRagged) {
  EXPECT_THROW(propensity_match({}, {{1.0}}), PreconditionError);
  EXPECT_THROW(propensity_match({{1.0}}, {}), PreconditionError);
  EXPECT_THROW(propensity_match({{1.0}, {1.0, 2.0}}, {{1.0}}), PreconditionError);
}

TEST(ExactMatching, CountsOnlyIdenticalRows) {
  const Matrix treated{{1, 2}, {3, 4}, {5, 6}};
  const Matrix untreated{{1, 2}, {9, 9}};
  EXPECT_EQ(exact_match_count(treated, untreated), 1u);
  EXPECT_EQ(exact_match_count(treated, {}), 0u);
}

// Sweep sample sizes: matching must never produce more pairs than
// treated cases and must preserve balance on well-overlapped data.
class MatchingSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatchingSweep, PairsBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Matrix treated, untreated;
  make_confounded(rng, GetParam(), &treated, &untreated);
  if (treated.empty() || untreated.empty()) GTEST_SKIP();
  const MatchResult res = propensity_match(treated, untreated);
  EXPECT_LE(res.pairs.size(), treated.size());
  EXPECT_LE(res.untreated_matched_distinct, untreated.size());
  for (const auto& p : res.pairs) {
    EXPECT_LT(p.treated_index, treated.size());
    EXPECT_LT(p.untreated_index, untreated.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatchingSweep, ::testing::Values(50, 200, 1000, 5000));

}  // namespace
}  // namespace mpa
